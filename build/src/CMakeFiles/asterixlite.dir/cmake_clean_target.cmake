file(REMOVE_RECURSE
  "libasterixlite.a"
)
