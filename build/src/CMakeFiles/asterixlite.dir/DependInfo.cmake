
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adm/json.cpp" "src/CMakeFiles/asterixlite.dir/adm/json.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/adm/json.cpp.o.d"
  "/root/repo/src/adm/key_encoder.cpp" "src/CMakeFiles/asterixlite.dir/adm/key_encoder.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/adm/key_encoder.cpp.o.d"
  "/root/repo/src/adm/serde.cpp" "src/CMakeFiles/asterixlite.dir/adm/serde.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/adm/serde.cpp.o.d"
  "/root/repo/src/adm/temporal.cpp" "src/CMakeFiles/asterixlite.dir/adm/temporal.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/adm/temporal.cpp.o.d"
  "/root/repo/src/adm/type.cpp" "src/CMakeFiles/asterixlite.dir/adm/type.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/adm/type.cpp.o.d"
  "/root/repo/src/adm/value.cpp" "src/CMakeFiles/asterixlite.dir/adm/value.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/adm/value.cpp.o.d"
  "/root/repo/src/algebricks/compiler.cpp" "src/CMakeFiles/asterixlite.dir/algebricks/compiler.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/algebricks/compiler.cpp.o.d"
  "/root/repo/src/algebricks/expr.cpp" "src/CMakeFiles/asterixlite.dir/algebricks/expr.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/algebricks/expr.cpp.o.d"
  "/root/repo/src/algebricks/functions.cpp" "src/CMakeFiles/asterixlite.dir/algebricks/functions.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/algebricks/functions.cpp.o.d"
  "/root/repo/src/algebricks/logical.cpp" "src/CMakeFiles/asterixlite.dir/algebricks/logical.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/algebricks/logical.cpp.o.d"
  "/root/repo/src/algebricks/optimizer.cpp" "src/CMakeFiles/asterixlite.dir/algebricks/optimizer.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/algebricks/optimizer.cpp.o.d"
  "/root/repo/src/aql/aql.cpp" "src/CMakeFiles/asterixlite.dir/aql/aql.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/aql/aql.cpp.o.d"
  "/root/repo/src/asterix/bad.cpp" "src/CMakeFiles/asterixlite.dir/asterix/bad.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/bad.cpp.o.d"
  "/root/repo/src/asterix/dataset.cpp" "src/CMakeFiles/asterixlite.dir/asterix/dataset.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/dataset.cpp.o.d"
  "/root/repo/src/asterix/executor.cpp" "src/CMakeFiles/asterixlite.dir/asterix/executor.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/executor.cpp.o.d"
  "/root/repo/src/asterix/external.cpp" "src/CMakeFiles/asterixlite.dir/asterix/external.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/external.cpp.o.d"
  "/root/repo/src/asterix/gleambook.cpp" "src/CMakeFiles/asterixlite.dir/asterix/gleambook.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/gleambook.cpp.o.d"
  "/root/repo/src/asterix/instance.cpp" "src/CMakeFiles/asterixlite.dir/asterix/instance.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/instance.cpp.o.d"
  "/root/repo/src/asterix/metadata.cpp" "src/CMakeFiles/asterixlite.dir/asterix/metadata.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/metadata.cpp.o.d"
  "/root/repo/src/asterix/shadow_feed.cpp" "src/CMakeFiles/asterixlite.dir/asterix/shadow_feed.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/asterix/shadow_feed.cpp.o.d"
  "/root/repo/src/common/compress.cpp" "src/CMakeFiles/asterixlite.dir/common/compress.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/common/compress.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/CMakeFiles/asterixlite.dir/common/io.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/common/io.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/asterixlite.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/common/status.cpp.o.d"
  "/root/repo/src/hyracks/exchange.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/exchange.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/exchange.cpp.o.d"
  "/root/repo/src/hyracks/groupby.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/groupby.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/groupby.cpp.o.d"
  "/root/repo/src/hyracks/job.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/job.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/job.cpp.o.d"
  "/root/repo/src/hyracks/join.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/join.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/join.cpp.o.d"
  "/root/repo/src/hyracks/merge.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/merge.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/merge.cpp.o.d"
  "/root/repo/src/hyracks/operators.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/operators.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/operators.cpp.o.d"
  "/root/repo/src/hyracks/sort.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/sort.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/sort.cpp.o.d"
  "/root/repo/src/hyracks/spill.cpp" "src/CMakeFiles/asterixlite.dir/hyracks/spill.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/hyracks/spill.cpp.o.d"
  "/root/repo/src/sqlpp/lexer.cpp" "src/CMakeFiles/asterixlite.dir/sqlpp/lexer.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/sqlpp/lexer.cpp.o.d"
  "/root/repo/src/sqlpp/parser.cpp" "src/CMakeFiles/asterixlite.dir/sqlpp/parser.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/sqlpp/parser.cpp.o.d"
  "/root/repo/src/sqlpp/translator.cpp" "src/CMakeFiles/asterixlite.dir/sqlpp/translator.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/sqlpp/translator.cpp.o.d"
  "/root/repo/src/storage/bloom.cpp" "src/CMakeFiles/asterixlite.dir/storage/bloom.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/bloom.cpp.o.d"
  "/root/repo/src/storage/btree.cpp" "src/CMakeFiles/asterixlite.dir/storage/btree.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/btree.cpp.o.d"
  "/root/repo/src/storage/buffer_cache.cpp" "src/CMakeFiles/asterixlite.dir/storage/buffer_cache.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/buffer_cache.cpp.o.d"
  "/root/repo/src/storage/linear_hash.cpp" "src/CMakeFiles/asterixlite.dir/storage/linear_hash.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/linear_hash.cpp.o.d"
  "/root/repo/src/storage/lsm_btree.cpp" "src/CMakeFiles/asterixlite.dir/storage/lsm_btree.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/lsm_btree.cpp.o.d"
  "/root/repo/src/storage/lsm_inverted.cpp" "src/CMakeFiles/asterixlite.dir/storage/lsm_inverted.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/lsm_inverted.cpp.o.d"
  "/root/repo/src/storage/lsm_rtree.cpp" "src/CMakeFiles/asterixlite.dir/storage/lsm_rtree.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/lsm_rtree.cpp.o.d"
  "/root/repo/src/storage/rtree.cpp" "src/CMakeFiles/asterixlite.dir/storage/rtree.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/rtree.cpp.o.d"
  "/root/repo/src/storage/spatial_curve.cpp" "src/CMakeFiles/asterixlite.dir/storage/spatial_curve.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/spatial_curve.cpp.o.d"
  "/root/repo/src/storage/spatial_index.cpp" "src/CMakeFiles/asterixlite.dir/storage/spatial_index.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/storage/spatial_index.cpp.o.d"
  "/root/repo/src/txn/lock_manager.cpp" "src/CMakeFiles/asterixlite.dir/txn/lock_manager.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/txn/lock_manager.cpp.o.d"
  "/root/repo/src/txn/log_manager.cpp" "src/CMakeFiles/asterixlite.dir/txn/log_manager.cpp.o" "gcc" "src/CMakeFiles/asterixlite.dir/txn/log_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
