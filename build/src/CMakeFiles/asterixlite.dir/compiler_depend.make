# Empty compiler generated dependencies file for asterixlite.
# This may be replaced when dependencies are built.
