file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_stack_reuse.dir/bench_fig4_stack_reuse.cpp.o"
  "CMakeFiles/bench_fig4_stack_reuse.dir/bench_fig4_stack_reuse.cpp.o.d"
  "bench_fig4_stack_reuse"
  "bench_fig4_stack_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_stack_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
