# Empty compiler generated dependencies file for bench_fig4_stack_reuse.
# This may be replaced when dependencies are built.
