# Empty compiler generated dependencies file for bench_fig3_user_model.
# This may be replaced when dependencies are built.
