# Empty dependencies file for bench_btree_vs_hash.
# This may be replaced when dependencies are built.
