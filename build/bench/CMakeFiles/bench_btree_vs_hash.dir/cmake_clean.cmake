file(REMOVE_RECURSE
  "CMakeFiles/bench_btree_vs_hash.dir/bench_btree_vs_hash.cpp.o"
  "CMakeFiles/bench_btree_vs_hash.dir/bench_btree_vs_hash.cpp.o.d"
  "bench_btree_vs_hash"
  "bench_btree_vs_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btree_vs_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
