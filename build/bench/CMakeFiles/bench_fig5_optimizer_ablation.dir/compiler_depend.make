# Empty compiler generated dependencies file for bench_fig5_optimizer_ablation.
# This may be replaced when dependencies are built.
