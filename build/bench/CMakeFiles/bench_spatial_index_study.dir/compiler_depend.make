# Empty compiler generated dependencies file for bench_spatial_index_study.
# This may be replaced when dependencies are built.
