file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_index_study.dir/bench_spatial_index_study.cpp.o"
  "CMakeFiles/bench_spatial_index_study.dir/bench_spatial_index_study.cpp.o.d"
  "bench_spatial_index_study"
  "bench_spatial_index_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_index_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
