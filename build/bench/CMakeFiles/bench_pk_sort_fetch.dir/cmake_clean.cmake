file(REMOVE_RECURSE
  "CMakeFiles/bench_pk_sort_fetch.dir/bench_pk_sort_fetch.cpp.o"
  "CMakeFiles/bench_pk_sort_fetch.dir/bench_pk_sort_fetch.cpp.o.d"
  "bench_pk_sort_fetch"
  "bench_pk_sort_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pk_sort_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
