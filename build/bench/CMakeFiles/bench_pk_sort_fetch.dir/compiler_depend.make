# Empty compiler generated dependencies file for bench_pk_sort_fetch.
# This may be replaced when dependencies are built.
