# Empty dependencies file for bench_lsm_ingestion.
# This may be replaced when dependencies are built.
