file(REMOVE_RECURSE
  "CMakeFiles/bench_lsm_ingestion.dir/bench_lsm_ingestion.cpp.o"
  "CMakeFiles/bench_lsm_ingestion.dir/bench_lsm_ingestion.cpp.o.d"
  "bench_lsm_ingestion"
  "bench_lsm_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsm_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
