file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_memory_management.dir/bench_fig2_memory_management.cpp.o"
  "CMakeFiles/bench_fig2_memory_management.dir/bench_fig2_memory_management.cpp.o.d"
  "bench_fig2_memory_management"
  "bench_fig2_memory_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_memory_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
