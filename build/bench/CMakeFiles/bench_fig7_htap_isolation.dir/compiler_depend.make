# Empty compiler generated dependencies file for bench_fig7_htap_isolation.
# This may be replaced when dependencies are built.
