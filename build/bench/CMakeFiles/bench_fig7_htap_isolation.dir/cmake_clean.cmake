file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_htap_isolation.dir/bench_fig7_htap_isolation.cpp.o"
  "CMakeFiles/bench_fig7_htap_isolation.dir/bench_fig7_htap_isolation.cpp.o.d"
  "bench_fig7_htap_isolation"
  "bench_fig7_htap_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_htap_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
