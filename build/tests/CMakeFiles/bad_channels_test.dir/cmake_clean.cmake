file(REMOVE_RECURSE
  "CMakeFiles/bad_channels_test.dir/bad_channels_test.cpp.o"
  "CMakeFiles/bad_channels_test.dir/bad_channels_test.cpp.o.d"
  "bad_channels_test"
  "bad_channels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bad_channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
