# Empty compiler generated dependencies file for bad_channels_test.
# This may be replaced when dependencies are built.
