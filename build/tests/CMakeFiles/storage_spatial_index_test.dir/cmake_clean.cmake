file(REMOVE_RECURSE
  "CMakeFiles/storage_spatial_index_test.dir/storage_spatial_index_test.cpp.o"
  "CMakeFiles/storage_spatial_index_test.dir/storage_spatial_index_test.cpp.o.d"
  "storage_spatial_index_test"
  "storage_spatial_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_spatial_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
