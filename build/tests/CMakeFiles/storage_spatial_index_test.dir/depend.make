# Empty dependencies file for storage_spatial_index_test.
# This may be replaced when dependencies are built.
