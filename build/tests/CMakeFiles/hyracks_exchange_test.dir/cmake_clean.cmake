file(REMOVE_RECURSE
  "CMakeFiles/hyracks_exchange_test.dir/hyracks_exchange_test.cpp.o"
  "CMakeFiles/hyracks_exchange_test.dir/hyracks_exchange_test.cpp.o.d"
  "hyracks_exchange_test"
  "hyracks_exchange_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyracks_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
