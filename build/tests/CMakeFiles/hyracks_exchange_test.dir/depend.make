# Empty dependencies file for hyracks_exchange_test.
# This may be replaced when dependencies are built.
