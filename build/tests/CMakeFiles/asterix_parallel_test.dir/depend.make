# Empty dependencies file for asterix_parallel_test.
# This may be replaced when dependencies are built.
