file(REMOVE_RECURSE
  "CMakeFiles/asterix_parallel_test.dir/asterix_parallel_test.cpp.o"
  "CMakeFiles/asterix_parallel_test.dir/asterix_parallel_test.cpp.o.d"
  "asterix_parallel_test"
  "asterix_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
