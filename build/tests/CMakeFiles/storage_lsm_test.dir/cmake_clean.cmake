file(REMOVE_RECURSE
  "CMakeFiles/storage_lsm_test.dir/storage_lsm_test.cpp.o"
  "CMakeFiles/storage_lsm_test.dir/storage_lsm_test.cpp.o.d"
  "storage_lsm_test"
  "storage_lsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_lsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
