# Empty dependencies file for adm_value_test.
# This may be replaced when dependencies are built.
