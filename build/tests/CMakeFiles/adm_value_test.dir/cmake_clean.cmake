file(REMOVE_RECURSE
  "CMakeFiles/adm_value_test.dir/adm_value_test.cpp.o"
  "CMakeFiles/adm_value_test.dir/adm_value_test.cpp.o.d"
  "adm_value_test"
  "adm_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adm_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
