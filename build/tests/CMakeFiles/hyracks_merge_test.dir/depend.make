# Empty dependencies file for hyracks_merge_test.
# This may be replaced when dependencies are built.
