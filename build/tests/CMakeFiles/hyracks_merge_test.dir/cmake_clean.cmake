file(REMOVE_RECURSE
  "CMakeFiles/hyracks_merge_test.dir/hyracks_merge_test.cpp.o"
  "CMakeFiles/hyracks_merge_test.dir/hyracks_merge_test.cpp.o.d"
  "hyracks_merge_test"
  "hyracks_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyracks_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
