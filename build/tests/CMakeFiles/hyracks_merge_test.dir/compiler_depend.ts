# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hyracks_merge_test.
