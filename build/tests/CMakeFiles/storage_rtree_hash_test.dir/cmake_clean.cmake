file(REMOVE_RECURSE
  "CMakeFiles/storage_rtree_hash_test.dir/storage_rtree_hash_test.cpp.o"
  "CMakeFiles/storage_rtree_hash_test.dir/storage_rtree_hash_test.cpp.o.d"
  "storage_rtree_hash_test"
  "storage_rtree_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_rtree_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
