# Empty dependencies file for storage_rtree_hash_test.
# This may be replaced when dependencies are built.
