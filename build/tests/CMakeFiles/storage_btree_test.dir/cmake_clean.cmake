file(REMOVE_RECURSE
  "CMakeFiles/storage_btree_test.dir/storage_btree_test.cpp.o"
  "CMakeFiles/storage_btree_test.dir/storage_btree_test.cpp.o.d"
  "storage_btree_test"
  "storage_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
