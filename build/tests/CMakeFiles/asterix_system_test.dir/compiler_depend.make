# Empty compiler generated dependencies file for asterix_system_test.
# This may be replaced when dependencies are built.
