file(REMOVE_RECURSE
  "CMakeFiles/asterix_system_test.dir/asterix_system_test.cpp.o"
  "CMakeFiles/asterix_system_test.dir/asterix_system_test.cpp.o.d"
  "asterix_system_test"
  "asterix_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
