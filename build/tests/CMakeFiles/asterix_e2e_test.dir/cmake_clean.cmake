file(REMOVE_RECURSE
  "CMakeFiles/asterix_e2e_test.dir/asterix_e2e_test.cpp.o"
  "CMakeFiles/asterix_e2e_test.dir/asterix_e2e_test.cpp.o.d"
  "asterix_e2e_test"
  "asterix_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
