# Empty compiler generated dependencies file for adm_serde_test.
# This may be replaced when dependencies are built.
