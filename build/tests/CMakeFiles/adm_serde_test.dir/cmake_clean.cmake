file(REMOVE_RECURSE
  "CMakeFiles/adm_serde_test.dir/adm_serde_test.cpp.o"
  "CMakeFiles/adm_serde_test.dir/adm_serde_test.cpp.o.d"
  "adm_serde_test"
  "adm_serde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adm_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
