# Empty compiler generated dependencies file for asterix_concurrency_test.
# This may be replaced when dependencies are built.
