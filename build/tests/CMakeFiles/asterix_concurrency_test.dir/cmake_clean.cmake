file(REMOVE_RECURSE
  "CMakeFiles/asterix_concurrency_test.dir/asterix_concurrency_test.cpp.o"
  "CMakeFiles/asterix_concurrency_test.dir/asterix_concurrency_test.cpp.o.d"
  "asterix_concurrency_test"
  "asterix_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
