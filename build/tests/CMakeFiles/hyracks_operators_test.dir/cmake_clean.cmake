file(REMOVE_RECURSE
  "CMakeFiles/hyracks_operators_test.dir/hyracks_operators_test.cpp.o"
  "CMakeFiles/hyracks_operators_test.dir/hyracks_operators_test.cpp.o.d"
  "hyracks_operators_test"
  "hyracks_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyracks_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
