# Empty compiler generated dependencies file for hyracks_operators_test.
# This may be replaced when dependencies are built.
