# Empty dependencies file for example_temporal_study.
# This may be replaced when dependencies are built.
