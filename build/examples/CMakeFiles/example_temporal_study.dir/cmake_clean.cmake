file(REMOVE_RECURSE
  "CMakeFiles/example_temporal_study.dir/temporal_study.cpp.o"
  "CMakeFiles/example_temporal_study.dir/temporal_study.cpp.o.d"
  "example_temporal_study"
  "example_temporal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_temporal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
