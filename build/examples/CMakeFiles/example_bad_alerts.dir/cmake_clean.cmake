file(REMOVE_RECURSE
  "CMakeFiles/example_bad_alerts.dir/bad_alerts.cpp.o"
  "CMakeFiles/example_bad_alerts.dir/bad_alerts.cpp.o.d"
  "example_bad_alerts"
  "example_bad_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bad_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
