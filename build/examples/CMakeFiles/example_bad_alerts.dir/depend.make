# Empty dependencies file for example_bad_alerts.
# This may be replaced when dependencies are built.
