file(REMOVE_RECURSE
  "CMakeFiles/example_htap_shadow.dir/htap_shadow.cpp.o"
  "CMakeFiles/example_htap_shadow.dir/htap_shadow.cpp.o.d"
  "example_htap_shadow"
  "example_htap_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_htap_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
