# Empty compiler generated dependencies file for example_htap_shadow.
# This may be replaced when dependencies are built.
