# Empty compiler generated dependencies file for example_gleambook_social.
# This may be replaced when dependencies are built.
