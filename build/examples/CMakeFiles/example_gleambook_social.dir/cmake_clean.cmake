file(REMOVE_RECURSE
  "CMakeFiles/example_gleambook_social.dir/gleambook_social.cpp.o"
  "CMakeFiles/example_gleambook_social.dir/gleambook_social.cpp.o.d"
  "example_gleambook_social"
  "example_gleambook_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gleambook_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
