#!/usr/bin/env bash
# Runs the tracked benches, merges their axbench-v1 JSON reports into one
# BENCH_BASELINE.json, and gates on the batch-vs-tuple regression: the
# batch-at-a-time scan→select→project pipeline must not be slower than the
# tuple-at-a-time run of the same plan on the same build.
#
#   tools/bench_to_json.sh [--build-dir DIR] [--smoke] [--out FILE]
#   tools/bench_to_json.sh --check [FILE]
#
# Without --check: runs bench_batch_pipeline and bench_fig1_cluster_scaling
# from DIR (default: build-rel), writes the merged report to FILE (default:
# BENCH_BASELINE.json), and fails if batch ran slower than tuple.
#
# With --check: no benches run; validates that the committed FILE (default:
# BENCH_BASELINE.json) parses, carries the axbench-v1 schema, contains the
# tracked entries, and records batch ≥ tuple. CI runs both modes: --check
# keeps the committed baseline honest, a fresh --smoke run keeps the
# current commit honest.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-rel
OUT=BENCH_BASELINE.json
SMOKE=""
CHECK=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --smoke)     SMOKE="--smoke"; shift ;;
    --out)       OUT="$2"; shift 2 ;;
    --check)     CHECK=1; shift
                 if [[ $# -gt 0 && "$1" != --* ]]; then OUT="$1"; shift; fi ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# Pull the "ms" value of the named result out of an axbench-v1 file (the
# writer emits one result object per line, so line-oriented sed suffices).
ms_of() {  # <file> <result name>
  sed -n 's/.*"name":"'"$2"'","tuples":[0-9]*,"ms":\([0-9.]*\).*/\1/p' "$1"
}

gate_batch_vs_tuple() {  # <file with bench_batch_pipeline results>
  local tuple_ms batch_ms
  tuple_ms=$(ms_of "$1" scan_select_project_tuple)
  batch_ms=$(ms_of "$1" scan_select_project_batch)
  if [[ -z "$tuple_ms" || -z "$batch_ms" ]]; then
    echo "FAIL: $1 is missing the scan_select_project_{tuple,batch} entries" >&2
    return 1
  fi
  # Gate at batch <= tuple. The committed full-run baseline shows ~2x; the
  # CI smoke gate only rejects outright regressions (batch slower than
  # tuple), because shared runners are too noisy to pin a larger ratio.
  if ! awk -v b="$batch_ms" -v t="$tuple_ms" 'BEGIN{exit !(b <= t)}'; then
    echo "FAIL: batch pipeline (${batch_ms} ms) slower than tuple (${tuple_ms} ms)" >&2
    return 1
  fi
  echo "OK: batch ${batch_ms} ms <= tuple ${tuple_ms} ms" \
       "($(awk -v b="$batch_ms" -v t="$tuple_ms" 'BEGIN{printf "%.2f", t/b}')x)"
}

if [[ $CHECK -eq 1 ]]; then
  if [[ ! -s "$OUT" ]]; then
    echo "FAIL: $OUT does not exist (regenerate with tools/bench_to_json.sh)" >&2
    exit 1
  fi
  grep -q '"schema":"axbench-v1"' "$OUT" || {
    echo "FAIL: $OUT is not an axbench-v1 document" >&2; exit 1; }
  for entry in scan_select_project_tuple scan_select_project_batch \
               mixed_adapter_batch exchange_1to1_tuple exchange_1to1_batch \
               speedup_agg_p1; do
    grep -q '"name":"'"$entry"'"' "$OUT" || {
      echo "FAIL: $OUT is missing tracked entry '$entry'" >&2; exit 1; }
  done
  gate_batch_vs_tuple "$OUT"
  echo "OK: $OUT validates"
  exit 0
fi

for bin in bench_batch_pipeline bench_fig1_cluster_scaling; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "FAIL: $BUILD_DIR/bench/$bin not built" >&2
    echo "  (configure with: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release)" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BUILD_DIR"/bench/bench_batch_pipeline $SMOKE --json "$tmp/batch.json"
"$BUILD_DIR"/bench/bench_fig1_cluster_scaling $SMOKE --json "$tmp/fig1.json"

gate_batch_vs_tuple "$tmp/batch.json"

# Merge: one top-level axbench-v1 document with each bench's report under
# "benches". The per-bench files are single JSON objects from
# bench/bench_json.h, so plain concatenation is safe.
{
  printf '{"schema":"axbench-v1","generator":"tools/bench_to_json.sh","mode":"%s","benches":[\n' \
         "${SMOKE:+smoke}${SMOKE:-full}"
  cat "$tmp/batch.json"
  printf ',\n'
  cat "$tmp/fig1.json"
  printf ']}\n'
} > "$OUT"

echo "OK: wrote $OUT"
