#!/usr/bin/env bash
# Runs the tracked benches, merges their axbench-v1 JSON reports into one
# BENCH_BASELINE.json, and gates five regressions: the batch-at-a-time
# scan→select→project pipeline must not be slower than tuple-at-a-time,
# the Basic-policy feed must retain >= 80% of direct-upsert ingest
# throughput, the columnar scan must not be slower than the row scan
# on the projection-heavy query, async LSM maintenance must not have
# worse p99 write latency than inline (sync) maintenance, and governed
# (admission-controlled) query p99 must not be worse than ungoverned under
# the oversubscribed workload — with admission overload shedding at least
# one query — all on the same build.
#
#   tools/bench_to_json.sh [--build-dir DIR] [--smoke] [--out FILE]
#   tools/bench_to_json.sh --check [FILE]
#
# Without --check: runs bench_batch_pipeline, bench_fig1_cluster_scaling,
# bench_feed_ingestion, bench_columnar_scan, bench_lsm_ingestion and
# bench_admission from DIR (default: build-rel), writes the merged report
# to FILE (default: BENCH_BASELINE.json), and fails if any fresh-run gate
# trips.
#
# With --check: no benches run; validates that the committed FILE (default:
# BENCH_BASELINE.json) parses, carries the axbench-v1 schema, contains the
# tracked entries, and records the gates (batch ≥ tuple, feed_basic ≥ 80%
# of direct upsert, columnar scan ≥ 1.5x over row scan, async p99 write
# latency ≤ sync, governed p99 ≤ ungoverned p99 — the committed baseline
# is a quiet full run, so it must hold the ISSUE 7/9 ratios that CI smoke
# runs on shared runners cannot pin).
# CI runs both modes: --check keeps the committed baseline honest, a fresh
# --smoke run keeps the current commit honest.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-rel
OUT=BENCH_BASELINE.json
SMOKE=""
CHECK=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --smoke)     SMOKE="--smoke"; shift ;;
    --out)       OUT="$2"; shift 2 ;;
    --check)     CHECK=1; shift
                 if [[ $# -gt 0 && "$1" != --* ]]; then OUT="$1"; shift; fi ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# Pull the "ms" value of the named result out of an axbench-v1 file (the
# writer emits one result object per line, so line-oriented sed suffices).
ms_of() {  # <file> <result name>
  sed -n 's/.*"name":"'"$2"'","tuples":[0-9]*,"ms":\([0-9.]*\).*/\1/p' "$1"
}

# Same, but the "tuples" field (the admission bench reports query counts).
tuples_of() {  # <file> <result name>
  sed -n 's/.*"name":"'"$2"'","tuples":\([0-9]*\),"ms":.*/\1/p' "$1"
}

gate_feed_vs_direct() {  # <file with bench_feed_ingestion results>
  local direct_ms basic_ms
  direct_ms=$(ms_of "$1" direct_upsert)
  basic_ms=$(ms_of "$1" feed_basic)
  if [[ -z "$direct_ms" || -z "$basic_ms" ]]; then
    echo "FAIL: $1 is missing the direct_upsert/feed_basic entries" >&2
    return 1
  fi
  # Gate at feed_basic >= 80% of direct-upsert throughput: the pipeline's
  # queues, record codec and progress tracking may cost at most 20%
  # against raw storage ingest (same records, same WAL'd upsert path).
  if ! awk -v b="$basic_ms" -v d="$direct_ms" 'BEGIN{exit !(d / b >= 0.8)}'; then
    echo "FAIL: Basic-policy feed (${basic_ms} ms) retains <80% of direct upsert (${direct_ms} ms)" >&2
    return 1
  fi
  echo "OK: feed_basic ${basic_ms} ms vs direct ${direct_ms} ms" \
       "($(awk -v b="$basic_ms" -v d="$direct_ms" 'BEGIN{printf "%.0f%%", 100*d/b}') retained)"
}

gate_batch_vs_tuple() {  # <file with bench_batch_pipeline results>
  local tuple_ms batch_ms
  tuple_ms=$(ms_of "$1" scan_select_project_tuple)
  batch_ms=$(ms_of "$1" scan_select_project_batch)
  if [[ -z "$tuple_ms" || -z "$batch_ms" ]]; then
    echo "FAIL: $1 is missing the scan_select_project_{tuple,batch} entries" >&2
    return 1
  fi
  # Gate at batch <= tuple. The committed full-run baseline shows ~2x; the
  # CI smoke gate only rejects outright regressions (batch slower than
  # tuple), because shared runners are too noisy to pin a larger ratio.
  if ! awk -v b="$batch_ms" -v t="$tuple_ms" 'BEGIN{exit !(b <= t)}'; then
    echo "FAIL: batch pipeline (${batch_ms} ms) slower than tuple (${tuple_ms} ms)" >&2
    return 1
  fi
  echo "OK: batch ${batch_ms} ms <= tuple ${tuple_ms} ms" \
       "($(awk -v b="$batch_ms" -v t="$tuple_ms" 'BEGIN{printf "%.2f", t/b}')x)"
}

gate_columnar_vs_row() {  # <file with bench_columnar_scan results> <min ratio>
  local row_ms col_ms min_ratio="$2"
  row_ms=$(ms_of "$1" columnar_scan_row)
  col_ms=$(ms_of "$1" columnar_scan_col)
  if [[ -z "$row_ms" || -z "$col_ms" ]]; then
    echo "FAIL: $1 is missing the columnar_scan_{row,col} entries" >&2
    return 1
  fi
  if ! awk -v r="$row_ms" -v c="$col_ms" -v m="$min_ratio" \
       'BEGIN{exit !(r / c >= m)}'; then
    echo "FAIL: columnar scan (${col_ms} ms) is <${min_ratio}x over row scan (${row_ms} ms)" >&2
    return 1
  fi
  echo "OK: columnar scan ${col_ms} ms vs row ${row_ms} ms" \
       "($(awk -v r="$row_ms" -v c="$col_ms" 'BEGIN{printf "%.2f", r/c}')x," \
       "gate ${min_ratio}x)"
}

gate_async_vs_sync() {  # <file with bench_lsm_ingestion results>
  local sync_p99 async_p99
  sync_p99=$(ms_of "$1" lsm_sync_p99)
  async_p99=$(ms_of "$1" lsm_async_p99)
  if [[ -z "$sync_p99" || -z "$async_p99" ]]; then
    echo "FAIL: $1 is missing the lsm_{sync,async}_p99 entries" >&2
    return 1
  fi
  # Gate at async p99 <= sync p99: background maintenance must take flush
  # work off the write path, so the tail of per-op Put latency cannot be
  # worse than paying for flushes inline. (The committed full-run baseline
  # shows a much larger gap; shared CI runners only gate the inversion.)
  if ! awk -v a="$async_p99" -v s="$sync_p99" 'BEGIN{exit !(a <= s)}'; then
    echo "FAIL: async p99 write latency (${async_p99} ms) worse than sync (${sync_p99} ms)" >&2
    return 1
  fi
  echo "OK: async p99 ${async_p99} ms <= sync p99 ${sync_p99} ms" \
       "($(awk -v a="$async_p99" -v s="$sync_p99" 'BEGIN{if (a > 0) printf "%.1f", s/a; else printf "inf"}')x lower)"
}

gate_governed_vs_ungoverned() {  # <file with bench_admission results> <max ratio>
  local un_p99 gov_p99 rejects max_ratio="$2"
  un_p99=$(ms_of "$1" admission_ungoverned_p99)
  gov_p99=$(ms_of "$1" admission_governed_p99)
  rejects=$(tuples_of "$1" admission_overload_rejects)
  if [[ -z "$un_p99" || -z "$gov_p99" || -z "$rejects" ]]; then
    echo "FAIL: $1 is missing the admission_{ungoverned,governed}_p99 /" \
         "admission_overload_rejects entries" >&2
    return 1
  fi
  # Gate at governed p99 <= ungoverned p99 (the ISSUE 9 acceptance ratio,
  # held strictly by the committed full-run baseline; fresh smoke runs on
  # shared runners get a little noise headroom via max_ratio). Per-query
  # latency includes admission-queue time, so this only passes if bounded
  # concurrency really beats time-slicing the whole burst at once.
  if ! awk -v g="$gov_p99" -v u="$un_p99" -v m="$max_ratio" \
       'BEGIN{exit !(g <= u * m)}'; then
    echo "FAIL: governed p99 (${gov_p99} ms) worse than ungoverned p99" \
         "(${un_p99} ms) x ${max_ratio}" >&2
    return 1
  fi
  # Overload shedding must have fired: a burst into 2 slots + 2 queue
  # spots has to reject queries, or admission control is not engaging.
  if [[ "$rejects" -lt 1 ]]; then
    echo "FAIL: admission overload section shed no queries" >&2
    return 1
  fi
  echo "OK: governed p99 ${gov_p99} ms vs ungoverned ${un_p99} ms" \
       "($(awk -v g="$gov_p99" -v u="$un_p99" 'BEGIN{printf "%.2f", u/g}')x," \
       "gate ${max_ratio}x), overload shed ${rejects}"
}

if [[ $CHECK -eq 1 ]]; then
  if [[ ! -s "$OUT" ]]; then
    echo "FAIL: $OUT does not exist (regenerate with tools/bench_to_json.sh)" >&2
    exit 1
  fi
  grep -q '"schema":"axbench-v1"' "$OUT" || {
    echo "FAIL: $OUT is not an axbench-v1 document" >&2; exit 1; }
  for entry in scan_select_project_tuple scan_select_project_batch \
               mixed_adapter_batch exchange_1to1_tuple exchange_1to1_batch \
               speedup_agg_p1 direct_upsert feed_basic feed_spill \
               feed_discard feed_throttle feed_stall_recovery \
               columnar_scan_row columnar_scan_col \
               lsm_sync_ingest lsm_async_ingest lsm_sync_p99 lsm_async_p99 \
               admission_ungoverned_total admission_governed_total \
               admission_ungoverned_p99 admission_governed_p99 \
               admission_overload_served admission_overload_rejects; do
    grep -q '"name":"'"$entry"'"' "$OUT" || {
      echo "FAIL: $OUT is missing tracked entry '$entry'" >&2; exit 1; }
  done
  gate_batch_vs_tuple "$OUT"
  gate_feed_vs_direct "$OUT"
  # The committed baseline comes from a quiet full run: hold the ISSUE 7
  # acceptance ratio here (fresh smoke runs below gate only col <= row).
  gate_columnar_vs_row "$OUT" 1.5
  gate_async_vs_sync "$OUT"
  gate_governed_vs_ungoverned "$OUT" 1.0
  echo "OK: $OUT validates"
  exit 0
fi

for bin in bench_batch_pipeline bench_fig1_cluster_scaling bench_feed_ingestion \
           bench_columnar_scan bench_lsm_ingestion bench_admission; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "FAIL: $BUILD_DIR/bench/$bin not built" >&2
    echo "  (configure with: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release)" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The benches run back-to-back and several are write-heavy; background
# writeback of one bench's dirty pages perturbs the next bench's
# fsync-sensitive sections. Settle the page cache between benches so each
# measures its own I/O, not its predecessor's.
settle() { sync; sleep 1; }

"$BUILD_DIR"/bench/bench_batch_pipeline $SMOKE --json "$tmp/batch.json"
settle
"$BUILD_DIR"/bench/bench_fig1_cluster_scaling $SMOKE --json "$tmp/fig1.json"
settle
"$BUILD_DIR"/bench/bench_feed_ingestion $SMOKE --json "$tmp/feeds.json"
settle
"$BUILD_DIR"/bench/bench_columnar_scan $SMOKE --json "$tmp/colscan.json"
settle
"$BUILD_DIR"/bench/bench_lsm_ingestion $SMOKE --json "$tmp/lsm.json"
settle
"$BUILD_DIR"/bench/bench_admission $SMOKE --json "$tmp/admission.json"

gate_batch_vs_tuple "$tmp/batch.json"
gate_feed_vs_direct "$tmp/feeds.json"
gate_columnar_vs_row "$tmp/colscan.json" 1.0
gate_async_vs_sync "$tmp/lsm.json"
gate_governed_vs_ungoverned "$tmp/admission.json" 1.25

# Merge: one top-level axbench-v1 document with each bench's report under
# "benches". The per-bench files are single JSON objects from
# bench/bench_json.h, so plain concatenation is safe.
{
  printf '{"schema":"axbench-v1","generator":"tools/bench_to_json.sh","mode":"%s","benches":[\n' \
         "${SMOKE:+smoke}${SMOKE:-full}"
  cat "$tmp/batch.json"
  printf ',\n'
  cat "$tmp/fig1.json"
  printf ',\n'
  cat "$tmp/feeds.json"
  printf ',\n'
  cat "$tmp/colscan.json"
  printf ',\n'
  cat "$tmp/lsm.json"
  printf ',\n'
  cat "$tmp/admission.json"
  printf ']}\n'
} > "$OUT"

echo "OK: wrote $OUT"
