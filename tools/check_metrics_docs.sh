#!/usr/bin/env bash
# Keeps docs/METRICS.md honest: every metric name registered in src/ must
# appear there, and every metric name documented there must still exist in
# the code. Run from anywhere; CI runs it on every push (see ci.yml).
#
# Registration sites look like
#     metrics::Registry::Global().GetCounter("storage.bloom.probes");
# possibly with the string literal wrapped onto the next line, so the grep
# runs in null-data mode (-z) to match across newlines.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/METRICS.md
if [[ ! -f "$DOC" ]]; then
  echo "FAIL: $DOC does not exist" >&2
  exit 1
fi

# Metric names registered in code: the first string literal after a
# GetCounter( / GetHistogram( call.
registered=$(grep -rhozE 'Get(Counter|Histogram)\(\s*"[^"]+"' src \
  | tr '\0' '\n' \
  | grep -oE '"[^"]+"' | tr -d '"' | sort -u)

# Metric names documented: backticked dotted identifiers with two or more
# segments — layer.component.metric, or layer.metric for subsystems like
# feeds.* whose scope carries the instance. Keep other backticked lowercase
# dotted tokens (file names etc.) out of the doc or they false-positive.
documented=$(grep -oE '`[a-z0-9_]+(\.[a-z0-9_]+)+`' "$DOC" \
  | tr -d '`' | sort -u)

status=0

undocumented=$(comm -23 <(echo "$registered") <(echo "$documented"))
if [[ -n "$undocumented" ]]; then
  echo "FAIL: metrics registered in src/ but missing from $DOC:" >&2
  echo "$undocumented" | sed 's/^/  /' >&2
  status=1
fi

stale=$(comm -13 <(echo "$registered") <(echo "$documented"))
if [[ -n "$stale" ]]; then
  echo "FAIL: metrics documented in $DOC but not registered anywhere in src/:" >&2
  echo "$stale" | sed 's/^/  /' >&2
  status=1
fi

count=$(echo "$registered" | grep -c . || true)
if [[ $status -eq 0 ]]; then
  echo "OK: all $count registered metrics documented in $DOC, none stale"
fi
exit $status
