#!/usr/bin/env bash
# Markdown link checker for the repo's documentation (CI: the docs job).
# Pure bash/grep/awk — no network, no package installs. For every inline
# markdown link in the checked files:
#
#   - external links (http/https/mailto) are skipped — CI must not depend
#     on the public internet;
#   - relative links must resolve to an existing file or directory
#     (relative to the file containing the link);
#   - fragment links into a markdown file (foo.md#anchor, or a bare
#     #anchor into the same file) must match a heading in the target,
#     using GitHub's slugification (lowercase, punctuation stripped,
#     spaces to hyphens).
#
#   tools/check_docs_links.sh [files...]   # default: README.md DESIGN.md
#                                          #   EXPERIMENTS.md docs/*.md
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=("$@")
if [[ ${#FILES[@]} -eq 0 ]]; then
  FILES=(README.md DESIGN.md EXPERIMENTS.md docs/*.md)
fi

# GitHub heading slug: lowercase; drop everything but alphanumerics,
# spaces and hyphens; spaces become hyphens (consecutive spaces become
# consecutive hyphens — GitHub does not collapse them).
slugs_of() {  # <markdown file> -> one slug per heading line
  grep -E '^#{1,6} ' "$1" | sed -E 's/^#{1,6} //' | \
    tr '[:upper:]' '[:lower:]' | sed -E 's/[^a-z0-9 -]//g; s/ /-/g'
}

fail=0
for file in "${FILES[@]}"; do
  [[ -f "$file" ]] || { echo "FAIL: checked file $file does not exist" >&2
                        fail=1; continue; }
  dir=$(dirname "$file")
  # Inline links/images: [text](target) — one target per output line.
  # "(...)" inside the target (rare) is not supported; none of our docs
  # use it.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    frag=""
    [[ "$target" == *#* ]] && frag="${target#*#}"
    if [[ -n "$path" ]]; then
      resolved="$dir/$path"
      if [[ ! -e "$resolved" ]]; then
        echo "FAIL: $file links to missing path '$target'" >&2
        fail=1
        continue
      fi
    else
      resolved="$file"   # bare #anchor: same-file link
    fi
    if [[ -n "$frag" && "$resolved" == *.md && -f "$resolved" ]]; then
      if ! slugs_of "$resolved" | grep -qxF "$frag"; then
        echo "FAIL: $file links to '$target' but $resolved has no heading '#$frag'" >&2
        fail=1
      fi
    fi
  done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$file" | sed -E 's/^\[[^]]*\]\(//; s/\)$//')
done

if [[ $fail -ne 0 ]]; then
  echo "docs link check FAILED" >&2
  exit 1
fi
echo "OK: docs links check passed (${#FILES[@]} files)"
