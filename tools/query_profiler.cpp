// query_profiler: run a SQL++ statement against a scratch asterix-lite
// instance with per-operator profiling on, print the profiled plan tree
// and the metrics the statement moved, and (optionally) export a Chrome
// trace_event JSON — load it in chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//   query_profiler [--partitions N] [--trace out.json] [--users N]
//                  [--messages N] [statement ...]
//
// Statements run in order against a freshly loaded Gleambook social-network
// dataset (GleambookUsers / GleambookMessages); the LAST statement is the
// one profiled and reported. With no statements, a demo multi-partition
// join + group-by runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "asterix/gleambook.h"
#include "asterix/instance.h"
#include "common/metrics.h"

namespace {

const char* kDemoQuery =
    "SELECT u.name AS name, COUNT(m.messageId) AS msgs "
    "FROM GleambookUsers u JOIN GleambookMessages m ON m.authorId = u.id "
    "GROUP BY u.name AS name";

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: query_profiler [--partitions N] [--trace out.json]\n"
               "                      [--users N] [--messages N] "
               "[statement ...]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  size_t partitions = 2;
  int64_t users = 500, messages = 2000;
  std::string trace_path;
  std::vector<std::string> statements;
  for (int i = 1; i < argc; i++) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage();
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--partitions") == 0) {
      partitions = static_cast<size_t>(std::atoll(need("--partitions")));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = need("--trace");
    } else if (std::strcmp(argv[i], "--users") == 0) {
      users = std::atoll(need("--users"));
    } else if (std::strcmp(argv[i], "--messages") == 0) {
      messages = std::atoll(need("--messages"));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
    } else {
      statements.push_back(argv[i]);
    }
  }
  if (statements.empty()) statements.push_back(kDemoQuery);

  std::string dir =
      std::filesystem::temp_directory_path() / "ax_query_profiler";
  std::filesystem::remove_all(dir);
  asterix::InstanceOptions options;
  options.base_dir = dir;
  options.num_partitions = partitions;
  options.profile_queries = true;
  auto instance_or = asterix::Instance::Open(options);
  if (!instance_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 instance_or.status().ToString().c_str());
    return 1;
  }
  auto instance = std::move(instance_or).value();

  asterix::gleambook::GeneratorOptions gen_opts;
  gen_opts.num_users = users;
  gen_opts.num_messages = messages;
  asterix::gleambook::Generator gen(gen_opts);
  if (!instance->ExecuteScript(asterix::gleambook::Generator::Ddl(false))
           .ok()) {
    std::fprintf(stderr, "demo DDL failed\n");
    return 1;
  }
  for (const auto& u : gen.Users()) {
    if (!instance->UpsertValue("GleambookUsers", u).ok()) return 1;
  }
  for (const auto& m : gen.Messages()) {
    if (!instance->UpsertValue("GleambookMessages", m).ok()) return 1;
  }
  std::printf("loaded %lld users, %lld messages across %zu partitions\n\n",
              static_cast<long long>(users), static_cast<long long>(messages),
              partitions);

  // Warm-up statements (all but the last).
  for (size_t i = 0; i + 1 < statements.size(); i++) {
    auto r = instance->Execute(statements[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "FAILED: %s\n  %s\n", statements[i].c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
  }

  // The profiled statement, bracketed by a metrics snapshot.
  auto before = asterix::metrics::Registry::Global().Snapshot();
  auto result_or = instance->Execute(statements.back());
  if (!result_or.ok()) {
    std::fprintf(stderr, "FAILED: %s\n  %s\n", statements.back().c_str(),
                 result_or.status().ToString().c_str());
    return 1;
  }
  auto result = std::move(result_or).value();
  auto delta =
      asterix::metrics::Registry::Global().Snapshot().DeltaSince(before);

  std::printf("query: %s\n", statements.back().c_str());
  std::printf("rows: %zu   elapsed: %.2f ms\n\n", result.rows.size(),
              result.elapsed_ms);
  if (!result.profiled_plan.empty()) {
    std::printf("profiled plan:\n%s\n", result.profiled_plan.c_str());
  } else {
    std::printf("(no profile — statement was not a query)\n\n");
  }
  std::printf("metrics moved by this statement:\n%s",
              delta.ToString().c_str());

  if (!trace_path.empty()) {
    if (result.profile == nullptr) {
      std::fprintf(stderr, "no profile to export\n");
      return 1;
    }
    std::string json = result.profile->ToChromeTrace();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr || std::fwrite(json.data(), 1, json.size(), f) !=
                            json.size()) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      if (f) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::printf("\ntrace written to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }

  instance.reset();
  std::filesystem::remove_all(dir);
  return 0;
}
