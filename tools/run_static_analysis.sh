#!/usr/bin/env bash
# Static-analysis driver. Two modes:
#
#   tools/run_static_analysis.sh [build-dir]
#       clang-tidy (config in .clang-tidy) over every source file under
#       src/; fails on findings. The build dir must have a
#       compile_commands.json (the top-level CMakeLists sets
#       CMAKE_EXPORT_COMPILE_COMMANDS, so any configured tree works).
#       Default build dir: build-tidy (configured automatically if missing).
#
#   tools/run_static_analysis.sh --axlint [--write-baseline|--fix|args...]
#       the project-specific analyzer (tools/axlint: layering, lock-order,
#       must-check, determinism, metrics-sync, plus the interprocedural
#       blocking-under-lock, xfn-lock-order, cancellation-coverage and
#       raii-leak — DESIGN.md §4e). Builds the axlint binary if needed and
#       runs it against the committed baseline; extra arguments pass
#       through. Useful ones:
#         --write-baseline / --fix / --check NAME / --list-checks
#         --cache-dir=DIR     persist content-hashed function summaries;
#                             warm runs re-analyze only files whose include
#                             closure changed (CI caches .axlint-cache)
#         --since=REV         pre-commit mode: report only findings in
#                             files changed since REV (git diff) plus, when
#                             the cache is warm, their reverse include
#                             closure; hard findings always survive
#         --format=json|sarif machine-readable output (SARIF feeds the CI
#                             PR-annotation upload)
#       e.g.  tools/run_static_analysis.sh --axlint \
#               --cache-dir=.axlint-cache --since=HEAD
#
# Exit codes: 0 = clean, 1 = findings, 2 = environment problems.
# If clang-tidy is not installed the tidy mode SKIPS with exit 0 and a loud
# warning — local boxes may only carry GCC; CI always has clang-tidy and is
# the enforcement point. axlint has no external dependencies and never
# skips.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "--axlint" ]; then
  shift
  axlint_bin="$repo_root/build/tools/axlint"
  if [ ! -x "$axlint_bin" ]; then
    echo "-- building axlint"
    cmake -B "$repo_root/build" -S "$repo_root" > /dev/null || exit 2
    cmake --build "$repo_root/build" --target axlint -j \
      > /dev/null || exit 2
  fi
  exec "$axlint_bin" --root "$repo_root" "$@"
fi

build_dir="${1:-"$repo_root/build-tidy"}"

CLANG_TIDY="${CLANG_TIDY:-}"
if [ -z "$CLANG_TIDY" ]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      CLANG_TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANG_TIDY" ]; then
  echo "WARNING: clang-tidy not found; skipping static analysis." >&2
  echo "         Install clang-tidy (or set CLANG_TIDY) to run it locally;" >&2
  echo "         CI enforces this check." >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "-- configuring $build_dir for compile_commands.json"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    > /dev/null || exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "ERROR: $build_dir/compile_commands.json still missing" >&2
  exit 2
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)
echo "-- $CLANG_TIDY over ${#sources[@]} files (config: .clang-tidy)"

jobs="$(nproc 2> /dev/null || echo 2)"
status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -I{} "$CLANG_TIDY" -p "$build_dir" --quiet {} \
    > /tmp/clang_tidy_out.$$ 2> /dev/null || status=$?

# clang-tidy exits non-zero iff it emitted errors (WarningsAsErrors);
# plain warnings also count as findings for this driver.
if grep -qE 'warning:|error:' /tmp/clang_tidy_out.$$; then
  echo "-- clang-tidy findings:"
  cat /tmp/clang_tidy_out.$$
  rm -f /tmp/clang_tidy_out.$$
  echo "FAIL: fix the findings above (or justify suppressions inline)." >&2
  exit 1
fi
rm -f /tmp/clang_tidy_out.$$
if [ "$status" -ne 0 ]; then
  echo "ERROR: $CLANG_TIDY exited $status without reporting findings" >&2
  echo "       (bad binary path or crash?)" >&2
  exit 2
fi
echo "-- clang-tidy clean"
exit 0
