// axlint checks: the project invariants evaluated over the whole-project
// model produced by the scanner — the five v1 checks (layering, lock-order,
// must-check, determinism, metrics-sync) plus the four interprocedural v2
// checks built on the call graph (blocking-under-lock, xfn-lock-order,
// cancellation-coverage, raii-leak). New checks register themselves in the
// table returned by Checks() — see DESIGN.md §4e "Adding a check".
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "axlint/scanner.h"

namespace axlint {

class CallGraph;

struct Finding {
  Finding() = default;
  Finding(std::string c, std::string p, int l, std::string m, bool h = false)
      : check(std::move(c)),
        path(std::move(p)),
        line(l),
        message(std::move(m)),
        hard(h) {}

  std::string check;
  std::string path;   // repo-relative
  int line = 0;
  std::string message;
  // Hard findings (include cycles) fail the run even when baselined.
  bool hard = false;
  // Mechanical fix: insert `fix_insert` at byte `fix_offset` of `path`.
  size_t fix_offset = static_cast<size_t>(-1);
  std::string fix_insert;

  bool Fixable() const { return fix_offset != static_cast<size_t>(-1); }
};

/// Whole-project context handed to every check.
struct Project {
  std::string root;
  std::vector<FileModel> files;

  // Lock ranks parsed from the ```axlint-lock-ranks block in DESIGN.md §4a.
  // Lower rank = acquired earlier (outer); qualified names exclude
  // namespaces, e.g. "BufferCache::Shard::mu".
  std::map<std::string, int> lock_ranks;

  // Metric names documented in docs/METRICS.md -> first line seen.
  std::map<std::string, int> doc_metrics;

  // Function names declared (anywhere) returning Status / Result<T>.
  // Names also declared with some other return type land in `mixed_names`
  // and are excluded from must-check to avoid overload false positives.
  std::set<std::string> status_names;
  std::set<std::string> result_names;
  std::set<std::string> mixed_names;

  // AX_REQUIRES sets from declarations, keyed by Class::Method.
  std::map<std::string, std::vector<std::string>> requires_by_qualified;

  // Project call graph with fixed-point summaries, built by the driver
  // after scanning. The v2 checks require it; never null when they run.
  const CallGraph* graph = nullptr;
};

using CheckFn = void (*)(const Project&, std::vector<Finding>*);

struct CheckInfo {
  const char* name;
  const char* summary;
  CheckFn fn;
};

const std::vector<CheckInfo>& Checks();

}  // namespace axlint
