// axlint lexer: a minimal C++ tokenizer sufficient for declaration- and
// include-level scanning. Deliberately NOT a real C++ lexer — no libclang,
// no preprocessing — so it builds and runs everywhere tier-1 runs (see
// DESIGN.md §4e). It understands comments (and extracts `axlint:` control
// comments), string/char literals (incl. raw strings), preprocessor lines
// (capturing #include targets), identifiers, numbers, and punctuation.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace axlint {

enum class Tok : uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (value unused)
  kString,  // string literal; text holds the unquoted contents
  kChar,    // character literal
  kPunct,   // single punctuation character in text[0]
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;        // 1-based
  size_t offset = 0;   // byte offset of the token start in the file
};

struct IncludeLine {
  int line = 0;
  std::string path;    // as written between quotes; <...> includes excluded
  bool angled = false; // true for <...> (recorded but not layering-checked)
};

/// One `// axlint: allow(check-a,check-b)` control comment. Applies to the
/// line it sits on; a comment alone on a line also covers the line where
/// code resumes (a multi-line // justification counts as one block).
struct Suppression {
  int line = 0;
  std::set<std::string> checks;
};

struct LexedFile {
  std::string path;            // as given to Lex()
  std::string contents;
  std::vector<Token> tokens;
  std::vector<IncludeLine> includes;
  std::vector<Suppression> suppressions;

  /// True if findings of `check` are suppressed on `line`.
  bool IsSuppressed(const std::string& check, int line) const;
};

/// Tokenize `contents`. Never fails: unrecognized bytes are skipped.
LexedFile Lex(std::string path, std::string contents);

}  // namespace axlint
