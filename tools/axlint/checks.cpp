#include "axlint/checks.h"

#include <algorithm>
#include <functional>

#include "axlint/callgraph.h"

namespace axlint {

namespace {

// ---------------------------------------------------------------------------
// layering: the module include DAG. Edges point at what a module MAY include.
// common → {adm} → {txn, storage} → hyracks → algebricks → sqlpp → aql →
// asterix; feeds sits beside the language layers: it may use the runtime
// stack but never the compilers, and resource (workload management) sits
// just above common so both hyracks operators and the asterix facade can
// thread QueryContext/MemoryGrant without cycles. Violations are
// per-include findings; a cycle in the *actual* include graph is a hard
// error that no baseline or suppression can hide.
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {}},
      {"adm", {"common"}},
      {"resource", {"common"}},
      {"txn", {"common", "adm"}},
      {"storage", {"common", "adm"}},
      {"hyracks", {"common", "adm", "resource", "txn", "storage"}},
      {"algebricks",
       {"common", "adm", "resource", "txn", "storage", "hyracks"}},
      {"sqlpp",
       {"common", "adm", "resource", "txn", "storage", "hyracks",
        "algebricks"}},
      {"aql",
       {"common", "adm", "resource", "txn", "storage", "hyracks", "algebricks",
        "sqlpp"}},
      {"feeds", {"common", "adm", "txn", "storage", "hyracks"}},
      {"asterix",
       {"common", "adm", "resource", "txn", "storage", "hyracks", "algebricks",
        "sqlpp", "aql", "feeds"}},
  };
  return kAllowed;
}

std::string IncludeModule(const std::string& inc_path) {
  size_t slash = inc_path.find('/');
  if (slash == std::string::npos) return "";
  std::string head = inc_path.substr(0, slash);
  return AllowedDeps().count(head) ? head : "";
}

void CheckLayering(const Project& p, std::vector<Finding>* out) {
  // module -> included module -> one example (file, line) for reporting.
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      edges;
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;  // tests/bench may include anything
    auto allowed_it = AllowedDeps().find(f.module);
    const std::set<std::string>& allowed = allowed_it->second;
    for (const IncludeLine& inc : f.lexed.includes) {
      if (inc.angled) continue;
      std::string target = IncludeModule(inc.path);
      if (target.empty() || target == f.module) continue;
      if (!edges[f.module].count(target)) {
        edges[f.module][target] = {f.path, inc.line};
      }
      if (allowed.count(target)) continue;
      if (f.lexed.IsSuppressed("layering", inc.line)) continue;
      out->push_back({"layering", f.path, inc.line,
                      "module '" + f.module + "' must not include '" +
                          inc.path + "' (layer '" + target +
                          "' is not below '" + f.module + "' in the DAG)"});
    }
  }
  // Cycle detection over the actual include graph (DFS, deterministic order).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& m) {
    color[m] = 1;
    stack.push_back(m);
    auto it = edges.find(m);
    if (it != edges.end()) {
      for (const auto& [to, example] : it->second) {
        if (color[to] == 2) continue;
        if (color[to] == 1) {
          // Reconstruct the cycle m -> ... -> to -> m.
          std::string desc;
          auto at = std::find(stack.begin(), stack.end(), to);
          for (auto s = at; s != stack.end(); ++s) desc += *s + " -> ";
          desc += to;
          out->push_back({"layering", example.first, example.second,
                          "include cycle between modules: " + desc +
                              " (hard error; cycles cannot be baselined)",
                          /*hard=*/true});
          continue;
        }
        dfs(to);
      }
    }
    stack.pop_back();
    color[m] = 2;
  };
  for (const auto& [m, _] : edges) {
    if (color[m] == 0) dfs(m);
  }
}

// ---------------------------------------------------------------------------
// lock-order: every std::mutex/shared_mutex member must (a) appear in the
// DESIGN.md §4a rank table and (b) have at least one AX_GUARDED_BY neighbor
// in its class. Function bodies are then simulated: acquiring a mutex whose
// rank is LOWER than one already held inverts the hierarchy.
// ---------------------------------------------------------------------------

/// Resolve a mutex expression seen in `class_ctx` against the rank table:
/// exact Class::mu first, then outer classes, then a unique suffix match.
int ResolveRank(const Project& p, const std::string& class_ctx,
                const std::string& expr, std::string* resolved) {
  std::string ctx = class_ctx;
  while (true) {
    std::string key = ctx.empty() ? expr : ctx + "::" + expr;
    auto it = p.lock_ranks.find(key);
    if (it != p.lock_ranks.end()) {
      *resolved = key;
      return it->second;
    }
    if (ctx.empty()) break;
    size_t cut = ctx.rfind("::");
    ctx = (cut == std::string::npos) ? "" : ctx.substr(0, cut);
  }
  const std::map<std::string, int>& ranks = p.lock_ranks;
  std::string match;
  int rank = -1;
  for (const auto& [name, r] : ranks) {
    if (name.size() > expr.size() + 2 &&
        name.compare(name.size() - expr.size() - 2, 2, "::") == 0 &&
        name.compare(name.size() - expr.size(), expr.size(), expr) == 0) {
      if (!match.empty()) return -1;  // ambiguous
      match = name;
      rank = r;
    }
  }
  if (!match.empty()) {
    *resolved = match;
    return rank;
  }
  return -1;
}

void CheckLockOrder(const Project& p, std::vector<Finding>* out) {
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    // (a)+(b): mutex-member hygiene, headers only (where members live).
    for (const ClassModel& c : f.classes) {
      for (const MutexMember& m : c.mutexes) {
        if (f.lexed.IsSuppressed("lock-order", m.line)) continue;
        if (!p.lock_ranks.count(m.qualified)) {
          out->push_back({"lock-order", f.path, m.line,
                          "mutex '" + m.qualified +
                              "' has no entry in the axlint-lock-ranks table "
                              "in DESIGN.md §4a"});
        }
        if (!c.guarded_by_args.count(m.name)) {
          out->push_back({"lock-order", f.path, m.line,
                          "mutex '" + m.qualified +
                              "' guards no member: add AX_GUARDED_BY(" +
                              m.name + ") to the data it protects"});
        }
      }
    }
    // (c): acquisition-order simulation per function.
    for (const FunctionModel& fn : f.functions) {
      struct Held {
        std::string name;
        int rank;
        int depth;
        bool scoped;
      };
      std::vector<Held> held;
      auto seed = [&](const std::vector<std::string>& exprs) {
        for (const std::string& e : exprs) {
          std::string resolved;
          int r = ResolveRank(p, fn.class_ctx, e, &resolved);
          if (r >= 0) held.push_back({resolved, r, 0, false});
        }
      };
      seed(fn.requires_args);
      auto decl_it = p.requires_by_qualified.find(fn.qualified);
      if (decl_it != p.requires_by_qualified.end()) seed(decl_it->second);
      for (const Acquisition& a : fn.acquisitions) {
        // Scoped guards from deeper (already closed) blocks are released.
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const Held& h) {
                                    return h.scoped && h.depth > a.depth;
                                  }),
                   held.end());
        std::string resolved;
        int rank = ResolveRank(p, fn.class_ctx, a.mutex_expr, &resolved);
        if (rank < 0) continue;  // local/test mutex or ambiguous: skip
        for (const Held& h : held) {
          if (h.name == resolved) continue;
          if (rank < h.rank &&
              !f.lexed.IsSuppressed("lock-order", a.line)) {
            out->push_back(
                {"lock-order", f.path, a.line,
                 fn.qualified + " acquires '" + resolved + "' (rank " +
                     std::to_string(rank) + ") while holding '" + h.name +
                     "' (rank " + std::to_string(h.rank) +
                     "): lock-order inversion against DESIGN.md §4a"});
          }
        }
        held.push_back({resolved, rank, a.depth, a.scoped});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// must-check: Status/Result class declarations must carry [[nodiscard]]
// (mechanically fixable), and no statement may discard a call to a function
// declared to return Status/Result — including explicit `(void)` casts,
// which need an `// axlint: allow(must-check): why` justification.
// ---------------------------------------------------------------------------

void CheckMustCheck(const Project& p, std::vector<Finding>* out) {
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    for (const ClassModel& c : f.classes) {
      if ((c.name == "Status" || c.name == "Result") && !c.nodiscard &&
          !f.lexed.IsSuppressed("must-check", c.line)) {
        Finding fd{"must-check", f.path, c.line,
                   "class '" + c.name +
                       "' must be declared [[nodiscard]] so dropped return "
                       "values fail the build (axlint --fix inserts it)"};
        fd.fix_offset = c.keyword_offset;
        fd.fix_insert = "[[nodiscard]] ";
        out->push_back(std::move(fd));
      }
    }
    for (const FunctionModel& fn : f.functions) {
      for (const DiscardedCall& d : fn.discarded_calls) {
        bool statusish = (p.status_names.count(d.callee) ||
                          p.result_names.count(d.callee)) &&
                         !p.mixed_names.count(d.callee);
        if (!statusish) continue;
        if (f.lexed.IsSuppressed("must-check", d.line)) continue;
        if (d.void_cast) {
          out->push_back(
              {"must-check", f.path, d.line,
               fn.qualified + " discards the Status/Result of '" + d.callee +
                   "' via (void): add `// axlint: allow(must-check): "
                   "<reason>` if this is genuinely fire-and-forget"});
        } else {
          out->push_back({"must-check", f.path, d.line,
                          fn.qualified + " ignores the Status/Result of '" +
                              d.callee +
                              "': handle it, AX_RETURN_NOT_OK it, or justify "
                              "a (void) cast"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism: src/feeds/ and src/txn/ replay and recover, src/storage/
// runs background maintenance whose flush/merge decisions must be
// reproducible from inputs alone, and src/resource/ makes admission and
// grant decisions that tests replay deterministically; wall-clock and
// ambient randomness in any of them break reproducibility. Time must come
// through an injectable clock (std::chrono::steady_clock for durations
// only) and randomness through common/rng.h.
// ---------------------------------------------------------------------------

void CheckDeterminism(const Project& p, std::vector<Finding>* out) {
  for (const FileModel& f : p.files) {
    if (f.module != "feeds" && f.module != "txn" && f.module != "storage" &&
        f.module != "resource") {
      continue;
    }
    for (const DeterminismUse& u : f.determinism) {
      if (f.lexed.IsSuppressed("determinism", u.line)) continue;
      std::string hint =
          (u.what == "rand" || u.what == "srand" || u.what == "random_device")
              ? "use the seeded generator in common/rng.h"
              : "inject the clock (steady_clock is fine for durations)";
      out->push_back({"determinism", f.path, u.line,
                      "non-deterministic API '" + u.what + "' in src/" +
                          f.module + "/: " + hint});
    }
  }
}

// ---------------------------------------------------------------------------
// metrics-sync: every GetCounter/GetHistogram literal in src/ must be
// documented in docs/METRICS.md, and every documented metric must still
// exist in code. Subsumes tools/check_metrics_docs.sh.
// ---------------------------------------------------------------------------

void CheckMetricsSync(const Project& p, std::vector<Finding>* out) {
  std::set<std::string> in_code;
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    for (const MetricLiteral& m : f.metrics) {
      in_code.insert(m.name);
      if (p.doc_metrics.count(m.name)) continue;
      if (f.lexed.IsSuppressed("metrics-sync", m.line)) continue;
      out->push_back({"metrics-sync", f.path, m.line,
                      "metric '" + m.name +
                          "' is registered in code but not documented in "
                          "docs/METRICS.md"});
    }
  }
  for (const auto& [name, line] : p.doc_metrics) {
    if (in_code.count(name)) continue;
    out->push_back({"metrics-sync", "docs/METRICS.md", line,
                    "metric '" + name +
                        "' is documented but no GetCounter/GetHistogram "
                        "call registers it"});
  }
}

// ---------------------------------------------------------------------------
// The v2 interprocedural checks. All four run over the call graph built by
// the driver (Project::graph) — resolution policy and summary semantics are
// in callgraph.h and DESIGN.md §4e "v2: interprocedural analysis".
// ---------------------------------------------------------------------------

/// Shared held-lock simulation state. Seeds are the function's resolved
/// AX_REQUIRES set (depth 0, never released by scope); scoped guards are
/// released when an event at a shallower brace depth is reached, explicit
/// .lock() only by a matching kUnlock.
struct HeldLock {
  std::string name;  // qualified ranked mutex
  int rank = 0;
  int depth = 0;
  bool scoped = false;
};

std::string SimpleClassName(const std::string& qualified) {
  size_t cut = qualified.rfind("::");
  return cut == std::string::npos ? qualified : qualified.substr(cut + 2);
}

/// Resolve the mutex behind an event's `what` (mapping guard variables
/// first) to a qualified ranked name. Returns rank, -1 when unranked.
int EventMutexRank(const Project& p, const FunctionModel& fn,
                   const std::string& what, std::string* resolved) {
  std::string expr = what;
  auto gv = fn.guard_vars.find(expr);
  if (gv != fn.guard_vars.end()) expr = gv->second;
  return CallGraph::ResolveMutexRank(p.lock_ranks, fn.class_ctx, expr,
                                     resolved);
}

void ReleaseByDepth(std::vector<HeldLock>* held, int depth) {
  held->erase(std::remove_if(held->begin(), held->end(),
                             [&](const HeldLock& h) {
                               return h.scoped && h.depth > depth;
                             }),
              held->end());
}

std::vector<HeldLock> SeedRequires(const Project& p,
                                   const CallGraph::Node& node) {
  std::vector<HeldLock> held;
  for (const std::string& m : node.requires_q) {
    auto it = p.lock_ranks.find(m);
    if (it != p.lock_ranks.end()) {
      held.push_back({m, it->second, 0, /*scoped=*/false});
    }
  }
  return held;
}

// ---------------------------------------------------------------------------
// blocking-under-lock: no path may hold a ranked mutex across a blocking
// primitive or a call whose summary says it may block. A cv-wait is exempt
// for the mutex its lock argument wraps (the wait releases it); a blocking
// callee's AX_REQUIRES mutexes are exempt at the call site (the callee
// blocks *via* them — the cooperative-drain pattern — and findings inside
// the callee itself still fire from its own seeded simulation).
// ---------------------------------------------------------------------------

void CheckBlockingUnderLock(const Project& p, std::vector<Finding>* out) {
  const CallGraph& g = *p.graph;
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    for (const FunctionModel& fn : f.functions) {
      int id = g.IndexOf(&fn);
      if (id < 0) continue;
      const CallGraph::Node& node = g.nodes()[id];
      std::vector<HeldLock> held = SeedRequires(p, node);
      for (const BodyEvent& e : fn.events) {
        if (e.in_lambda) continue;  // runs on another thread
        ReleaseByDepth(&held, e.depth);
        std::string resolved;
        switch (e.kind) {
          case BodyEvent::kAcquire: {
            int r = EventMutexRank(p, fn, e.what, &resolved);
            if (r >= 0) held.push_back({resolved, r, e.depth, e.scoped});
            break;
          }
          case BodyEvent::kUnlock: {
            if (EventMutexRank(p, fn, e.what, &resolved) >= 0) {
              held.erase(std::remove_if(held.begin(), held.end(),
                                        [&](const HeldLock& h) {
                                          return h.name == resolved;
                                        }),
                         held.end());
            }
            break;
          }
          case BodyEvent::kWait: {
            // The wait releases the mutex its lock argument wraps; if the
            // argument is opaque (a parameter), assume it wraps the most
            // recently acquired mutex.
            std::vector<HeldLock> rest = held;
            if (EventMutexRank(p, fn, e.what, &resolved) >= 0) {
              rest.erase(std::remove_if(rest.begin(), rest.end(),
                                        [&](const HeldLock& h) {
                                          return h.name == resolved;
                                        }),
                         rest.end());
            } else if (!rest.empty()) {
              rest.pop_back();
            }
            if (!rest.empty() &&
                !f.lexed.IsSuppressed("blocking-under-lock", e.line)) {
              out->push_back(
                  {"blocking-under-lock", f.path, e.line,
                   fn.qualified + " waits on a condition variable while '" +
                       rest.front().name + "' (rank " +
                       std::to_string(rest.front().rank) +
                       ") stays held: the wait releases only its own lock"});
            }
            break;
          }
          case BodyEvent::kSleep:
          case BodyEvent::kFsync:
          case BodyEvent::kJoin: {
            if (held.empty()) break;
            if (f.lexed.IsSuppressed("blocking-under-lock", e.line)) break;
            const char* what = e.kind == BodyEvent::kSleep
                                   ? "sleeps"
                                   : e.kind == BodyEvent::kFsync
                                         ? "fsyncs"
                                         : "joins a thread";
            out->push_back({"blocking-under-lock", f.path, e.line,
                            fn.qualified + " " + what + " while holding '" +
                                held.front().name + "' (rank " +
                                std::to_string(held.front().rank) + ")"});
            break;
          }
          case BodyEvent::kCall: {
            int target = node.confident[e.index];
            if (target < 0) break;
            const CallGraph::Node& callee = g.nodes()[target];
            if (!callee.blocks) break;
            std::vector<HeldLock> effective;
            for (const HeldLock& h : held) {
              if (!callee.requires_q.count(h.name)) effective.push_back(h);
            }
            if (effective.empty()) break;
            if (f.lexed.IsSuppressed("blocking-under-lock", e.line)) break;
            out->push_back({"blocking-under-lock", f.path, e.line,
                            fn.qualified + " calls " + callee.fn->qualified +
                                ", which " + callee.blocks_why +
                                ", while holding '" + effective.front().name +
                                "' (rank " +
                                std::to_string(effective.front().rank) + ")"});
            break;
          }
          default:
            break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// xfn-lock-order: propagate held-lock sets through confident calls so rank
// inversions (and re-acquisitions of an already-held mutex) that span
// function boundaries are caught. Same-body inversions are the v1
// lock-order check's job and are not re-reported here.
// ---------------------------------------------------------------------------

void CheckXfnLockOrder(const Project& p, std::vector<Finding>* out) {
  const CallGraph& g = *p.graph;
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    for (const FunctionModel& fn : f.functions) {
      int id = g.IndexOf(&fn);
      if (id < 0) continue;
      const CallGraph::Node& node = g.nodes()[id];
      std::vector<HeldLock> held = SeedRequires(p, node);
      for (const BodyEvent& e : fn.events) {
        if (e.in_lambda) continue;
        ReleaseByDepth(&held, e.depth);
        std::string resolved;
        if (e.kind == BodyEvent::kAcquire) {
          int r = EventMutexRank(p, fn, e.what, &resolved);
          if (r >= 0) held.push_back({resolved, r, e.depth, e.scoped});
          continue;
        }
        if (e.kind == BodyEvent::kUnlock) {
          if (EventMutexRank(p, fn, e.what, &resolved) >= 0) {
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const HeldLock& h) {
                                        return h.name == resolved;
                                      }),
                       held.end());
          }
          continue;
        }
        if (e.kind != BodyEvent::kCall || held.empty()) continue;
        int target = node.confident[e.index];
        if (target < 0) continue;
        const CallGraph::Node& callee = g.nodes()[target];
        for (const auto& [m, where] : callee.acquires) {
          auto rit = p.lock_ranks.find(m);
          if (rit == p.lock_ranks.end()) continue;
          int mrank = rit->second;
          for (const HeldLock& h : held) {
            if (h.name == m) {
              if (!f.lexed.IsSuppressed("xfn-lock-order", e.line)) {
                out->push_back({"xfn-lock-order", f.path, e.line,
                                fn.qualified + " calls " +
                                    callee.fn->qualified +
                                    ", which may re-acquire '" + m +
                                    "' (already held: self-deadlock), " +
                                    where});
              }
              break;
            }
            if (mrank < h.rank) {
              if (!f.lexed.IsSuppressed("xfn-lock-order", e.line)) {
                out->push_back(
                    {"xfn-lock-order", f.path, e.line,
                     fn.qualified + " calls " + callee.fn->qualified +
                         ", which acquires '" + m + "' (rank " +
                         std::to_string(mrank) + ", " + where +
                         ") while holding '" + h.name + "' (rank " +
                         std::to_string(h.rank) +
                         "): interprocedural lock-order inversion"});
              }
              break;
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cancellation-coverage: every TupleStream::Next/NextBatch override that
// pumps an input in a loop, and every feed-stage function with an infinite
// loop, must transitively reach a cancellation probe (CheckAlive / a stop
// flag) from inside the loop. A call through an unknown receiver counts
// only if EVERY bodied candidate is covered (must-all virtual semantics).
// ---------------------------------------------------------------------------

void CheckCancellationCoverage(const Project& p, std::vector<Finding>* out) {
  const CallGraph& g = *p.graph;
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    for (const FunctionModel& fn : f.functions) {
      int id = g.IndexOf(&fn);
      if (id < 0) continue;
      const CallGraph::Node& node = g.nodes()[id];
      bool pump_loop = false;
      for (const BodyEvent& e : fn.events) {
        if (e.kind != BodyEvent::kCall || e.loop_depth < 1) continue;
        int t = node.confident[e.index];
        if (e.what == "Next" || e.what == "NextBatch" ||
            (t >= 0 && g.nodes()[t].pumps)) {
          pump_loop = true;
          break;
        }
      }
      bool stream_subject =
          (fn.name == "Next" || fn.name == "NextBatch") &&
          !fn.class_ctx.empty() &&
          g.DerivesFrom(SimpleClassName(fn.class_ctx), "TupleStream") &&
          (pump_loop || fn.has_infinite_loop);
      bool feed_subject = f.module == "feeds" && fn.has_infinite_loop;
      if (!stream_subject && !feed_subject) continue;

      bool covered = false;
      for (const BodyEvent& e : fn.events) {
        if (e.loop_depth < 1) continue;
        if (e.kind == BodyEvent::kProbe) {
          covered = true;
          break;
        }
        if (e.kind != BodyEvent::kCall) continue;
        int target = node.confident[e.index];
        if (target >= 0) {
          if (g.nodes()[target].covered) {
            covered = true;
            break;
          }
          continue;
        }
        const std::vector<int>& cand = node.candidates[e.index];
        if (cand.empty()) continue;
        bool all = true;
        for (int cid : cand) {
          if (!g.nodes()[cid].covered) {
            all = false;
            break;
          }
        }
        if (all) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      if (f.lexed.IsSuppressed("cancellation-coverage", fn.line)) continue;
      std::string why =
          stream_subject
              ? " pumps its input in a loop but never reaches "
                "QueryContext::CheckAlive or a stop probe: a cancelled query "
                "keeps running until the operator drains"
              : " runs an infinite feed-stage loop that never polls a stop "
                "probe: the feed cannot be cancelled";
      out->push_back(
          {"cancellation-coverage", f.path, fn.line, fn.qualified + why});
    }
  }
}

// ---------------------------------------------------------------------------
// raii-leak: a guard object (lock guards, MemoryGrant, AdmissionSlot,
// TxnScope, PageHandle) constructed as an unnamed temporary dies before the
// next statement — it protects nothing; constructed with `new` it leaks on
// every early-return path. Both are flagged unconditionally: name the
// local, or keep the guard on the stack.
// ---------------------------------------------------------------------------

void CheckRaiiLeak(const Project& p, std::vector<Finding>* out) {
  for (const FileModel& f : p.files) {
    if (f.module.empty()) continue;
    for (const FunctionModel& fn : f.functions) {
      for (const BodyEvent& e : fn.events) {
        if (e.kind == BodyEvent::kRaiiTemp) {
          if (f.lexed.IsSuppressed("raii-leak", e.line)) continue;
          out->push_back({"raii-leak", f.path, e.line,
                          fn.qualified + " constructs an unnamed '" + e.what +
                              "' temporary that is destroyed immediately: "
                              "bind it to a named local or it guards "
                              "nothing"});
        }
        if (e.kind == BodyEvent::kRaiiNew) {
          if (f.lexed.IsSuppressed("raii-leak", e.line)) continue;
          out->push_back({"raii-leak", f.path, e.line,
                          fn.qualified + " heap-allocates a '" + e.what +
                              "' guard: early-return paths leak it and its "
                              "resource — construct it on the stack"});
        }
      }
    }
  }
}

}  // namespace

const std::vector<CheckInfo>& Checks() {
  static const std::vector<CheckInfo> kChecks = {
      {"layering",
       "module include DAG: common -> {adm,resource} -> {txn,storage} -> "
       "hyracks -> algebricks -> sqlpp -> aql -> asterix; feeds beside the "
       "compilers",
       CheckLayering},
      {"lock-order",
       "mutexes must be ranked in DESIGN.md 4a and acquired outer-to-inner",
       CheckLockOrder},
      {"must-check",
       "Status/Result must be [[nodiscard]] and never silently dropped",
       CheckMustCheck},
      {"determinism",
       "no ambient randomness or wall-clock in src/feeds/, src/txn/, "
       "src/storage/ and src/resource/",
       CheckDeterminism},
      {"metrics-sync",
       "metric literals and docs/METRICS.md must agree in both directions",
       CheckMetricsSync},
      {"blocking-under-lock",
       "no ranked mutex may be held across a transitively-blocking call "
       "(cv-wait, sleep, fsync, thread-join)",
       CheckBlockingUnderLock},
      {"xfn-lock-order",
       "held-lock sets propagate through calls: rank inversions and "
       "re-acquisitions spanning function boundaries",
       CheckXfnLockOrder},
      {"cancellation-coverage",
       "TupleStream pump loops and feed-stage loops must transitively reach "
       "CheckAlive or a stop probe",
       CheckCancellationCoverage},
      {"raii-leak",
       "grant/slot/scope/lock guards must not be unnamed temporaries or "
       "heap-allocated",
       CheckRaiiLeak},
  };
  return kChecks;
}

}  // namespace axlint
