// axlint driver: walks the repo, builds the Project model, runs the checks,
// applies the committed baseline, and optionally rewrites files (--fix) or
// regenerates the baseline (--write-baseline).
#pragma once

#include <string>
#include <vector>

#include "axlint/checks.h"

namespace axlint {

struct Options {
  std::string repo_root = ".";
  // Baseline file, relative to repo_root unless absolute. Empty disables
  // baseline handling entirely (used by fixture tests).
  std::string baseline_path = "tools/axlint/baseline.txt";
  bool write_baseline = false;
  bool fix = false;
  // Restrict to these check names; empty = all.
  std::vector<std::string> only_checks;
  // Function-summary cache directory (--cache-dir). Empty disables caching.
  // A file is re-analyzed only when the hash of its contents combined with
  // its transitive include closure changes — editing a leaf header
  // invalidates every dependent.
  std::string cache_dir;
  // Changed-files mode (--since=<rev>): findings are filtered to files
  // touched since <rev> plus their reverse include closure. Hard findings
  // are always reported. Empty disables.
  std::string since_rev;
};

struct RunResult {
  // Findings not covered by the baseline (plus ALL hard findings).
  std::vector<Finding> unbaselined;
  size_t baselined_count = 0;
  size_t files_scanned = 0;
  // Files lexed+scanned this run (cache misses). Equals files_scanned when
  // caching is off; 0 on a warm run over an unchanged tree.
  size_t files_analyzed = 0;
  int fixes_applied = 0;
  bool io_error = false;
  std::string error;  // set when io_error
};

/// Stable identity of a finding for baseline matching. Deliberately excludes
/// the line number so unrelated edits don't churn the baseline.
std::string BaselineKey(const Finding& f);

RunResult RunAxlint(const Options& opts);

/// Render a run's unbaselined findings as a JSON object (--format=json).
std::string FormatFindingsJson(const RunResult& res);

/// Render a run's unbaselined findings as a SARIF 2.1.0 log
/// (--format=sarif), suitable for GitHub code-scanning upload.
std::string FormatFindingsSarif(const RunResult& res);

/// Exposed for tests: parse the ```axlint-lock-ranks fenced block.
std::map<std::string, int> ParseLockRanks(const std::string& design_md);

/// Exposed for tests: backticked dotted metric names -> first line.
std::map<std::string, int> ParseDocMetrics(const std::string& metrics_md);

}  // namespace axlint
