// axlint driver: walks the repo, builds the Project model, runs the checks,
// applies the committed baseline, and optionally rewrites files (--fix) or
// regenerates the baseline (--write-baseline).
#pragma once

#include <string>
#include <vector>

#include "axlint/checks.h"

namespace axlint {

struct Options {
  std::string repo_root = ".";
  // Baseline file, relative to repo_root unless absolute. Empty disables
  // baseline handling entirely (used by fixture tests).
  std::string baseline_path = "tools/axlint/baseline.txt";
  bool write_baseline = false;
  bool fix = false;
  // Restrict to these check names; empty = all.
  std::vector<std::string> only_checks;
};

struct RunResult {
  // Findings not covered by the baseline (plus ALL hard findings).
  std::vector<Finding> unbaselined;
  size_t baselined_count = 0;
  size_t files_scanned = 0;
  int fixes_applied = 0;
  bool io_error = false;
  std::string error;  // set when io_error
};

/// Stable identity of a finding for baseline matching. Deliberately excludes
/// the line number so unrelated edits don't churn the baseline.
std::string BaselineKey(const Finding& f);

RunResult RunAxlint(const Options& opts);

/// Exposed for tests: parse the ```axlint-lock-ranks fenced block.
std::map<std::string, int> ParseLockRanks(const std::string& design_md);

/// Exposed for tests: backticked dotted metric names -> first line.
std::map<std::string, int> ParseDocMetrics(const std::string& metrics_md);

}  // namespace axlint
