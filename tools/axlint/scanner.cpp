#include "axlint/scanner.h"

#include <algorithm>

namespace axlint {

namespace {

bool Is(const Token& t, const char* s) { return t.text == s; }
bool IsPunct(const Token& t, char c) {
  return t.kind == Tok::kPunct && t.text[0] == c;
}

const std::set<std::string> kDeclSpecifiers = {
    "static",   "virtual", "inline",  "explicit", "constexpr", "mutable",
    "friend",   "typename", "const",  "volatile", "extern",    "consteval",
    "constinit", "thread_local"};

const std::set<std::string> kStmtKeywords = {"if",     "while", "for",
                                             "switch", "else",  "do"};

// RAII guard types whose construction the call-graph checks care about:
// instantly-destroyed temporaries and heap allocation of any of these are
// raii-leak findings, and `unique_lock` variables feed the wait/unlock
// simulation.
const std::set<std::string> kGuardTypes = {
    "lock_guard", "unique_lock", "scoped_lock",   "shared_lock",
    "MemoryGrant", "AdmissionSlot", "TxnScope",   "PageHandle"};

// Identifiers that count as cancellation/liveness probes for the
// cancellation-coverage check: the QueryContext probes plus the stop flags
// the feed stages poll.
const std::set<std::string> kProbeNames = {
    "CheckAlive", "PollAlive",        "cancelled", "ShouldStop",
    "stop_requested_", "killed_", "closing_"};

const std::set<std::string> kAccessSpecifiers = {"public", "private",
                                                 "protected", "virtual",
                                                 "final"};

/// Advance past a balanced (), starting at the '(' index. Returns the index
/// one past the matching ')'.
size_t SkipParens(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); i++) {
    if (IsPunct(toks[i], '(')) depth++;
    if (IsPunct(toks[i], ')')) {
      depth--;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// Advance past balanced <...> template args starting at '<'. Heuristic:
/// bails (returning the start) if no matching '>' within 64 tokens, which
/// distinguishes templates from less-than in practice.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  size_t start = i;
  int depth = 0;
  for (size_t steps = 0; i < toks.size() && steps < 64; i++, steps++) {
    if (IsPunct(toks[i], '<')) depth++;
    if (IsPunct(toks[i], '>')) {
      depth--;
      if (depth == 0) return i + 1;
    }
    if (IsPunct(toks[i], ';') || IsPunct(toks[i], '{')) break;
  }
  return start;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
  std::string name;  // class name for kClass
};

class Scanner {
 public:
  Scanner(const std::string& path, LexedFile lexed) {
    model_.path = path;
    model_.module = ModuleOf(path);
    model_.lexed = std::move(lexed);
  }

  FileModel Run() {
    LinearPasses();
    StructuralPass();
    return std::move(model_);
  }

 private:
  static std::string ModuleOf(const std::string& path) {
    if (path.rfind("src/", 0) != 0) return "";
    size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return "";
    return path.substr(4, slash - 4);
  }

  const std::vector<Token>& toks() const { return model_.lexed.tokens; }

  // ---- linear passes: metrics + determinism -------------------------------

  void LinearPasses() {
    const auto& t = toks();
    for (size_t i = 0; i < t.size(); i++) {
      if (t[i].kind == Tok::kIdent &&
          (t[i].text == "GetCounter" || t[i].text == "GetHistogram") &&
          i + 2 < t.size() && IsPunct(t[i + 1], '(') &&
          t[i + 2].kind == Tok::kString) {
        model_.metrics.push_back({t[i + 2].text, t[i + 2].line});
      }
      if (t[i].kind != Tok::kIdent) continue;
      // Preceded by . -> or :: means a member/qualified name, not libc.
      bool qualified = false;
      if (i > 0) {
        if (IsPunct(t[i - 1], '.') || IsPunct(t[i - 1], ':')) qualified = true;
        if (i > 1 && IsPunct(t[i - 1], '>') && IsPunct(t[i - 2], '-'))
          qualified = true;
      }
      bool called = i + 1 < t.size() && IsPunct(t[i + 1], '(');
      if (!qualified && called && (t[i].text == "rand" || t[i].text == "srand" ||
                                   t[i].text == "time")) {
        model_.determinism.push_back({t[i].text, t[i].line});
      }
      if (t[i].text == "random_device") {
        model_.determinism.push_back({t[i].text, t[i].line});
      }
      if (t[i].text == "system_clock" && i + 3 < t.size() &&
          IsPunct(t[i + 1], ':') && IsPunct(t[i + 2], ':') &&
          t[i + 3].text == "now") {
        model_.determinism.push_back({"system_clock::now", t[i].line});
      }
    }
  }

  // ---- structural pass ----------------------------------------------------

  std::string ClassContext() const {
    std::string out;
    for (const auto& s : scopes_) {
      if (s.kind == Scope::kClass) {
        if (!out.empty()) out += "::";
        out += s.name;
      }
    }
    return out;
  }

  ClassModel* CurrentClass() {
    if (scopes_.empty() || scopes_.back().kind != Scope::kClass) return nullptr;
    std::string q = ClassContext();
    for (auto& c : model_.classes) {
      if (c.qualified == q) return &c;
    }
    return nullptr;
  }

  void StructuralPass() {
    const auto& t = toks();
    size_t i = 0;
    while (i < t.size()) {
      if (IsPunct(t[i], '}')) {
        if (!scopes_.empty()) scopes_.pop_back();
        i++;
        // Consume a trailing ';' after class bodies.
        if (i < t.size() && IsPunct(t[i], ';')) i++;
        continue;
      }
      if (IsPunct(t[i], '{')) {  // stray block (e.g. extern "C")
        scopes_.push_back({Scope::kBlock, ""});
        i++;
        continue;
      }
      if (t[i].kind == Tok::kIdent && Is(t[i], "namespace")) {
        i = ScanNamespace(i);
        continue;
      }
      if (t[i].kind == Tok::kIdent && Is(t[i], "template")) {
        i++;
        if (i < t.size() && IsPunct(t[i], '<')) i = SkipAngles(toks(), i);
        continue;
      }
      if (t[i].kind == Tok::kIdent && Is(t[i], "enum")) {
        i = SkipEnum(i);
        continue;
      }
      if (t[i].kind == Tok::kIdent &&
          (Is(t[i], "class") || Is(t[i], "struct")) && !InFunction()) {
        i = ScanClassHead(i);
        continue;
      }
      if (t[i].kind == Tok::kIdent &&
          (Is(t[i], "using") || Is(t[i], "typedef"))) {
        while (i < t.size() && !IsPunct(t[i], ';')) i++;
        i++;
        continue;
      }
      i = ScanDeclaration(i);
    }
  }

  bool InFunction() const {
    for (const auto& s : scopes_) {
      if (s.kind == Scope::kFunction) return true;
    }
    return false;
  }

  size_t ScanNamespace(size_t i) {
    const auto& t = toks();
    i++;  // 'namespace'
    while (i < t.size() && !IsPunct(t[i], '{') && !IsPunct(t[i], ';')) i++;
    if (i < t.size() && IsPunct(t[i], '{')) {
      scopes_.push_back({Scope::kNamespace, ""});
      i++;
    } else {
      i++;  // namespace alias
    }
    return i;
  }

  size_t SkipEnum(size_t i) {
    const auto& t = toks();
    while (i < t.size() && !IsPunct(t[i], '{') && !IsPunct(t[i], ';')) i++;
    if (i < t.size() && IsPunct(t[i], '{')) {
      int depth = 0;
      for (; i < t.size(); i++) {
        if (IsPunct(t[i], '{')) depth++;
        if (IsPunct(t[i], '}')) {
          depth--;
          if (depth == 0) {
            i++;
            break;
          }
        }
      }
    }
    while (i < t.size() && !IsPunct(t[i], ';')) i++;
    return i + 1;
  }

  size_t ScanClassHead(size_t i) {
    const auto& t = toks();
    const Token& keyword = t[i];
    i++;
    bool nodiscard = false;
    // Attributes between class-key and name: [[nodiscard]] etc.
    while (i + 1 < t.size() && IsPunct(t[i], '[') && IsPunct(t[i + 1], '[')) {
      size_t j = i + 2;
      while (j < t.size() && !IsPunct(t[j], ']')) {
        if (t[j].kind == Tok::kIdent && t[j].text == "nodiscard")
          nodiscard = true;
        j++;
      }
      while (j < t.size() && IsPunct(t[j], ']')) j++;
      i = j;
    }
    if (i >= t.size() || t[i].kind != Tok::kIdent) {
      // Anonymous struct or something exotic; treat '{' as block.
      while (i < t.size() && !IsPunct(t[i], '{') && !IsPunct(t[i], ';')) i++;
      if (i < t.size() && IsPunct(t[i], '{')) {
        scopes_.push_back({Scope::kBlock, ""});
        i++;
      } else {
        i++;
      }
      return i;
    }
    std::string name = t[i].text;
    int line = t[i].line;
    i++;
    // Out-of-line nested definitions: `struct Registry::Impl { ... }`.
    while (i + 2 < t.size() && IsPunct(t[i], ':') && IsPunct(t[i + 1], ':') &&
           t[i + 2].kind == Tok::kIdent) {
      name += "::" + t[i + 2].text;
      i += 3;
    }
    // Skip to '{' (base clause, final) or ';' (forward decl) or other
    // (e.g. a variable of elaborated type: `class Foo x;`). Base-class
    // names are collected along the way: within the base clause, the last
    // identifier of each top-level comma segment (so `public ns::Base<T>`
    // records "Base").
    size_t probe = i;
    int angle = 0;
    bool in_bases = false;
    std::vector<std::string> bases;
    std::string base_candidate;
    auto flush_base = [&]() {
      if (!base_candidate.empty()) bases.push_back(base_candidate);
      base_candidate.clear();
    };
    while (probe < t.size()) {
      if (IsPunct(t[probe], '<')) angle++;
      if (IsPunct(t[probe], '>')) angle--;
      if (angle == 0 && (IsPunct(t[probe], '{') || IsPunct(t[probe], ';') ||
                         IsPunct(t[probe], ')') || IsPunct(t[probe], '=')))
        break;
      if (angle == 0 && IsPunct(t[probe], ':')) {
        bool dbl = (probe + 1 < t.size() && IsPunct(t[probe + 1], ':')) ||
                   (probe > 0 && IsPunct(t[probe - 1], ':'));
        if (!dbl) in_bases = true;
      }
      if (in_bases && angle == 0) {
        if (t[probe].kind == Tok::kIdent &&
            !kAccessSpecifiers.count(t[probe].text)) {
          base_candidate = t[probe].text;
        }
        if (IsPunct(t[probe], ',')) flush_base();
      }
      probe++;
    }
    if (probe >= t.size() || !IsPunct(t[probe], '{')) {
      return i;  // forward declaration / elaborated type use
    }
    flush_base();
    scopes_.push_back({Scope::kClass, name});
    ClassModel c;
    c.name = name;
    c.qualified = ClassContext();
    c.line = line;
    c.keyword_offset = keyword.offset;
    c.nodiscard = nodiscard;
    c.bases = std::move(bases);
    model_.classes.push_back(std::move(c));
    return probe + 1;
  }

  /// Scan one declaration at class/namespace scope: a member variable, a
  /// function declaration, or a function definition (whose body is then
  /// scanned). Returns the index one past the declaration.
  size_t ScanDeclaration(size_t start) {
    const auto& t = toks();
    size_t i = start;
    size_t first_paren = 0;      // index of the parameter-list '('
    size_t after_params = 0;     // index one past the matching ')'
    bool saw_guarded_by = false;
    int paren_depth = 0;
    size_t end = start;
    // Walk to the declaration terminator: ';' at depth 0, or a '{' that
    // follows a closed parameter list (function body) — a '{' without any
    // preceding parens is a brace-initialized member.
    while (i < t.size()) {
      const Token& tok = t[i];
      if (tok.kind == Tok::kIdent &&
          (tok.text == "AX_GUARDED_BY" || tok.text == "AX_PT_GUARDED_BY")) {
        saw_guarded_by = true;
        RecordGuardedBy(i);
        i = SkipParens(toks(), i + 1);
        continue;
      }
      if (IsPunct(tok, '(')) {
        if (first_paren == 0 && paren_depth == 0) {
          first_paren = i;
          i = SkipParens(toks(), i);
          after_params = i;
          continue;
        }
        paren_depth++;
      } else if (IsPunct(tok, ')')) {
        paren_depth--;
      } else if (IsPunct(tok, ';') && paren_depth == 0) {
        end = i;
        break;
      } else if (IsPunct(tok, '{') && paren_depth == 0) {
        if (first_paren == 0 || saw_guarded_by) {
          // Brace-initialized member: std::atomic<bool> running_{false};
          int d = 0;
          while (i < t.size()) {
            if (IsPunct(t[i], '{')) d++;
            if (IsPunct(t[i], '}')) {
              d--;
              if (d == 0) break;
            }
            i++;
          }
          i++;
          continue;
        }
        // Function body (possibly after a constructor init list).
        return ScanFunctionDef(start, first_paren, after_params, i);
      } else if (IsPunct(tok, ':') && paren_depth == 0 && first_paren != 0 &&
                 i > 0 && !IsPunct(t[i - 1], ':') &&
                 (i + 1 >= t.size() || !IsPunct(t[i + 1], ':'))) {
        // Constructor init list: skip to the body '{'.
        size_t body = SkipInitList(i + 1);
        if (body < t.size() && IsPunct(t[body], '{')) {
          return ScanFunctionDef(start, first_paren, after_params, body);
        }
        i = body;
        continue;
      }
      i++;
    }
    if (i >= t.size()) return i;
    // Terminated by ';': classify.
    if (first_paren != 0 && !saw_guarded_by) {
      RecordFunctionDecl(start, first_paren, after_params, end);
    } else {
      RecordMemberDecl(start, end);
    }
    return end + 1;
  }

  /// From the token after the ctor ':', skip `name(init)` / `name{init}`
  /// elements until the body '{'. Returns the body '{' index.
  size_t SkipInitList(size_t i) {
    const auto& t = toks();
    while (i < t.size()) {
      // member name (possibly templated base class Foo<T>)
      while (i < t.size() && (t[i].kind == Tok::kIdent || IsPunct(t[i], ':')))
        i++;
      if (i < t.size() && IsPunct(t[i], '<')) i = SkipAngles(toks(), i);
      if (i >= t.size()) break;
      if (IsPunct(t[i], '(')) {
        i = SkipParens(toks(), i);
      } else if (IsPunct(t[i], '{')) {
        int d = 0;
        while (i < t.size()) {
          if (IsPunct(t[i], '{')) d++;
          if (IsPunct(t[i], '}')) {
            d--;
            if (d == 0) {
              i++;
              break;
            }
          }
          i++;
        }
      } else {
        break;
      }
      if (i < t.size() && IsPunct(t[i], ',')) {
        i++;
        continue;
      }
      break;
    }
    return i;
  }

  RetKind ClassifyReturn(size_t start, size_t name_end) {
    const auto& t = toks();
    size_t i = start;
    if (i < t.size() && Is(t[i], "template")) {
      i++;
      if (i < t.size() && IsPunct(t[i], '<')) i = SkipAngles(toks(), i);
    }
    while (i < name_end) {
      if (t[i].kind == Tok::kIdent && !kDeclSpecifiers.count(t[i].text)) {
        if (t[i].text == "Status") return RetKind::kStatus;
        if (t[i].text == "Result") return RetKind::kResult;
        return RetKind::kOther;
      }
      if (IsPunct(t[i], '[')) {  // attribute
        while (i < name_end && !IsPunct(t[i], ']')) i++;
        while (i < name_end && IsPunct(t[i], ']')) i++;
        continue;
      }
      i++;
    }
    return RetKind::kOther;
  }

  /// The callable name is the identifier chain just before `paren`:
  /// A::B::Name. Returns {name, class_path} ("", "" if not a plain name).
  std::pair<std::string, std::string> NameBefore(size_t paren) {
    const auto& t = toks();
    if (paren == 0) return {"", ""};
    size_t i = paren;
    std::vector<std::string> parts;
    while (i > 0) {
      --i;
      if (t[i].kind != Tok::kIdent) break;
      parts.insert(parts.begin(), t[i].text);
      if (i >= 2 && IsPunct(t[i - 1], ':') && IsPunct(t[i - 2], ':')) {
        i -= 2;
        continue;
      }
      break;
    }
    if (parts.empty()) return {"", ""};
    std::string name = parts.back();
    parts.pop_back();
    std::string cls;
    for (const auto& p : parts) {
      if (!cls.empty()) cls += "::";
      cls += p;
    }
    return {name, cls};
  }

  void RecordFunctionDecl(size_t start, size_t paren, size_t after_params,
                          size_t end) {
    auto [name, cls] = NameBefore(paren);
    if (name.empty() || name == "operator") return;
    RetKind ret = ClassifyReturn(start, paren);
    model_.declared.push_back({name, ret, toks()[paren].line});
    // AX_REQUIRES on the declaration (the normal header convention).
    std::vector<std::string> reqs = RequiresArgs(after_params, end);
    if (!reqs.empty()) {
      std::string ctx = ClassContext();
      if (!cls.empty()) ctx = ctx.empty() ? cls : ctx + "::" + cls;
      std::string qualified = ctx.empty() ? name : ctx + "::" + name;
      model_.declared_requires[qualified] = std::move(reqs);
    }
  }

  std::vector<std::string> RequiresArgs(size_t from, size_t to) {
    const auto& t = toks();
    std::vector<std::string> out;
    for (size_t i = from; i < to && i < t.size(); i++) {
      if (t[i].kind == Tok::kIdent && (t[i].text == "AX_REQUIRES" ||
                                       t[i].text == "AX_REQUIRES_SHARED")) {
        size_t close = SkipParens(toks(), i + 1);
        // Split args on top-level commas; keep the last identifier of each.
        size_t a = i + 2;
        int depth = 0;
        std::string last;
        for (size_t j = a; j < close; j++) {
          if (IsPunct(t[j], '(')) depth++;
          if (IsPunct(t[j], ')')) {
            if (depth == 0) break;
            depth--;
          }
          if (IsPunct(t[j], ',') && depth == 0) {
            if (!last.empty()) out.push_back(last);
            last.clear();
            continue;
          }
          if (t[j].kind == Tok::kIdent) last = t[j].text;
        }
        if (!last.empty()) out.push_back(last);
      }
    }
    return out;
  }

  void RecordGuardedBy(size_t macro_idx) {
    const auto& t = toks();
    size_t close = SkipParens(toks(), macro_idx + 1);
    std::string last;
    for (size_t j = macro_idx + 2; j + 1 < close + 1 && j < t.size(); j++) {
      if (j >= close) break;
      if (t[j].kind == Tok::kIdent) last = t[j].text;
    }
    if (last.empty()) return;
    // Attach to the innermost class scope.
    ClassModel* c = CurrentClass();
    if (c != nullptr) c->guarded_by_args.insert(last);
  }

  void RecordMemberDecl(size_t start, size_t end) {
    const auto& t = toks();
    // Find `std :: mutex NAME` or `std :: shared_mutex NAME` (the project
    // convention; bare `mutex` typedefs are not used).
    for (size_t i = start; i + 1 < end; i++) {
      if (t[i].kind == Tok::kIdent &&
          (t[i].text == "mutex" || t[i].text == "shared_mutex") &&
          t[i + 1].kind == Tok::kIdent) {
        ClassModel* c = CurrentClass();
        std::string qualified = ClassContext();
        qualified = qualified.empty() ? t[i + 1].text
                                      : qualified + "::" + t[i + 1].text;
        MutexMember m{t[i + 1].text, qualified, t[i + 1].line};
        if (c != nullptr) {
          c->mutexes.push_back(m);
        }
        break;
      }
    }
    // Member name -> declared type, for receiver resolution in the call
    // graph. The member name is the identifier right before the first
    // terminator (`;`, `=`, `{`, `[`, or a thread-annotation macro); the
    // type is the last project-class-looking (CamelCase) identifier seen
    // before it, so `std::unique_ptr<storage::MaintenanceScheduler> m_`
    // maps m_ -> MaintenanceScheduler.
    ClassModel* c = CurrentClass();
    if (c == nullptr) return;
    std::string prev_ident, last_camel, member;
    for (size_t i = start; i <= end && i < t.size(); i++) {
      const Token& tok = t[i];
      bool terminator =
          IsPunct(tok, ';') || IsPunct(tok, '=') || IsPunct(tok, '{') ||
          IsPunct(tok, '[') ||
          (tok.kind == Tok::kIdent && (tok.text == "AX_GUARDED_BY" ||
                                       tok.text == "AX_PT_GUARDED_BY"));
      if (terminator) {
        member = prev_ident;
        break;
      }
      if (tok.kind == Tok::kIdent) {
        if (!prev_ident.empty() && IsCamelCase(prev_ident)) {
          last_camel = prev_ident;
        }
        prev_ident = tok.text;
      }
    }
    if (member.empty() || last_camel.empty() || member == last_camel) return;
    c->member_types.emplace(member, last_camel);
  }

  /// Project class convention: upper-case start with at least one
  /// lower-case letter (excludes ALL_CAPS macros and snake_case locals).
  static bool IsCamelCase(const std::string& s) {
    if (s.empty() || !std::isupper(static_cast<unsigned char>(s[0]))) {
      return false;
    }
    for (char ch : s) {
      if (std::islower(static_cast<unsigned char>(ch))) return true;
    }
    return false;
  }

  size_t ScanFunctionDef(size_t start, size_t paren, size_t after_params,
                         size_t body_open) {
    const auto& t = toks();
    auto [name, cls] = NameBefore(paren);
    FunctionModel fn;
    fn.name = name;
    fn.line = t[paren].line;
    std::string ctx = ClassContext();
    if (!cls.empty()) ctx = ctx.empty() ? cls : ctx + "::" + cls;
    fn.class_ctx = ctx;
    fn.qualified = ctx.empty() ? name : ctx + "::" + name;
    fn.requires_args = RequiresArgs(after_params, body_open);
    fn.param_arity = ParamArity(paren, after_params);
    if (!name.empty()) {
      model_.declared.push_back({name, ClassifyReturn(start, paren),
                                 t[paren].line});
    }
    size_t i = ScanBody(body_open, &fn);
    EventPass(body_open, i, &fn);
    if (!name.empty()) model_.functions.push_back(std::move(fn));
    return i;
  }

  /// Declared parameter count: top-level commas + 1; 0 for `()`/`(void)`.
  int ParamArity(size_t paren, size_t after_params) {
    const auto& t = toks();
    if (after_params <= paren + 2) return 0;
    if (after_params == paren + 3 && Is(t[paren + 1], "void")) return 0;
    int commas = 0, pd = 0, ad = 0;
    for (size_t j = paren + 1; j + 1 < after_params && j < t.size(); j++) {
      if (IsPunct(t[j], '(') || IsPunct(t[j], '[') || IsPunct(t[j], '{')) pd++;
      if (IsPunct(t[j], ')') || IsPunct(t[j], ']') || IsPunct(t[j], '}')) pd--;
      if (IsPunct(t[j], '<')) ad++;
      if (IsPunct(t[j], '>')) ad = std::max(0, ad - 1);
      if (IsPunct(t[j], ',') && pd == 0 && ad == 0) commas++;
    }
    return commas + 1;
  }

  /// Scan a function body from its '{'. Returns the index one past the
  /// matching '}'. Records acquisitions and discarded calls.
  size_t ScanBody(size_t body_open, FunctionModel* fn) {
    const auto& t = toks();
    int depth = 0;
    size_t i = body_open;
    bool stmt_start = false;
    std::vector<std::pair<int, size_t>> held_scope;  // (depth, acq index)
    while (i < t.size()) {
      const Token& tok = t[i];
      if (IsPunct(tok, '{')) {
        depth++;
        stmt_start = true;
        i++;
        continue;
      }
      if (IsPunct(tok, '}')) {
        depth--;
        stmt_start = true;
        i++;
        if (depth == 0) break;
        continue;
      }
      if (IsPunct(tok, ';')) {
        stmt_start = true;
        i++;
        continue;
      }
      // Lock acquisitions: std::lock_guard<...> v(mu); etc.
      if (tok.kind == Tok::kIdent &&
          (tok.text == "lock_guard" || tok.text == "unique_lock" ||
           tok.text == "scoped_lock" || tok.text == "shared_lock")) {
        size_t j = i + 1;
        if (j < t.size() && IsPunct(t[j], '<')) j = SkipAngles(toks(), j);
        if (j < t.size() && t[j].kind == Tok::kIdent &&
            j + 1 < t.size() && IsPunct(t[j + 1], '(')) {
          size_t close = SkipParens(toks(), j + 1);
          RecordAcquisitionArgs(j + 2, close - 1, depth, tok.line, fn);
          i = close;
          stmt_start = false;
          continue;
        }
      }
      // Explicit x.lock() / x->lock().
      if (tok.kind == Tok::kIdent && tok.text == "lock" && i > 0 &&
          i + 2 < t.size() && IsPunct(t[i + 1], '(') &&
          IsPunct(t[i + 2], ')')) {
        bool member = IsPunct(t[i - 1], '.') ||
                      (i > 1 && IsPunct(t[i - 1], '>') && IsPunct(t[i - 2], '-'));
        if (member) {
          // The mutex name is the identifier before the . or ->.
          size_t k = IsPunct(t[i - 1], '.') ? i - 1 : i - 2;
          if (k > 0 && t[k - 1].kind == Tok::kIdent) {
            fn->acquisitions.push_back(
                {t[k - 1].text, tok.line, depth, /*scoped=*/false});
          }
        }
        i += 3;
        stmt_start = false;
        continue;
      }
      // Discarded-call detection at statement starts.
      if (stmt_start) {
        size_t adv = TryDiscardedCall(i, fn);
        if (adv != i) {
          i = adv;
          stmt_start = true;  // consumed through ';'
          continue;
        }
        if (tok.kind == Tok::kIdent && kStmtKeywords.count(tok.text)) {
          i++;
          if (i < t.size() && IsPunct(t[i], '(')) i = SkipParens(toks(), i);
          stmt_start = true;  // the controlled statement follows
          continue;
        }
      }
      stmt_start = false;
      i++;
    }
    return i;
  }

  void RecordAcquisitionArgs(size_t from, size_t to, int depth, int line,
                             FunctionModel* fn) {
    const auto& t = toks();
    int paren = 0;
    std::string last;
    bool deferred = false;
    auto flush = [&]() {
      if (last.empty()) return;
      if (last == "defer_lock" || last == "try_to_lock") {
        deferred = true;
        return;
      }
      if (last == "adopt_lock" || last == "std") return;
      fn->acquisitions.push_back({last, line, depth, /*scoped=*/true});
      last.clear();
    };
    for (size_t j = from; j < to && j < t.size(); j++) {
      if (IsPunct(t[j], '(')) paren++;
      if (IsPunct(t[j], ')')) paren--;
      if (IsPunct(t[j], ',') && paren == 0) {
        flush();
        last.clear();
        continue;
      }
      if (t[j].kind == Tok::kIdent) last = t[j].text;
    }
    flush();
    if (deferred && !fn->acquisitions.empty()) fn->acquisitions.pop_back();
  }

  /// If tokens at `i` form `[(void)] ident(.|->|::ident)*( ... );`, record a
  /// discarded call and return the index one past the ';'. Otherwise return
  /// `i` unchanged.
  size_t TryDiscardedCall(size_t i, FunctionModel* fn) {
    const auto& t = toks();
    size_t j = i;
    bool void_cast = false;
    if (j + 2 < t.size() && IsPunct(t[j], '(') && Is(t[j + 1], "void") &&
        IsPunct(t[j + 2], ')')) {
      void_cast = true;
      j += 3;
    }
    if (j >= t.size() || t[j].kind != Tok::kIdent) return i;
    if (kStmtKeywords.count(t[j].text) || t[j].text == "return" ||
        t[j].text == "co_return" || t[j].text == "throw" ||
        t[j].text == "delete" || t[j].text == "new" || t[j].text == "case" ||
        t[j].text == "goto" || t[j].text == "break" ||
        t[j].text == "continue") {
      return i;
    }
    std::string callee;
    int call_line = t[j].line;
    while (j < t.size()) {
      if (t[j].kind != Tok::kIdent) return i;
      callee = t[j].text;
      call_line = t[j].line;
      j++;
      if (j >= t.size()) return i;
      if (IsPunct(t[j], '(')) break;
      // Chain links: :: . ->
      if (IsPunct(t[j], ':') && j + 1 < t.size() && IsPunct(t[j + 1], ':')) {
        j += 2;
        continue;
      }
      if (IsPunct(t[j], '.')) {
        j += 1;
        continue;
      }
      if (IsPunct(t[j], '-') && j + 1 < t.size() && IsPunct(t[j + 1], '>')) {
        j += 2;
        continue;
      }
      return i;  // not a plain call chain (assignment, declaration, ...)
    }
    size_t close = SkipParens(toks(), j);
    if (close >= t.size() || !IsPunct(t[close], ';')) return i;
    fn->discarded_calls.push_back({callee, call_line, void_cast});
    return close + 1;
  }

  // ---- event pass (call graph / interprocedural checks) -------------------
  //
  // A second linear walk over the body range that records the ordered
  // BodyEvent stream: call sites, lock acquire/unlock/wait, blocking
  // primitives, RAII-guard construction patterns, and cancellation probes.
  // Deliberately separate from ScanBody so the v1 model is untouched.

  static bool IsLockType(const std::string& s) {
    return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
           s == "shared_lock";
  }

  /// Callee names that are language keywords, never project calls.
  static bool IsCallExcluded(const std::string& s) {
    static const std::set<std::string> kExcluded = {
        "if",       "while",    "for",     "switch",  "return", "co_return",
        "throw",    "new",      "delete",  "case",    "goto",   "sizeof",
        "decltype", "alignof",  "noexcept", "catch",  "defined", "else",
        "do",       "static_assert", "assert"};
    return kExcluded.count(s) > 0;
  }

  /// Arity of the call whose '(' is at `open`: top-level commas + 1, 0 for
  /// an empty argument list.
  int CallArity(size_t open) {
    const auto& t = toks();
    size_t close = SkipParens(toks(), open);
    if (close == open + 2) return 0;
    int commas = 0, pd = 0;
    for (size_t j = open + 1; j + 1 < close && j < t.size(); j++) {
      if (IsPunct(t[j], '(') || IsPunct(t[j], '[') || IsPunct(t[j], '{')) pd++;
      if (IsPunct(t[j], ')') || IsPunct(t[j], ']') || IsPunct(t[j], '}')) pd--;
      if (IsPunct(t[j], ',') && pd == 0) commas++;
    }
    return commas + 1;
  }

  void EventPass(size_t body_open, size_t body_end, FunctionModel* fn) {
    const auto& t = toks();
    int depth = 0;
    int paren_depth = 0;
    int pending_loop = 0;    // loop heads awaiting their body
    int pending_lambda = 0;  // lambda intros awaiting their body '{'
    std::vector<int> loop_depths;    // depth of each open loop block
    std::vector<int> lambda_depths;  // depth of each open lambda body
    auto loop_depth = [&]() {
      return static_cast<int>(loop_depths.size()) + (pending_loop > 0 ? 1 : 0);
    };
    auto in_lambda = [&]() { return !lambda_depths.empty(); };
    auto push_event = [&](BodyEvent::Kind kind, std::string what, int line,
                          size_t call_index = 0, bool scoped = true) {
      BodyEvent e;
      e.kind = kind;
      e.what = std::move(what);
      e.index = call_index;
      e.line = line;
      e.depth = depth;
      e.loop_depth = loop_depth();
      e.in_lambda = in_lambda();
      e.scoped = scoped;
      fn->events.push_back(std::move(e));
    };

    size_t i = body_open;
    while (i < body_end && i < t.size()) {
      const Token& tok = t[i];
      if (IsPunct(tok, '{')) {
        depth++;
        if (pending_loop > 0) {
          loop_depths.push_back(depth);
          pending_loop--;
        }
        if (pending_lambda > 0) {
          lambda_depths.push_back(depth);
          pending_lambda--;
        }
        i++;
        continue;
      }
      if (IsPunct(tok, '}')) {
        while (!loop_depths.empty() && loop_depths.back() == depth)
          loop_depths.pop_back();
        while (!lambda_depths.empty() && lambda_depths.back() == depth)
          lambda_depths.pop_back();
        depth--;
        // Record the dip: a scoped guard acquired at depth > `depth` is
        // dead from here on, even if the next real event sits in a sibling
        // block at the same depth as the acquire. Coalesce consecutive
        // closes into one low-water-mark event.
        if (!fn->events.empty() && fn->events.back().depth > depth) {
          if (fn->events.back().kind == BodyEvent::kScopeExit) {
            fn->events.back().depth = depth;
          } else {
            push_event(BodyEvent::kScopeExit, "", tok.line);
          }
        }
        i++;
        continue;
      }
      if (IsPunct(tok, '(')) {
        paren_depth++;
        i++;
        continue;
      }
      if (IsPunct(tok, ')')) {
        paren_depth--;
        i++;
        continue;
      }
      if (IsPunct(tok, ';')) {
        if (paren_depth == 0) pending_loop = 0;  // stmt-form loop body ended
        i++;
        continue;
      }
      // Lambda intro: '[' in expression position (not subscript, not
      // attribute, not array declarator). If tokens after the matching ']'
      // begin a parameter list or body, a lambda body '{' is coming.
      if (IsPunct(tok, '[')) {
        bool attr = i + 1 < t.size() && IsPunct(t[i + 1], '[');
        bool subscript = false;
        if (i > 0) {
          const Token& p = t[i - 1];
          if (IsPunct(p, ')') || IsPunct(p, ']')) subscript = true;
          if (p.kind == Tok::kIdent && !kStmtKeywords.count(p.text) &&
              p.text != "return" && p.text != "co_return" &&
              p.text != "case" && p.text != "throw") {
            subscript = true;
          }
        }
        if (!attr && !subscript) {
          size_t j = i + 1;
          for (size_t steps = 0; j < body_end && steps < 32 &&
                                 !IsPunct(t[j], ']');
               j++, steps++) {
          }
          if (j < body_end && IsPunct(t[j], ']') && j + 1 < body_end &&
              (IsPunct(t[j + 1], '(') || IsPunct(t[j + 1], '{'))) {
            pending_lambda++;
          }
        }
        i++;
        continue;
      }
      if (tok.kind != Tok::kIdent) {
        i++;
        continue;
      }
      // Loop heads. `while`/`for`/`do` open a loop region; infinite forms
      // are noted for the cancellation-coverage check. Conditions are NOT
      // skipped: calls inside them belong to the loop.
      if (tok.text == "while" || tok.text == "for" || tok.text == "do") {
        pending_loop++;
        if (tok.text == "while" && i + 3 < t.size() && IsPunct(t[i + 1], '(') &&
            (Is(t[i + 2], "true") ||
             (t[i + 2].kind == Tok::kNumber && t[i + 2].text == "1")) &&
            IsPunct(t[i + 3], ')')) {
          fn->has_infinite_loop = true;
        }
        if (tok.text == "for" && i + 4 < t.size() && IsPunct(t[i + 1], '(') &&
            IsPunct(t[i + 2], ';') && IsPunct(t[i + 3], ';') &&
            IsPunct(t[i + 4], ')')) {
          fn->has_infinite_loop = true;
        }
        i++;
        continue;
      }
      // Guard-type handling: named declarations map guard var -> mutex and
      // emit kAcquire (lock types); unnamed temporaries / `new` allocations
      // of any guard type are raii-leak events.
      bool member_access =
          i > 0 && (IsPunct(t[i - 1], '.') ||
                    (i > 1 && IsPunct(t[i - 1], '>') && IsPunct(t[i - 2], '-')));
      if (kGuardTypes.count(tok.text) && !member_access &&
          !(i > 0 && Is(t[i - 1], "new"))) {
        size_t j = i + 1;
        if (j < t.size() && IsPunct(t[j], '<')) j = SkipAngles(toks(), j);
        if (j < t.size() && t[j].kind == Tok::kIdent && j + 1 < t.size() &&
            (IsPunct(t[j + 1], '(') || IsPunct(t[j + 1], '{'))) {
          // Named declaration: `unique_lock<mutex> lk(mu_);`
          std::string var = t[j].text;
          if (IsLockType(tok.text) && IsPunct(t[j + 1], '(')) {
            size_t close = SkipParens(toks(), j + 1);
            RecordGuardAcquireEvents(tok.text, var, j + 2, close - 1,
                                     tok.line, fn, push_event);
            i = close;
            continue;
          }
          i = j + 1;
          continue;
        }
        bool stmt_head = i > 0 && (IsPunct(t[i - 1], ';') ||
                                   IsPunct(t[i - 1], '{') ||
                                   IsPunct(t[i - 1], '}')) ;
        if (!stmt_head && i > 1 && IsPunct(t[i - 1], ':') &&
            IsPunct(t[i - 2], ':') && i > 2 && Is(t[i - 3], "std") &&
            (i == 3 || IsPunct(t[i - 4], ';') || IsPunct(t[i - 4], '{') ||
             IsPunct(t[i - 4], '}'))) {
          stmt_head = true;  // `std::lock_guard...` at a statement start
        }
        if (stmt_head && j < t.size() &&
            (IsPunct(t[j], '(') || IsPunct(t[j], '{'))) {
          // Unnamed temporary statement: guard dies immediately.
          size_t close;
          if (IsPunct(t[j], '(')) {
            close = SkipParens(toks(), j);
          } else {
            int d = 0;
            close = j;
            while (close < t.size()) {
              if (IsPunct(t[close], '{')) d++;
              if (IsPunct(t[close], '}')) {
                d--;
                if (d == 0) {
                  close++;
                  break;
                }
              }
              close++;
            }
          }
          if (close < t.size() && IsPunct(t[close], ';')) {
            push_event(BodyEvent::kRaiiTemp, tok.text, tok.line);
            i = close;
            continue;
          }
        }
        i++;
        continue;
      }
      // `new` of a guard type: leaks on any early-return path.
      if (tok.text == "new") {
        size_t j = i + 1;
        std::string last;
        while (j < t.size() && t[j].kind == Tok::kIdent) {
          last = t[j].text;
          j++;
          if (j + 1 < t.size() && IsPunct(t[j], ':') && IsPunct(t[j + 1], ':')) {
            j += 2;
            continue;
          }
          break;
        }
        if (kGuardTypes.count(last)) {
          push_event(BodyEvent::kRaiiNew, last, tok.line);
        }
        i = j;
        continue;
      }
      bool called = i + 1 < t.size() && IsPunct(t[i + 1], '(');
      // Explicit .lock()/.unlock()/.join() and cv waits.
      if (member_access && called) {
        size_t recv_at = IsPunct(t[i - 1], '.') ? i - 2 : i - 3;
        std::string recv = (recv_at < t.size() &&
                            t[recv_at].kind == Tok::kIdent)
                               ? t[recv_at].text
                               : "";
        if (tok.text == "lock" && !recv.empty()) {
          push_event(BodyEvent::kAcquire, recv, tok.line, 0, /*scoped=*/false);
          i += 2;
          continue;
        }
        if (tok.text == "unlock" && !recv.empty()) {
          push_event(BodyEvent::kUnlock, recv, tok.line);
          i += 2;
          continue;
        }
        if (tok.text == "join") {
          push_event(BodyEvent::kJoin, recv, tok.line);
          i += 2;
          continue;
        }
        if (tok.text == "wait" || tok.text == "wait_for" ||
            tok.text == "wait_until") {
          // First identifier argument is the lock variable.
          std::string lockvar;
          size_t close = SkipParens(toks(), i + 1);
          for (size_t k = i + 2; k < close && k < t.size(); k++) {
            if (t[k].kind == Tok::kIdent) {
              lockvar = t[k].text;
              break;
            }
            if (IsPunct(t[k], ',')) break;
          }
          push_event(BodyEvent::kWait, lockvar, tok.line);
          i += 2;  // keep scanning inside the args (predicate lambdas)
          continue;
        }
      }
      if (called && (tok.text == "sleep_for" || tok.text == "sleep_until")) {
        push_event(BodyEvent::kSleep, tok.text, tok.line);
        i += 2;
        continue;
      }
      if (called && (tok.text == "fsync" || tok.text == "fdatasync")) {
        push_event(BodyEvent::kFsync, tok.text, tok.line);
        i += 2;
        continue;
      }
      // Cancellation probes: called or read as a flag.
      if (kProbeNames.count(tok.text)) {
        push_event(BodyEvent::kProbe, tok.text, tok.line);
        i++;
        continue;
      }
      // Generic call site: `name(` that is not a declaration (`Type name(`)
      // and not a keyword.
      if (called && !IsCallExcluded(tok.text)) {
        if (i > 0) {
          const Token& p = t[i - 1];
          bool decl_like = p.kind == Tok::kIdent && !IsCallExcluded(p.text) &&
                           !kDeclSpecifiers.count(p.text) && p.text != "new";
          bool after_new = Is(p, "new");
          if (decl_like || after_new) {
            i++;
            continue;
          }
        }
        CallSite cs;
        cs.name = tok.text;
        cs.arity = CallArity(i + 1);
        cs.line = tok.line;
        cs.depth = depth;
        cs.loop_depth = loop_depth();
        cs.in_lambda = in_lambda();
        // Qualifier: `A::B::name(` — collect the ident chain backwards.
        if (i > 1 && IsPunct(t[i - 1], ':') && IsPunct(t[i - 2], ':')) {
          std::vector<std::string> parts;
          size_t k = i;
          while (k > 2 && IsPunct(t[k - 1], ':') && IsPunct(t[k - 2], ':') &&
                 t[k - 3].kind == Tok::kIdent) {
            parts.insert(parts.begin(), t[k - 3].text);
            k -= 3;
          }
          for (size_t pi = 0; pi < parts.size(); pi++) {
            if (pi) cs.qual += "::";
            cs.qual += parts[pi];
          }
        } else if (member_access) {
          size_t recv_at = IsPunct(t[i - 1], '.') ? i - 2 : i - 3;
          if (recv_at < t.size() && t[recv_at].kind == Tok::kIdent) {
            cs.recv = t[recv_at].text;
          }
        }
        push_event(BodyEvent::kCall, tok.text, tok.line, fn->calls.size());
        fn->calls.push_back(std::move(cs));
        i++;
        continue;
      }
      i++;
    }
  }

  /// Emit kAcquire events for the mutex args of a named lock-guard
  /// declaration, mirroring RecordAcquisitionArgs semantics (defer_lock
  /// cancels, adopt_lock/std skipped), and map the guard var to its mutex.
  template <typename PushEvent>
  void RecordGuardAcquireEvents(const std::string& guard_type,
                                const std::string& var, size_t from, size_t to,
                                int line, FunctionModel* fn,
                                PushEvent& push_event) {
    const auto& t = toks();
    int paren = 0;
    std::string last;
    bool deferred = false;
    std::vector<std::string> mutexes;
    auto flush = [&]() {
      if (last.empty()) return;
      if (last == "defer_lock" || last == "try_to_lock") {
        deferred = true;
        return;
      }
      if (last == "adopt_lock" || last == "std") return;
      mutexes.push_back(last);
      last.clear();
    };
    for (size_t j = from; j < to && j < t.size(); j++) {
      if (IsPunct(t[j], '(')) paren++;
      if (IsPunct(t[j], ')')) paren--;
      if (IsPunct(t[j], ',') && paren == 0) {
        flush();
        last.clear();
        continue;
      }
      if (t[j].kind == Tok::kIdent) last = t[j].text;
    }
    flush();
    if (!mutexes.empty() && !var.empty()) {
      fn->guard_vars.emplace(var, mutexes.front());
    }
    if (deferred && !mutexes.empty()) mutexes.pop_back();
    (void)guard_type;
    for (const auto& m : mutexes) {
      push_event(BodyEvent::kAcquire, m, line);
    }
  }

  FileModel model_;
  std::vector<Scope> scopes_;
};

}  // namespace

FileModel ScanFile(const std::string& repo_rel_path, LexedFile lexed) {
  Scanner s(repo_rel_path, std::move(lexed));
  return s.Run();
}

}  // namespace axlint
