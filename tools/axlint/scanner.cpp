#include "axlint/scanner.h"

#include <algorithm>

namespace axlint {

namespace {

bool Is(const Token& t, const char* s) { return t.text == s; }
bool IsPunct(const Token& t, char c) {
  return t.kind == Tok::kPunct && t.text[0] == c;
}

const std::set<std::string> kDeclSpecifiers = {
    "static",   "virtual", "inline",  "explicit", "constexpr", "mutable",
    "friend",   "typename", "const",  "volatile", "extern",    "consteval",
    "constinit", "thread_local"};

const std::set<std::string> kStmtKeywords = {"if",     "while", "for",
                                             "switch", "else",  "do"};

/// Advance past a balanced (), starting at the '(' index. Returns the index
/// one past the matching ')'.
size_t SkipParens(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); i++) {
    if (IsPunct(toks[i], '(')) depth++;
    if (IsPunct(toks[i], ')')) {
      depth--;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// Advance past balanced <...> template args starting at '<'. Heuristic:
/// bails (returning the start) if no matching '>' within 64 tokens, which
/// distinguishes templates from less-than in practice.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  size_t start = i;
  int depth = 0;
  for (size_t steps = 0; i < toks.size() && steps < 64; i++, steps++) {
    if (IsPunct(toks[i], '<')) depth++;
    if (IsPunct(toks[i], '>')) {
      depth--;
      if (depth == 0) return i + 1;
    }
    if (IsPunct(toks[i], ';') || IsPunct(toks[i], '{')) break;
  }
  return start;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
  std::string name;  // class name for kClass
};

class Scanner {
 public:
  Scanner(const std::string& path, LexedFile lexed) {
    model_.path = path;
    model_.module = ModuleOf(path);
    model_.lexed = std::move(lexed);
  }

  FileModel Run() {
    LinearPasses();
    StructuralPass();
    return std::move(model_);
  }

 private:
  static std::string ModuleOf(const std::string& path) {
    if (path.rfind("src/", 0) != 0) return "";
    size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return "";
    return path.substr(4, slash - 4);
  }

  const std::vector<Token>& toks() const { return model_.lexed.tokens; }

  // ---- linear passes: metrics + determinism -------------------------------

  void LinearPasses() {
    const auto& t = toks();
    for (size_t i = 0; i < t.size(); i++) {
      if (t[i].kind == Tok::kIdent &&
          (t[i].text == "GetCounter" || t[i].text == "GetHistogram") &&
          i + 2 < t.size() && IsPunct(t[i + 1], '(') &&
          t[i + 2].kind == Tok::kString) {
        model_.metrics.push_back({t[i + 2].text, t[i + 2].line});
      }
      if (t[i].kind != Tok::kIdent) continue;
      // Preceded by . -> or :: means a member/qualified name, not libc.
      bool qualified = false;
      if (i > 0) {
        if (IsPunct(t[i - 1], '.') || IsPunct(t[i - 1], ':')) qualified = true;
        if (i > 1 && IsPunct(t[i - 1], '>') && IsPunct(t[i - 2], '-'))
          qualified = true;
      }
      bool called = i + 1 < t.size() && IsPunct(t[i + 1], '(');
      if (!qualified && called && (t[i].text == "rand" || t[i].text == "srand" ||
                                   t[i].text == "time")) {
        model_.determinism.push_back({t[i].text, t[i].line});
      }
      if (t[i].text == "random_device") {
        model_.determinism.push_back({t[i].text, t[i].line});
      }
      if (t[i].text == "system_clock" && i + 3 < t.size() &&
          IsPunct(t[i + 1], ':') && IsPunct(t[i + 2], ':') &&
          t[i + 3].text == "now") {
        model_.determinism.push_back({"system_clock::now", t[i].line});
      }
    }
  }

  // ---- structural pass ----------------------------------------------------

  std::string ClassContext() const {
    std::string out;
    for (const auto& s : scopes_) {
      if (s.kind == Scope::kClass) {
        if (!out.empty()) out += "::";
        out += s.name;
      }
    }
    return out;
  }

  ClassModel* CurrentClass() {
    if (scopes_.empty() || scopes_.back().kind != Scope::kClass) return nullptr;
    std::string q = ClassContext();
    for (auto& c : model_.classes) {
      if (c.qualified == q) return &c;
    }
    return nullptr;
  }

  void StructuralPass() {
    const auto& t = toks();
    size_t i = 0;
    while (i < t.size()) {
      if (IsPunct(t[i], '}')) {
        if (!scopes_.empty()) scopes_.pop_back();
        i++;
        // Consume a trailing ';' after class bodies.
        if (i < t.size() && IsPunct(t[i], ';')) i++;
        continue;
      }
      if (IsPunct(t[i], '{')) {  // stray block (e.g. extern "C")
        scopes_.push_back({Scope::kBlock, ""});
        i++;
        continue;
      }
      if (t[i].kind == Tok::kIdent && Is(t[i], "namespace")) {
        i = ScanNamespace(i);
        continue;
      }
      if (t[i].kind == Tok::kIdent && Is(t[i], "template")) {
        i++;
        if (i < t.size() && IsPunct(t[i], '<')) i = SkipAngles(toks(), i);
        continue;
      }
      if (t[i].kind == Tok::kIdent && Is(t[i], "enum")) {
        i = SkipEnum(i);
        continue;
      }
      if (t[i].kind == Tok::kIdent &&
          (Is(t[i], "class") || Is(t[i], "struct")) && !InFunction()) {
        i = ScanClassHead(i);
        continue;
      }
      if (t[i].kind == Tok::kIdent &&
          (Is(t[i], "using") || Is(t[i], "typedef"))) {
        while (i < t.size() && !IsPunct(t[i], ';')) i++;
        i++;
        continue;
      }
      i = ScanDeclaration(i);
    }
  }

  bool InFunction() const {
    for (const auto& s : scopes_) {
      if (s.kind == Scope::kFunction) return true;
    }
    return false;
  }

  size_t ScanNamespace(size_t i) {
    const auto& t = toks();
    i++;  // 'namespace'
    while (i < t.size() && !IsPunct(t[i], '{') && !IsPunct(t[i], ';')) i++;
    if (i < t.size() && IsPunct(t[i], '{')) {
      scopes_.push_back({Scope::kNamespace, ""});
      i++;
    } else {
      i++;  // namespace alias
    }
    return i;
  }

  size_t SkipEnum(size_t i) {
    const auto& t = toks();
    while (i < t.size() && !IsPunct(t[i], '{') && !IsPunct(t[i], ';')) i++;
    if (i < t.size() && IsPunct(t[i], '{')) {
      int depth = 0;
      for (; i < t.size(); i++) {
        if (IsPunct(t[i], '{')) depth++;
        if (IsPunct(t[i], '}')) {
          depth--;
          if (depth == 0) {
            i++;
            break;
          }
        }
      }
    }
    while (i < t.size() && !IsPunct(t[i], ';')) i++;
    return i + 1;
  }

  size_t ScanClassHead(size_t i) {
    const auto& t = toks();
    const Token& keyword = t[i];
    i++;
    bool nodiscard = false;
    // Attributes between class-key and name: [[nodiscard]] etc.
    while (i + 1 < t.size() && IsPunct(t[i], '[') && IsPunct(t[i + 1], '[')) {
      size_t j = i + 2;
      while (j < t.size() && !IsPunct(t[j], ']')) {
        if (t[j].kind == Tok::kIdent && t[j].text == "nodiscard")
          nodiscard = true;
        j++;
      }
      while (j < t.size() && IsPunct(t[j], ']')) j++;
      i = j;
    }
    if (i >= t.size() || t[i].kind != Tok::kIdent) {
      // Anonymous struct or something exotic; treat '{' as block.
      while (i < t.size() && !IsPunct(t[i], '{') && !IsPunct(t[i], ';')) i++;
      if (i < t.size() && IsPunct(t[i], '{')) {
        scopes_.push_back({Scope::kBlock, ""});
        i++;
      } else {
        i++;
      }
      return i;
    }
    std::string name = t[i].text;
    int line = t[i].line;
    i++;
    // Out-of-line nested definitions: `struct Registry::Impl { ... }`.
    while (i + 2 < t.size() && IsPunct(t[i], ':') && IsPunct(t[i + 1], ':') &&
           t[i + 2].kind == Tok::kIdent) {
      name += "::" + t[i + 2].text;
      i += 3;
    }
    // Skip to '{' (base clause, final) or ';' (forward decl) or other
    // (e.g. a variable of elaborated type: `class Foo x;`).
    size_t probe = i;
    int angle = 0;
    while (probe < t.size()) {
      if (IsPunct(t[probe], '<')) angle++;
      if (IsPunct(t[probe], '>')) angle--;
      if (angle == 0 && (IsPunct(t[probe], '{') || IsPunct(t[probe], ';') ||
                         IsPunct(t[probe], ')') || IsPunct(t[probe], '=')))
        break;
      probe++;
    }
    if (probe >= t.size() || !IsPunct(t[probe], '{')) {
      return i;  // forward declaration / elaborated type use
    }
    scopes_.push_back({Scope::kClass, name});
    ClassModel c;
    c.name = name;
    c.qualified = ClassContext();
    c.line = line;
    c.keyword_offset = keyword.offset;
    c.nodiscard = nodiscard;
    model_.classes.push_back(std::move(c));
    return probe + 1;
  }

  /// Scan one declaration at class/namespace scope: a member variable, a
  /// function declaration, or a function definition (whose body is then
  /// scanned). Returns the index one past the declaration.
  size_t ScanDeclaration(size_t start) {
    const auto& t = toks();
    size_t i = start;
    size_t first_paren = 0;      // index of the parameter-list '('
    size_t after_params = 0;     // index one past the matching ')'
    bool saw_guarded_by = false;
    int paren_depth = 0;
    size_t end = start;
    // Walk to the declaration terminator: ';' at depth 0, or a '{' that
    // follows a closed parameter list (function body) — a '{' without any
    // preceding parens is a brace-initialized member.
    while (i < t.size()) {
      const Token& tok = t[i];
      if (tok.kind == Tok::kIdent &&
          (tok.text == "AX_GUARDED_BY" || tok.text == "AX_PT_GUARDED_BY")) {
        saw_guarded_by = true;
        RecordGuardedBy(i);
        i = SkipParens(toks(), i + 1);
        continue;
      }
      if (IsPunct(tok, '(')) {
        if (first_paren == 0 && paren_depth == 0) {
          first_paren = i;
          i = SkipParens(toks(), i);
          after_params = i;
          continue;
        }
        paren_depth++;
      } else if (IsPunct(tok, ')')) {
        paren_depth--;
      } else if (IsPunct(tok, ';') && paren_depth == 0) {
        end = i;
        break;
      } else if (IsPunct(tok, '{') && paren_depth == 0) {
        if (first_paren == 0 || saw_guarded_by) {
          // Brace-initialized member: std::atomic<bool> running_{false};
          int d = 0;
          while (i < t.size()) {
            if (IsPunct(t[i], '{')) d++;
            if (IsPunct(t[i], '}')) {
              d--;
              if (d == 0) break;
            }
            i++;
          }
          i++;
          continue;
        }
        // Function body (possibly after a constructor init list).
        return ScanFunctionDef(start, first_paren, after_params, i);
      } else if (IsPunct(tok, ':') && paren_depth == 0 && first_paren != 0 &&
                 i > 0 && !IsPunct(t[i - 1], ':') &&
                 (i + 1 >= t.size() || !IsPunct(t[i + 1], ':'))) {
        // Constructor init list: skip to the body '{'.
        size_t body = SkipInitList(i + 1);
        if (body < t.size() && IsPunct(t[body], '{')) {
          return ScanFunctionDef(start, first_paren, after_params, body);
        }
        i = body;
        continue;
      }
      i++;
    }
    if (i >= t.size()) return i;
    // Terminated by ';': classify.
    if (first_paren != 0 && !saw_guarded_by) {
      RecordFunctionDecl(start, first_paren, after_params, end);
    } else {
      RecordMemberDecl(start, end);
    }
    return end + 1;
  }

  /// From the token after the ctor ':', skip `name(init)` / `name{init}`
  /// elements until the body '{'. Returns the body '{' index.
  size_t SkipInitList(size_t i) {
    const auto& t = toks();
    while (i < t.size()) {
      // member name (possibly templated base class Foo<T>)
      while (i < t.size() && (t[i].kind == Tok::kIdent || IsPunct(t[i], ':')))
        i++;
      if (i < t.size() && IsPunct(t[i], '<')) i = SkipAngles(toks(), i);
      if (i >= t.size()) break;
      if (IsPunct(t[i], '(')) {
        i = SkipParens(toks(), i);
      } else if (IsPunct(t[i], '{')) {
        int d = 0;
        while (i < t.size()) {
          if (IsPunct(t[i], '{')) d++;
          if (IsPunct(t[i], '}')) {
            d--;
            if (d == 0) {
              i++;
              break;
            }
          }
          i++;
        }
      } else {
        break;
      }
      if (i < t.size() && IsPunct(t[i], ',')) {
        i++;
        continue;
      }
      break;
    }
    return i;
  }

  RetKind ClassifyReturn(size_t start, size_t name_end) {
    const auto& t = toks();
    size_t i = start;
    if (i < t.size() && Is(t[i], "template")) {
      i++;
      if (i < t.size() && IsPunct(t[i], '<')) i = SkipAngles(toks(), i);
    }
    while (i < name_end) {
      if (t[i].kind == Tok::kIdent && !kDeclSpecifiers.count(t[i].text)) {
        if (t[i].text == "Status") return RetKind::kStatus;
        if (t[i].text == "Result") return RetKind::kResult;
        return RetKind::kOther;
      }
      if (IsPunct(t[i], '[')) {  // attribute
        while (i < name_end && !IsPunct(t[i], ']')) i++;
        while (i < name_end && IsPunct(t[i], ']')) i++;
        continue;
      }
      i++;
    }
    return RetKind::kOther;
  }

  /// The callable name is the identifier chain just before `paren`:
  /// A::B::Name. Returns {name, class_path} ("", "" if not a plain name).
  std::pair<std::string, std::string> NameBefore(size_t paren) {
    const auto& t = toks();
    if (paren == 0) return {"", ""};
    size_t i = paren;
    std::vector<std::string> parts;
    while (i > 0) {
      --i;
      if (t[i].kind != Tok::kIdent) break;
      parts.insert(parts.begin(), t[i].text);
      if (i >= 2 && IsPunct(t[i - 1], ':') && IsPunct(t[i - 2], ':')) {
        i -= 2;
        continue;
      }
      break;
    }
    if (parts.empty()) return {"", ""};
    std::string name = parts.back();
    parts.pop_back();
    std::string cls;
    for (const auto& p : parts) {
      if (!cls.empty()) cls += "::";
      cls += p;
    }
    return {name, cls};
  }

  void RecordFunctionDecl(size_t start, size_t paren, size_t after_params,
                          size_t end) {
    auto [name, cls] = NameBefore(paren);
    if (name.empty() || name == "operator") return;
    RetKind ret = ClassifyReturn(start, paren);
    model_.declared.push_back({name, ret, toks()[paren].line});
    // AX_REQUIRES on the declaration (the normal header convention).
    std::vector<std::string> reqs = RequiresArgs(after_params, end);
    if (!reqs.empty()) {
      std::string ctx = ClassContext();
      if (!cls.empty()) ctx = ctx.empty() ? cls : ctx + "::" + cls;
      std::string qualified = ctx.empty() ? name : ctx + "::" + name;
      model_.declared_requires[qualified] = std::move(reqs);
    }
  }

  std::vector<std::string> RequiresArgs(size_t from, size_t to) {
    const auto& t = toks();
    std::vector<std::string> out;
    for (size_t i = from; i < to && i < t.size(); i++) {
      if (t[i].kind == Tok::kIdent && (t[i].text == "AX_REQUIRES" ||
                                       t[i].text == "AX_REQUIRES_SHARED")) {
        size_t close = SkipParens(toks(), i + 1);
        // Split args on top-level commas; keep the last identifier of each.
        size_t a = i + 2;
        int depth = 0;
        std::string last;
        for (size_t j = a; j < close; j++) {
          if (IsPunct(t[j], '(')) depth++;
          if (IsPunct(t[j], ')')) {
            if (depth == 0) break;
            depth--;
          }
          if (IsPunct(t[j], ',') && depth == 0) {
            if (!last.empty()) out.push_back(last);
            last.clear();
            continue;
          }
          if (t[j].kind == Tok::kIdent) last = t[j].text;
        }
        if (!last.empty()) out.push_back(last);
      }
    }
    return out;
  }

  void RecordGuardedBy(size_t macro_idx) {
    const auto& t = toks();
    size_t close = SkipParens(toks(), macro_idx + 1);
    std::string last;
    for (size_t j = macro_idx + 2; j + 1 < close + 1 && j < t.size(); j++) {
      if (j >= close) break;
      if (t[j].kind == Tok::kIdent) last = t[j].text;
    }
    if (last.empty()) return;
    // Attach to the innermost class scope.
    ClassModel* c = CurrentClass();
    if (c != nullptr) c->guarded_by_args.insert(last);
  }

  void RecordMemberDecl(size_t start, size_t end) {
    const auto& t = toks();
    // Find `std :: mutex NAME` or `std :: shared_mutex NAME` (the project
    // convention; bare `mutex` typedefs are not used).
    for (size_t i = start; i + 1 < end; i++) {
      if (t[i].kind == Tok::kIdent &&
          (t[i].text == "mutex" || t[i].text == "shared_mutex") &&
          t[i + 1].kind == Tok::kIdent) {
        ClassModel* c = CurrentClass();
        std::string qualified = ClassContext();
        qualified = qualified.empty() ? t[i + 1].text
                                      : qualified + "::" + t[i + 1].text;
        MutexMember m{t[i + 1].text, qualified, t[i + 1].line};
        if (c != nullptr) {
          c->mutexes.push_back(m);
        }
        break;
      }
    }
  }

  size_t ScanFunctionDef(size_t start, size_t paren, size_t after_params,
                         size_t body_open) {
    const auto& t = toks();
    auto [name, cls] = NameBefore(paren);
    FunctionModel fn;
    fn.name = name;
    fn.line = t[paren].line;
    std::string ctx = ClassContext();
    if (!cls.empty()) ctx = ctx.empty() ? cls : ctx + "::" + cls;
    fn.class_ctx = ctx;
    fn.qualified = ctx.empty() ? name : ctx + "::" + name;
    fn.requires_args = RequiresArgs(after_params, body_open);
    if (!name.empty()) {
      model_.declared.push_back({name, ClassifyReturn(start, paren),
                                 t[paren].line});
    }
    size_t i = ScanBody(body_open, &fn);
    if (!name.empty()) model_.functions.push_back(std::move(fn));
    return i;
  }

  /// Scan a function body from its '{'. Returns the index one past the
  /// matching '}'. Records acquisitions and discarded calls.
  size_t ScanBody(size_t body_open, FunctionModel* fn) {
    const auto& t = toks();
    int depth = 0;
    size_t i = body_open;
    bool stmt_start = false;
    std::vector<std::pair<int, size_t>> held_scope;  // (depth, acq index)
    while (i < t.size()) {
      const Token& tok = t[i];
      if (IsPunct(tok, '{')) {
        depth++;
        stmt_start = true;
        i++;
        continue;
      }
      if (IsPunct(tok, '}')) {
        depth--;
        stmt_start = true;
        i++;
        if (depth == 0) break;
        continue;
      }
      if (IsPunct(tok, ';')) {
        stmt_start = true;
        i++;
        continue;
      }
      // Lock acquisitions: std::lock_guard<...> v(mu); etc.
      if (tok.kind == Tok::kIdent &&
          (tok.text == "lock_guard" || tok.text == "unique_lock" ||
           tok.text == "scoped_lock" || tok.text == "shared_lock")) {
        size_t j = i + 1;
        if (j < t.size() && IsPunct(t[j], '<')) j = SkipAngles(toks(), j);
        if (j < t.size() && t[j].kind == Tok::kIdent &&
            j + 1 < t.size() && IsPunct(t[j + 1], '(')) {
          size_t close = SkipParens(toks(), j + 1);
          RecordAcquisitionArgs(j + 2, close - 1, depth, tok.line, fn);
          i = close;
          stmt_start = false;
          continue;
        }
      }
      // Explicit x.lock() / x->lock().
      if (tok.kind == Tok::kIdent && tok.text == "lock" && i > 0 &&
          i + 2 < t.size() && IsPunct(t[i + 1], '(') &&
          IsPunct(t[i + 2], ')')) {
        bool member = IsPunct(t[i - 1], '.') ||
                      (i > 1 && IsPunct(t[i - 1], '>') && IsPunct(t[i - 2], '-'));
        if (member) {
          // The mutex name is the identifier before the . or ->.
          size_t k = IsPunct(t[i - 1], '.') ? i - 1 : i - 2;
          if (k > 0 && t[k - 1].kind == Tok::kIdent) {
            fn->acquisitions.push_back(
                {t[k - 1].text, tok.line, depth, /*scoped=*/false});
          }
        }
        i += 3;
        stmt_start = false;
        continue;
      }
      // Discarded-call detection at statement starts.
      if (stmt_start) {
        size_t adv = TryDiscardedCall(i, fn);
        if (adv != i) {
          i = adv;
          stmt_start = true;  // consumed through ';'
          continue;
        }
        if (tok.kind == Tok::kIdent && kStmtKeywords.count(tok.text)) {
          i++;
          if (i < t.size() && IsPunct(t[i], '(')) i = SkipParens(toks(), i);
          stmt_start = true;  // the controlled statement follows
          continue;
        }
      }
      stmt_start = false;
      i++;
    }
    return i;
  }

  void RecordAcquisitionArgs(size_t from, size_t to, int depth, int line,
                             FunctionModel* fn) {
    const auto& t = toks();
    int paren = 0;
    std::string last;
    bool deferred = false;
    auto flush = [&]() {
      if (last.empty()) return;
      if (last == "defer_lock" || last == "try_to_lock") {
        deferred = true;
        return;
      }
      if (last == "adopt_lock" || last == "std") return;
      fn->acquisitions.push_back({last, line, depth, /*scoped=*/true});
      last.clear();
    };
    for (size_t j = from; j < to && j < t.size(); j++) {
      if (IsPunct(t[j], '(')) paren++;
      if (IsPunct(t[j], ')')) paren--;
      if (IsPunct(t[j], ',') && paren == 0) {
        flush();
        last.clear();
        continue;
      }
      if (t[j].kind == Tok::kIdent) last = t[j].text;
    }
    flush();
    if (deferred && !fn->acquisitions.empty()) fn->acquisitions.pop_back();
  }

  /// If tokens at `i` form `[(void)] ident(.|->|::ident)*( ... );`, record a
  /// discarded call and return the index one past the ';'. Otherwise return
  /// `i` unchanged.
  size_t TryDiscardedCall(size_t i, FunctionModel* fn) {
    const auto& t = toks();
    size_t j = i;
    bool void_cast = false;
    if (j + 2 < t.size() && IsPunct(t[j], '(') && Is(t[j + 1], "void") &&
        IsPunct(t[j + 2], ')')) {
      void_cast = true;
      j += 3;
    }
    if (j >= t.size() || t[j].kind != Tok::kIdent) return i;
    if (kStmtKeywords.count(t[j].text) || t[j].text == "return" ||
        t[j].text == "co_return" || t[j].text == "throw" ||
        t[j].text == "delete" || t[j].text == "new" || t[j].text == "case" ||
        t[j].text == "goto" || t[j].text == "break" ||
        t[j].text == "continue") {
      return i;
    }
    std::string callee;
    int call_line = t[j].line;
    while (j < t.size()) {
      if (t[j].kind != Tok::kIdent) return i;
      callee = t[j].text;
      call_line = t[j].line;
      j++;
      if (j >= t.size()) return i;
      if (IsPunct(t[j], '(')) break;
      // Chain links: :: . ->
      if (IsPunct(t[j], ':') && j + 1 < t.size() && IsPunct(t[j + 1], ':')) {
        j += 2;
        continue;
      }
      if (IsPunct(t[j], '.')) {
        j += 1;
        continue;
      }
      if (IsPunct(t[j], '-') && j + 1 < t.size() && IsPunct(t[j + 1], '>')) {
        j += 2;
        continue;
      }
      return i;  // not a plain call chain (assignment, declaration, ...)
    }
    size_t close = SkipParens(toks(), j);
    if (close >= t.size() || !IsPunct(t[close], ';')) return i;
    fn->discarded_calls.push_back({callee, call_line, void_cast});
    return close + 1;
  }

  FileModel model_;
  std::vector<Scope> scopes_;
};

}  // namespace

FileModel ScanFile(const std::string& repo_rel_path, LexedFile lexed) {
  Scanner s(repo_rel_path, std::move(lexed));
  return s.Run();
}

}  // namespace axlint
