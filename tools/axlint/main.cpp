// axlint CLI. Exit codes: 0 clean, 1 unbaselined findings, 2 usage/IO error.
#include <cstdio>
#include <string>

#include "axlint/driver.h"

namespace {

void Usage(FILE* to) {
  std::fprintf(to,
               "usage: axlint [options]\n"
               "  --root DIR          repo root to scan (default: .)\n"
               "  --baseline FILE     baseline file (default: "
               "tools/axlint/baseline.txt; '' disables)\n"
               "  --write-baseline    regenerate the baseline from current "
               "findings\n"
               "  --fix               apply mechanical fixes in place\n"
               "  --check NAME        run only this check (repeatable)\n"
               "  --cache-dir DIR     function-summary cache; warm runs "
               "re-analyze only\n"
               "                      changed files plus their reverse "
               "include closure\n"
               "  --since REV         report only findings in files changed "
               "since REV\n"
               "                      (git diff) plus their reverse include "
               "closure\n"
               "  --format FMT        output format: text (default), json, "
               "sarif\n"
               "  --list-checks       print the check registry and exit\n"
               "  -h, --help          this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  axlint::Options opts;
  std::string format = "text";
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "axlint: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opts.repo_root = need_value("--root");
    } else if (arg == "--baseline") {
      opts.baseline_path = need_value("--baseline");
    } else if (arg == "--write-baseline") {
      opts.write_baseline = true;
    } else if (arg == "--fix") {
      opts.fix = true;
    } else if (arg == "--check") {
      opts.only_checks.push_back(need_value("--check"));
    } else if (arg == "--cache-dir") {
      opts.cache_dir = need_value("--cache-dir");
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      opts.cache_dir = arg.substr(12);
    } else if (arg == "--since") {
      opts.since_rev = need_value("--since");
    } else if (arg.rfind("--since=", 0) == 0) {
      opts.since_rev = arg.substr(8);
    } else if (arg == "--format") {
      format = need_value("--format");
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--list-checks") {
      for (const axlint::CheckInfo& c : axlint::Checks()) {
        std::printf("%-22s %s\n", c.name, c.summary);
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "axlint: unknown argument '%s'\n", arg.c_str());
      Usage(stderr);
      return 2;
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "axlint: unknown --format '%s'\n", format.c_str());
    return 2;
  }

  axlint::RunResult res = axlint::RunAxlint(opts);
  if (res.io_error) {
    std::fprintf(stderr, "axlint: %s\n", res.error.c_str());
    return 2;
  }
  if (format == "json") {
    std::fputs(axlint::FormatFindingsJson(res).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(axlint::FormatFindingsSarif(res).c_str(), stdout);
  } else {
    for (const axlint::Finding& f : res.unbaselined) {
      std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.check.c_str(),
                  f.message.c_str());
    }
    if (res.fixes_applied > 0) {
      std::printf("axlint: applied %d fix(es)\n", res.fixes_applied);
    }
    std::printf(
        "axlint: %zu file(s), %zu analyzed, %zu finding(s) (%zu baselined)\n",
        res.files_scanned, res.files_analyzed,
        res.unbaselined.size() + res.baselined_count, res.baselined_count);
  }
  return res.unbaselined.empty() ? 0 : 1;
}
