// axlint call graph: resolves the per-function call sites recorded by the
// scanner into a project-wide graph and computes fixed-point function
// summaries (may-block, transitively-acquired ranked mutexes, cancellation
// coverage). Resolution is conservative and name-based — see DESIGN.md §4e
// "v2: interprocedural analysis" for the exact policy and its deliberate
// imprecision.
//
// Edge classes:
//   confident  — explicit `A::B::Name(...)` qualifiers, receivers whose
//                member type is known, same-class/base unqualified calls,
//                and project-unique names. Used by the lock checks, where a
//                wrong edge would fabricate findings.
//   candidates — name(+arity) matches when no confident target exists,
//                i.e. virtual dispatch through an unknown receiver. Used
//                only by cancellation-coverage, with must-ALL semantics: a
//                candidate call provides coverage only if every bodied
//                candidate is itself covered.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "axlint/scanner.h"

namespace axlint {

class CallGraph {
 public:
  struct Node {
    const FileModel* file = nullptr;
    const FunctionModel* fn = nullptr;
    // Parallel to fn->calls: resolved confident target, or -1.
    std::vector<int> confident;
    // Parallel to fn->calls: candidate targets when confident == -1.
    std::vector<std::vector<int>> candidates;
    // AX_REQUIRES mutexes (definition + declaration), resolved against the
    // rank table to qualified names. The caller holds these across the call.
    std::set<std::string> requires_q;
    int scc = -1;  // condensation component id (confident edges)

    // ---- summaries (fixed point over the SCC condensation) ----
    bool blocks = false;     // may execute a blocking primitive
    std::string blocks_why;  // first reason found, chained through callees
    // Qualified ranked mutex -> where it is (transitively) acquired.
    std::map<std::string, std::string> acquires;
    bool covered = false;  // transitively reaches a cancellation probe
    bool pumps = false;    // transitively calls a Next/NextBatch
  };

  static CallGraph Build(
      const std::vector<FileModel>& files,
      const std::map<std::string, int>& lock_ranks,
      const std::map<std::string, std::vector<std::string>>&
          requires_by_qualified);

  const std::vector<Node>& nodes() const { return nodes_; }
  /// Node id for a scanned function, -1 if the function is not in the graph.
  int IndexOf(const FunctionModel* fn) const;
  /// True when class `derived` (simple name) transitively lists `base` among
  /// its bases. Not reflexive.
  bool DerivesFrom(const std::string& derived, const std::string& base) const;
  size_t scc_count() const { return scc_count_; }

  /// Resolve a mutex expression seen inside `class_ctx` against the rank
  /// table: exact Class::expr first, then enclosing classes, then a unique
  /// `::expr` suffix. Returns the rank, -1 if unranked/ambiguous.
  static int ResolveMutexRank(const std::map<std::string, int>& ranks,
                              const std::string& class_ctx,
                              const std::string& expr, std::string* resolved);

 private:
  void ResolveCalls();
  void ComputeScc();
  void ComputeSummaries();

  const std::map<std::string, int>* lock_ranks_ = nullptr;

  std::vector<Node> nodes_;
  std::map<const FunctionModel*, int> index_;
  // Simple class name -> model (first definition wins).
  std::map<std::string, const ClassModel*> classes_;
  // Simple class name -> direct derived classes.
  std::map<std::string, std::set<std::string>> derived_of_;
  // "Class::Method" (full class_ctx and simple-name forms) -> node ids.
  std::map<std::string, std::vector<int>> by_qualified_;
  // Function name -> node ids (all), and free functions only.
  std::map<std::string, std::vector<int>> by_name_;
  std::map<std::string, std::vector<int>> free_by_name_;
  std::vector<int> scc_order_;  // node ids in SCC emission (bottom-up) order
  size_t scc_count_ = 0;
};

}  // namespace axlint
