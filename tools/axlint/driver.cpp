#include "axlint/driver.h"

#include "axlint/callgraph.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

namespace axlint {

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool HasExt(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".cpp" || e == ".cc";
}

/// Directories never scanned: generated trees, vendored code, and the
/// axlint test fixtures (which contain violations on purpose).
bool SkipDir(const std::string& name) {
  return name == "build" || name == "third_party" ||
         name == "axlint_fixtures" || name.rfind("cmake-build", 0) == 0;
}

std::vector<fs::path> DiscoverFiles(const fs::path& root) {
  std::vector<fs::path> out;
  for (const char* top : {"src", "tests", "bench"}) {
    fs::path dir = root / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, ec), end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && SkipDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && HasExt(it->path())) {
        out.push_back(it->path());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

// ---------------------------------------------------------------------------
// Summary cache. One text entry per file under --cache-dir, holding the
// scanned FileModel (no tokens, no contents) plus two hashes: the file's
// own content hash and the combined hash of its transitive include closure.
// A file is re-analyzed only when the combined hash changes, so editing a
// leaf header invalidates every dependent. Bump kCacheVersion whenever the
// serialized model shape changes.
// ---------------------------------------------------------------------------

constexpr uint64_t kCacheVersion = 4;

uint64_t Fnv1a(const std::string& s, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Fnv1a(std::to_string(b), a);
}

std::string CacheEntryName(const std::string& rel) {
  std::string out = rel;
  for (char& c : out) {
    if (c == '/' || c == '\\') c = '_';
  }
  return out + ".axcache";
}

// Empty strings round-trip as "-" (all serialized strings are identifiers
// or paths, never a lone dash).
std::string Enc(const std::string& s) { return s.empty() ? "-" : s; }
std::string Dec(const std::string& s) { return s == "-" ? "" : s; }

void SerializeModel(const FileModel& f, uint64_t own, uint64_t combined,
                    std::ostream& o) {
  o << "axlint-cache " << kCacheVersion << "\n";
  o << "hash " << own << " " << combined << "\n";
  o << "path " << Enc(f.path) << "\n";
  o << "module " << Enc(f.module) << "\n";
  o << "inc " << f.lexed.includes.size() << "\n";
  for (const IncludeLine& i : f.lexed.includes) {
    o << i.line << " " << (i.angled ? 1 : 0) << " " << Enc(i.path) << "\n";
  }
  o << "sup " << f.lexed.suppressions.size() << "\n";
  for (const Suppression& s : f.lexed.suppressions) {
    o << s.line << " " << s.checks.size();
    for (const std::string& c : s.checks) o << " " << c;
    o << "\n";
  }
  o << "cls " << f.classes.size() << "\n";
  for (const ClassModel& c : f.classes) {
    o << Enc(c.name) << " " << Enc(c.qualified) << " " << c.line << " "
      << c.keyword_offset << " " << (c.nodiscard ? 1 : 0) << " "
      << c.bases.size() << " " << c.mutexes.size() << " "
      << c.guarded_by_args.size() << " " << c.member_types.size() << "\n";
    for (const std::string& b : c.bases) o << b << "\n";
    for (const MutexMember& m : c.mutexes) {
      o << Enc(m.name) << " " << Enc(m.qualified) << " " << m.line << "\n";
    }
    for (const std::string& g : c.guarded_by_args) o << g << "\n";
    for (const auto& [k, v] : c.member_types) {
      o << Enc(k) << " " << Enc(v) << "\n";
    }
  }
  o << "fn " << f.functions.size() << "\n";
  for (const FunctionModel& fn : f.functions) {
    o << Enc(fn.name) << " " << Enc(fn.qualified) << " " << Enc(fn.class_ctx)
      << " " << fn.line << " " << fn.param_arity << " "
      << (fn.has_infinite_loop ? 1 : 0) << " " << fn.requires_args.size()
      << " " << fn.acquisitions.size() << " " << fn.discarded_calls.size()
      << " " << fn.calls.size() << " " << fn.events.size() << " "
      << fn.guard_vars.size() << "\n";
    for (const std::string& r : fn.requires_args) o << r << "\n";
    for (const Acquisition& a : fn.acquisitions) {
      o << Enc(a.mutex_expr) << " " << a.line << " " << a.depth << " "
        << (a.scoped ? 1 : 0) << "\n";
    }
    for (const DiscardedCall& d : fn.discarded_calls) {
      o << Enc(d.callee) << " " << d.line << " " << (d.void_cast ? 1 : 0)
        << "\n";
    }
    for (const CallSite& c : fn.calls) {
      o << Enc(c.name) << " " << Enc(c.qual) << " " << Enc(c.recv) << " "
        << c.arity << " " << c.line << " " << c.depth << " " << c.loop_depth
        << " " << (c.in_lambda ? 1 : 0) << "\n";
    }
    for (const BodyEvent& e : fn.events) {
      o << static_cast<int>(e.kind) << " " << Enc(e.what) << " " << e.index
        << " " << e.line << " " << e.depth << " " << e.loop_depth << " "
        << (e.in_lambda ? 1 : 0) << " " << (e.scoped ? 1 : 0) << "\n";
    }
    for (const auto& [k, v] : fn.guard_vars) {
      o << Enc(k) << " " << Enc(v) << "\n";
    }
  }
  o << "dec " << f.declared.size() << "\n";
  for (const DeclaredName& d : f.declared) {
    o << Enc(d.name) << " " << static_cast<int>(d.ret) << " " << d.line
      << "\n";
  }
  o << "met " << f.metrics.size() << "\n";
  for (const MetricLiteral& m : f.metrics) {
    o << Enc(m.name) << " " << m.line << "\n";
  }
  o << "det " << f.determinism.size() << "\n";
  for (const DeterminismUse& d : f.determinism) {
    o << Enc(d.what) << " " << d.line << "\n";
  }
  o << "req " << f.declared_requires.size() << "\n";
  for (const auto& [q, args] : f.declared_requires) {
    o << Enc(q) << " " << args.size();
    for (const std::string& a : args) o << " " << a;
    o << "\n";
  }
}

struct CacheEntry {
  uint64_t own_hash = 0;
  uint64_t combined_hash = 0;
  FileModel model;
};

/// Parse a cache entry; returns false on any mismatch (treated as a miss).
bool DeserializeModel(std::istream& in, CacheEntry* out) {
  std::string tag;
  uint64_t version = 0;
  if (!(in >> tag >> version) || tag != "axlint-cache" ||
      version != kCacheVersion) {
    return false;
  }
  if (!(in >> tag >> out->own_hash >> out->combined_hash) || tag != "hash") {
    return false;
  }
  FileModel& f = out->model;
  std::string s;
  if (!(in >> tag >> s) || tag != "path") return false;
  f.path = Dec(s);
  f.lexed.path = f.path;
  if (!(in >> tag >> s) || tag != "module") return false;
  f.module = Dec(s);
  size_t n = 0;
  if (!(in >> tag >> n) || tag != "inc") return false;
  for (size_t i = 0; i < n; i++) {
    IncludeLine inc;
    int angled = 0;
    if (!(in >> inc.line >> angled >> s)) return false;
    inc.angled = angled != 0;
    inc.path = Dec(s);
    f.lexed.includes.push_back(std::move(inc));
  }
  if (!(in >> tag >> n) || tag != "sup") return false;
  for (size_t i = 0; i < n; i++) {
    Suppression sup;
    size_t k = 0;
    if (!(in >> sup.line >> k)) return false;
    for (size_t j = 0; j < k; j++) {
      if (!(in >> s)) return false;
      sup.checks.insert(s);
    }
    f.lexed.suppressions.push_back(std::move(sup));
  }
  if (!(in >> tag >> n) || tag != "cls") return false;
  for (size_t i = 0; i < n; i++) {
    ClassModel c;
    size_t nb = 0, nm = 0, ng = 0, nt = 0;
    int nodiscard = 0;
    std::string name, qualified;
    if (!(in >> name >> qualified >> c.line >> c.keyword_offset >> nodiscard >>
          nb >> nm >> ng >> nt)) {
      return false;
    }
    c.name = Dec(name);
    c.qualified = Dec(qualified);
    c.nodiscard = nodiscard != 0;
    for (size_t j = 0; j < nb; j++) {
      if (!(in >> s)) return false;
      c.bases.push_back(s);
    }
    for (size_t j = 0; j < nm; j++) {
      MutexMember m;
      std::string mn, mq;
      if (!(in >> mn >> mq >> m.line)) return false;
      m.name = Dec(mn);
      m.qualified = Dec(mq);
      c.mutexes.push_back(std::move(m));
    }
    for (size_t j = 0; j < ng; j++) {
      if (!(in >> s)) return false;
      c.guarded_by_args.insert(s);
    }
    for (size_t j = 0; j < nt; j++) {
      std::string k, v;
      if (!(in >> k >> v)) return false;
      c.member_types.emplace(Dec(k), Dec(v));
    }
    f.classes.push_back(std::move(c));
  }
  if (!(in >> tag >> n) || tag != "fn") return false;
  for (size_t i = 0; i < n; i++) {
    FunctionModel fn;
    std::string name, qualified, ctx;
    int inf = 0;
    size_t nreq = 0, nacq = 0, ndis = 0, ncall = 0, nev = 0, ngv = 0;
    if (!(in >> name >> qualified >> ctx >> fn.line >> fn.param_arity >> inf >>
          nreq >> nacq >> ndis >> ncall >> nev >> ngv)) {
      return false;
    }
    fn.name = Dec(name);
    fn.qualified = Dec(qualified);
    fn.class_ctx = Dec(ctx);
    fn.has_infinite_loop = inf != 0;
    for (size_t j = 0; j < nreq; j++) {
      if (!(in >> s)) return false;
      fn.requires_args.push_back(s);
    }
    for (size_t j = 0; j < nacq; j++) {
      Acquisition a;
      int scoped = 0;
      if (!(in >> s >> a.line >> a.depth >> scoped)) return false;
      a.mutex_expr = Dec(s);
      a.scoped = scoped != 0;
      fn.acquisitions.push_back(std::move(a));
    }
    for (size_t j = 0; j < ndis; j++) {
      DiscardedCall d;
      int vc = 0;
      if (!(in >> s >> d.line >> vc)) return false;
      d.callee = Dec(s);
      d.void_cast = vc != 0;
      fn.discarded_calls.push_back(std::move(d));
    }
    for (size_t j = 0; j < ncall; j++) {
      CallSite c;
      std::string cn, cq, cr;
      int il = 0;
      if (!(in >> cn >> cq >> cr >> c.arity >> c.line >> c.depth >>
            c.loop_depth >> il)) {
        return false;
      }
      c.name = Dec(cn);
      c.qual = Dec(cq);
      c.recv = Dec(cr);
      c.in_lambda = il != 0;
      fn.calls.push_back(std::move(c));
    }
    for (size_t j = 0; j < nev; j++) {
      BodyEvent e;
      int kind = 0, il = 0, sc = 0;
      if (!(in >> kind >> s >> e.index >> e.line >> e.depth >> e.loop_depth >>
            il >> sc)) {
        return false;
      }
      e.kind = static_cast<BodyEvent::Kind>(kind);
      e.what = Dec(s);
      e.in_lambda = il != 0;
      e.scoped = sc != 0;
      fn.events.push_back(std::move(e));
    }
    for (size_t j = 0; j < ngv; j++) {
      std::string k, v;
      if (!(in >> k >> v)) return false;
      fn.guard_vars.emplace(Dec(k), Dec(v));
    }
    f.functions.push_back(std::move(fn));
  }
  if (!(in >> tag >> n) || tag != "dec") return false;
  for (size_t i = 0; i < n; i++) {
    DeclaredName d;
    int ret = 0;
    if (!(in >> s >> ret >> d.line)) return false;
    d.name = Dec(s);
    d.ret = static_cast<RetKind>(ret);
    f.declared.push_back(std::move(d));
  }
  if (!(in >> tag >> n) || tag != "met") return false;
  for (size_t i = 0; i < n; i++) {
    MetricLiteral m;
    if (!(in >> s >> m.line)) return false;
    m.name = Dec(s);
    f.metrics.push_back(std::move(m));
  }
  if (!(in >> tag >> n) || tag != "det") return false;
  for (size_t i = 0; i < n; i++) {
    DeterminismUse d;
    if (!(in >> s >> d.line)) return false;
    d.what = Dec(s);
    f.determinism.push_back(std::move(d));
  }
  if (!(in >> tag >> n) || tag != "req") return false;
  for (size_t i = 0; i < n; i++) {
    std::string q;
    size_t k = 0;
    if (!(in >> q >> k)) return false;
    std::vector<std::string> args;
    for (size_t j = 0; j < k; j++) {
      if (!(in >> s)) return false;
      args.push_back(s);
    }
    f.declared_requires.emplace(Dec(q), std::move(args));
  }
  return true;
}

/// Resolve a quoted include path against the scanned file set: project
/// includes are src/-relative ("hyracks/stream.h" -> "src/hyracks/stream.h"),
/// with the literal path accepted too (fixture trees).
std::string ResolveInclude(const std::string& inc,
                           const std::set<std::string>& known) {
  std::string src = "src/" + inc;
  if (known.count(src)) return src;
  if (known.count(inc)) return inc;
  return "";
}

// ---------------------------------------------------------------------------
// --since: `git diff --name-only <rev>` plus untracked files, via popen.
// ---------------------------------------------------------------------------

bool SafeRev(const std::string& rev) {
  if (rev.empty()) return false;
  for (char c : rev) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
              c == '_' || c == '/' || c == '.' || c == '~' || c == '^' ||
              c == '@';
    if (!ok) return false;
  }
  return true;
}

bool GitChangedFiles(const std::string& root, const std::string& rev,
                     std::set<std::string>* out, std::string* err) {
  if (!SafeRev(rev)) {
    *err = "--since: rev contains unsupported characters: " + rev;
    return false;
  }
  std::string base = "git -C '" + root + "' ";
  for (const std::string& cmd :
       {base + "diff --name-only " + rev + " 2>/dev/null",
        base + "ls-files --others --exclude-standard 2>/dev/null"}) {
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      *err = "--since: cannot run git";
      return false;
    }
    char buf[4096];
    std::string acc;
    while (fgets(buf, sizeof(buf), pipe) != nullptr) acc += buf;
    int rc = pclose(pipe);
    if (rc != 0 && cmd.find("diff") != std::string::npos) {
      *err = "--since: git diff failed for rev '" + rev + "'";
      return false;
    }
    std::istringstream lines(acc);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) out->insert(line);
    }
  }
  return true;
}

}  // namespace

std::map<std::string, int> ParseLockRanks(const std::string& design_md) {
  std::map<std::string, int> out;
  std::istringstream in(design_md);
  std::string line;
  int lineno = 0;
  bool in_block = false;
  while (std::getline(in, line)) {
    lineno++;
    if (!in_block) {
      if (line.rfind("```axlint-lock-ranks", 0) == 0) in_block = true;
      continue;
    }
    if (line.rfind("```", 0) == 0) break;
    // Strip comments and whitespace.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    int rank;
    std::string name;
    if (fields >> rank >> name) out[name] = rank;
  }
  return out;
}

std::map<std::string, int> ParseDocMetrics(const std::string& metrics_md) {
  std::map<std::string, int> out;
  std::istringstream in(metrics_md);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      std::string name = line.substr(pos + 1, end - pos - 1);
      pos = end + 1;
      // Metric names: lowercase dotted identifiers with at least one dot.
      bool ok = name.find('.') != std::string::npos && !name.empty();
      for (char c : name) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.')) {
          ok = false;
          break;
        }
      }
      if (ok && !out.count(name)) out[name] = lineno;
    }
  }
  return out;
}

std::string BaselineKey(const Finding& f) {
  return f.check + "\t" + f.path + "\t" + f.message;
}

RunResult RunAxlint(const Options& opts) {
  RunResult res;
  fs::path root(opts.repo_root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    res.io_error = true;
    res.error = "repo root not found: " + opts.repo_root;
    return res;
  }

  Project project;
  project.root = opts.repo_root;

  bool ok = false;
  std::string design = ReadFile(root / "DESIGN.md", &ok);
  if (ok) project.lock_ranks = ParseLockRanks(design);
  std::string metrics_md = ReadFile(root / "docs" / "METRICS.md", &ok);
  if (ok) project.doc_metrics = ParseDocMetrics(metrics_md);

  // Scan, consulting the summary cache when --cache-dir is set. Every file
  // is read (hashing is how misses are detected); only misses are lexed and
  // scanned. A file's cache key combines its own content hash with the
  // hashes of its transitive include closure.
  struct PerFile {
    std::string rel;
    std::string contents;
    uint64_t own = 0;
    bool has_entry = false;
    CacheEntry entry;
    bool lexed = false;
    LexedFile lex;
  };
  bool caching = !opts.cache_dir.empty();
  fs::path cache_root;
  if (caching) {
    cache_root = fs::path(opts.cache_dir).is_absolute()
                     ? fs::path(opts.cache_dir)
                     : root / opts.cache_dir;
    fs::create_directories(cache_root, ec);
  }
  std::vector<PerFile> scan;
  std::set<std::string> known;
  for (const fs::path& p : DiscoverFiles(root)) {
    bool read_ok = false;
    std::string contents = ReadFile(p, &read_ok);
    if (!read_ok) continue;
    PerFile pf;
    pf.rel = RelPath(root, p);
    pf.own = HashCombine(Fnv1a(contents), kCacheVersion);
    pf.contents = std::move(contents);
    known.insert(pf.rel);
    if (caching) {
      std::ifstream in(cache_root / CacheEntryName(pf.rel));
      if (in) pf.has_entry = DeserializeModel(in, &pf.entry);
    }
    scan.push_back(std::move(pf));
  }
  // Include lists: from the cache entry when the content hash matches
  // (includes depend only on the file's own text), else lex now.
  std::map<std::string, std::vector<std::string>> deps;
  std::map<std::string, uint64_t> own_of;
  for (PerFile& pf : scan) own_of[pf.rel] = pf.own;
  for (PerFile& pf : scan) {
    const std::vector<IncludeLine>* incs = nullptr;
    if (pf.has_entry && pf.entry.own_hash == pf.own) {
      incs = &pf.entry.model.lexed.includes;
    } else {
      pf.lex = Lex(pf.rel, std::move(pf.contents));
      pf.lexed = true;
      incs = &pf.lex.includes;
    }
    for (const IncludeLine& inc : *incs) {
      std::string r = ResolveInclude(inc.path, known);
      if (!r.empty()) deps[pf.rel].push_back(r);
    }
  }
  // Combined hash of the transitive include closure (cycle-tolerant DFS).
  std::map<std::string, uint64_t> combined;
  std::set<std::string> visiting;
  std::function<uint64_t(const std::string&)> comb =
      [&](const std::string& rel) -> uint64_t {
    auto it = combined.find(rel);
    if (it != combined.end()) return it->second;
    if (!visiting.insert(rel).second) return own_of[rel];  // cycle: cut
    uint64_t h = own_of[rel];
    auto dit = deps.find(rel);
    if (dit != deps.end()) {
      std::vector<std::string> sorted = dit->second;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      for (const std::string& d : sorted) h = HashCombine(h, comb(d));
    }
    visiting.erase(rel);
    combined[rel] = h;
    return h;
  };
  for (PerFile& pf : scan) {
    uint64_t ch = comb(pf.rel);
    if (caching && pf.has_entry && pf.entry.own_hash == pf.own &&
        pf.entry.combined_hash == ch) {
      project.files.push_back(std::move(pf.entry.model));
      continue;
    }
    if (!pf.lexed) pf.lex = Lex(pf.rel, std::move(pf.contents));
    FileModel m = ScanFile(pf.rel, std::move(pf.lex));
    res.files_analyzed++;
    if (caching) {
      std::ofstream outf(cache_root / CacheEntryName(pf.rel),
                         std::ios::trunc);
      SerializeModel(m, pf.own, ch, outf);
    }
    project.files.push_back(std::move(m));
  }
  res.files_scanned = project.files.size();

  // Status/Result name sets, with overloads declared under other return
  // types excluded (mixed).
  std::map<std::string, std::set<RetKind>> kinds;
  for (const FileModel& f : project.files) {
    if (f.module.empty()) continue;  // tests declare helpers freely
    for (const DeclaredName& d : f.declared) kinds[d.name].insert(d.ret);
    for (const auto& [q, args] : f.declared_requires) {
      project.requires_by_qualified[q] = args;
    }
  }
  for (const auto& [name, ks] : kinds) {
    bool status = ks.count(RetKind::kStatus);
    bool result = ks.count(RetKind::kResult);
    bool other = ks.count(RetKind::kOther);
    if (status) project.status_names.insert(name);
    if (result) project.result_names.insert(name);
    if (other && (status || result)) project.mixed_names.insert(name);
  }

  // Whole-project call graph with fixed-point summaries. Built after the
  // file list is final (nodes hold pointers into project.files).
  CallGraph graph = CallGraph::Build(project.files, project.lock_ranks,
                                     project.requires_by_qualified);
  project.graph = &graph;

  std::vector<Finding> findings;
  for (const CheckInfo& c : Checks()) {
    if (!opts.only_checks.empty() &&
        std::find(opts.only_checks.begin(), opts.only_checks.end(),
                  c.name) == opts.only_checks.end()) {
      continue;
    }
    c.fn(project, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });

  // --since: keep findings in files changed since <rev> plus their reverse
  // include closure. Hard findings always survive the filter.
  if (!opts.since_rev.empty()) {
    std::set<std::string> changed;
    std::string err;
    if (!GitChangedFiles(opts.repo_root, opts.since_rev, &changed, &err)) {
      res.io_error = true;
      res.error = err;
      return res;
    }
    std::map<std::string, std::vector<std::string>> rdeps;
    for (const FileModel& f : project.files) {
      for (const IncludeLine& inc : f.lexed.includes) {
        std::string r = ResolveInclude(inc.path, known);
        if (!r.empty()) rdeps[r].push_back(f.path);
      }
    }
    std::set<std::string> keep = changed;
    std::vector<std::string> work(changed.begin(), changed.end());
    while (!work.empty()) {
      std::string cur = work.back();
      work.pop_back();
      auto it = rdeps.find(cur);
      if (it == rdeps.end()) continue;
      for (const std::string& d : it->second) {
        if (keep.insert(d).second) work.push_back(d);
      }
    }
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return !f.hard && !keep.count(f.path);
                                  }),
                   findings.end());
  }

  // --fix: apply mechanical rewrites (descending offset per file so earlier
  // offsets stay valid), then drop the fixed findings.
  if (opts.fix) {
    std::map<std::string, std::vector<const Finding*>> per_file;
    for (const Finding& f : findings) {
      if (f.Fixable()) per_file[f.path].push_back(&f);
    }
    for (auto& [path, fixes] : per_file) {
      fs::path abs = root / path;
      bool read_ok = false;
      std::string contents = ReadFile(abs, &read_ok);
      if (!read_ok) continue;
      std::sort(fixes.begin(), fixes.end(),
                [](const Finding* a, const Finding* b) {
                  return a->fix_offset > b->fix_offset;
                });
      for (const Finding* f : fixes) {
        if (f->fix_offset > contents.size()) continue;
        contents.insert(f->fix_offset, f->fix_insert);
        res.fixes_applied++;
      }
      std::ofstream outf(abs, std::ios::binary | std::ios::trunc);
      outf << contents;
    }
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const Finding& f) { return f.Fixable(); }),
                   findings.end());
  }

  // Baseline handling.
  fs::path baseline;
  if (!opts.baseline_path.empty()) {
    baseline = fs::path(opts.baseline_path).is_absolute()
                   ? fs::path(opts.baseline_path)
                   : root / opts.baseline_path;
  }
  if (opts.write_baseline && !baseline.empty()) {
    std::ofstream outf(baseline, std::ios::trunc);
    outf << "# axlint baseline: grandfathered findings. Lines are\n"
            "# <check>\\t<path>\\t<message>. Regenerate with\n"
            "#   tools/run_static_analysis.sh --axlint --write-baseline\n"
            "# Hard findings (include cycles) cannot be baselined.\n";
    for (const Finding& f : findings) {
      if (!f.hard) outf << BaselineKey(f) << "\n";
    }
  }
  std::set<std::string> baselined;
  if (!baseline.empty()) {
    std::ifstream in(baseline);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      baselined.insert(line);
    }
  }
  for (Finding& f : findings) {
    if (!f.hard && baselined.count(BaselineKey(f))) {
      res.baselined_count++;
    } else {
      res.unbaselined.push_back(std::move(f));
    }
  }
  return res;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingsJson(const RunResult& res) {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  for (size_t i = 0; i < res.unbaselined.size(); i++) {
    const Finding& f = res.unbaselined[i];
    os << (i ? "," : "") << "\n    {\"check\": \"" << JsonEscape(f.check)
       << "\", \"path\": \"" << JsonEscape(f.path) << "\", \"line\": "
       << f.line << ", \"hard\": " << (f.hard ? "true" : "false")
       << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  os << "\n  ],\n  \"files_scanned\": " << res.files_scanned
     << ",\n  \"files_analyzed\": " << res.files_analyzed
     << ",\n  \"baselined\": " << res.baselined_count << "\n}\n";
  return os.str();
}

std::string FormatFindingsSarif(const RunResult& res) {
  std::ostringstream os;
  os << "{\n"
        "  \"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [{\n"
        "    \"tool\": {\"driver\": {\"name\": \"axlint\", \"rules\": [";
  // The full check registry goes in the rule catalog — rules that never
  // fired still need ids so annotation tools can map them.
  std::set<std::string> rules;
  for (const Finding& f : res.unbaselined) rules.insert(f.check);
  for (const CheckInfo& c : Checks()) rules.insert(c.name);
  bool first = true;
  for (const std::string& r : rules) {
    os << (first ? "" : ",") << "\n      {\"id\": \"" << JsonEscape(r)
       << "\"}";
    first = false;
  }
  os << "\n    ]}},\n    \"results\": [";
  for (size_t i = 0; i < res.unbaselined.size(); i++) {
    const Finding& f = res.unbaselined[i];
    os << (i ? "," : "") << "\n      {\"ruleId\": \"" << JsonEscape(f.check)
       << "\", \"level\": \"" << (f.hard ? "error" : "warning")
       << "\",\n       \"message\": {\"text\": \"" << JsonEscape(f.message)
       << "\"},\n       \"locations\": [{\"physicalLocation\": {\n"
          "         \"artifactLocation\": {\"uri\": \""
       << JsonEscape(f.path)
       << "\"},\n         \"region\": {\"startLine\": "
       << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  os << "\n    ]\n  }]\n}\n";
  return os.str();
}

}  // namespace axlint
