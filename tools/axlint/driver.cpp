#include "axlint/driver.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace axlint {

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool HasExt(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".cpp" || e == ".cc";
}

/// Directories never scanned: generated trees, vendored code, and the
/// axlint test fixtures (which contain violations on purpose).
bool SkipDir(const std::string& name) {
  return name == "build" || name == "third_party" ||
         name == "axlint_fixtures" || name.rfind("cmake-build", 0) == 0;
}

std::vector<fs::path> DiscoverFiles(const fs::path& root) {
  std::vector<fs::path> out;
  for (const char* top : {"src", "tests", "bench"}) {
    fs::path dir = root / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, ec), end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && SkipDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && HasExt(it->path())) {
        out.push_back(it->path());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

}  // namespace

std::map<std::string, int> ParseLockRanks(const std::string& design_md) {
  std::map<std::string, int> out;
  std::istringstream in(design_md);
  std::string line;
  int lineno = 0;
  bool in_block = false;
  while (std::getline(in, line)) {
    lineno++;
    if (!in_block) {
      if (line.rfind("```axlint-lock-ranks", 0) == 0) in_block = true;
      continue;
    }
    if (line.rfind("```", 0) == 0) break;
    // Strip comments and whitespace.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    int rank;
    std::string name;
    if (fields >> rank >> name) out[name] = rank;
  }
  return out;
}

std::map<std::string, int> ParseDocMetrics(const std::string& metrics_md) {
  std::map<std::string, int> out;
  std::istringstream in(metrics_md);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      std::string name = line.substr(pos + 1, end - pos - 1);
      pos = end + 1;
      // Metric names: lowercase dotted identifiers with at least one dot.
      bool ok = name.find('.') != std::string::npos && !name.empty();
      for (char c : name) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.')) {
          ok = false;
          break;
        }
      }
      if (ok && !out.count(name)) out[name] = lineno;
    }
  }
  return out;
}

std::string BaselineKey(const Finding& f) {
  return f.check + "\t" + f.path + "\t" + f.message;
}

RunResult RunAxlint(const Options& opts) {
  RunResult res;
  fs::path root(opts.repo_root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    res.io_error = true;
    res.error = "repo root not found: " + opts.repo_root;
    return res;
  }

  Project project;
  project.root = opts.repo_root;

  bool ok = false;
  std::string design = ReadFile(root / "DESIGN.md", &ok);
  if (ok) project.lock_ranks = ParseLockRanks(design);
  std::string metrics_md = ReadFile(root / "docs" / "METRICS.md", &ok);
  if (ok) project.doc_metrics = ParseDocMetrics(metrics_md);

  for (const fs::path& p : DiscoverFiles(root)) {
    bool read_ok = false;
    std::string contents = ReadFile(p, &read_ok);
    if (!read_ok) continue;
    std::string rel = RelPath(root, p);
    project.files.push_back(ScanFile(rel, Lex(rel, std::move(contents))));
  }
  res.files_scanned = project.files.size();

  // Status/Result name sets, with overloads declared under other return
  // types excluded (mixed).
  std::map<std::string, std::set<RetKind>> kinds;
  for (const FileModel& f : project.files) {
    if (f.module.empty()) continue;  // tests declare helpers freely
    for (const DeclaredName& d : f.declared) kinds[d.name].insert(d.ret);
    for (const auto& [q, args] : f.declared_requires) {
      project.requires_by_qualified[q] = args;
    }
  }
  for (const auto& [name, ks] : kinds) {
    bool status = ks.count(RetKind::kStatus);
    bool result = ks.count(RetKind::kResult);
    bool other = ks.count(RetKind::kOther);
    if (status) project.status_names.insert(name);
    if (result) project.result_names.insert(name);
    if (other && (status || result)) project.mixed_names.insert(name);
  }

  std::vector<Finding> findings;
  for (const CheckInfo& c : Checks()) {
    if (!opts.only_checks.empty() &&
        std::find(opts.only_checks.begin(), opts.only_checks.end(),
                  c.name) == opts.only_checks.end()) {
      continue;
    }
    c.fn(project, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });

  // --fix: apply mechanical rewrites (descending offset per file so earlier
  // offsets stay valid), then drop the fixed findings.
  if (opts.fix) {
    std::map<std::string, std::vector<const Finding*>> per_file;
    for (const Finding& f : findings) {
      if (f.Fixable()) per_file[f.path].push_back(&f);
    }
    for (auto& [path, fixes] : per_file) {
      fs::path abs = root / path;
      bool read_ok = false;
      std::string contents = ReadFile(abs, &read_ok);
      if (!read_ok) continue;
      std::sort(fixes.begin(), fixes.end(),
                [](const Finding* a, const Finding* b) {
                  return a->fix_offset > b->fix_offset;
                });
      for (const Finding* f : fixes) {
        if (f->fix_offset > contents.size()) continue;
        contents.insert(f->fix_offset, f->fix_insert);
        res.fixes_applied++;
      }
      std::ofstream outf(abs, std::ios::binary | std::ios::trunc);
      outf << contents;
    }
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const Finding& f) { return f.Fixable(); }),
                   findings.end());
  }

  // Baseline handling.
  fs::path baseline;
  if (!opts.baseline_path.empty()) {
    baseline = fs::path(opts.baseline_path).is_absolute()
                   ? fs::path(opts.baseline_path)
                   : root / opts.baseline_path;
  }
  if (opts.write_baseline && !baseline.empty()) {
    std::ofstream outf(baseline, std::ios::trunc);
    outf << "# axlint baseline: grandfathered findings. Lines are\n"
            "# <check>\\t<path>\\t<message>. Regenerate with\n"
            "#   tools/run_static_analysis.sh --axlint --write-baseline\n"
            "# Hard findings (include cycles) cannot be baselined.\n";
    for (const Finding& f : findings) {
      if (!f.hard) outf << BaselineKey(f) << "\n";
    }
  }
  std::set<std::string> baselined;
  if (!baseline.empty()) {
    std::ifstream in(baseline);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      baselined.insert(line);
    }
  }
  for (Finding& f : findings) {
    if (!f.hard && baselined.count(BaselineKey(f))) {
      res.baselined_count++;
    } else {
      res.unbaselined.push_back(std::move(f));
    }
  }
  return res;
}

}  // namespace axlint
