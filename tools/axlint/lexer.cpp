#include "axlint/lexer.h"

#include <cctype>

namespace axlint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse an `axlint: allow(a,b)` directive out of comment text. Returns the
/// check names, empty if the comment is not a directive. The directive may
/// carry a trailing `: justification` which is ignored here (but required
/// by convention — see README "Static analysis").
std::set<std::string> ParseAllowDirective(const std::string& comment) {
  std::set<std::string> out;
  size_t at = comment.find("axlint:");
  if (at == std::string::npos) return out;
  size_t allow = comment.find("allow(", at);
  if (allow == std::string::npos) return out;
  size_t open = allow + 5;  // index of '('
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return out;
  std::string inner = comment.substr(open + 1, close - open - 1);
  std::string cur;
  for (char c : inner) {
    if (c == ',') {
      if (!cur.empty()) out.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.insert(cur);
  return out;
}

}  // namespace

bool LexedFile::IsSuppressed(const std::string& check, int line) const {
  for (const auto& s : suppressions) {
    if (s.line != line) continue;
    if (s.checks.count(check) || s.checks.count("all")) return true;
  }
  return false;
}

LexedFile Lex(std::string path, std::string contents) {
  LexedFile out;
  out.path = std::move(path);
  out.contents = std::move(contents);
  const std::string& src = out.contents;
  size_t i = 0, n = src.size();
  int line = 1;

  auto note_comment = [&](const std::string& text, int comment_line,
                          bool owns_line, int cover_line = 0) {
    std::set<std::string> checks = ParseAllowDirective(text);
    if (checks.empty()) return;
    out.suppressions.push_back({comment_line, checks});
    // A directive comment alone on its line also covers the code it
    // precedes: callers pass the line where code resumes (so a multi-line
    // justification still reaches its statement), defaulting to the very
    // next line.
    if (owns_line) {
      if (cover_line <= comment_line) cover_line = comment_line + 1;
      out.suppressions.push_back({cover_line, checks});
    }
  };

  // From `pos` (just past an own-line comment), the line where code
  // resumes: blank lines and further whole-line // comments in between
  // belong to the same justification block.
  auto code_line_after = [&](size_t pos, int l) -> int {
    while (pos < src.size()) {
      char ch = src[pos];
      if (ch == '\n') {
        pos++;
        l++;
        continue;
      }
      if (ch == ' ' || ch == '\t' || ch == '\r') {
        pos++;
        continue;
      }
      if (ch == '/' && pos + 1 < src.size() && src[pos + 1] == '/') {
        while (pos < src.size() && src[pos] != '\n') pos++;
        continue;
      }
      break;
    }
    return l;
  };

  auto line_is_blank_before = [&](size_t pos) {
    while (pos > 0) {
      char c = src[pos - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      pos--;
    }
    return true;
  };

  // Lex a raw string literal whose opening quote sits at quote_pos and whose
  // token (including any encoding prefix) starts at tok_start. Returns false
  // when what follows is not actually a raw string (no '(' within the d-char
  // limit, or d-chars that the grammar forbids) so the ordinary lexers can
  // have it instead of us swallowing code up to a bogus close sequence.
  auto lex_raw_string = [&](size_t tok_start, size_t quote_pos) -> bool {
    size_t delim_start = quote_pos + 1;
    size_t paren = src.find('(', delim_start);
    if (paren == std::string::npos || paren - delim_start > 16) return false;
    std::string delim = src.substr(delim_start, paren - delim_start);
    if (delim.find_first_of(" \t\n\\)\"") != std::string::npos) return false;
    std::string close = ")" + delim + "\"";
    size_t e = src.find(close, paren + 1);
    size_t end = (e == std::string::npos) ? n : e + close.size();
    std::string body =
        src.substr(paren + 1, (e == std::string::npos ? n : e) - paren - 1);
    // The token carries its START line; braces and quotes in the body are
    // literal text and must not reach the scanners' depth tracking.
    int tok_line = line;
    for (size_t k = tok_start; k < end && k < n; k++) {
      if (src[k] == '\n') line++;
    }
    out.tokens.push_back({Tok::kString, std::move(body), tok_line, tok_start});
    i = end;
    return true;
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      line++;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      bool owns = line_is_blank_before(i);
      size_t start = i;
      while (i < n && src[i] != '\n') i++;
      note_comment(src.substr(start, i - start), line, owns,
                   owns ? code_line_after(i, line) : 0);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      bool owns = line_is_blank_before(i);
      size_t start = i;
      int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') line++;
        i++;
      }
      i = (i + 1 < n) ? i + 2 : n;
      note_comment(src.substr(start, i - start), start_line,
                   owns && start_line == line,
                   owns && start_line == line ? code_line_after(i, line) : 0);
      continue;
    }
    // Preprocessor line (only at start of line, possibly indented).
    if (c == '#' && line_is_blank_before(i)) {
      int pp_line = line;
      std::string directive;
      // Consume the whole directive including backslash continuations.
      // Comment removal happens before directive parsing (translation
      // phase 3), so a /* ... */ inside the directive is a single space and
      // the directive resumes after it — even when the comment spans lines.
      // Lexing the comment interior as code is what we used to get wrong:
      // a commented-out #include leaked into the include list, stray braces
      // desynced block depth, and suppression directives in the comment
      // were dropped.
      while (i < n) {
        char d = src[i];
        if (d == '"' || d == '\'') {
          // Copy quoted sections verbatim so /* inside a literal (or an
          // include path) is not mistaken for a comment opener.
          directive.push_back(d);
          i++;
          while (i < n && src[i] != d && src[i] != '\n') {
            if (src[i] == '\\' && i + 1 < n && src[i + 1] != '\n') {
              directive.push_back(src[i]);
              i++;
            }
            directive.push_back(src[i]);
            i++;
          }
          if (i < n && src[i] == '"' && d == '"') {
            directive.push_back(d);
            i++;
          } else if (i < n && src[i] == '\'' && d == '\'') {
            directive.push_back(d);
            i++;
          }
          continue;
        }
        if (d == '/' && i + 1 < n && src[i + 1] == '/') {
          // Line comment: runs to the physical end of line. Keep the text
          // so a trailing `// axlint: allow(...)` on an #include is still
          // honored by the note_comment below.
          while (i < n && src[i] != '\n') {
            directive.push_back(src[i]);
            i++;
          }
          break;
        }
        if (d == '/' && i + 1 < n && src[i + 1] == '*') {
          size_t cstart = i;
          int cline = line;
          i += 2;
          while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
            if (src[i] == '\n') line++;
            i++;
          }
          i = (i + 1 < n) ? i + 2 : n;
          note_comment(src.substr(cstart, i - cstart), cline,
                       /*owns_line=*/false);
          directive.push_back(' ');
          continue;
        }
        if (d == '\n') {
          if (i > 0 && src[i - 1] == '\\') {
            line++;
            i++;
            directive.push_back(' ');
            continue;
          }
          break;
        }
        directive.push_back(d);
        i++;
      }
      // A trailing `// axlint: allow(...)` was consumed with the directive;
      // honor it (e.g. a justified layering exception on an #include).
      note_comment(directive, pp_line, /*owns_line=*/false);
      size_t inc = directive.find("include");
      if (inc != std::string::npos) {
        size_t q = directive.find_first_of("\"<", inc);
        if (q != std::string::npos) {
          char closer = directive[q] == '"' ? '"' : '>';
          size_t e = directive.find(closer, q + 1);
          if (e != std::string::npos) {
            out.includes.push_back(
                {pp_line, directive.substr(q + 1, e - q - 1), closer == '>'});
          }
        }
      }
      continue;
    }
    // Raw strings: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      if (lex_raw_string(i, i + 1)) continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = ++i;
      std::string body;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          body.push_back(src[i]);
          body.push_back(src[i + 1]);
          i += 2;
          continue;
        }
        if (src[i] == '\n') line++;  // unterminated; tolerate
        body.push_back(src[i]);
        i++;
      }
      i = (i < n) ? i + 1 : n;
      out.tokens.push_back({quote == '"' ? Tok::kString : Tok::kChar,
                            std::move(body), line, start - 1});
      continue;
    }
    // Identifiers.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentCont(src[i])) i++;
      std::string ident = src.substr(start, i - start);
      // Encoding-prefixed raw strings (LR"(..)", uR, UR, u8R) reach this
      // path because the prefix lexes as an identifier; without this they
      // fall into the plain string lexer, whose quote pairing inside the
      // raw body can swallow or expose braces and desync block depth.
      if (i < n && src[i] == '"' &&
          (ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
           ident == "u8R")) {
        if (lex_raw_string(start, i)) continue;
      }
      out.tokens.push_back({Tok::kIdent, std::move(ident), line, start});
      continue;
    }
    // Numbers (digits plus the usual suffix soup; exact value irrelevant).
    // Digit separators (10'000) belong to the number — treating that quote
    // as a char literal would swallow code and corrupt brace tracking.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentCont(src[i]) || src[i] == '.' ||
                       (src[i] == '\'' && i + 1 < n &&
                        std::isalnum(static_cast<unsigned char>(src[i + 1]))) ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        i++;
      }
      out.tokens.push_back(
          {Tok::kNumber, src.substr(start, i - start), line, start});
      continue;
    }
    // Punctuation, one char at a time (scanners match multi-char sequences
    // like `::` or `->` themselves).
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line, i});
    i++;
  }
  return out;
}

}  // namespace axlint
