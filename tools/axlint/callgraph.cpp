#include "axlint/callgraph.h"

#include <algorithm>
#include <functional>

namespace axlint {

namespace {

/// Last `::` component of a qualified name ("Outer::Inner" -> "Inner").
std::string SimpleName(const std::string& qualified) {
  size_t cut = qualified.rfind("::");
  return cut == std::string::npos ? qualified : qualified.substr(cut + 2);
}

/// Candidate sets larger than this are dispatch noise, not a virtual call
/// set; they are dropped rather than fed to must-all coverage.
constexpr size_t kMaxCandidates = 24;

}  // namespace

int CallGraph::ResolveMutexRank(const std::map<std::string, int>& ranks,
                                const std::string& class_ctx,
                                const std::string& expr,
                                std::string* resolved) {
  std::string ctx = class_ctx;
  while (true) {
    std::string key = ctx.empty() ? expr : ctx + "::" + expr;
    auto it = ranks.find(key);
    if (it != ranks.end()) {
      *resolved = key;
      return it->second;
    }
    if (ctx.empty()) break;
    size_t cut = ctx.rfind("::");
    ctx = (cut == std::string::npos) ? "" : ctx.substr(0, cut);
  }
  std::string match;
  int rank = -1;
  for (const auto& [name, r] : ranks) {
    if (name.size() > expr.size() + 2 &&
        name.compare(name.size() - expr.size() - 2, 2, "::") == 0 &&
        name.compare(name.size() - expr.size(), expr.size(), expr) == 0) {
      if (!match.empty()) return -1;  // ambiguous suffix
      match = name;
      rank = r;
    }
  }
  if (!match.empty()) {
    *resolved = match;
    return rank;
  }
  return -1;
}

CallGraph CallGraph::Build(
    const std::vector<FileModel>& files,
    const std::map<std::string, int>& lock_ranks,
    const std::map<std::string, std::vector<std::string>>&
        requires_by_qualified) {
  CallGraph g;
  g.lock_ranks_ = &lock_ranks;
  for (const FileModel& f : files) {
    if (f.module.empty()) continue;  // tests/bench are not graph nodes
    for (const ClassModel& c : f.classes) {
      g.classes_.emplace(c.name, &c);
      if (c.name != c.qualified) g.classes_.emplace(c.qualified, &c);
      for (const std::string& b : c.bases) {
        g.derived_of_[b].insert(c.name);
      }
    }
    for (const FunctionModel& fn : f.functions) {
      int id = static_cast<int>(g.nodes_.size());
      Node n;
      n.file = &f;
      n.fn = &fn;
      g.nodes_.push_back(std::move(n));
      g.index_[&fn] = id;
      g.by_name_[fn.name].push_back(id);
      if (fn.class_ctx.empty()) {
        g.free_by_name_[fn.name].push_back(id);
      } else {
        g.by_qualified_[fn.class_ctx + "::" + fn.name].push_back(id);
        std::string simple = SimpleName(fn.class_ctx);
        if (simple != fn.class_ctx) {
          g.by_qualified_[simple + "::" + fn.name].push_back(id);
        }
      }
    }
  }
  // Resolved AX_REQUIRES sets (definition-site plus declaration-site).
  for (Node& n : g.nodes_) {
    auto add = [&](const std::vector<std::string>& exprs) {
      for (const std::string& e : exprs) {
        std::string resolved;
        if (ResolveMutexRank(lock_ranks, n.fn->class_ctx, e, &resolved) >= 0) {
          n.requires_q.insert(resolved);
        }
      }
    };
    add(n.fn->requires_args);
    auto it = requires_by_qualified.find(n.fn->qualified);
    if (it != requires_by_qualified.end()) add(it->second);
  }
  g.ResolveCalls();
  g.ComputeScc();
  g.ComputeSummaries();
  return g;
}

int CallGraph::IndexOf(const FunctionModel* fn) const {
  auto it = index_.find(fn);
  return it == index_.end() ? -1 : it->second;
}

bool CallGraph::DerivesFrom(const std::string& derived,
                            const std::string& base) const {
  std::set<std::string> seen;
  std::vector<std::string> work{derived};
  while (!work.empty()) {
    std::string cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = classes_.find(cur);
    if (it == classes_.end()) continue;
    for (const std::string& b : it->second->bases) {
      if (b == base) return true;
      work.push_back(b);
    }
  }
  return false;
}

void CallGraph::ResolveCalls() {
  // Methods named `name` on class `cls` or any of its bases (nearest class
  // first).
  auto hierarchy_methods = [&](const std::string& cls,
                               const std::string& name) {
    std::vector<int> out;
    std::set<std::string> seen;
    std::vector<std::string> work{cls};
    while (!work.empty()) {
      std::string cur = work.front();
      work.erase(work.begin());
      if (!seen.insert(cur).second) continue;
      auto it = by_qualified_.find(cur + "::" + name);
      if (it != by_qualified_.end()) {
        for (int id : it->second) {
          if (std::find(out.begin(), out.end(), id) == out.end())
            out.push_back(id);
        }
      }
      auto cit = classes_.find(cur);
      if (cit != classes_.end()) {
        for (const std::string& b : cit->second->bases) work.push_back(b);
      }
    }
    return out;
  };
  // Methods named `name` on classes transitively derived from `cls`
  // (virtual-dispatch overrides).
  auto derived_methods = [&](const std::string& cls, const std::string& name) {
    std::vector<int> out;
    std::set<std::string> seen;
    std::vector<std::string> work{cls};
    while (!work.empty()) {
      std::string cur = work.back();
      work.pop_back();
      if (!seen.insert(cur).second) continue;
      auto dit = derived_of_.find(cur);
      if (dit == derived_of_.end()) continue;
      for (const std::string& d : dit->second) {
        auto it = by_qualified_.find(d + "::" + name);
        if (it != by_qualified_.end()) {
          for (int id : it->second) {
            if (std::find(out.begin(), out.end(), id) == out.end())
              out.push_back(id);
          }
        }
        work.push_back(d);
      }
    }
    return out;
  };
  // Declared type of `recv` as a member of `cls` or its bases, "" if unknown.
  auto member_type = [&](const std::string& cls, const std::string& recv) {
    std::set<std::string> seen;
    std::vector<std::string> work{cls, SimpleName(cls)};
    while (!work.empty()) {
      std::string cur = work.back();
      work.pop_back();
      if (cur.empty() || !seen.insert(cur).second) continue;
      auto cit = classes_.find(cur);
      if (cit == classes_.end()) continue;
      auto mit = cit->second->member_types.find(recv);
      if (mit != cit->second->member_types.end()) return mit->second;
      for (const std::string& b : cit->second->bases) work.push_back(b);
    }
    return std::string();
  };
  auto arity_filter = [&](std::vector<int> ids, int arity) {
    std::vector<int> exact;
    for (int id : ids) {
      if (nodes_[id].fn->param_arity == arity) exact.push_back(id);
    }
    return exact.empty() ? ids : exact;
  };

  for (Node& n : nodes_) {
    const FunctionModel& fn = *n.fn;
    n.confident.assign(fn.calls.size(), -1);
    n.candidates.assign(fn.calls.size(), {});
    for (size_t ci = 0; ci < fn.calls.size(); ci++) {
      const CallSite& cs = fn.calls[ci];
      std::vector<int> ids;
      bool allow_fallback = true;  // name+arity candidates when unresolved
      if (!cs.qual.empty()) {
        // Explicit qualifier: Class::Name / Outer::Inner::Name / ns::Name.
        auto it = by_qualified_.find(cs.qual + "::" + cs.name);
        if (it == by_qualified_.end()) {
          it = by_qualified_.find(SimpleName(cs.qual) + "::" + cs.name);
        }
        if (it != by_qualified_.end()) {
          ids = it->second;
        } else if (!classes_.count(cs.qual) &&
                   !classes_.count(SimpleName(cs.qual))) {
          // Namespace qualifier (e.g. storage::FormatKey): free function.
          auto fit = free_by_name_.find(cs.name);
          if (fit != free_by_name_.end()) ids = fit->second;
          // A qualifier pointing outside the project (std::, chrono::)
          // must not degrade into name candidates.
          allow_fallback = false;
        } else {
          allow_fallback = false;  // known class, method not in project
        }
      } else if (!cs.recv.empty() && cs.recv != "this") {
        std::string type = member_type(fn.class_ctx, cs.recv);
        if (!type.empty()) {
          ids = hierarchy_methods(type, cs.name);
          std::vector<int> overrides = derived_methods(type, cs.name);
          for (int id : overrides) {
            if (std::find(ids.begin(), ids.end(), id) == ids.end())
              ids.push_back(id);
          }
          allow_fallback = false;  // typed receiver: stay in the hierarchy
        }
      } else {
        // Unqualified / this->: own class and bases first, then a unique
        // free function.
        if (!fn.class_ctx.empty()) {
          ids = hierarchy_methods(fn.class_ctx, cs.name);
          if (ids.empty()) {
            ids = hierarchy_methods(SimpleName(fn.class_ctx), cs.name);
          }
        }
        if (ids.empty()) {
          auto fit = free_by_name_.find(cs.name);
          if (fit != free_by_name_.end()) ids = fit->second;
        }
      }
      if (ids.empty() && allow_fallback) {
        auto it = by_name_.find(cs.name);
        if (it != by_name_.end()) ids = it->second;
      }
      if (ids.empty()) continue;
      ids = arity_filter(std::move(ids), cs.arity);
      if (ids.size() == 1) {
        n.confident[ci] = ids[0];
      } else if (ids.size() <= kMaxCandidates) {
        n.candidates[ci] = std::move(ids);
      }
    }
  }
}

void CallGraph::ComputeScc() {
  // Tarjan over confident edges. Emission order is bottom-up: when a
  // component is emitted, every component it can reach is already emitted,
  // so summaries can be computed in scc_order_ directly.
  size_t n = nodes_.size();
  std::vector<int> low(n, -1), num(n, -1), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0, comps = 0;
  std::function<void(int)> dfs = [&](int v) {
    low[v] = num[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (int w : nodes_[v].confident) {
      if (w < 0) continue;
      if (num[w] < 0) {
        dfs(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], num[w]);
      }
    }
    if (low[v] == num[v]) {
      while (true) {
        int w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp[w] = comps;
        scc_order_.push_back(w);
        if (w == v) break;
      }
      comps++;
    }
  };
  for (size_t v = 0; v < n; v++) {
    if (num[v] < 0) dfs(static_cast<int>(v));
  }
  for (size_t v = 0; v < n; v++) nodes_[v].scc = comp[v];
  scc_count_ = static_cast<size_t>(comps);
}

void CallGraph::ComputeSummaries() {
  auto chain = [](std::string why) {
    if (why.size() > 160) why = why.substr(0, 157) + "...";
    return why;
  };
  // blocks + acquires: bottom-up over the condensation, iterating each
  // component until its members stabilize (mutual recursion).
  size_t at = 0;
  while (at < scc_order_.size()) {
    size_t end = at;
    int comp = nodes_[scc_order_[at]].scc;
    while (end < scc_order_.size() && nodes_[scc_order_[end]].scc == comp)
      end++;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t k = at; k < end; k++) {
        Node& nd = nodes_[scc_order_[k]];
        const FunctionModel& fn = *nd.fn;
        for (const BodyEvent& e : fn.events) {
          if (e.in_lambda) continue;  // runs on another thread
          const char* prim = nullptr;
          if (e.kind == BodyEvent::kWait) prim = "waits on a condition variable";
          if (e.kind == BodyEvent::kSleep) prim = "sleeps";
          if (e.kind == BodyEvent::kFsync) prim = "fsyncs";
          if (e.kind == BodyEvent::kJoin) prim = "joins a thread";
          if (prim != nullptr && !nd.blocks) {
            nd.blocks = true;
            nd.blocks_why = std::string(prim) + " at " + nd.file->path + ":" +
                            std::to_string(e.line);
            changed = true;
          }
          if (e.kind == BodyEvent::kAcquire) {
            std::string expr = e.what;
            auto gv = fn.guard_vars.find(expr);
            if (gv != fn.guard_vars.end()) expr = gv->second;
            std::string resolved;
            if (ResolveMutexRank(*lock_ranks_, fn.class_ctx, expr,
                                 &resolved) >= 0 &&
                !nd.acquires.count(resolved)) {
              nd.acquires[resolved] = "in " + fn.qualified;
              changed = true;
            }
          }
          if (e.kind == BodyEvent::kCall) {
            if (!nd.pumps &&
                (e.what == "Next" || e.what == "NextBatch")) {
              nd.pumps = true;
              changed = true;
            }
            int target = nd.confident[e.index];
            if (target < 0) continue;
            const Node& callee = nodes_[target];
            if (callee.pumps && !nd.pumps) {
              nd.pumps = true;
              changed = true;
            }
            if (callee.blocks && !nd.blocks) {
              nd.blocks = true;
              nd.blocks_why = chain("calls " + callee.fn->qualified +
                                    ", which " + callee.blocks_why);
              changed = true;
            }
            for (const auto& [m, why] : callee.acquires) {
              if (!nd.acquires.count(m)) {
                nd.acquires[m] =
                    chain("via " + callee.fn->qualified +
                          (why.rfind("in ", 0) == 0 ? "" : " " + why));
                changed = true;
              }
            }
          }
        }
      }
    }
    at = end;
  }
  // covered: global monotone fixed point, because must-all candidate edges
  // do not respect the confident-edge condensation.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node& nd : nodes_) {
      if (nd.covered) continue;
      bool now = false;
      for (const BodyEvent& e : nd.fn->events) {
        if (e.kind == BodyEvent::kProbe) {
          now = true;
          break;
        }
        if (e.kind != BodyEvent::kCall) continue;
        int target = nd.confident[e.index];
        if (target >= 0) {
          if (nodes_[target].covered) {
            now = true;
            break;
          }
          continue;
        }
        const std::vector<int>& cand = nd.candidates[e.index];
        if (cand.empty()) continue;
        bool all = true;
        for (int id : cand) {
          if (!nodes_[id].covered) {
            all = false;
            break;
          }
        }
        if (all) {
          now = true;
          break;
        }
      }
      if (now) {
        nd.covered = true;
        changed = true;
      }
    }
  }
}

}  // namespace axlint
