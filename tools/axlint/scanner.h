// axlint scanner: turns a token stream into a lightweight structural model
// of one translation unit — classes and their mutex members / GUARDED_BY
// annotations, function definitions with their AX_REQUIRES sets and lock
// acquisitions, statement-level call sites, declared Status/Result-returning
// names, and metric-registration literals. This is declaration-level
// scanning, not parsing: good enough for the project's own conventions
// (see DESIGN.md §4e for the contract and its deliberate limits).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "axlint/lexer.h"

namespace axlint {

/// A mutex-typed data member (std::mutex / std::shared_mutex).
struct MutexMember {
  std::string name;        // member identifier, e.g. "mu_"
  std::string qualified;   // e.g. "BufferCache::Shard::mu"
  int line = 0;
};

struct ClassModel {
  std::string name;        // innermost name
  std::string qualified;   // "Outer::Inner" (namespaces excluded)
  int line = 0;
  size_t keyword_offset = 0;  // byte offset of the `class`/`struct` keyword
  bool nodiscard = false;     // carries [[nodiscard]]
  std::vector<MutexMember> mutexes;
  // Mutex identifiers referenced by AX_GUARDED_BY / AX_PT_GUARDED_BY inside
  // this class (last path component, e.g. "mu_").
  std::set<std::string> guarded_by_args;
  // Direct base classes, unqualified (e.g. "TupleStream"). Used by the
  // call-graph layer for inheritance walks and virtual resolution.
  std::vector<std::string> bases;
  // Data-member name -> declared type (last project-class-looking
  // identifier of the declaration, so `std::unique_ptr<Foo> x_` maps
  // x_ -> Foo). Used to resolve `member_->Method()` receivers.
  std::map<std::string, std::string> member_types;
};

/// One lock acquisition inside a function body.
struct Acquisition {
  std::string mutex_expr;  // last identifier of the mutex expression
  int line = 0;
  int depth = 0;           // brace depth inside the body (guard lifetime)
  bool scoped = true;      // false for explicit .lock() calls
};

/// One statement-level call whose result is discarded.
struct DiscardedCall {
  std::string callee;      // final identifier before '('
  int line = 0;
  bool void_cast = false;  // discarded via explicit (void) cast
};

/// One call site inside a function body (every call, not just discarded
/// ones). `qual` is the explicit qualifier when written (`A::B` of
/// `A::B::Name(...)`); `recv` is the identifier the call is invoked on
/// (`x` of `x->Name(...)` / `x.Name(...)`), empty for unqualified calls.
struct CallSite {
  std::string name;        // final identifier before '('
  std::string qual;        // explicit `A::B` qualifier, if any
  std::string recv;        // receiver identifier, if any ("this" for this->)
  int arity = 0;           // top-level comma count + 1; 0 for `()`
  int line = 0;
  int depth = 0;           // brace depth inside the body
  int loop_depth = 0;      // enclosing loop-block count (0 = not in a loop)
  bool in_lambda = false;  // inside a lambda body (lock sim skips these)
};

/// Ordered intra-body events for the interprocedural simulations. kCall
/// events index into FunctionModel::calls.
struct BodyEvent {
  enum Kind : uint8_t {
    kAcquire,   // scoped guard or explicit .lock(); `what` = mutex expr
    kUnlock,    // explicit .unlock(); `what` = guard/mutex variable
    kWait,      // cv .wait/.wait_for/.wait_until; `what` = lock variable arg
    kSleep,     // std::this_thread::sleep_for/sleep_until
    kFsync,     // fsync/fdatasync
    kJoin,      // thread .join()
    kCall,      // project call site; `index` into calls
    kProbe,     // cancellation probe (CheckAlive/stop flags, see checks)
    kRaiiTemp,  // unnamed guard temporary `Guard(x);` — dies immediately
    kRaiiNew,   // heap-allocated guard `new Guard(...)` — leaks on early exit
    kScopeExit, // '}' dipped below the previous event's depth; `depth` is
                // the low-water mark, so depth-scoped guards die here even
                // when the next real event sits in a sibling block at the
                // same depth as the acquire
  };
  Kind kind = kCall;
  std::string what;        // see per-kind comment; guard type for kRaii*
  size_t index = 0;        // for kCall: index into calls
  int line = 0;
  int depth = 0;
  int loop_depth = 0;
  bool in_lambda = false;
  bool scoped = true;      // for kAcquire: guard object vs explicit .lock()
};

struct FunctionModel {
  std::string name;        // e.g. "Flush"
  std::string qualified;   // e.g. "LsmBTree::Flush" (class context applied)
  std::string class_ctx;   // enclosing/owning class, "" for free functions
  int line = 0;
  int param_arity = 0;     // declared parameter count (top-level commas + 1)
  bool has_infinite_loop = false;  // while(true) / while(1) / for(;;)
  std::vector<std::string> requires_args;  // AX_REQUIRES(...) at the def
  std::vector<Acquisition> acquisitions;
  std::vector<DiscardedCall> discarded_calls;
  std::vector<CallSite> calls;
  std::vector<BodyEvent> events;
  // Guard variable -> mutex expression, from `unique_lock<..> lk(mu_)`.
  // Lets kWait/kUnlock events name the mutex their variable wraps.
  std::map<std::string, std::string> guard_vars;
};

/// A function name declared somewhere with its return-type classification.
enum class RetKind : uint8_t { kStatus, kResult, kOther };

struct DeclaredName {
  std::string name;
  RetKind ret;
  int line = 0;
};

struct MetricLiteral {
  std::string name;
  int line = 0;
};

/// Identifier tokens relevant to the determinism check.
struct DeterminismUse {
  std::string what;  // "rand", "srand", "random_device", "time", "system_clock::now"
  int line = 0;
};

struct FileModel {
  std::string path;     // repo-relative path
  std::string module;   // second path component for src/<module>/..., else ""
  LexedFile lexed;
  std::vector<ClassModel> classes;
  std::vector<FunctionModel> functions;
  std::vector<DeclaredName> declared;   // names at class/namespace scope
  std::vector<MetricLiteral> metrics;   // GetCounter/GetHistogram literals
  std::vector<DeterminismUse> determinism;
  // AX_REQUIRES annotations seen on *declarations* (no body): qualified
  // method name -> mutex args. Merged across files by the driver.
  std::map<std::string, std::vector<std::string>> declared_requires;
};

FileModel ScanFile(const std::string& repo_rel_path, LexedFile lexed);

}  // namespace axlint
