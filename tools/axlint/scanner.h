// axlint scanner: turns a token stream into a lightweight structural model
// of one translation unit — classes and their mutex members / GUARDED_BY
// annotations, function definitions with their AX_REQUIRES sets and lock
// acquisitions, statement-level call sites, declared Status/Result-returning
// names, and metric-registration literals. This is declaration-level
// scanning, not parsing: good enough for the project's own conventions
// (see DESIGN.md §4e for the contract and its deliberate limits).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "axlint/lexer.h"

namespace axlint {

/// A mutex-typed data member (std::mutex / std::shared_mutex).
struct MutexMember {
  std::string name;        // member identifier, e.g. "mu_"
  std::string qualified;   // e.g. "BufferCache::Shard::mu"
  int line = 0;
};

struct ClassModel {
  std::string name;        // innermost name
  std::string qualified;   // "Outer::Inner" (namespaces excluded)
  int line = 0;
  size_t keyword_offset = 0;  // byte offset of the `class`/`struct` keyword
  bool nodiscard = false;     // carries [[nodiscard]]
  std::vector<MutexMember> mutexes;
  // Mutex identifiers referenced by AX_GUARDED_BY / AX_PT_GUARDED_BY inside
  // this class (last path component, e.g. "mu_").
  std::set<std::string> guarded_by_args;
};

/// One lock acquisition inside a function body.
struct Acquisition {
  std::string mutex_expr;  // last identifier of the mutex expression
  int line = 0;
  int depth = 0;           // brace depth inside the body (guard lifetime)
  bool scoped = true;      // false for explicit .lock() calls
};

/// One statement-level call whose result is discarded.
struct DiscardedCall {
  std::string callee;      // final identifier before '('
  int line = 0;
  bool void_cast = false;  // discarded via explicit (void) cast
};

struct FunctionModel {
  std::string name;        // e.g. "Flush"
  std::string qualified;   // e.g. "LsmBTree::Flush" (class context applied)
  std::string class_ctx;   // enclosing/owning class, "" for free functions
  int line = 0;
  std::vector<std::string> requires_args;  // AX_REQUIRES(...) at the def
  std::vector<Acquisition> acquisitions;
  std::vector<DiscardedCall> discarded_calls;
};

/// A function name declared somewhere with its return-type classification.
enum class RetKind : uint8_t { kStatus, kResult, kOther };

struct DeclaredName {
  std::string name;
  RetKind ret;
  int line = 0;
};

struct MetricLiteral {
  std::string name;
  int line = 0;
};

/// Identifier tokens relevant to the determinism check.
struct DeterminismUse {
  std::string what;  // "rand", "srand", "random_device", "time", "system_clock::now"
  int line = 0;
};

struct FileModel {
  std::string path;     // repo-relative path
  std::string module;   // second path component for src/<module>/..., else ""
  LexedFile lexed;
  std::vector<ClassModel> classes;
  std::vector<FunctionModel> functions;
  std::vector<DeclaredName> declared;   // names at class/namespace scope
  std::vector<MetricLiteral> metrics;   // GetCounter/GetHistogram literals
  std::vector<DeterminismUse> determinism;
  // AX_REQUIRES annotations seen on *declarations* (no body): qualified
  // method name -> mutex args. Merged across files by the driver.
  std::map<std::string, std::vector<std::string>> declared_requires;
};

FileModel ScanFile(const std::string& repo_rel_path, LexedFile lexed);

}  // namespace axlint
