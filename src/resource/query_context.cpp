#include "resource/query_context.h"

#include "common/metrics.h"

namespace asterix::resource {

void QueryContext::SetDeadlineAfter(std::chrono::milliseconds budget) {
  int64_t now_ns = static_cast<int64_t>(metrics::NowNs());
  int64_t ns = now_ns + budget.count() * 1'000'000;
  if (ns == 0) ns = 1;  // 0 means "no deadline"; never store it by accident
  deadline_ns_.store(ns, std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point QueryContext::deadline() const {
  // metrics::NowNs is steady_clock-based, so the stored ns offset converts
  // back to a steady time_point by adjusting the current one.
  int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
  int64_t now_ns = static_cast<int64_t>(metrics::NowNs());
  return std::chrono::steady_clock::now() +
         std::chrono::nanoseconds(dl - now_ns);
}

void QueryContext::Cancel() {
  if (!cancelled_.exchange(true, std::memory_order_acq_rel)) {
    static metrics::Counter* cancels =
        metrics::Registry::Global().GetCounter("resource.cancels");
    cancels->Add();
  }
  // Run listeners under mu_: RemoveCancelListener can then guarantee that
  // after it returns the listener never fires (it either already ran here,
  // or was removed before we took the lock).
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [id, fn] : listeners_) fn();
  listeners_.clear();
}

Status QueryContext::CheckAlive() const {
  if (cancelled_.load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled");
  }
  int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
  if (dl != 0 && static_cast<int64_t>(metrics::NowNs()) >= dl) {
    if (!deadline_reported_.exchange(true, std::memory_order_acq_rel)) {
      static metrics::Counter* aborts =
          metrics::Registry::Global().GetCounter("resource.deadline_aborts");
      aborts->Add();
    }
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

QueryContext::ListenerId QueryContext::AddCancelListener(
    std::function<void()> fn) {
  std::lock_guard<std::mutex> l(mu_);
  ListenerId id = next_listener_id_++;
  if (cancelled_.load(std::memory_order_acquire)) {
    fn();  // already cancelled: fire now, store nothing
    return id;
  }
  listeners_.emplace_back(id, std::move(fn));
  return id;
}

void QueryContext::RemoveCancelListener(ListenerId id) {
  std::lock_guard<std::mutex> l(mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

}  // namespace asterix::resource
