// AdmissionController: bounded FIFO admission in front of query execution.
//
// At most `max_concurrent` queries hold a running slot; up to `queue_limit`
// more wait in strict FIFO order, each for at most `queue_timeout_ms`.
// Anything beyond that is rejected immediately with
// Status::ResourceExhausted — under overload the system sheds work instead
// of collapsing (every admitted query still sees a bounded queue wait, so
// admission bounds tail latency).
//
// Slots are movable RAII handles released when the query finishes (normal
// return, error, cancellation or deadline all go through the same
// destructor), so an aborted query can never strand a slot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "resource/query_context.h"

namespace asterix::resource {

class AdmissionController;

/// RAII running-query slot. Default-constructed slots are empty (what an
/// unlimited controller returns). Release() is idempotent and runs from
/// the destructor.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  AdmissionSlot(AdmissionSlot&& o) noexcept : ctrl_(o.ctrl_) {
    o.ctrl_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& o) noexcept;
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;
  ~AdmissionSlot() { Release(); }

  void Release();

 private:
  friend class AdmissionController;
  explicit AdmissionSlot(AdmissionController* ctrl) : ctrl_(ctrl) {}

  AdmissionController* ctrl_ = nullptr;
};

struct AdmissionOptions {
  /// Queries running at once. 0 = unlimited (admission disabled).
  size_t max_concurrent = 0;
  /// FIFO waiters allowed beyond the running set; the next arrival is
  /// rejected outright.
  size_t queue_limit = 64;
  /// Longest a waiter queues before failing with ResourceExhausted.
  int64_t queue_timeout_ms = 10'000;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions opts) : opts_(opts) {}

  /// Block until a running slot is free (FIFO among waiters), the queue
  /// timeout fires, or `ctx` is cancelled / past its deadline. Rejects
  /// immediately when the wait queue is full.
  Result<AdmissionSlot> Admit(const QueryContext* ctx = nullptr)
      AX_EXCLUDES(mu_);

  size_t running() const AX_EXCLUDES(mu_);
  size_t queued() const AX_EXCLUDES(mu_);

 private:
  friend class AdmissionSlot;
  struct Waiter {
    bool admitted = false;
  };

  void Release() AX_EXCLUDES(mu_);
  /// Hand free slots to the head of the FIFO queue.
  void GrantLocked() AX_REQUIRES(mu_);

  AdmissionOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ AX_GUARDED_BY(mu_) = 0;
  std::deque<Waiter*> queue_ AX_GUARDED_BY(mu_);
};

}  // namespace asterix::resource
