// Per-operator memory budget defaults for the workload-management layer.
//
// Before the resource subsystem existed, ExternalSortOp / HashJoinOp /
// HashGroupByOp each received a hardcoded `memory_budget_bytes` constant
// from the executor. Those scattered defaults now live here in one struct,
// consulted by MemoryGovernor's no-pool fallback so that standalone
// operator behavior stays byte-for-byte identical when no pool is
// configured (InstanceOptions::query_memory_bytes == 0).
#pragma once

#include <cstddef>

namespace asterix::resource {

/// The operator classes that take memory grants. Scans, selects and
/// projections stream batch-at-a-time and hold no materialized state, so
/// only the blocking (potentially spilling) operators are enumerated.
enum class OperatorKind {
  kSort,
  kJoin,
  kGroupBy,
};

/// Default grant sizes per operator kind plus the floor the governor will
/// never shrink a grant below. The floor is what keeps a loaded pool
/// making progress: a spilling sort with 1 MiB still terminates, it just
/// writes more runs.
struct OperatorBudgetDefaults {
  size_t sort_bytes = 32u << 20;
  size_t join_bytes = 32u << 20;
  size_t groupby_bytes = 32u << 20;
  /// Smallest grant the governor hands out under memory pressure. Grants
  /// shrunk toward this floor push operators into their existing spill
  /// paths instead of failing the query.
  size_t floor_bytes = 1u << 20;

  /// The historical configuration surface: one knob
  /// (InstanceOptions::op_memory_budget_bytes) sized every operator.
  static OperatorBudgetDefaults Uniform(size_t per_operator_bytes) {
    OperatorBudgetDefaults d;
    d.sort_bytes = per_operator_bytes;
    d.join_bytes = per_operator_bytes;
    d.groupby_bytes = per_operator_bytes;
    if (d.floor_bytes > per_operator_bytes) d.floor_bytes = per_operator_bytes;
    return d;
  }

  size_t BytesFor(OperatorKind kind) const {
    switch (kind) {
      case OperatorKind::kSort: return sort_bytes;
      case OperatorKind::kJoin: return join_bytes;
      case OperatorKind::kGroupBy: return groupby_bytes;
    }
    return sort_bytes;  // unreachable
  }
};

}  // namespace asterix::resource
