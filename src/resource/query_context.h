// QueryContext: per-query cooperative cancellation token and deadline.
//
// One QueryContext is created per query execution and threaded from
// Instance through Executor into the hyracks operator tree. Operators and
// exchange hot loops call CheckAlive() at batch granularity (never per
// tuple); blocking exchange waits use deadline() to bound their sleeps and
// cancel listeners to be woken early. Cancellation is cooperative: Cancel()
// flips a flag and runs registered listeners (which poison exchanges to
// wake blocked producers/consumers); the query's own threads observe the
// flag at the next batch boundary and unwind with Status::Cancelled,
// releasing grants and admission slots through the normal RAII paths.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace asterix::resource {

class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Arm the deadline `budget` from now (steady clock). A query past its
  /// deadline fails CheckAlive() with Status::DeadlineExceeded.
  void SetDeadlineAfter(std::chrono::milliseconds budget);

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  /// Absolute steady-clock deadline; only meaningful when has_deadline().
  /// Blocking waits (exchange queues, the governor) bound their sleeps
  /// with this so deadline expiry wakes them without a listener.
  std::chrono::steady_clock::time_point deadline() const;

  /// Request cancellation. Idempotent; safe from any thread (this is what
  /// Instance::CancelQuery calls). Runs all registered cancel listeners
  /// before returning, so blocked exchange waiters are already waking when
  /// the caller observes Cancel() complete.
  void Cancel();

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The batch-granularity liveness probe: OK while the query may keep
  /// running, Status::Cancelled after Cancel(), Status::DeadlineExceeded
  /// once past the deadline. Takes no locks; cost is an atomic load (plus
  /// one clock read when a deadline is armed).
  Status CheckAlive() const;

  /// Register a callback invoked by Cancel() (immediately if already
  /// cancelled). Listeners run under the context's mutex: after
  /// RemoveCancelListener returns, the listener is guaranteed to never
  /// run again, so its captures may be destroyed. Listeners must not call
  /// back into QueryContext and may only take locks ranked above
  /// QueryContext::mu_ in DESIGN.md §4a (BoundedTupleQueue::mu_ is).
  using ListenerId = uint64_t;
  ListenerId AddCancelListener(std::function<void()> fn) AX_EXCLUDES(mu_);
  void RemoveCancelListener(ListenerId id) AX_EXCLUDES(mu_);

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in ns since epoch; 0 = no deadline.
  std::atomic<int64_t> deadline_ns_{0};
  /// Latches the first deadline observation so resource.deadline_aborts
  /// counts queries, not CheckAlive calls.
  mutable std::atomic<bool> deadline_reported_{false};

  mutable std::mutex mu_;
  uint64_t next_listener_id_ AX_GUARDED_BY(mu_) = 1;
  std::vector<std::pair<ListenerId, std::function<void()>>> listeners_
      AX_GUARDED_BY(mu_);
};

}  // namespace asterix::resource
