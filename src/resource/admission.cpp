#include "resource/admission.h"

#include <algorithm>
#include <chrono>

#include "common/metrics.h"

namespace asterix::resource {

AdmissionSlot& AdmissionSlot::operator=(AdmissionSlot&& o) noexcept {
  if (this != &o) {
    Release();
    ctrl_ = o.ctrl_;
    o.ctrl_ = nullptr;
  }
  return *this;
}

void AdmissionSlot::Release() {
  if (ctrl_ != nullptr) ctrl_->Release();
  ctrl_ = nullptr;
}

Result<AdmissionSlot> AdmissionController::Admit(const QueryContext* ctx) {
  static metrics::Counter* waits =
      metrics::Registry::Global().GetCounter("resource.admission_waits");
  static metrics::Histogram* wait_hist =
      metrics::Registry::Global().GetHistogram("resource.admission_waits_ns");
  static metrics::Counter* rejects =
      metrics::Registry::Global().GetCounter("resource.rejects");

  if (opts_.max_concurrent == 0) return AdmissionSlot();  // unlimited

  std::unique_lock<std::mutex> l(mu_);
  if (running_ < opts_.max_concurrent && queue_.empty()) {
    ++running_;
    return AdmissionSlot(this);
  }
  if (queue_.size() >= opts_.queue_limit) {
    rejects->Add();
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(opts_.max_concurrent) +
        " running, " + std::to_string(queue_.size()) + " queued)");
  }

  Waiter me;
  queue_.push_back(&me);
  waits->Add();
  uint64_t wait_start = metrics::NowNs();
  auto give_up_at = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.queue_timeout_ms);
  Status why = Status::OK();
  for (;;) {
    if (me.admitted) break;
    if (ctx != nullptr) {
      why = ctx->CheckAlive();
      if (!why.ok()) break;
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= give_up_at) {
      rejects->Add();
      why = Status::ResourceExhausted(
          "admission queue timeout after " +
          std::to_string(opts_.queue_timeout_ms) + " ms");
      break;
    }
    // Releases notify cv_; the short slice only bounds how stale a
    // cancellation/deadline observation can get while nothing releases.
    auto slice = std::min(give_up_at, now + std::chrono::milliseconds(20));
    if (ctx != nullptr && ctx->has_deadline()) {
      slice = std::min(slice, ctx->deadline());
    }
    cv_.wait_until(l, slice);
  }
  wait_hist->Record(metrics::NowNs() - wait_start);
  if (me.admitted) {
    // A slot was handed to us while we were deciding to give up; taking it
    // is always safe — a cancelled query's first CheckAlive aborts it and
    // the RAII slot releases immediately.
    return AdmissionSlot(this);
  }
  queue_.erase(std::find(queue_.begin(), queue_.end(), &me));
  return why;
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> l(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> l(mu_);
    --running_;
    GrantLocked();
  }
  cv_.notify_all();
}

void AdmissionController::GrantLocked() {
  while (running_ < opts_.max_concurrent && !queue_.empty()) {
    queue_.front()->admitted = true;
    queue_.pop_front();
    ++running_;
  }
}

}  // namespace asterix::resource
