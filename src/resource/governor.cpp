#include "resource/governor.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/metrics.h"

namespace asterix::resource {

MemoryGrant& MemoryGrant::operator=(MemoryGrant&& o) noexcept {
  if (this != &o) {
    Release();
    gov_ = o.gov_;
    bytes_ = o.bytes_;
    o.gov_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

void MemoryGrant::Release() {
  if (gov_ != nullptr) gov_->Release(bytes_);
  gov_ = nullptr;
  bytes_ = 0;
}

Result<MemoryGrant> MemoryGovernor::Acquire(OperatorKind kind, size_t want,
                                            const QueryContext* ctx) {
  static metrics::Counter* grants =
      metrics::Registry::Global().GetCounter("resource.grants");
  static metrics::Counter* grant_bytes =
      metrics::Registry::Global().GetCounter("resource.grant_bytes");
  static metrics::Counter* shrinks =
      metrics::Registry::Global().GetCounter("resource.shrinks");

  if (want == 0) want = opts_.defaults.BytesFor(kind);
  if (opts_.pool_bytes == 0) {
    // Ungoverned fallback: exactly the historical hardcoded budget, no
    // accounting (gov_ stays null so Release is a no-op).
    grants->Add();
    grant_bytes->Add(want);
    return MemoryGrant(nullptr, want);
  }

  want = std::min(want, opts_.pool_bytes);
  size_t floor = std::min(opts_.defaults.floor_bytes, want);
  if (floor == 0) floor = 1;

  auto give_up_at = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opts_.grant_timeout_ms);
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    if (ctx != nullptr) AX_RETURN_NOT_OK(ctx->CheckAlive());
    size_t avail = opts_.pool_bytes - used_;
    if (avail >= floor) {
      size_t give = std::min(want, avail);
      used_ += give;
      grants->Add();
      grant_bytes->Add(give);
      if (give < want) shrinks->Add();
      return MemoryGrant(this, give);
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= give_up_at) {
      return Status::ResourceExhausted(
          "memory governor: timed out waiting for " + std::to_string(floor) +
          " bytes (pool " + std::to_string(opts_.pool_bytes) + ", in use " +
          std::to_string(used_) + ")");
    }
    // Releases notify cv_; the short slice only bounds how stale a
    // cancellation/deadline observation can get while nothing releases.
    auto slice = std::min(give_up_at, now + std::chrono::milliseconds(20));
    if (ctx != nullptr && ctx->has_deadline()) {
      slice = std::min(slice, ctx->deadline());
    }
    cv_.wait_until(l, slice);
  }
}

size_t MemoryGovernor::used_bytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return used_;
}

void MemoryGovernor::Release(size_t bytes) {
  {
    std::lock_guard<std::mutex> l(mu_);
    assert(bytes <= used_ && "grant release exceeds outstanding bytes");
    used_ -= bytes;
  }
  cv_.notify_all();
}

}  // namespace asterix::resource
