// MemoryGovernor: the process-wide broker for operator memory grants.
//
// Blocking operators (sort/join/group-by) no longer size themselves from a
// hardcoded constant; the executor asks the governor for a grant per
// operator instance. With a configured pool (InstanceOptions::
// query_memory_bytes > 0) the governor keeps the sum of outstanding grants
// within the pool, shrinking individual grants toward
// OperatorBudgetDefaults::floor_bytes under pressure — a shrunk grant
// pushes the operator into its existing spill path instead of failing the
// query. With no pool (the default) every request is satisfied at exactly
// the OperatorBudgetDefaults size, preserving the historical hardcoded
// behavior byte-for-byte.
//
// Grants are movable RAII handles released at operator Close (or operator
// destruction on error paths), so an aborted query can never strand pool
// bytes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "resource/budgets.h"
#include "resource/query_context.h"

namespace asterix::resource {

class MemoryGovernor;

/// RAII memory grant. Default-constructed grants are empty (bytes() == 0);
/// grants from an ungoverned (no-pool) governor carry bytes but no pool
/// accounting. Release() is idempotent and runs from the destructor.
class MemoryGrant {
 public:
  MemoryGrant() = default;
  MemoryGrant(MemoryGrant&& o) noexcept : gov_(o.gov_), bytes_(o.bytes_) {
    o.gov_ = nullptr;
    o.bytes_ = 0;
  }
  MemoryGrant& operator=(MemoryGrant&& o) noexcept;
  MemoryGrant(const MemoryGrant&) = delete;
  MemoryGrant& operator=(const MemoryGrant&) = delete;
  ~MemoryGrant() { Release(); }

  /// Granted budget in bytes; 0 only for a default-constructed grant.
  size_t bytes() const { return bytes_; }
  /// Return the bytes to the pool (no-op for empty/ungoverned grants).
  void Release();

 private:
  friend class MemoryGovernor;
  MemoryGrant(MemoryGovernor* gov, size_t bytes) : gov_(gov), bytes_(bytes) {}

  MemoryGovernor* gov_ = nullptr;  // null: no pool accounting to undo
  size_t bytes_ = 0;
};

struct GovernorOptions {
  /// Total bytes the governor may hand out concurrently. 0 = ungoverned:
  /// every Acquire returns the default/requested size with no accounting.
  size_t pool_bytes = 0;
  OperatorBudgetDefaults defaults;
  /// How long Acquire may wait for floor_bytes to free up before failing
  /// with Status::ResourceExhausted.
  int64_t grant_timeout_ms = 10'000;
};

class MemoryGovernor {
 public:
  explicit MemoryGovernor(GovernorOptions opts) : opts_(opts) {}

  /// Obtain a grant for one operator instance. `want` == 0 means "the
  /// default for this kind". With a pool, the grant is min(want, pool) when
  /// that much is free, shrunk down to floor under pressure, and the call
  /// blocks (bounded by grant_timeout_ms and `ctx`'s cancellation/deadline)
  /// when even the floor is unavailable.
  Result<MemoryGrant> Acquire(OperatorKind kind, size_t want = 0,
                              const QueryContext* ctx = nullptr)
      AX_EXCLUDES(mu_);

  size_t pool_bytes() const { return opts_.pool_bytes; }
  const OperatorBudgetDefaults& defaults() const { return opts_.defaults; }
  /// Outstanding granted bytes (0 when ungoverned; tests assert this
  /// returns to 0 after queries finish or abort).
  size_t used_bytes() const AX_EXCLUDES(mu_);

 private:
  friend class MemoryGrant;
  void Release(size_t bytes) AX_EXCLUDES(mu_);

  GovernorOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t used_ AX_GUARDED_BY(mu_) = 0;
};

}  // namespace asterix::resource
