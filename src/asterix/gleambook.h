// Deterministic Gleambook data generator: synthetic social-media data
// matching the paper's Fig. 3 schema (users with friend multisets and
// employment histories, messages with spatial sender locations, and
// web-access logs). Substitutes for the production social-media traces the
// paper's use cases assume; distributions are skewed the way such data is
// (popular users get more messages, activity clusters in time).
#pragma once

#include <string>
#include <vector>

#include "adm/value.h"
#include "common/rng.h"
#include "common/result.h"

namespace asterix::gleambook {

struct GeneratorOptions {
  uint64_t seed = 42;
  int64_t num_users = 1000;
  int64_t num_messages = 5000;
  int64_t num_access_log_lines = 2000;
  int max_friends = 40;
  /// Message text vocabulary size (keyword-index selectivity knob).
  int vocabulary = 400;
  /// Spatial world for sender locations.
  double world_size = 100.0;
  /// Activity window for timestamps.
  std::string epoch_start = "2024-01-01T00:00:00";
  int64_t window_days = 180;
};

/// One generated batch.
class Generator {
 public:
  explicit Generator(GeneratorOptions options);

  /// GleambookUserType records (Fig. 3(a)).
  adm::Value MakeUser(int64_t id);
  /// GleambookMessageType records.
  adm::Value MakeMessage(int64_t message_id);
  /// One access-log line "ip|time|user|verb|path|stat|size" (Fig. 3(b)).
  std::string MakeAccessLogLine(int64_t seq);

  std::vector<adm::Value> Users();
  std::vector<adm::Value> Messages();
  /// Write the full access log to `path`.
  Status WriteAccessLog(const std::string& path);

  /// SQL++ DDL for the Gleambook schema (types, datasets, optional indexes).
  static std::string Ddl(bool with_indexes);

  const GeneratorOptions& options() const { return options_; }

 private:
  std::string AliasOf(int64_t user_id) const;
  GeneratorOptions options_;
  Rng rng_;
  int64_t epoch_ms_ = 0;
  std::vector<std::string> vocabulary_;
  std::vector<std::string> orgs_;
};

}  // namespace asterix::gleambook
