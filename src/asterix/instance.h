// Instance: the embedded "cluster" facade of asterix-lite — the public
// entry point a downstream user adopts. One Instance simulates the paper's
// Fig. 1 deployment: a cluster controller plus N node partitions, each
// with LSM storage, a WAL, and worker threads, all within one process.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebricks/optimizer.h"
#include "asterix/dataset.h"
#include "asterix/executor.h"
#include "asterix/metadata.h"
#include "common/thread_annotations.h"
#include "feeds/sink.h"
#include "resource/admission.h"
#include "sqlpp/ast.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"

namespace asterix {

namespace feeds {
class FeedManager;
}

struct InstanceOptions {
  std::string base_dir;
  size_t num_partitions = 2;
  size_t buffer_cache_pages = 4096;      // Fig. 2's disk buffer cache
  size_t lsm_mem_budget_bytes = 4u << 20;  // per-LSM memory component budget
  size_t op_memory_budget_bytes = 32u << 20;  // Fig. 2's working memory
  txn::SyncMode wal_sync = txn::SyncMode::kNoSync;
  storage::MergePolicy merge_policy;
  /// Worker threads of the shared storage::MaintenanceScheduler that runs
  /// LSM flushes and merges off the write path (paper §VII). 0 reverts to
  /// inline (synchronous) maintenance on the writing thread.
  size_t maintenance_threads = 2;
  /// Backpressure bound: per tree, how many immutable memory components
  /// may be pending flush before a write blocks (async maintenance only).
  size_t max_pending_immutables = 2;
  algebricks::OptimizerOptions optimizer;
  /// Collect a per-operator PlanProfile for every query (see
  /// hyracks/profile.h). Zero cost when off; a few percent when on.
  bool profile_queries = false;
  /// Process-wide query-memory pool brokered by resource::MemoryGovernor.
  /// Blocking operators (sort/join/group-by) draw per-operator grants from
  /// it, shrinking toward the per-operator floor (and spilling) under
  /// pressure. 0 = ungoverned: every operator gets
  /// op_memory_budget_bytes exactly, as before.
  size_t query_memory_bytes = 0;
  /// Queries allowed to run concurrently; later arrivals queue FIFO behind
  /// them. 0 = unlimited (admission control disabled).
  size_t max_concurrent_queries = 0;
  /// FIFO admission waiters allowed beyond the running set; the next
  /// arrival is rejected with ResourceExhausted (load shedding).
  size_t admission_queue_limit = 64;
  /// Longest a query waits in the admission queue before being rejected.
  int64_t admission_timeout_ms = 10'000;
  /// Default per-query deadline applied when QueryRunOptions.deadline_ms
  /// is 0. 0 = no deadline.
  int64_t query_deadline_ms = 0;
};

/// Per-call execution options for Query/QueryAql.
struct QueryRunOptions {
  /// Client-chosen id for Instance::CancelQuery; "" auto-generates one.
  std::string client_context_id;
  /// Abort the query with Status::DeadlineExceeded after this long
  /// (includes admission-queue time). 0 = InstanceOptions default.
  int64_t deadline_ms = 0;
};

struct QueryResult {
  std::vector<adm::Value> rows;
  std::string plan;        // optimized logical plan (EXPLAIN-ish)
  double elapsed_ms = 0;
  int64_t mutated = 0;     // rows inserted/deleted for DML
  /// Set when InstanceOptions.profile_queries: the rendered profiled plan
  /// tree and the full profile (ToChromeTrace() exports a trace).
  std::string profiled_plan;
  std::shared_ptr<hyracks::PlanProfile> profile;
};

/// The embedded BDMS. Thread-compatible: individual statements are
/// internally synchronized; DDL takes an exclusive latch. Implements
/// feeds::FeedSink so the feed pipeline can apply records without a
/// dependency on this facade (layering: feeds must not include asterix).
class Instance : public feeds::FeedSink {
 public:
  static Result<std::unique_ptr<Instance>> Open(const InstanceOptions& options);
  ~Instance();

  /// Execute one SQL++ statement (DDL, DML or query).
  Result<QueryResult> Execute(const std::string& statement);
  /// Execute a ';'-separated script; returns the last statement's result.
  Result<QueryResult> ExecuteScript(const std::string& script);
  /// Execute an already parsed statement (the AQL front end reuses this).
  Result<QueryResult> ExecuteParsed(const sqlpp::ast::Statement& st);
  /// Run a query with custom optimizer settings (benchmark ablations).
  Result<QueryResult> QueryWithOptions(
      const std::string& query, const algebricks::OptimizerOptions& opts);

  /// Run a SELECT query with workload-management options: a cancellation
  /// id and/or a deadline. Subject to admission control like Execute.
  Result<QueryResult> Query(const std::string& query,
                            const QueryRunOptions& run);

  /// Cooperatively cancel a running (or admission-queued) query by its
  /// client_context_id. The query unwinds at its next batch boundary with
  /// Status::Cancelled, releasing memory grants, its admission slot and
  /// spill files. NotFound if no such query is active.
  Status CancelQuery(const std::string& client_context_id)
      AX_EXCLUDES(queries_mu_);

  /// Run a classic AQL (FLWOR) query — the second language front end that
  /// shares Algebricks and Hyracks with SQL++ (paper Fig. 4, §IV-A).
  Result<QueryResult> QueryAql(const std::string& query,
                               const QueryRunOptions& run = {});

  // ---- direct (non-SQL) API -------------------------------------------------
  // UpsertValue/DeleteByKey are the feeds::FeedSink surface.
  Status UpsertValue(const std::string& dataset,
                     const adm::Value& record) override;
  Status InsertValue(const std::string& dataset, const adm::Value& record);
  Result<bool> DeleteByKey(const std::string& dataset,
                           const adm::Value& pk) override;
  Result<bool> GetByKey(const std::string& dataset, const adm::Value& pk,
                        adm::Value* record);

  /// Flush every dataset partition and truncate the WALs.
  Status Checkpoint() AX_EXCLUDES(ddl_mu_);

  meta::MetadataManager* metadata() { return metadata_.get(); }
  storage::BufferCache* buffer_cache() { return cache_.get(); }
  /// Shared background LSM maintenance pool (null when
  /// maintenance_threads == 0 — inline maintenance).
  storage::MaintenanceScheduler* maintenance() { return maintenance_.get(); }
  size_t num_partitions() const { return options_.num_partitions; }
  txn::LockManager* lock_manager() { return &locks_; }
  /// Data-feed connections (CREATE FEED / CONNECT FEED live here).
  feeds::FeedManager* feeds() { return feeds_.get(); }
  /// Process-wide memory broker (always present; ungoverned when
  /// query_memory_bytes == 0).
  resource::MemoryGovernor* governor() { return governor_.get(); }
  /// Admission controller; null when max_concurrent_queries == 0.
  resource::AdmissionController* admission() { return admission_.get(); }

  /// Non-fatal conditions noticed during Open (e.g. a torn WAL tail that
  /// recovery dropped). Also printed to stderr at recovery time.
  const std::vector<std::string>& recovery_warnings() const {
    return recovery_warnings_;
  }

  /// Cumulative primary-storage stats across partitions of one dataset.
  Result<storage::LsmStats> DatasetStats(const std::string& dataset) const;

 private:
  // Out of line: inline member-cleanup instantiation would require the
  // forward-declared FeedManager to be complete in every includer.
  explicit Instance(InstanceOptions options);
  Status OpenDatasetPartitions(const meta::DatasetDef& def);
  Status RecoverFromWal();
  Result<DatasetPartition*> RouteToPartition(const std::string& dataset,
                                             const adm::Value& pk);
  Executor MakeExecutor(const algebricks::OptimizerOptions& opts,
                        resource::QueryContext* ctx = nullptr);
  Result<QueryResult> RunQuery(const sqlpp::ast::SelectQuery& q,
                               const algebricks::OptimizerOptions& opts,
                               const QueryRunOptions& run = {});
  /// Make the query visible to CancelQuery. `*out_id` is the registered id
  /// (generated when `wanted_id` is empty); AlreadyExists on a duplicate.
  Status RegisterQuery(const std::string& wanted_id,
                       std::shared_ptr<resource::QueryContext> ctx,
                       std::string* out_id) AX_EXCLUDES(queries_mu_);
  void UnregisterQuery(const std::string& id) AX_EXCLUDES(queries_mu_);
  Result<QueryResult> RunDml(const sqlpp::ast::Statement& st);
  Result<QueryResult> RunDdl(const sqlpp::ast::Statement& st)
      AX_EXCLUDES(ddl_mu_);

  InstanceOptions options_;
  std::unique_ptr<meta::MetadataManager> metadata_;
  std::unique_ptr<storage::BufferCache> cache_;
  // Declared before datasets_ so it outlives the partitions during
  // destruction: each LSM tree's destructor waits for its in-flight
  // maintenance tasks, which run on this pool. Null when
  // options_.maintenance_threads == 0 (inline maintenance).
  std::unique_ptr<storage::MaintenanceScheduler> maintenance_;
  std::unique_ptr<TempFileManager> tmp_;
  std::vector<std::unique_ptr<txn::LogManager>> wals_;  // one per partition
  txn::LockManager locks_;
  // Partition map. Structurally mutated only under ddl_mu_ (DDL is exclusive
  // with concurrent DML/queries per the class contract above); read without
  // the latch on every statement path, so it is deliberately NOT
  // AX_GUARDED_BY(ddl_mu_) — the guard documents writers, not readers.
  std::map<std::string, std::vector<std::unique_ptr<DatasetPartition>>>
      datasets_;
  // axlint: allow(lock-order): guards datasets_ for writers only (see above)
  std::mutex ddl_mu_;
  std::unique_ptr<resource::MemoryGovernor> governor_;
  std::unique_ptr<resource::AdmissionController> admission_;
  // Active-query registry for CancelQuery. Queries register BEFORE
  // admission so a queued query is cancellable too. shared_ptr: CancelQuery
  // may hold the context briefly after the query thread deregisters.
  std::mutex queries_mu_;
  std::map<std::string, std::shared_ptr<resource::QueryContext>> queries_
      AX_GUARDED_BY(queries_mu_);
  uint64_t next_query_id_ AX_GUARDED_BY(queries_mu_) = 1;
  std::vector<std::string> recovery_warnings_;  // written only during Open
  // Declared last: feed pipelines upsert into datasets_ through this
  // Instance, so the manager (which joins those threads) must be destroyed
  // before any of the members above.
  std::unique_ptr<feeds::FeedManager> feeds_;
};

}  // namespace asterix
