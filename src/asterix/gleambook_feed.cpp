#include "asterix/gleambook_feed.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/metrics.h"

namespace asterix {

using feeds::FeedRecord;

adm::Value GleambookAdapter::Make(int64_t id) {
  return users_ ? gen_->MakeUser(id) : gen_->MakeMessage(id);
}

Status GleambookAdapter::Open(uint64_t resume_after) {
  gen_ = std::make_unique<gleambook::Generator>(options_);
  // The generator's stream is deterministic only as a sequence from a
  // fresh Generator, so resume regenerates and discards up to the
  // watermark — the whole adapter state fits in one integer.
  for (uint64_t i = 1; i <= resume_after && i <= total_; i++) {
    (void)Make(static_cast<int64_t>(i));
  }
  next_seqno_ = resume_after + 1;
  emitted_since_open_ = 0;
  open_time_ns_ = metrics::NowNs();
  return Status::OK();
}

Result<bool> GleambookAdapter::NextBatch(std::vector<FeedRecord>* out,
                                         size_t max, int timeout_ms) {
  if (next_seqno_ > total_) return false;
  uint64_t budget = max;
  if (rate_ > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      double elapsed_s =
          static_cast<double>(metrics::NowNs() - open_time_ns_) / 1e9;
      double allowed =
          elapsed_s * rate_ - static_cast<double>(emitted_since_open_);
      if (allowed >= 1.0) {
        budget = std::min<uint64_t>(budget, static_cast<uint64_t>(allowed));
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (uint64_t i = 0; i < budget && next_seqno_ <= total_; i++) {
    FeedRecord r;
    r.seqno = next_seqno_;
    r.parsed = true;
    r.value = Make(static_cast<int64_t>(next_seqno_));
    next_seqno_++;
    emitted_since_open_++;
    out->push_back(std::move(r));
  }
  return true;  // end-of-feed reported by the next call
}

void RegisterAsterixFeedAdapters() {
  static std::once_flag once;
  std::call_once(once, [] {
    feeds::RegisterAdapterFactory(
        "gleambook",
        [](const std::map<std::string, std::string>& props)
            -> Result<std::unique_ptr<feeds::FeedAdapter>> {
          gleambook::GeneratorOptions opt;
          opt.seed = std::strtoull(
              feeds::GetAdapterProp(props, "seed", "42").c_str(), nullptr, 10);
          opt.num_users = std::strtoll(
              feeds::GetAdapterProp(props, "users", "1000").c_str(), nullptr,
              10);
          bool users =
              feeds::GetAdapterProp(props, "kind", "message") == "user";
          uint64_t total = std::strtoull(
              feeds::GetAdapterProp(props, "records", "10000").c_str(),
              nullptr, 10);
          double rate = std::strtod(
              feeds::GetAdapterProp(props, "rate", "0").c_str(), nullptr);
          return {std::make_unique<GleambookAdapter>(opt, users, total, rate)};
        });
  });
}

}  // namespace asterix
