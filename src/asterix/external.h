// External dataset adapter: `localfs` delimited-text and ADM/JSON files
// made queryable in situ (paper §III item 6, Fig. 3(b)). The paper's HDFS
// support is substituted by the local filesystem — the adapter abstraction
// is identical, only the byte source differs.
#pragma once

#include <string>
#include <vector>

#include "adm/type.h"
#include "asterix/metadata.h"
#include "common/result.h"

namespace asterix::external {

/// Read every record of the external dataset into memory, converting each
/// row to an ADM object per the declared type. Supported properties:
///   "path"       local path, optionally "localhost://"-prefixed
///   "format"     "delimited-text" (default) or "adm"/"json"
///   "delimiter"  single character (default ',') for delimited-text
Result<std::vector<adm::Value>> ReadExternalDataset(const meta::DatasetDef& def,
                                                    const adm::TypePtr& type);

/// Parse one delimited-text line per the (closed) type's declared fields.
/// Thin wrapper over adm::ParseDelimitedLine (kept for source compatibility;
/// the implementation lives in the adm layer so feeds can share it without
/// depending on asterix).
Result<adm::Value> ParseDelimitedLine(const std::string& line, char delimiter,
                                      const adm::TypePtr& type);

/// Export records to a CSV file (the §V-D round-trip feature users asked
/// for: CSV import existed, export was added on demand).
Status ExportCsv(const std::vector<adm::Value>& records,
                 const std::vector<std::string>& columns,
                 const std::string& path, char delimiter = ',');

}  // namespace asterix::external
