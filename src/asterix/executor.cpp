#include "asterix/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "adm/key_encoder.h"
#include "adm/serde.h"
#include "asterix/external.h"
#include "hyracks/columnar_scan.h"
#include "hyracks/groupby.h"
#include "hyracks/join.h"
#include "hyracks/merge.h"
#include "hyracks/operators.h"
#include "hyracks/sort.h"

namespace asterix {

using algebricks::AccessPathKind;
using algebricks::Expr;
using algebricks::ExprKind;
using algebricks::ExprPtr;
using algebricks::LogicalOp;
using algebricks::LogicalOpKind;
using algebricks::LogicalOpPtr;
using algebricks::VarId;
using hyracks::StreamPtr;
using hyracks::Tuple;
using hyracks::TupleEval;

namespace {

/// Wraps an LSM snapshot scan of one dataset partition as a TupleStream.
class PartitionScanSource : public hyracks::TupleStream {
 public:
  explicit PartitionScanSource(const DatasetPartition* part) : part_(part) {}
  Status Open() override {
    AX_ASSIGN_OR_RETURN(auto it, part_->ScanIterator());
    it_ = std::make_unique<storage::LsmBTree::Iterator>(std::move(it));
    AX_RETURN_NOT_OK(it_->SeekToFirst());
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (!it_ || !it_->Valid()) return false;
    AX_ASSIGN_OR_RETURN(adm::Value record, adm::Deserialize(it_->value()));
    out->fields.clear();
    out->fields.push_back(std::move(record));
    AX_RETURN_NOT_OK(it_->Next());
    return true;
  }
  Result<bool> NextBatch(hyracks::Batch* out) override {
    out->Clear();
    while (it_ && it_->Valid() && !out->full()) {
      AX_RETURN_NOT_OK(PollAlive());
      AX_ASSIGN_OR_RETURN(adm::Value record, adm::Deserialize(it_->value()));
      Tuple* t = out->Add();
      t->fields.push_back(std::move(record));
      AX_RETURN_NOT_OK(it_->Next());
    }
    if (out->empty()) return false;
    hyracks::NoteBatchEmitted(out->size());
    return true;
  }
  Status Close() override {
    it_.reset();
    return Status::OK();
  }

 private:
  const DatasetPartition* part_;
  std::unique_ptr<storage::LsmBTree::Iterator> it_;
};

/// Index-search source: runs the access path at Open, then streams the
/// fetched records.
class IndexSearchSource : public hyracks::TupleStream {
 public:
  IndexSearchSource(const DatasetPartition* part, const LogicalOp* op,
                    bool sort_pks, const algebricks::FunctionRegistry* fns)
      : part_(part), op_(op), sort_pks_(sort_pks), fns_(fns) {}

  Status Open() override {
    pos_ = 0;
    rows_.clear();
    // Evaluate constant bounds.
    adm::Value lo = adm::Value::Missing(), hi = adm::Value::Missing();
    if (op_->search_lo) {
      AX_ASSIGN_OR_RETURN(lo, algebricks::EvaluateConst(op_->search_lo, *fns_));
    }
    if (op_->search_hi) {
      AX_ASSIGN_OR_RETURN(hi, algebricks::EvaluateConst(op_->search_hi, *fns_));
    }
    std::vector<std::string> pks;
    switch (op_->access_path) {
      case AccessPathKind::kPrimaryLookup: {
        adm::Value record;
        AX_ASSIGN_OR_RETURN(bool found, part_->Get(lo, &record));
        if (found) {
          Tuple t;
          t.fields.push_back(std::move(record));
          rows_.push_back(std::move(t));
        }
        return Status::OK();
      }
      case AccessPathKind::kPrimaryRange: {
        AX_ASSIGN_OR_RETURN(auto it, part_->ScanIterator());
        std::string lo_key = adm::MinKey();
        if (!lo.is_unknown()) {
          AX_ASSIGN_OR_RETURN(lo_key, adm::EncodeKey(lo));
        }
        std::string hi_key = adm::MaxKey();
        if (!hi.is_unknown()) {
          AX_ASSIGN_OR_RETURN(hi_key, adm::EncodeKey(hi));
        }
        AX_RETURN_NOT_OK(it.Seek(lo_key));
        while (it.Valid() && it.key() <= hi_key) {
          AX_ASSIGN_OR_RETURN(adm::Value record, adm::Deserialize(it.value()));
          Tuple t;
          t.fields.push_back(std::move(record));
          rows_.push_back(std::move(t));
          AX_RETURN_NOT_OK(it.Next());
        }
        return Status::OK();
      }
      case AccessPathKind::kSecondaryBTree: {
        AX_ASSIGN_OR_RETURN(pks, part_->BTreeSearch(op_->index_name, lo, hi));
        break;
      }
      case AccessPathKind::kRTree: {
        if (!lo.is_point() && !lo.is_rectangle()) {
          return Status::InvalidArgument("R-tree search needs a spatial key");
        }
        AX_ASSIGN_OR_RETURN(pks, part_->RTreeSearch(op_->index_name, lo.Mbr()));
        break;
      }
      case AccessPathKind::kKeyword: {
        if (!lo.is_string()) {
          return Status::InvalidArgument("keyword search needs a string key");
        }
        AX_ASSIGN_OR_RETURN(pks,
                            part_->KeywordSearch(op_->index_name, lo.AsString()));
        break;
      }
    }
    // The [26] trick: sort PKs so the primary fetch sweeps the B+tree in
    // key order instead of random-probing it.
    if (sort_pks_) std::sort(pks.begin(), pks.end());
    for (const auto& pk : pks) {
      adm::Value record;
      AX_ASSIGN_OR_RETURN(bool found, part_->GetByEncodedPk(pk, &record));
      if (!found) continue;  // racing delete
      Tuple t;
      t.fields.push_back(std::move(record));
      rows_.push_back(std::move(t));
    }
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = std::move(rows_[pos_++]);
    return true;
  }
  Result<bool> NextBatch(hyracks::Batch* out) override {
    out->Clear();
    while (pos_ < rows_.size() && !out->full()) {
      *out->Add() = std::move(rows_[pos_++]);
    }
    if (out->empty()) return false;
    hyracks::NoteBatchEmitted(out->size());
    return true;
  }
  Status Close() override {
    rows_.clear();
    return Status::OK();
  }

 private:
  const DatasetPartition* part_;
  const LogicalOp* op_;
  bool sort_pks_;
  const algebricks::FunctionRegistry* fns_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// Split a join condition into positionally paired equi keys + residual.
struct JoinKeys {
  std::vector<ExprPtr> left, right;
  std::vector<ExprPtr> residual;
};

JoinKeys ExtractJoinKeys(const ExprPtr& condition,
                         const std::vector<VarId>& left_schema,
                         const std::vector<VarId>& right_schema) {
  JoinKeys out;
  if (!condition) return out;
  std::vector<ExprPtr> conjuncts;
  algebricks::SplitConjuncts(condition, &conjuncts);
  for (const auto& cj : conjuncts) {
    bool handled = false;
    if (cj->kind == ExprKind::kCall && cj->fn == "eq" && cj->args.size() == 2) {
      const auto& a = cj->args[0];
      const auto& b = cj->args[1];
      if (a->UsesOnly(left_schema) && b->UsesOnly(right_schema)) {
        out.left.push_back(a);
        out.right.push_back(b);
        handled = true;
      } else if (b->UsesOnly(left_schema) && a->UsesOnly(right_schema)) {
        out.left.push_back(b);
        out.right.push_back(a);
        handled = true;
      }
    }
    if (!handled) out.residual.push_back(cj);
  }
  return out;
}

/// Harvest hooks: pull operator-specific stats into the profiled plan at
/// Close (on the partition's own thread — see profile.h's contract).
hyracks::ProfiledStream::Harvest SortHarvest(const hyracks::ExternalSortOp* op) {
  return [op](hyracks::OpStats* s) {
    const auto& st = op->stats();
    s->extra["sort_tuples"] = st.tuples;
    if (st.runs_spilled > 0) {
      s->extra["runs_spilled"] = st.runs_spilled;
      s->extra["merge_passes"] = st.merge_passes;
      s->extra["spill_bytes"] = st.bytes_spilled;
    }
  };
}

hyracks::ProfiledStream::Harvest JoinHarvest(const hyracks::HashJoinOp* op) {
  return [op](hyracks::OpStats* s) {
    const auto& st = op->stats();
    if (st.partitions_spilled > 0) {
      s->extra["partitions_spilled"] = st.partitions_spilled;
      s->extra["recursion_depth"] = st.recursion_depth;
    }
    if (st.bytes_spilled > 0) s->extra["spill_bytes"] = st.bytes_spilled;
  };
}

hyracks::ProfiledStream::Harvest GroupHarvest(const hyracks::HashGroupByOp* op) {
  return [op](hyracks::OpStats* s) {
    if (op->spill_partitions_used() > 0) {
      s->extra["spill_partitions"] = op->spill_partitions_used();
      s->extra["spill_bytes"] = op->bytes_spilled();
    }
  };
}

}  // namespace

int Executor::ProfileWrap(
    Lowered* l, std::string label, std::vector<int> children,
    std::vector<hyracks::ProfiledStream::Harvest> harvests) {
  // Profiling or not, every lowered level passes through here: wire the
  // query's cancellation token before any wrapper hides the operator, so
  // each pump loop in the tree observes Cancel()/deadline at batch
  // granularity.
  for (auto& s : l->streams) {
    if (s) s->SetQueryContext(ctx_);
  }
  if (profile_ == nullptr) return -1;
  // Drop -1 child ids (subtrees lowered while profiling was off — only
  // possible for empty sources today, but keep the tree well formed).
  children.erase(std::remove(children.begin(), children.end(), -1),
                 children.end());
  int id = profile_->AddNode(std::move(label), std::move(children),
                             l->streams.size());
  for (size_t p = 0; p < l->streams.size(); p++) {
    l->streams[p] = std::make_unique<hyracks::ProfiledStream>(
        std::move(l->streams[p]), profile_->StatsFor(id, p),
        harvests.empty() ? nullptr : std::move(harvests[p]));
  }
  l->profile_node = id;
  return id;
}

Result<Executor::Lowered> Executor::BuildScan(const LogicalOp& op) {
  Lowered out;
  out.schema = {op.scan_var};
  AX_ASSIGN_OR_RETURN(auto def, metadata_->GetDataset(op.dataset));
  if (def.external) {
    AX_ASSIGN_OR_RETURN(auto type, metadata_->GetType(def.type_name));
    AX_ASSIGN_OR_RETURN(auto records,
                        external::ReadExternalDataset(def, type));
    // Round-robin external rows across partitions for parallel processing.
    std::vector<std::vector<Tuple>> split(num_partitions_);
    for (size_t i = 0; i < records.size(); i++) {
      Tuple t;
      t.fields.push_back(std::move(records[i]));
      split[i % num_partitions_].push_back(std::move(t));
    }
    for (auto& part : split) {
      out.streams.push_back(
          std::make_unique<hyracks::VectorSource>(std::move(part)));
    }
    return out;
  }
  auto it = partitions_.find(op.dataset);
  if (it == partitions_.end()) {
    return Status::Internal("no partitions opened for dataset " + op.dataset);
  }
  if (def.storage_format == "columnar") {
    // Batch-native scan straight off the LSM component stack, honoring the
    // optimizer's pushed projection and predicates.
    std::vector<hyracks::ScanPredicate> preds;
    for (const auto& p : op.scan_predicates) {
      hyracks::ScanPredicate sp;
      sp.field = p.field;
      sp.cmp = p.cmp == "lt"   ? hyracks::ScanCmp::kLt
               : p.cmp == "le" ? hyracks::ScanCmp::kLe
               : p.cmp == "gt" ? hyracks::ScanCmp::kGt
               : p.cmp == "ge" ? hyracks::ScanCmp::kGe
                               : hyracks::ScanCmp::kEq;
      sp.constant = p.constant;
      preds.push_back(std::move(sp));
    }
    for (DatasetPartition* part : it->second) {
      out.streams.push_back(std::make_unique<hyracks::ColumnarScanSource>(
          part->primary(), op.scan_fields, op.scan_fields_pushed, preds));
    }
    return out;
  }
  for (DatasetPartition* part : it->second) {
    out.streams.push_back(std::make_unique<PartitionScanSource>(part));
  }
  return out;
}

Result<Executor::Lowered> Executor::BuildIndexSearch(const LogicalOp& op) {
  Lowered out;
  out.schema = {op.scan_var};
  auto it = partitions_.find(op.dataset);
  if (it == partitions_.end()) {
    return Status::Internal("no partitions opened for dataset " + op.dataset);
  }
  bool sort_pks = op.sort_pks_before_fetch && !force_unsorted_fetch_;
  for (DatasetPartition* part : it->second) {
    out.streams.push_back(
        std::make_unique<IndexSearchSource>(part, &op, sort_pks, fns_));
  }
  return out;
}

Result<Executor::Lowered> Executor::Repartition(
    Lowered in, size_t n, std::vector<TupleEval> key_evals,
    hyracks::Job* job) {
  hyracks::Exchange* ex = job->AddExchange(in.streams.size(), n);
  const bool hash = !key_evals.empty();
  hyracks::Exchange::RoutingFn route =
      hash ? hyracks::Exchange::HashRoute(std::move(key_evals), n)
           : hyracks::Exchange::SingleRoute();
  for (auto& stream : in.streams) {
    job->AddProducerTask(
        [ex, route, s = std::shared_ptr<hyracks::TupleStream>(
                 std::move(stream))]() { return ex->RunProducer(s.get(), route); });
  }
  Lowered out;
  out.schema = in.schema;
  for (size_t c = 0; c < n; c++) out.streams.push_back(ex->ConsumerStream(c));
  for (auto& s : out.streams) {
    if (s) s->SetQueryContext(ctx_);  // ProfileWrap is conditional here
  }
  if (profile_ != nullptr) {
    char label[48];
    std::snprintf(label, sizeof(label), "EXCHANGE(%s %zu->%zu)",
                  hash ? "hash" : "merge", ex->n_producers(), n);
    int id = ProfileWrap(&out, label, {in.profile_node});
    // Traffic counters are written by producer/consumer threads; harvest
    // them after the job joins every thread (Executor::Run finalizes).
    hyracks::PlanProfile::Node* node = profile_->mutable_node(id);
    profile_->AddFinalizer([ex, node]() {
      const auto& st = ex->stats();
      node->extra["frames"] = st.frames_sent.load(std::memory_order_relaxed);
      node->extra["exch_tuples"] =
          st.tuples_sent.load(std::memory_order_relaxed);
      node->extra["producer_wait_ns"] =
          st.producer_wait_ns.load(std::memory_order_relaxed);
      node->extra["consumer_wait_ns"] =
          st.consumer_wait_ns.load(std::memory_order_relaxed);
    });
  }
  return out;
}

Result<Executor::Lowered> Executor::Build(const LogicalOpPtr& op,
                                          hyracks::Job* job) {
  switch (op->kind) {
    case LogicalOpKind::kEmptySource: {
      Lowered out;
      out.streams.push_back(std::make_unique<hyracks::VectorSource>(
          std::vector<Tuple>{Tuple{}}));
      ProfileWrap(&out, "EMPTY", {});
      return out;
    }
    case LogicalOpKind::kDataScan: {
      AX_ASSIGN_OR_RETURN(Lowered out, BuildScan(*op));
      ProfileWrap(&out, "SCAN " + op->dataset, {});
      return out;
    }
    case LogicalOpKind::kIndexSearch: {
      AX_ASSIGN_OR_RETURN(Lowered out, BuildIndexSearch(*op));
      std::string label = "INDEX-SEARCH " + op->dataset;
      if (!op->index_name.empty()) label += "." + op->index_name;
      ProfileWrap(&out, std::move(label), {});
      return out;
    }

    case LogicalOpKind::kSelect: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      AX_ASSIGN_OR_RETURN(auto pred, Compile(op->condition, in.schema));
      // Vectorized form of the same condition, when it has one: SelectOp
      // then masks whole batches instead of interpreting per tuple.
      hyracks::BatchPredicate batch_pred = algebricks::TryCompileBatchPredicate(
          op->condition, algebricks::PositionsOf(in.schema));
      for (auto& s : in.streams) {
        s = std::make_unique<hyracks::SelectOp>(std::move(s), pred, batch_pred);
      }
      ProfileWrap(&in, "SELECT", {in.profile_node});
      return in;
    }
    case LogicalOpKind::kAssign: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      std::vector<TupleEval> evals;
      // Assigns may reference earlier assigns in the same op: extend the
      // schema incrementally.
      std::vector<VarId> schema = in.schema;
      for (const auto& [v, e] : op->assigns) {
        AX_ASSIGN_OR_RETURN(auto eval, Compile(e, schema));
        evals.push_back(std::move(eval));
        schema.push_back(v);
      }
      // Note: AssignOp evaluates each eval against the growing tuple, so
      // later assigns see earlier results — matches the schema extension.
      for (auto& s : in.streams) {
        s = std::make_unique<hyracks::AssignOp>(std::move(s), evals);
      }
      in.schema = std::move(schema);
      ProfileWrap(&in, "ASSIGN", {in.profile_node});
      return in;
    }
    case LogicalOpKind::kProject: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      auto positions = algebricks::PositionsOf(in.schema);
      std::vector<size_t> keep;
      for (VarId v : op->project_vars) {
        auto it = positions.find(v);
        if (it == positions.end()) {
          return Status::Internal("project of unbound variable $" +
                                  std::to_string(v));
        }
        keep.push_back(it->second);
      }
      for (auto& s : in.streams) {
        s = std::make_unique<hyracks::ProjectOp>(std::move(s), keep);
      }
      in.schema = op->project_vars;
      ProfileWrap(&in, "PROJECT", {in.profile_node});
      return in;
    }
    case LogicalOpKind::kUnnest: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      AX_ASSIGN_OR_RETURN(auto coll, Compile(op->unnest_expr, in.schema));
      for (auto& s : in.streams) {
        s = std::make_unique<hyracks::UnnestOp>(std::move(s), coll,
                                                op->unnest_outer);
      }
      in.schema.push_back(op->unnest_var);
      ProfileWrap(&in, "UNNEST", {in.profile_node});
      return in;
    }
    case LogicalOpKind::kLimit: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      if (in.partitioned()) {
        // Local pre-limit (limit+offset suffices), then global limit.
        for (auto& s : in.streams) {
          s = std::make_unique<hyracks::LimitOp>(
              std::move(s), static_cast<uint64_t>(op->limit + op->offset), 0);
        }
        ProfileWrap(&in, "LIMIT(local)", {in.profile_node});
        AX_ASSIGN_OR_RETURN(in, Repartition(std::move(in), 1, {}, job));
      }
      in.streams[0] = std::make_unique<hyracks::LimitOp>(
          std::move(in.streams[0]), static_cast<uint64_t>(op->limit),
          static_cast<uint64_t>(op->offset));
      ProfileWrap(&in, "LIMIT", {in.profile_node});
      return in;
    }
    case LogicalOpKind::kOrder: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      std::vector<hyracks::SortKey> keys;
      for (const auto& k : op->order_keys) {
        AX_ASSIGN_OR_RETURN(auto eval, Compile(k.expr, in.schema));
        keys.push_back({std::move(eval), k.ascending});
      }
      if (!in.partitioned()) {
        auto sort = std::make_unique<hyracks::ExternalSortOp>(
            std::move(in.streams[0]), std::move(keys), op_budget_, tmp_);
        AX_ASSIGN_OR_RETURN(auto grant,
                            AcquireBudget(resource::OperatorKind::kSort));
        sort->AttachResources(ctx_, std::move(grant));
        auto* raw = sort.get();
        in.streams[0] = std::move(sort);
        ProfileWrap(&in, "SORT", {in.profile_node}, {SortHarvest(raw)});
        return in;
      }
      // Parallel sort: each partition sorts locally (concurrently), then a
      // single ordered merge produces the global order (§VII's
      // "much-improved parallel sorting").
      Lowered locals;
      locals.schema = in.schema;
      std::vector<hyracks::ProfiledStream::Harvest> sort_harvests;
      for (auto& s : in.streams) {
        std::vector<hyracks::SortKey> local_keys;
        for (const auto& k : op->order_keys) {
          AX_ASSIGN_OR_RETURN(auto eval, Compile(k.expr, in.schema));
          local_keys.push_back({std::move(eval), k.ascending});
        }
        auto sort = std::make_unique<hyracks::ExternalSortOp>(
            std::move(s), std::move(local_keys),
            op_budget_ / in.streams.size(), tmp_);
        AX_ASSIGN_OR_RETURN(auto grant,
                            AcquireBudget(resource::OperatorKind::kSort,
                                          in.streams.size()));
        sort->AttachResources(ctx_, std::move(grant));
        sort_harvests.push_back(SortHarvest(sort.get()));
        locals.streams.push_back(std::move(sort));
      }
      ProfileWrap(&locals, "SORT(local)", {in.profile_node},
                  std::move(sort_harvests));
      Lowered out;
      out.schema = in.schema;
      out.streams.push_back(std::make_unique<hyracks::OrderedMergeStream>(
          std::move(locals.streams), std::move(keys)));
      ProfileWrap(&out, "MERGE", {locals.profile_node});
      return out;
    }
    case LogicalOpKind::kDistinct: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      if (in.partitioned()) {
        AX_ASSIGN_OR_RETURN(in, Repartition(std::move(in), 1, {}, job));
      }
      // Sort on the full tuple, then stream-distinct.
      std::vector<hyracks::SortKey> keys;
      for (size_t i = 0; i < in.schema.size(); i++) {
        keys.push_back({[i](const Tuple& t) -> Result<adm::Value> {
                          return t.at(i);
                        },
                        true});
      }
      auto sort = std::make_unique<hyracks::ExternalSortOp>(
          std::move(in.streams[0]), std::move(keys), op_budget_, tmp_);
      AX_ASSIGN_OR_RETURN(auto grant,
                          AcquireBudget(resource::OperatorKind::kSort));
      sort->AttachResources(ctx_, std::move(grant));
      auto* sort_raw = sort.get();
      in.streams[0] = std::move(sort);
      ProfileWrap(&in, "SORT", {in.profile_node}, {SortHarvest(sort_raw)});
      in.streams[0] = std::make_unique<hyracks::StreamDistinctOp>(
          std::move(in.streams[0]));
      ProfileWrap(&in, "DISTINCT", {in.profile_node});
      return in;
    }
    case LogicalOpKind::kJoin: {
      AX_ASSIGN_OR_RETURN(Lowered left, Build(op->children[0], job));
      AX_ASSIGN_OR_RETURN(Lowered right, Build(op->children[1], job));
      std::vector<VarId> left_schema = left.schema;
      std::vector<VarId> right_schema = right.schema;
      JoinKeys keys = ExtractJoinKeys(op->condition, left_schema, right_schema);

      std::vector<VarId> out_schema = left_schema;
      if (op->join_kind != algebricks::JoinKind::kLeftSemi) {
        out_schema.insert(out_schema.end(), right_schema.begin(),
                          right_schema.end());
      }
      // Residual evaluates over the concatenated layout in all cases
      // (for semi joins HashJoinOp applies it pre-projection).
      std::vector<VarId> concat_schema = left_schema;
      concat_schema.insert(concat_schema.end(), right_schema.begin(),
                           right_schema.end());
      TupleEval residual;
      if (!keys.residual.empty()) {
        AX_ASSIGN_OR_RETURN(
            residual, Compile(algebricks::AndAll(keys.residual), concat_schema));
      }

      hyracks::JoinType jt =
          op->join_kind == algebricks::JoinKind::kInner ? hyracks::JoinType::kInner
          : op->join_kind == algebricks::JoinKind::kLeftOuter
              ? hyracks::JoinType::kLeftOuter
              : hyracks::JoinType::kLeftSemi;

      size_t target = keys.left.empty() ? 1 : num_partitions_;
      std::vector<TupleEval> left_routes, right_routes;
      for (size_t i = 0; i < keys.left.size(); i++) {
        AX_ASSIGN_OR_RETURN(auto le, Compile(keys.left[i], left_schema));
        AX_ASSIGN_OR_RETURN(auto re, Compile(keys.right[i], right_schema));
        left_routes.push_back(std::move(le));
        right_routes.push_back(std::move(re));
      }
      if (left.streams.size() != target || !keys.left.empty()) {
        AX_ASSIGN_OR_RETURN(
            left, Repartition(std::move(left), target, left_routes, job));
      }
      if (right.streams.size() != target || !keys.right.empty()) {
        AX_ASSIGN_OR_RETURN(
            right, Repartition(std::move(right), target, right_routes, job));
      }
      // Compile key evals once more for the join operator itself.
      Lowered out;
      out.schema = out_schema;
      std::vector<hyracks::ProfiledStream::Harvest> join_harvests;
      for (size_t p = 0; p < target; p++) {
        std::vector<TupleEval> lk, rk;
        for (size_t i = 0; i < keys.left.size(); i++) {
          AX_ASSIGN_OR_RETURN(auto le, Compile(keys.left[i], left_schema));
          AX_ASSIGN_OR_RETURN(auto re, Compile(keys.right[i], right_schema));
          lk.push_back(std::move(le));
          rk.push_back(std::move(re));
        }
        auto join = std::make_unique<hyracks::HashJoinOp>(
            std::move(left.streams[p]), std::move(right.streams[p]),
            std::move(lk), std::move(rk), jt, op_budget_, tmp_, residual,
            right_schema.size());
        AX_ASSIGN_OR_RETURN(auto grant,
                            AcquireBudget(resource::OperatorKind::kJoin));
        join->AttachResources(ctx_, std::move(grant));
        join_harvests.push_back(JoinHarvest(join.get()));
        out.streams.push_back(std::move(join));
      }
      ProfileWrap(&out, "JOIN(hash)",
                  {left.profile_node, right.profile_node},
                  std::move(join_harvests));
      return out;
    }
    case LogicalOpKind::kGroupBy: {
      AX_ASSIGN_OR_RETURN(Lowered in, Build(op->children[0], job));
      std::vector<TupleEval> key_evals;
      for (const auto& [v, e] : op->group_keys) {
        AX_ASSIGN_OR_RETURN(auto eval, Compile(e, in.schema));
        key_evals.push_back(std::move(eval));
      }
      std::vector<hyracks::AggSpec> aggs;
      for (const auto& a : op->aggs) {
        hyracks::AggSpec spec;
        spec.kind = a.kind;
        if (a.arg) {
          AX_ASSIGN_OR_RETURN(spec.arg, Compile(a.arg, in.schema));
        }
        aggs.push_back(std::move(spec));
      }
      std::vector<VarId> out_schema;
      for (const auto& [v, e] : op->group_keys) out_schema.push_back(v);
      for (const auto& a : op->aggs) out_schema.push_back(a.var);

      if (!in.partitioned()) {
        auto gb = std::make_unique<hyracks::HashGroupByOp>(
            std::move(in.streams[0]), key_evals, aggs,
            hyracks::AggPhase::kComplete, op_budget_, tmp_);
        AX_ASSIGN_OR_RETURN(auto grant,
                            AcquireBudget(resource::OperatorKind::kGroupBy));
        gb->AttachResources(ctx_, std::move(grant));
        auto* gb_raw = gb.get();
        in.streams[0] = std::move(gb);
        in.schema = out_schema;
        ProfileWrap(&in, "GROUPBY", {in.profile_node}, {GroupHarvest(gb_raw)});
        return in;
      }
      // Two-phase: local partial, hash-exchange on key positions, final.
      size_t num_keys = op->group_keys.size();
      std::vector<hyracks::ProfiledStream::Harvest> partial_harvests;
      for (auto& s : in.streams) {
        auto gb = std::make_unique<hyracks::HashGroupByOp>(
            std::move(s), key_evals, aggs, hyracks::AggPhase::kPartial,
            op_budget_, tmp_);
        AX_ASSIGN_OR_RETURN(auto grant,
                            AcquireBudget(resource::OperatorKind::kGroupBy));
        gb->AttachResources(ctx_, std::move(grant));
        partial_harvests.push_back(GroupHarvest(gb.get()));
        s = std::move(gb);
      }
      ProfileWrap(&in, "GROUPBY(partial)", {in.profile_node},
                  std::move(partial_harvests));
      // Partial rows: keys at positions 0..K-1.
      std::vector<TupleEval> route;
      for (size_t i = 0; i < num_keys; i++) {
        route.push_back(
            [i](const Tuple& t) -> Result<adm::Value> { return t.at(i); });
      }
      size_t target = num_keys == 0 ? 1 : num_partitions_;
      Lowered mid;
      mid.schema = in.schema;  // placeholder; layout is partial rows
      AX_ASSIGN_OR_RETURN(mid,
                          Repartition(std::move(in), target, route, job));
      std::vector<TupleEval> final_keys;
      for (size_t i = 0; i < num_keys; i++) {
        final_keys.push_back(
            [i](const Tuple& t) -> Result<adm::Value> { return t.at(i); });
      }
      std::vector<hyracks::ProfiledStream::Harvest> final_harvests;
      for (auto& s : mid.streams) {
        auto gb = std::make_unique<hyracks::HashGroupByOp>(
            std::move(s), final_keys, aggs, hyracks::AggPhase::kFinal,
            op_budget_, tmp_);
        AX_ASSIGN_OR_RETURN(auto grant,
                            AcquireBudget(resource::OperatorKind::kGroupBy));
        gb->AttachResources(ctx_, std::move(grant));
        final_harvests.push_back(GroupHarvest(gb.get()));
        s = std::move(gb);
      }
      ProfileWrap(&mid, "GROUPBY(final)", {mid.profile_node},
                  std::move(final_harvests));
      mid.schema = out_schema;
      return mid;
    }
    case LogicalOpKind::kInsert:
    case LogicalOpKind::kDelete:
      return Status::Internal("DML plans are executed by the Instance layer");
  }
  return Status::Internal("unhandled logical operator");
}

Result<resource::MemoryGrant> Executor::AcquireBudget(
    resource::OperatorKind kind, size_t share) {
  if (governor_ == nullptr) return resource::MemoryGrant();
  size_t want =
      governor_->defaults().BytesFor(kind) / std::max<size_t>(1, share);
  return governor_->Acquire(kind, want, ctx_);
}

Result<std::vector<adm::Value>> Executor::Run(const LogicalOpPtr& plan,
                                              ExecStats* stats) {
  auto start = std::chrono::steady_clock::now();
  hyracks::Job job;
  job.SetContext(ctx_);
  std::shared_ptr<hyracks::PlanProfile> profile;
  if (profiling_) profile = std::make_shared<hyracks::PlanProfile>();
  profile_ = profile.get();  // Build/Repartition add nodes while set
  AX_ASSIGN_OR_RETURN(Lowered lowered, Build(plan, &job));
  if (lowered.schema.size() != 1 && plan->kind != LogicalOpKind::kEmptySource) {
    // Root should be the final Project[result]; tolerate wider roots by
    // returning the first field.
  }
  if (profile_ != nullptr && lowered.profile_node >= 0) {
    profile_->set_root(lowered.profile_node);
  }
  AX_ASSIGN_OR_RETURN(auto collected, job.RunCollect(std::move(lowered.streams)));
  if (profile_ != nullptr) {
    // All job threads joined: safe to harvest exchange traffic.
    profile_->Finalize();
    profile_ = nullptr;
  }
  std::vector<adm::Value> out;
  for (auto& part : collected) {
    for (auto& t : part) {
      if (t.arity() == 0) continue;
      out.push_back(std::move(t.fields[0]));
    }
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (profile) profile->set_elapsed_ms(elapsed_ms);
  if (stats) {
    stats->optimized_plan = plan->ToString();
    stats->partitions = num_partitions_;
    stats->elapsed_ms = elapsed_ms;
    stats->profile = std::move(profile);
  }
  return out;
}

}  // namespace asterix
