#include "asterix/external.h"

#include <cstdlib>

#include "adm/json.h"
#include "adm/temporal.h"
#include "common/io.h"

namespace asterix::external {

using adm::Value;

namespace {
Result<Value> ConvertField(const std::string& text, const adm::TypePtr& type) {
  if (type == nullptr || type->kind() == adm::TypeKind::kAny) {
    return Value::String(text);
  }
  if (type->kind() != adm::TypeKind::kPrimitive) {
    return Status::NotSupported(
        "delimited-text supports only primitive fields");
  }
  switch (type->primitive_tag()) {
    case adm::TypeTag::kInt64:
      return Value::Int(std::atoll(text.c_str()));
    case adm::TypeTag::kDouble:
      return Value::Double(std::atof(text.c_str()));
    case adm::TypeTag::kString:
      return Value::String(text);
    case adm::TypeTag::kBoolean:
      return Value::Boolean(text == "true" || text == "1");
    case adm::TypeTag::kDatetime: {
      AX_ASSIGN_OR_RETURN(int64_t ms, adm::temporal::ParseDatetime(text));
      return Value::Datetime(ms);
    }
    case adm::TypeTag::kDate: {
      AX_ASSIGN_OR_RETURN(int64_t d, adm::temporal::ParseDate(text));
      return Value::Date(d);
    }
    case adm::TypeTag::kTime: {
      AX_ASSIGN_OR_RETURN(int64_t ms, adm::temporal::ParseTime(text));
      return Value::Time(ms);
    }
    case adm::TypeTag::kDuration: {
      AX_ASSIGN_OR_RETURN(int64_t ms, adm::temporal::ParseDuration(text));
      return Value::Duration(ms);
    }
    default:
      return Status::NotSupported(std::string("cannot parse '") + text +
                                  "' as " +
                                  adm::TypeTagName(type->primitive_tag()));
  }
}
}  // namespace

Result<Value> ParseDelimitedLine(const std::string& line, char delimiter,
                                 const adm::TypePtr& type) {
  if (type->kind() != adm::TypeKind::kObject) {
    return Status::InvalidArgument("external dataset type must be an object");
  }
  std::vector<std::string> cells;
  std::string cur;
  for (char c : line) {
    if (c == delimiter) {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  cells.push_back(std::move(cur));
  const auto& fields = type->object_fields();
  if (cells.size() != fields.size()) {
    return Status::ParseError("expected " + std::to_string(fields.size()) +
                              " delimited fields, got " +
                              std::to_string(cells.size()) + " in line '" +
                              line + "'");
  }
  adm::FieldVec out;
  for (size_t i = 0; i < fields.size(); i++) {
    AX_ASSIGN_OR_RETURN(Value v, ConvertField(cells[i], fields[i].type));
    out.emplace_back(fields[i].name, std::move(v));
  }
  return Value::Object(std::move(out));
}

Result<std::vector<Value>> ReadExternalDataset(const meta::DatasetDef& def,
                                               const adm::TypePtr& type) {
  auto it = def.external_props.find("path");
  if (it == def.external_props.end()) {
    return Status::InvalidArgument("external dataset '" + def.name +
                                   "' lacks a path property");
  }
  std::string path = it->second;
  const std::string kPrefix = "localhost://";
  if (path.rfind(kPrefix, 0) == 0) path = path.substr(kPrefix.size());

  std::string format = "delimited-text";
  if (auto fit = def.external_props.find("format");
      fit != def.external_props.end()) {
    format = fit->second;
  }
  char delimiter = ',';
  if (auto dit = def.external_props.find("delimiter");
      dit != def.external_props.end() && !dit->second.empty()) {
    delimiter = dit->second[0];
  }

  AX_ASSIGN_OR_RETURN(std::string content, fs::ReadFileToString(path));
  std::vector<Value> out;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    std::string line = content.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? content.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (format == "adm" || format == "json") {
      AX_ASSIGN_OR_RETURN(Value v, adm::ParseAdm(line));
      out.push_back(std::move(v));
    } else {
      AX_ASSIGN_OR_RETURN(Value v, ParseDelimitedLine(line, delimiter, type));
      out.push_back(std::move(v));
    }
  }
  return out;
}

Status ExportCsv(const std::vector<Value>& records,
                 const std::vector<std::string>& columns,
                 const std::string& path, char delimiter) {
  std::string out;
  for (size_t i = 0; i < columns.size(); i++) {
    if (i) out.push_back(delimiter);
    out += columns[i];
  }
  out.push_back('\n');
  for (const auto& rec : records) {
    for (size_t i = 0; i < columns.size(); i++) {
      if (i) out.push_back(delimiter);
      const Value& v = rec.GetField(columns[i]);
      if (v.is_string()) {
        out += v.AsString();
      } else if (!v.is_missing()) {
        out += v.ToString();
      }
    }
    out.push_back('\n');
  }
  return fs::WriteStringToFile(path, out);
}

}  // namespace asterix::external
