#include "asterix/external.h"

#include <cstdlib>

#include "adm/delimited.h"
#include "adm/json.h"
#include "common/io.h"

namespace asterix::external {

using adm::Value;


Result<Value> ParseDelimitedLine(const std::string& line, char delimiter,
                                 const adm::TypePtr& type) {
  return adm::ParseDelimitedLine(line, delimiter, type);
}

Result<std::vector<Value>> ReadExternalDataset(const meta::DatasetDef& def,
                                               const adm::TypePtr& type) {
  auto it = def.external_props.find("path");
  if (it == def.external_props.end()) {
    return Status::InvalidArgument("external dataset '" + def.name +
                                   "' lacks a path property");
  }
  std::string path = it->second;
  const std::string kPrefix = "localhost://";
  if (path.rfind(kPrefix, 0) == 0) path = path.substr(kPrefix.size());

  std::string format = "delimited-text";
  if (auto fit = def.external_props.find("format");
      fit != def.external_props.end()) {
    format = fit->second;
  }
  char delimiter = ',';
  if (auto dit = def.external_props.find("delimiter");
      dit != def.external_props.end() && !dit->second.empty()) {
    delimiter = dit->second[0];
  }

  AX_ASSIGN_OR_RETURN(std::string content, fs::ReadFileToString(path));
  std::vector<Value> out;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    std::string line = content.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? content.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (format == "adm" || format == "json") {
      AX_ASSIGN_OR_RETURN(Value v, adm::ParseAdm(line));
      out.push_back(std::move(v));
    } else {
      AX_ASSIGN_OR_RETURN(Value v, adm::ParseDelimitedLine(line, delimiter, type));
      out.push_back(std::move(v));
    }
  }
  return out;
}

Status ExportCsv(const std::vector<Value>& records,
                 const std::vector<std::string>& columns,
                 const std::string& path, char delimiter) {
  std::string out;
  for (size_t i = 0; i < columns.size(); i++) {
    if (i) out.push_back(delimiter);
    out += columns[i];
  }
  out.push_back('\n');
  for (const auto& rec : records) {
    for (size_t i = 0; i < columns.size(); i++) {
      if (i) out.push_back(delimiter);
      const Value& v = rec.GetField(columns[i]);
      if (v.is_string()) {
        out += v.AsString();
      } else if (!v.is_missing()) {
        out += v.ToString();
      }
    }
    out.push_back('\n');
  }
  return fs::WriteStringToFile(path, out);
}

}  // namespace asterix::external
