// The "gleambook" feed adapter: a rate-controlled synthetic source over
// the deterministic Gleambook generator. Lives in the asterix layer (the
// generator is an asterix-level fixture) and plugs into the feeds layer
// through the adapter factory registry — feeds itself never depends on
// asterix (DESIGN.md §4e layering DAG).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asterix/gleambook.h"
#include "common/result.h"
#include "feeds/adapter.h"
#include "feeds/record.h"

namespace asterix {

/// Properties: "kind" ("message" default, or "user"), "records" (total to
/// emit), "rate" (records/sec offered load; 0 = unlimited), "seed",
/// "users" (id space for message senders). The generator's record
/// sequence is deterministic from the seed, so resume regenerates and
/// skips — no state beyond the watermark survives a crash.
class GleambookAdapter : public feeds::FeedAdapter {
 public:
  GleambookAdapter(gleambook::GeneratorOptions options, bool users,
                   uint64_t total, double rate)
      : options_(options), users_(users), total_(total), rate_(rate) {}

  const char* name() const override { return "gleambook"; }
  Status Open(uint64_t resume_after) override;
  Result<bool> NextBatch(std::vector<feeds::FeedRecord>* out, size_t max,
                         int timeout_ms) override;
  Status Close() override { return Status::OK(); }

 private:
  adm::Value Make(int64_t id);
  gleambook::GeneratorOptions options_;
  bool users_;
  uint64_t total_;
  double rate_;  // offered records/sec; 0 = as fast as the pipeline takes
  std::unique_ptr<gleambook::Generator> gen_;
  uint64_t next_seqno_ = 1;
  uint64_t emitted_since_open_ = 0;
  uint64_t open_time_ns_ = 0;
};

/// Register the asterix-layer adapters ("gleambook") with the feeds
/// factory registry. Idempotent and cheap; Instance::Open calls it, and
/// tests that build a FeedManager directly may call it themselves.
void RegisterAsterixFeedAdapters();

}  // namespace asterix
