// BAD — Big Active Data (paper §IV: the NSF "Breaking BAD" project that
// extended AsterixDB with "data pub/sub"; §VII lists BAD among the three
// recognized extensions). The core abstraction is the *repetitive
// channel*: a parameterized query re-evaluated periodically, whose new
// results are pushed to subscribers instead of being polled.
//
// This module implements channels in the extension style the paper
// describes — layered ON TOP of the core Instance API without touching
// the engine (what "recognized extensions" means in Fig. 8's code
// management scheme).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asterix/instance.h"
#include "common/thread_annotations.h"

namespace asterix::bad {

using SubscriptionId = uint64_t;

/// Results delivered to one subscriber on one channel execution.
struct Delivery {
  std::string channel;
  SubscriptionId subscription = 0;
  adm::Value param;
  std::vector<adm::Value> new_results;  // results not delivered before
  uint64_t execution = 0;               // channel execution counter
};

using DeliveryCallback = std::function<void(const Delivery&)>;

/// Manages channels and subscriptions over an Instance.
/// Thread-safe; a background "channel job" thread can drive executions.
class ChannelManager {
 public:
  explicit ChannelManager(Instance* instance) : instance_(instance) {}
  ~ChannelManager();

  /// Create a repetitive channel. `query_template` is a SQL++ query with
  /// the literal placeholder `$param`, substituted per subscription with
  /// the subscriber's parameter rendered as an ADM literal, e.g.:
  ///   CREATE "recent orders of customer $param":
  ///     SELECT VALUE o.orderId FROM Orders o WHERE o.customer = $param
  Status CreateChannel(const std::string& name,
                       const std::string& query_template);
  Status DropChannel(const std::string& name);
  std::vector<std::string> Channels() const;

  /// Subscribe with a parameter; deliveries go to `callback`.
  Result<SubscriptionId> Subscribe(const std::string& channel,
                                   const adm::Value& param,
                                   DeliveryCallback callback);
  Status Unsubscribe(SubscriptionId id);

  /// Execute every channel once, delivering only results a subscription
  /// has not seen before (the pub/sub delta semantics). A failing
  /// subscription query does not stop the round: every other subscription
  /// is still evaluated and delivered, the failure is counted in the
  /// `bad.channel.execute_errors` metric and kept readable via
  /// last_error(), and the first failure of the round is returned.
  Status ExecuteOnce();

  /// Drive ExecuteOnce() periodically on a background thread.
  Status StartPeriodic(int period_ms);
  void StopPeriodic();

  uint64_t executions() const { return executions_.load(); }

  /// The most recent subscription-query failure (OK if none since the
  /// last failure-free round). The periodic job keeps running through
  /// errors, so this is how operators observe them.
  Status last_error() const AX_EXCLUDES(mu_);

 private:
  struct Subscription {
    SubscriptionId id;
    std::string channel;
    adm::Value param;
    DeliveryCallback callback;
    std::set<std::string> seen;  // serialized results already delivered
  };

  Instance* instance_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> channels_
      AX_GUARDED_BY(mu_);  // name -> query template
  std::map<SubscriptionId, Subscription> subscriptions_ AX_GUARDED_BY(mu_);
  SubscriptionId next_id_ AX_GUARDED_BY(mu_) = 1;
  Status last_error_ AX_GUARDED_BY(mu_);
  std::atomic<uint64_t> executions_{0};
  std::thread periodic_;
  std::atomic<bool> running_{false};
};

}  // namespace asterix::bad
