// FeedManager: the per-instance registry of feed connections. Binds the
// catalog's FeedDef (what to ingest: adapter + properties) to a live
// FeedRuntime (how it is ingested: policy + pipeline) and owns the durable
// per-feed progress files used for at-least-once resume after a crash.
// DDL-facing entry points (CreateFeed/ConnectFeed/...) are called by
// Instance::RunDdl under its DDL lock; the programmatic Connect() overload
// lets tests and benches supply an explicit policy and fault injector.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "asterix/metadata.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "feeds/adapter.h"
#include "feeds/fault_injector.h"
#include "feeds/policy.h"
#include "feeds/runtime.h"
#include "feeds/sink.h"

namespace asterix {
class Instance;
}

namespace asterix::feeds {

class FeedManager {
 public:
  /// `feeds_dir` holds progress files and spill runs; created lazily.
  FeedManager(Instance* instance, meta::MetadataManager* metadata,
              std::string feeds_dir);
  ~FeedManager();

  // ---- DDL surface ----------------------------------------------------------
  /// CREATE FEED name USING adapter (props). Validates the adapter name;
  /// the adapter itself is instantiated at connect time.
  Status CreateFeed(const std::string& name, const std::string& adapter,
                    std::map<std::string, std::string> props)
      AX_EXCLUDES(mu_);
  /// DROP FEED. Refuses while connected; removes the progress file.
  Status DropFeed(const std::string& name) AX_EXCLUDES(mu_);
  /// CONNECT FEED name TO DATASET ds USING POLICY p (empty = BASIC).
  /// Records the connection in the catalog so it survives restart.
  Status ConnectFeed(const std::string& name, const std::string& dataset,
                     const std::string& policy_name) AX_EXCLUDES(mu_);
  /// DISCONNECT FEED: graceful stop (drain + persist progress); the feed's
  /// progress file is kept so a later reconnect resumes where it left off.
  Status DisconnectFeed(const std::string& name) AX_EXCLUDES(mu_);

  // ---- programmatic surface -------------------------------------------------
  /// Connect with an explicit policy and optional fault injector (which must
  /// outlive the connection). Does NOT record the connection in the catalog.
  Status Connect(const std::string& name, const std::string& dataset,
                 const FeedPolicy& policy, FaultInjector* faults = nullptr)
      AX_EXCLUDES(mu_);

  /// Running runtime for a connected feed, or nullptr. The pointer stays
  /// valid until the feed is disconnected (DDL is single-threaded through
  /// Instance::RunDdl, so callers hold no lock).
  FeedRuntime* runtime(const std::string& name) AX_EXCLUDES(mu_);
  /// The in-process channel endpoint of a connected "channel" feed, or
  /// nullptr for other adapters / unconnected feeds.
  ChannelAdapter* channel(const std::string& name) AX_EXCLUDES(mu_);

  /// Persist the progress watermark of every connected feed (checkpoint
  /// hook: called before WAL truncation so the persisted watermark is
  /// always covered by either the WAL or the flushed components).
  Status PersistProgress() AX_EXCLUDES(mu_);
  /// Gracefully stop every connected feed (instance shutdown).
  Status StopAll() AX_EXCLUDES(mu_);

  std::string ProgressPathFor(const std::string& feed) const {
    return feeds_dir_ + "/" + feed + ".progress";
  }

 private:
  struct Connection {
    std::unique_ptr<FeedRuntime> runtime;
    ChannelAdapter* channel = nullptr;  // borrowed from runtime's adapter
  };

  Instance* instance_;
  meta::MetadataManager* metadata_;
  std::string feeds_dir_;
  mutable std::mutex mu_;
  std::map<std::string, Connection> connections_ AX_GUARDED_BY(mu_);
};

}  // namespace asterix::feeds
