// Dataset partition: one hash partition of an internal dataset (paper
// Fig. 1/Fig. 2). Owns the partition's primary LSM B+tree plus the local
// secondary indexes (B+tree / R-tree / inverted keyword — §III item 8) and
// keeps them consistent on upserts and deletes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "asterix/metadata.h"
#include "storage/lsm_btree.h"
#include "storage/lsm_inverted.h"
#include "storage/lsm_rtree.h"
#include "txn/log_manager.h"

namespace asterix {

struct PartitionOptions {
  std::string dir;
  storage::BufferCache* cache = nullptr;
  size_t mem_budget_bytes = 4u << 20;
  storage::MergePolicy merge_policy;
  /// World box for R-tree-free spatial alternatives is configured at index
  /// level elsewhere; the LSM R-tree itself needs no world box.
  txn::LogManager* wal = nullptr;  // optional write-ahead log
  uint32_t partition_id = 0;
  /// Component format for the PRIMARY index only (secondary indexes store
  /// key->PK pairs, which stay row-format regardless).
  storage::StorageFormat storage_format = storage::StorageFormat::kRow;
  /// Shared background maintenance pool for every LSM structure of the
  /// partition (primary + secondaries). Null = inline maintenance. Owned
  /// by the Instance; must outlive the partition.
  storage::MaintenanceScheduler* scheduler = nullptr;
  /// Per-tree backpressure bound (see LsmOptions::max_pending_immutables).
  size_t max_pending_immutables = 2;
};

/// One partition of an internal dataset. Thread-safe per the underlying
/// LSM structures; statement-level locking happens above (Instance).
class DatasetPartition {
 public:
  static Result<std::unique_ptr<DatasetPartition>> Open(
      const meta::DatasetDef& def, const PartitionOptions& options);

  /// Insert-or-replace a record (validated against the dataset type by the
  /// caller). Maintains all secondary indexes. `log` controls WAL writes
  /// (recovery replays with log=false).
  Status Upsert(const adm::Value& record, bool log = true);
  /// Insert that fails if the key already exists.
  Status Insert(const adm::Value& record, bool log = true);
  /// Delete by primary key value; returns whether it existed.
  Result<bool> DeleteByKey(const adm::Value& pk, bool log = true);

  /// Point lookup by primary key value.
  Result<bool> Get(const adm::Value& pk, adm::Value* record) const;
  /// Point lookup by encoded primary key.
  Result<bool> GetByEncodedPk(const std::string& pk_key,
                              adm::Value* record) const;

  /// Snapshot scan over the partition's records.
  Result<storage::LsmBTree::Iterator> ScanIterator() const;

  // ---- secondary index searches (return encoded PKs) -----------------------
  /// B+tree range [lo, hi] (unknown bound = open). Values are raw field
  /// values; encoding happens inside.
  Result<std::vector<std::string>> BTreeSearch(const std::string& index_name,
                                               const adm::Value& lo,
                                               const adm::Value& hi) const;
  Result<std::vector<std::string>> RTreeSearch(const std::string& index_name,
                                               const adm::Rectangle& query) const;
  Result<std::vector<std::string>> KeywordSearch(const std::string& index_name,
                                                 const std::string& term) const;

  /// Flush every LSM structure of this partition.
  Status Flush();
  storage::LsmStats primary_stats() const { return primary_->stats(); }
  /// The primary LSM tree (batch scan sources snapshot it directly).
  const storage::LsmBTree* primary() const { return primary_.get(); }

  const meta::DatasetDef& def() const { return def_; }

  /// Encode a primary key value for this dataset.
  static Result<std::string> EncodePk(const adm::Value& pk);

 private:
  DatasetPartition(meta::DatasetDef def, PartitionOptions options)
      : def_(std::move(def)), options_(std::move(options)) {}

  Result<adm::Value> ExtractPk(const adm::Value& record) const;
  Status AddToIndexes(const adm::Value& record, const std::string& pk_key);
  Status RemoveFromIndexes(const adm::Value& record, const std::string& pk_key);
  Status LogMutation(txn::LogRecordType type, const std::string& pk_key,
                     const adm::Value* record);

  meta::DatasetDef def_;
  PartitionOptions options_;
  std::unique_ptr<storage::LsmBTree> primary_;
  std::map<std::string, std::unique_ptr<storage::LsmBTree>> btree_indexes_;
  std::map<std::string, std::unique_ptr<storage::LsmRTree>> rtree_indexes_;
  std::map<std::string, std::unique_ptr<storage::LsmInvertedIndex>>
      keyword_indexes_;
};

}  // namespace asterix
