// Shadow replication feed: the Couchbase-Analytics-style HTAP coupling of
// paper Fig. 7. A synthetic operational KV front end ("Data Service")
// absorbs high-rate upserts; its change stream (DCP-like) is drained by a
// background feed thread into an analytics Instance dataset, so analytics
// queries run against a near-real-time shadow copy with performance
// isolation from the front end.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "adm/value.h"
#include "asterix/instance.h"
#include "common/thread_annotations.h"

namespace asterix::feeds {

/// One change-stream mutation.
struct Mutation {
  bool deletion = false;
  adm::Value key;     // primary key
  adm::Value record;  // full document for upserts
  uint64_t seqno = 0;
};

/// The operational front end: an in-memory KV document store with a
/// sequence-numbered change stream (a stand-in for the Couchbase Data
/// Service; the paper's claims concern the analytics side).
class OperationalStore {
 public:
  explicit OperationalStore(std::string key_field)
      : key_field_(std::move(key_field)) {}

  Status Upsert(const adm::Value& document) AX_EXCLUDES(mu_);
  Status Delete(const adm::Value& key) AX_EXCLUDES(mu_);
  Result<bool> Get(const adm::Value& key, adm::Value* document) const
      AX_EXCLUDES(mu_);
  size_t size() const AX_EXCLUDES(mu_);
  uint64_t last_seqno() const { return seqno_.load(); }

  /// Pop up to `max` mutations with seqno > `after`; blocks up to
  /// `timeout_ms` when none are pending. Single-consumer.
  std::vector<Mutation> Drain(size_t max, int timeout_ms) AX_EXCLUDES(mu_);

 private:
  std::string key_field_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // serialized-key -> doc
  std::map<std::string, adm::Value> docs_ AX_GUARDED_BY(mu_);
  std::deque<Mutation> stream_ AX_GUARDED_BY(mu_);
  std::atomic<uint64_t> seqno_{0};
};

/// Background feed: drains the operational store's change stream into an
/// analytics dataset. Start() spawns the feed thread; Stop() drains the
/// remaining backlog and joins.
class ShadowFeed {
 public:
  ShadowFeed(OperationalStore* source, Instance* analytics,
             std::string dataset)
      : source_(source), analytics_(analytics), dataset_(std::move(dataset)) {}
  ~ShadowFeed();

  Status Start();
  /// Stop after draining everything currently in the stream.
  Status Stop();
  /// Block until the feed has applied all mutations up to the store's
  /// current seqno (bounded staleness check).
  Status WaitForCatchUp(int timeout_ms = 10000);

  uint64_t applied_seqno() const { return applied_.load(); }
  uint64_t mutations_applied() const { return count_.load(); }

 private:
  void Run() AX_EXCLUDES(error_mu_);
  OperationalStore* source_;
  Instance* analytics_;
  std::string dataset_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> applied_{0};
  std::atomic<uint64_t> count_{0};
  Status error_ AX_GUARDED_BY(error_mu_);
  std::mutex error_mu_;
};

}  // namespace asterix::feeds
