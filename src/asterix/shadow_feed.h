// Shadow replication feed: the Couchbase-Analytics-style HTAP coupling of
// paper Fig. 7. A synthetic operational KV front end ("Data Service")
// absorbs high-rate upserts; its change stream (DCP-like) is drained into
// an analytics Instance dataset, so analytics queries run against a
// near-real-time shadow copy with performance isolation from the front
// end. The drain side runs on the generic feed runtime (feeds/runtime.h):
// an OperationalStoreAdapter turns the change stream into FeedRecords and
// the three-stage pipeline applies them under the Basic policy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "adm/value.h"
#include "asterix/instance.h"
#include "common/thread_annotations.h"
#include "feeds/adapter.h"
#include "feeds/runtime.h"

namespace asterix::feeds {

/// One change-stream mutation.
struct Mutation {
  bool deletion = false;
  adm::Value key;     // primary key
  adm::Value record;  // full document for upserts
  uint64_t seqno = 0;
};

/// The operational front end: an in-memory KV document store with a
/// sequence-numbered change stream (a stand-in for the Couchbase Data
/// Service; the paper's claims concern the analytics side).
class OperationalStore {
 public:
  explicit OperationalStore(std::string key_field)
      : key_field_(std::move(key_field)) {}

  Status Upsert(const adm::Value& document) AX_EXCLUDES(mu_);
  Status Delete(const adm::Value& key) AX_EXCLUDES(mu_);
  Result<bool> Get(const adm::Value& key, adm::Value* document) const
      AX_EXCLUDES(mu_);
  size_t size() const AX_EXCLUDES(mu_);
  uint64_t last_seqno() const { return seqno_.load(); }

  /// Pop up to `max` mutations with seqno > `after`; blocks up to
  /// `timeout_ms` when none are pending. Single-consumer. Swaps the whole
  /// backlog out under the lock when it fits in `max`, so producers are
  /// never stalled behind a per-element copy.
  std::vector<Mutation> Drain(size_t max, int timeout_ms) AX_EXCLUDES(mu_);

 private:
  std::string key_field_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // serialized-key -> doc
  std::map<std::string, adm::Value> docs_ AX_GUARDED_BY(mu_);
  std::deque<Mutation> stream_ AX_GUARDED_BY(mu_);
  std::atomic<uint64_t> seqno_{0};
};

/// FeedAdapter over an OperationalStore change stream. Drain is consuming,
/// so this adapter cannot replay (Open ignores the resume point — the
/// shadow copy is rebuilt from the store on a fresh start, not resumed).
/// RequestStop() switches NextBatch to drain-then-end: it keeps returning
/// whatever is queued and reports end-of-feed once the stream is empty.
class OperationalStoreAdapter : public FeedAdapter {
 public:
  explicit OperationalStoreAdapter(OperationalStore* source)
      : source_(source) {}

  const char* name() const override { return "operational-store"; }
  Status Open(uint64_t /*resume_after*/) override { return Status::OK(); }
  Result<bool> NextBatch(std::vector<FeedRecord>* out, size_t max,
                         int timeout_ms) override;
  Status Close() override { return Status::OK(); }

  void RequestStop() { stop_.store(true); }

 private:
  OperationalStore* source_;
  std::atomic<bool> stop_{false};
};

/// Background feed: drains the operational store's change stream into an
/// analytics dataset. Start() spawns the pipeline; Stop() drains the
/// remaining backlog and joins.
class ShadowFeed {
 public:
  ShadowFeed(OperationalStore* source, Instance* analytics,
             std::string dataset)
      : source_(source), analytics_(analytics), dataset_(std::move(dataset)) {}
  ~ShadowFeed();

  Status Start();
  /// Stop after draining everything currently in the stream.
  Status Stop();
  /// Block until the feed has applied all mutations up to the store's
  /// current seqno (bounded staleness check).
  Status WaitForCatchUp(int timeout_ms = 10000);

  uint64_t applied_seqno() const {
    return runtime_ ? runtime_->watermark() : final_seqno_.load();
  }
  uint64_t mutations_applied() const {
    return runtime_ ? runtime_->records_applied() : final_count_.load();
  }

 private:
  OperationalStore* source_;
  Instance* analytics_;
  std::string dataset_;
  OperationalStoreAdapter* adapter_ = nullptr;  // owned by runtime_
  std::unique_ptr<FeedRuntime> runtime_;
  // Last observed counters, kept readable after Stop() tears runtime_ down.
  std::atomic<uint64_t> final_seqno_{0};
  std::atomic<uint64_t> final_count_{0};
};

}  // namespace asterix::feeds
