#include "asterix/instance.h"

#include <chrono>
#include <cstdio>
#include <functional>

#include "adm/key_encoder.h"
#include "aql/aql.h"
#include "adm/serde.h"
#include "asterix/feed_manager.h"
#include "sqlpp/parser.h"
#include "sqlpp/translator.h"
#include "storage/maintenance.h"

namespace asterix {

using adm::Value;
using sqlpp::ast::Statement;

namespace {
size_t PartitionOfKey(const std::string& encoded_pk, size_t n) {
  return std::hash<std::string>{}(encoded_pk) % n;
}

Result<adm::TypePtr> ResolveTypeSpec(const sqlpp::ast::TypeSpec& spec,
                                     const meta::MetadataManager& metadata) {
  using sqlpp::ast::TypeSpec;
  switch (spec.kind) {
    case TypeSpec::kArray: {
      AX_ASSIGN_OR_RETURN(auto item, ResolveTypeSpec(*spec.item, metadata));
      return adm::Type::MakeArray(item);
    }
    case TypeSpec::kMultiset: {
      AX_ASSIGN_OR_RETURN(auto item, ResolveTypeSpec(*spec.item, metadata));
      return adm::Type::MakeMultiset(item);
    }
    case TypeSpec::kNamed: {
      auto primitive = adm::PrimitiveTagFromName(spec.name);
      if (primitive.ok()) return adm::Type::Primitive(primitive.value());
      return metadata.GetType(spec.name);
    }
  }
  return Status::Internal("bad type spec");
}
}  // namespace

Result<std::unique_ptr<Instance>> Instance::Open(
    const InstanceOptions& options) {
  if (options.base_dir.empty() || options.num_partitions == 0) {
    return Status::InvalidArgument("base_dir and num_partitions are required");
  }
  auto inst = std::unique_ptr<Instance>(new Instance(options));
  AX_RETURN_NOT_OK(fs::CreateDirs(options.base_dir));
  AX_RETURN_NOT_OK(fs::CreateDirs(options.base_dir + "/tmp"));
  inst->cache_ =
      std::make_unique<storage::BufferCache>(options.buffer_cache_pages);
  if (options.maintenance_threads > 0) {
    inst->maintenance_ = std::make_unique<storage::MaintenanceScheduler>(
        options.maintenance_threads);
  }
  inst->tmp_ = std::make_unique<TempFileManager>(options.base_dir + "/tmp");
  resource::GovernorOptions gov;
  gov.pool_bytes = options.query_memory_bytes;
  gov.defaults =
      resource::OperatorBudgetDefaults::Uniform(options.op_memory_budget_bytes);
  inst->governor_ = std::make_unique<resource::MemoryGovernor>(gov);
  if (options.max_concurrent_queries > 0) {
    resource::AdmissionOptions adm;
    adm.max_concurrent = options.max_concurrent_queries;
    adm.queue_limit = options.admission_queue_limit;
    adm.queue_timeout_ms = options.admission_timeout_ms;
    inst->admission_ = std::make_unique<resource::AdmissionController>(adm);
  }
  AX_ASSIGN_OR_RETURN(inst->metadata_, meta::MetadataManager::Open(
                                           options.base_dir + "/metadata.adm"));
  for (size_t p = 0; p < options.num_partitions; p++) {
    std::string pdir = options.base_dir + "/p" + std::to_string(p);
    AX_RETURN_NOT_OK(fs::CreateDirs(pdir));
    AX_ASSIGN_OR_RETURN(
        auto wal, txn::LogManager::Open(pdir + "/wal.log", options.wal_sync));
    inst->wals_.push_back(std::move(wal));
  }
  // Reopen existing datasets, then replay WALs.
  for (const auto& def : inst->metadata_->AllDatasets()) {
    if (!def.external) AX_RETURN_NOT_OK(inst->OpenDatasetPartitions(def));
  }
  AX_RETURN_NOT_OK(inst->RecoverFromWal());
  inst->feeds_ = std::make_unique<feeds::FeedManager>(
      inst.get(), inst->metadata_.get(), options.base_dir + "/feeds");
  return inst;
}

Instance::Instance(InstanceOptions options) : options_(std::move(options)) {}

Instance::~Instance() = default;

Status Instance::OpenDatasetPartitions(const meta::DatasetDef& def) {
  auto& parts = datasets_[def.name];
  parts.clear();
  for (size_t p = 0; p < options_.num_partitions; p++) {
    PartitionOptions po;
    po.dir = options_.base_dir + "/p" + std::to_string(p) + "/" + def.name;
    po.cache = cache_.get();
    po.mem_budget_bytes = options_.lsm_mem_budget_bytes;
    po.merge_policy = options_.merge_policy;
    po.wal = wals_[p].get();
    po.partition_id = static_cast<uint32_t>(p);
    po.scheduler = maintenance_.get();
    po.max_pending_immutables = options_.max_pending_immutables;
    po.storage_format = def.storage_format == "columnar"
                            ? storage::StorageFormat::kColumnar
                            : storage::StorageFormat::kRow;
    AX_ASSIGN_OR_RETURN(auto part, DatasetPartition::Open(def, po));
    parts.push_back(std::move(part));
  }
  return Status::OK();
}

Status Instance::RecoverFromWal() {
  for (size_t p = 0; p < wals_.size(); p++) {
    txn::ReplayStats stats;
    AX_RETURN_NOT_OK(wals_[p]->Replay(
        [&](const txn::LogRecord& rec) -> Status {
          auto it = datasets_.find(rec.dataset);
          if (it == datasets_.end()) return Status::OK();  // dataset dropped
          DatasetPartition* part = it->second[rec.partition].get();
          if (rec.type == txn::LogRecordType::kUpsert) {
            AX_ASSIGN_OR_RETURN(Value record, adm::Deserialize(rec.value));
            return part->Upsert(record, /*log=*/false);
          }
          AX_ASSIGN_OR_RETURN(auto key_parts, adm::DecodeKey(rec.key));
          if (key_parts.empty()) return Status::Corruption("empty WAL key");
          AX_ASSIGN_OR_RETURN(bool existed,
                              part->DeleteByKey(key_parts[0], /*log=*/false));
          (void)existed;
          return Status::OK();
        },
        &stats));
    if (stats.torn_tail_records > 0) {
      std::string warning =
          "partition " + std::to_string(p) + ": dropped " +
          std::to_string(stats.torn_tail_records) + " torn record(s) (" +
          std::to_string(stats.torn_tail_bytes) + " bytes) at WAL tail";
      std::fprintf(stderr, "[asterix] recovery warning: %s\n",
                   warning.c_str());
      recovery_warnings_.push_back(std::move(warning));
    }
  }
  return Status::OK();
}

Executor Instance::MakeExecutor(const algebricks::OptimizerOptions& opts,
                                resource::QueryContext* ctx) {
  Executor::PartitionMap map;
  for (auto& [name, parts] : datasets_) {
    for (auto& p : parts) map[name].push_back(p.get());
  }
  Executor ex(metadata_.get(), std::move(map), options_.num_partitions,
              tmp_.get(), options_.op_memory_budget_bytes,
              &algebricks::FunctionRegistry::Instance(), governor_.get(), ctx);
  ex.set_force_unsorted_fetch(!opts.sort_pks_before_fetch);
  return ex;
}

// ---------------------------------------------------------------------------
// Workload management: query registry, admission, cancellation
// ---------------------------------------------------------------------------

Status Instance::RegisterQuery(const std::string& wanted_id,
                               std::shared_ptr<resource::QueryContext> ctx,
                               std::string* out_id) {
  std::lock_guard<std::mutex> lock(queries_mu_);
  std::string id = wanted_id;
  if (id.empty()) id = "q" + std::to_string(next_query_id_++);
  auto [it, inserted] = queries_.emplace(id, std::move(ctx));
  if (!inserted) {
    return Status::AlreadyExists("query id '" + id + "' is already active");
  }
  *out_id = std::move(id);
  return Status::OK();
}

void Instance::UnregisterQuery(const std::string& id) {
  std::lock_guard<std::mutex> lock(queries_mu_);
  queries_.erase(id);
}

Status Instance::CancelQuery(const std::string& client_context_id) {
  std::shared_ptr<resource::QueryContext> ctx;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    auto it = queries_.find(client_context_id);
    if (it == queries_.end()) {
      return Status::NotFound("no active query '" + client_context_id + "'");
    }
    ctx = it->second;
  }
  // Outside queries_mu_: cancel listeners poison exchange queues, whose
  // locks rank above queries_mu_ in DESIGN.md §4a.
  ctx->Cancel();
  return Status::OK();
}

Result<DatasetPartition*> Instance::RouteToPartition(const std::string& dataset,
                                                     const Value& pk) {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no internal dataset '" + dataset + "'");
  }
  AX_ASSIGN_OR_RETURN(std::string key, DatasetPartition::EncodePk(pk));
  return it->second[PartitionOfKey(key, options_.num_partitions)].get();
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

Result<QueryResult> Instance::Execute(const std::string& statement) {
  AX_ASSIGN_OR_RETURN(Statement st, sqlpp::ParseStatement(statement));
  return ExecuteParsed(st);
}

Result<QueryResult> Instance::ExecuteScript(const std::string& script) {
  AX_ASSIGN_OR_RETURN(auto statements, sqlpp::ParseScript(script));
  QueryResult last;
  for (const auto& st : statements) {
    AX_ASSIGN_OR_RETURN(last, ExecuteParsed(st));
  }
  return last;
}

Result<QueryResult> Instance::ExecuteParsed(const Statement& st) {
  switch (st.kind) {
    case Statement::kQuery:
      return RunQuery(*st.query, options_.optimizer);
    case Statement::kInsert:
    case Statement::kUpsert:
    case Statement::kDelete:
      return RunDml(st);
    default:
      return RunDdl(st);
  }
}

Result<QueryResult> Instance::QueryWithOptions(
    const std::string& query, const algebricks::OptimizerOptions& opts) {
  AX_ASSIGN_OR_RETURN(Statement st, sqlpp::ParseStatement(query));
  if (st.kind != Statement::kQuery) {
    return Status::InvalidArgument("QueryWithOptions expects a SELECT query");
  }
  return RunQuery(*st.query, opts);
}

Result<QueryResult> Instance::Query(const std::string& query,
                                    const QueryRunOptions& run) {
  AX_ASSIGN_OR_RETURN(Statement st, sqlpp::ParseStatement(query));
  if (st.kind != Statement::kQuery) {
    return Status::InvalidArgument("Query expects a SELECT query");
  }
  return RunQuery(*st.query, options_.optimizer, run);
}

Result<QueryResult> Instance::QueryAql(const std::string& query,
                                       const QueryRunOptions& run) {
  auto ctx = std::make_shared<resource::QueryContext>();
  int64_t deadline_ms =
      run.deadline_ms > 0 ? run.deadline_ms : options_.query_deadline_ms;
  if (deadline_ms > 0) {
    ctx->SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
  }
  std::string id;
  AX_RETURN_NOT_OK(RegisterQuery(run.client_context_id, ctx, &id));
  auto result = [&]() -> Result<QueryResult> {
    // Registered before admission so a queued query is cancellable; the
    // slot and all grants release via RAII on every path out of here.
    resource::AdmissionSlot slot;
    if (admission_ != nullptr) {
      AX_ASSIGN_OR_RETURN(slot, admission_->Admit(ctx.get()));
    }
    AX_ASSIGN_OR_RETURN(auto translated, aql::TranslateAql(query, *metadata_));
    AX_ASSIGN_OR_RETURN(
        auto optimized,
        algebricks::Optimize(translated.plan, *metadata_, options_.optimizer,
                             algebricks::FunctionRegistry::Instance()));
    Executor ex = MakeExecutor(options_.optimizer, ctx.get());
    ex.set_profiling(options_.profile_queries);
    ExecStats stats;
    AX_ASSIGN_OR_RETURN(auto rows, ex.Run(optimized, &stats));
    QueryResult out;
    out.rows = std::move(rows);
    out.plan = stats.optimized_plan;
    out.elapsed_ms = stats.elapsed_ms;
    out.profile = std::move(stats.profile);
    if (out.profile) out.profiled_plan = out.profile->Render();
    return out;
  }();
  UnregisterQuery(id);
  return result;
}

Result<QueryResult> Instance::RunQuery(const sqlpp::ast::SelectQuery& q,
                                       const algebricks::OptimizerOptions& opts,
                                       const QueryRunOptions& run) {
  auto ctx = std::make_shared<resource::QueryContext>();
  int64_t deadline_ms =
      run.deadline_ms > 0 ? run.deadline_ms : options_.query_deadline_ms;
  if (deadline_ms > 0) {
    ctx->SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
  }
  std::string id;
  AX_RETURN_NOT_OK(RegisterQuery(run.client_context_id, ctx, &id));
  auto result = [&]() -> Result<QueryResult> {
    // Registered before admission so a queued query is cancellable; the
    // slot and all grants release via RAII on every path out of here.
    resource::AdmissionSlot slot;
    if (admission_ != nullptr) {
      AX_ASSIGN_OR_RETURN(slot, admission_->Admit(ctx.get()));
    }
    sqlpp::Translator translator(metadata_.get());
    AX_ASSIGN_OR_RETURN(auto translated, translator.TranslateQuery(q));
    AX_ASSIGN_OR_RETURN(
        auto optimized,
        algebricks::Optimize(translated.plan, *metadata_, opts,
                             algebricks::FunctionRegistry::Instance()));
    Executor ex = MakeExecutor(opts, ctx.get());
    ex.set_profiling(options_.profile_queries);
    ExecStats stats;
    AX_ASSIGN_OR_RETURN(auto rows, ex.Run(optimized, &stats));
    QueryResult out;
    out.rows = std::move(rows);
    out.plan = stats.optimized_plan;
    out.elapsed_ms = stats.elapsed_ms;
    out.profile = std::move(stats.profile);
    if (out.profile) out.profiled_plan = out.profile->Render();
    return out;
  }();
  UnregisterQuery(id);
  return result;
}

Result<QueryResult> Instance::RunDml(const Statement& st) {
  QueryResult out;
  if (st.kind == Statement::kInsert || st.kind == Statement::kUpsert) {
    sqlpp::Translator translator(metadata_.get());
    AX_ASSIGN_OR_RETURN(auto expr, translator.TranslateScalar(st.payload));
    AX_ASSIGN_OR_RETURN(
        Value payload,
        algebricks::EvaluateConst(expr,
                                  algebricks::FunctionRegistry::Instance()));
    std::vector<Value> records;
    if (payload.is_array()) {
      records = payload.items();
    } else {
      records.push_back(std::move(payload));
    }
    for (const auto& rec : records) {
      Status s = st.kind == Statement::kUpsert ? UpsertValue(st.target, rec)
                                               : InsertValue(st.target, rec);
      AX_RETURN_NOT_OK(s);
      out.mutated++;
    }
    return out;
  }
  // DELETE FROM ds [alias] WHERE cond: scan, evaluate, delete matches.
  AX_ASSIGN_OR_RETURN(auto def, metadata_->GetDataset(st.target));
  if (def.external) {
    return Status::InvalidArgument("cannot DELETE from external dataset");
  }
  std::string alias = st.delete_alias.empty() ? st.target : st.delete_alias;
  hyracks::TupleEval pred;
  if (st.where) {
    sqlpp::Translator translator(metadata_.get());
    AX_ASSIGN_OR_RETURN(auto cond, translator.TranslateScalar(st.where, alias,
                                                              /*self_var=*/0));
    algebricks::VarPositions pos{{0, 0}};
    AX_ASSIGN_OR_RETURN(
        pred, algebricks::CompileExpr(
                  cond, pos, algebricks::FunctionRegistry::Instance()));
  }
  auto it = datasets_.find(st.target);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + st.target + "'");
  }
  for (auto& part : it->second) {
    std::vector<Value> doomed_pks;
    AX_ASSIGN_OR_RETURN(auto scan, part->ScanIterator());
    AX_RETURN_NOT_OK(scan.SeekToFirst());
    while (scan.Valid()) {
      AX_ASSIGN_OR_RETURN(Value record, adm::Deserialize(scan.value()));
      bool matches = true;
      if (pred) {
        hyracks::Tuple t;
        t.fields.push_back(record);
        AX_ASSIGN_OR_RETURN(Value pass, pred(t));
        matches = pass.is_boolean() && pass.AsBool();
      }
      if (matches) doomed_pks.push_back(record.GetField(def.primary_key));
      AX_RETURN_NOT_OK(scan.Next());
    }
    for (const auto& pk : doomed_pks) {
      AX_ASSIGN_OR_RETURN(bool existed, part->DeleteByKey(pk));
      if (existed) out.mutated++;
    }
  }
  return out;
}

Result<QueryResult> Instance::RunDdl(const Statement& st) {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  QueryResult out;
  switch (st.kind) {
    case Statement::kCreateType: {
      std::vector<adm::FieldDef> fields;
      for (const auto& f : st.type_fields) {
        adm::FieldDef fd;
        fd.name = f.name;
        fd.optional = f.optional;
        AX_ASSIGN_OR_RETURN(fd.type, ResolveTypeSpec(f.type, *metadata_));
        fields.push_back(std::move(fd));
      }
      auto type = adm::Type::MakeObject(st.type_name, std::move(fields),
                                        /*open=*/!st.closed);
      AX_RETURN_NOT_OK(metadata_->CreateType(st.type_name, type));
      return out;
    }
    case Statement::kDropType:
      AX_RETURN_NOT_OK(metadata_->DropType(st.type_name));
      return out;
    case Statement::kCreateDataset: {
      meta::DatasetDef def;
      def.name = st.dataset_name;
      def.type_name = st.dataset_type;
      def.primary_key = st.primary_key;
      for (const auto& [k, v] : st.with_props) {
        if (k != "storage-format") {
          return Status::InvalidArgument("unknown WITH property '" + k + "'");
        }
        if (v != "row" && v != "columnar") {
          return Status::InvalidArgument(
              "storage-format must be 'row' or 'columnar', got '" + v + "'");
        }
        def.storage_format = v;
      }
      AX_RETURN_NOT_OK(metadata_->CreateDataset(def));
      AX_RETURN_NOT_OK(OpenDatasetPartitions(def));
      return out;
    }
    case Statement::kCreateExternalDataset: {
      meta::DatasetDef def;
      def.name = st.dataset_name;
      def.type_name = st.dataset_type;
      def.external = true;
      def.external_props = st.external_props;
      AX_RETURN_NOT_OK(metadata_->CreateDataset(def));
      return out;
    }
    case Statement::kDropDataset: {
      AX_RETURN_NOT_OK(metadata_->DropDataset(st.dataset_name));
      datasets_.erase(st.dataset_name);
      return out;
    }
    case Statement::kCreateIndex: {
      meta::IndexDef ix;
      ix.name = st.index_name;
      ix.field = st.on_field;
      ix.kind = st.index_type == "RTREE"     ? meta::IndexKind::kRTree
                : st.index_type == "KEYWORD" ? meta::IndexKind::kKeyword
                                             : meta::IndexKind::kBTree;
      AX_RETURN_NOT_OK(metadata_->CreateIndex(st.on_dataset, ix));
      // Rebuild partitions with the new index, backfilling existing data.
      AX_ASSIGN_OR_RETURN(auto def, metadata_->GetDataset(st.on_dataset));
      // Collect current records before reopening.
      std::vector<std::vector<Value>> existing(options_.num_partitions);
      auto dit = datasets_.find(st.on_dataset);
      if (dit != datasets_.end()) {
        for (size_t p = 0; p < dit->second.size(); p++) {
          AX_ASSIGN_OR_RETURN(auto scan, dit->second[p]->ScanIterator());
          AX_RETURN_NOT_OK(scan.SeekToFirst());
          while (scan.Valid()) {
            AX_ASSIGN_OR_RETURN(Value rec, adm::Deserialize(scan.value()));
            existing[p].push_back(std::move(rec));
            AX_RETURN_NOT_OK(scan.Next());
          }
        }
      }
      AX_RETURN_NOT_OK(OpenDatasetPartitions(def));
      auto& parts = datasets_[st.on_dataset];
      for (size_t p = 0; p < parts.size(); p++) {
        for (const auto& rec : existing[p]) {
          // axlint: allow(blocking-under-lock): DDL quiesces under ddl_mu_
          // by design — the index backfill must not race concurrent DDL,
          // and queries never take ddl_mu_.
          AX_RETURN_NOT_OK(parts[p]->Upsert(rec, /*log=*/false));
        }
      }
      return out;
    }
    case Statement::kDropIndex: {
      AX_RETURN_NOT_OK(metadata_->DropIndex(st.on_dataset, st.index_name));
      AX_ASSIGN_OR_RETURN(auto def, metadata_->GetDataset(st.on_dataset));
      AX_RETURN_NOT_OK(OpenDatasetPartitions(def));
      return out;
    }
    case Statement::kCreateFeed:
      AX_RETURN_NOT_OK(feeds_->CreateFeed(st.feed_name, st.feed_adapter,
                                          st.external_props));
      return out;
    case Statement::kDropFeed:
      AX_RETURN_NOT_OK(feeds_->DropFeed(st.feed_name));
      return out;
    case Statement::kConnectFeed:
      // Safe under ddl_mu_: the feed pipeline's storage stage goes through
      // UpsertValue/DeleteByKey, which never take the DDL latch.
      AX_RETURN_NOT_OK(
          feeds_->ConnectFeed(st.feed_name, st.dataset_name, st.feed_policy));
      return out;
    case Statement::kDisconnectFeed:
      AX_RETURN_NOT_OK(feeds_->DisconnectFeed(st.feed_name));
      return out;
    default:
      return Status::Internal("unhandled DDL statement");
  }
}

// ---------------------------------------------------------------------------
// Direct API
// ---------------------------------------------------------------------------

Status Instance::UpsertValue(const std::string& dataset, const Value& record) {
  AX_ASSIGN_OR_RETURN(auto def, metadata_->GetDataset(dataset));
  AX_ASSIGN_OR_RETURN(auto type, metadata_->GetType(def.type_name));
  AX_RETURN_NOT_OK(type->Validate(record));
  const Value& pk = record.GetField(def.primary_key);
  AX_ASSIGN_OR_RETURN(DatasetPartition* part, RouteToPartition(dataset, pk));
  // Record-level transactional upsert: exclusive PK lock for the statement.
  txn::TxnScope scope(&locks_);
  AX_ASSIGN_OR_RETURN(std::string key, DatasetPartition::EncodePk(pk));
  AX_RETURN_NOT_OK(scope.Lock(dataset + "/" + key, txn::LockMode::kExclusive));
  return part->Upsert(record);
}

Status Instance::InsertValue(const std::string& dataset, const Value& record) {
  AX_ASSIGN_OR_RETURN(auto def, metadata_->GetDataset(dataset));
  AX_ASSIGN_OR_RETURN(auto type, metadata_->GetType(def.type_name));
  AX_RETURN_NOT_OK(type->Validate(record));
  const Value& pk = record.GetField(def.primary_key);
  AX_ASSIGN_OR_RETURN(DatasetPartition* part, RouteToPartition(dataset, pk));
  txn::TxnScope scope(&locks_);
  AX_ASSIGN_OR_RETURN(std::string key, DatasetPartition::EncodePk(pk));
  AX_RETURN_NOT_OK(scope.Lock(dataset + "/" + key, txn::LockMode::kExclusive));
  return part->Insert(record);
}

Result<bool> Instance::DeleteByKey(const std::string& dataset, const Value& pk) {
  AX_ASSIGN_OR_RETURN(DatasetPartition* part, RouteToPartition(dataset, pk));
  txn::TxnScope scope(&locks_);
  AX_ASSIGN_OR_RETURN(std::string key, DatasetPartition::EncodePk(pk));
  AX_RETURN_NOT_OK(scope.Lock(dataset + "/" + key, txn::LockMode::kExclusive));
  return part->DeleteByKey(pk);
}

Result<bool> Instance::GetByKey(const std::string& dataset, const Value& pk,
                                Value* record) {
  AX_ASSIGN_OR_RETURN(DatasetPartition* part, RouteToPartition(dataset, pk));
  txn::TxnScope scope(&locks_);
  AX_ASSIGN_OR_RETURN(std::string key, DatasetPartition::EncodePk(pk));
  AX_RETURN_NOT_OK(scope.Lock(dataset + "/" + key, txn::LockMode::kShared));
  return part->Get(pk, record);
}

Status Instance::Checkpoint() {
  std::lock_guard<std::mutex> lock(ddl_mu_);
  // Persist feed watermarks BEFORE flushing/truncating: a watermark read
  // here only covers records already applied (and thus WAL'd), so whether
  // the crash lands before or after the truncate below, every record at or
  // below the persisted watermark is recoverable.
  if (feeds_ != nullptr) AX_RETURN_NOT_OK(feeds_->PersistProgress());
  if (maintenance_ != nullptr) {
    // Fan the per-partition flushes out to the maintenance pool instead of
    // draining them serially. Each Flush() is a cooperative barrier (the
    // running task does the component builds itself), so the bounded pool
    // cannot deadlock on this batch.
    std::vector<std::function<Status()>> jobs;
    for (auto& [name, parts] : datasets_) {
      for (auto& p : parts) {
        DatasetPartition* part = p.get();
        jobs.push_back([part] { return part->Flush(); });
      }
    }
    // axlint: allow(blocking-under-lock): checkpoint quiesces DDL under
    // ddl_mu_ by design while flushes drain; only other DDL waits on it.
    AX_RETURN_NOT_OK(maintenance_->RunBatch(std::move(jobs)));
  } else {
    for (auto& [name, parts] : datasets_) {
      for (auto& p : parts) AX_RETURN_NOT_OK(p->Flush());
    }
  }
  for (auto& wal : wals_) AX_RETURN_NOT_OK(wal->Truncate());
  return Status::OK();
}

Result<storage::LsmStats> Instance::DatasetStats(
    const std::string& dataset) const {
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + dataset + "'");
  }
  storage::LsmStats total;
  for (const auto& p : it->second) {
    auto s = p->primary_stats();
    total.mem_entries += s.mem_entries;
    total.mem_bytes += s.mem_bytes;
    total.disk_components += s.disk_components;
    total.columnar_components += s.columnar_components;
    total.disk_entries += s.disk_entries;
    total.disk_bytes += s.disk_bytes;
    total.flushes += s.flushes;
    total.merges += s.merges;
  }
  return total;
}

}  // namespace asterix
