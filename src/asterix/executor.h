// Query executor: lowers an optimized Algebricks plan onto partitioned
// Hyracks pipelines and runs them (paper Fig. 1: the cluster controller
// coordinating Hyracks jobs across node partitions; Fig. 5's final arrow).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebricks/compiler.h"
#include "algebricks/logical.h"
#include "asterix/dataset.h"
#include "asterix/metadata.h"
#include "hyracks/job.h"
#include "hyracks/profile.h"
#include "resource/governor.h"

namespace asterix {

/// Execution-time statistics surfaced with query results.
struct ExecStats {
  std::string optimized_plan;
  double elapsed_ms = 0;
  size_t partitions = 0;
  /// Per-operator profiled plan (set only when profiling is enabled on the
  /// Executor); render with profile->Render() or export with
  /// profile->ToChromeTrace().
  std::shared_ptr<hyracks::PlanProfile> profile;
};

/// Runs plans against the instance's dataset partitions.
class Executor {
 public:
  /// `partitions[dataset][p]` is partition p of that dataset.
  using PartitionMap =
      std::map<std::string, std::vector<DatasetPartition*>>;

  /// `governor` (optional) brokers per-operator memory grants; without one
  /// every blocking operator uses `op_memory_budget` directly, as before.
  /// `ctx` (optional) is the query's cancellation/deadline token, threaded
  /// into the operator tree and the job's exchanges.
  Executor(const meta::MetadataManager* metadata, PartitionMap partitions,
           size_t num_partitions, TempFileManager* tmp,
           size_t op_memory_budget, const algebricks::FunctionRegistry* fns,
           resource::MemoryGovernor* governor = nullptr,
           resource::QueryContext* ctx = nullptr)
      : metadata_(metadata), partitions_(std::move(partitions)),
        num_partitions_(num_partitions), tmp_(tmp),
        op_budget_(op_memory_budget), fns_(fns), governor_(governor),
        ctx_(ctx) {}

  /// Execute a plan whose root schema is [result_var]; returns result values.
  Result<std::vector<adm::Value>> Run(const algebricks::LogicalOpPtr& plan,
                                      ExecStats* stats = nullptr);

  /// Ablation knob for EXP-PKSORT: honor/ignore sort_pks_before_fetch.
  void set_force_unsorted_fetch(bool v) { force_unsorted_fetch_ = v; }

  /// Collect a per-operator PlanProfile into ExecStats on the next Run.
  /// Off by default: when off, no profiling wrappers are created at all.
  void set_profiling(bool v) { profiling_ = v; }

 private:
  struct Lowered {
    std::vector<hyracks::StreamPtr> streams;  // one per partition, or one
    std::vector<algebricks::VarId> schema;
    int profile_node = -1;  // PlanProfile node id (-1 when not profiling)
    bool partitioned() const { return streams.size() > 1; }
  };

  Result<Lowered> Build(const algebricks::LogicalOpPtr& op, hyracks::Job* job);
  Result<Lowered> BuildScan(const algebricks::LogicalOp& op);
  Result<Lowered> BuildIndexSearch(const algebricks::LogicalOp& op);
  /// Repartition a lowered child to `n` consumers by hashing `key_evals`
  /// (empty = single consumer merge).
  Result<Lowered> Repartition(Lowered in, size_t n,
                              std::vector<hyracks::TupleEval> key_evals,
                              hyracks::Job* job);

  /// When profiling: add a PlanProfile node for `l` and wrap each stream in
  /// a ProfiledStream (harvests, if given, run at Close — one per stream).
  /// No-op (returns -1) when profiling is off.
  int ProfileWrap(Lowered* l, std::string label, std::vector<int> children,
                  std::vector<hyracks::ProfiledStream::Harvest> harvests = {});

  /// Grant for one operator instance. With a governor the want is the
  /// unified default for `kind` divided by `share` (parallel local
  /// instances split one operator's budget); without one, an empty grant —
  /// operators then keep their constructor budget.
  Result<resource::MemoryGrant> AcquireBudget(resource::OperatorKind kind,
                                              size_t share = 1);

  Result<hyracks::TupleEval> Compile(const algebricks::ExprPtr& e,
                                     const std::vector<algebricks::VarId>& s) {
    return algebricks::CompileExpr(e, algebricks::PositionsOf(s), *fns_);
  }

  const meta::MetadataManager* metadata_;
  PartitionMap partitions_;
  size_t num_partitions_;
  TempFileManager* tmp_;
  size_t op_budget_;
  const algebricks::FunctionRegistry* fns_;
  resource::MemoryGovernor* governor_;
  resource::QueryContext* ctx_;
  bool force_unsorted_fetch_ = false;
  bool profiling_ = false;
  hyracks::PlanProfile* profile_ = nullptr;  // set for the duration of Run()
};

}  // namespace asterix
