#include "asterix/feed_manager.h"

#include <utility>
#include <vector>

#include "asterix/gleambook_feed.h"
#include "asterix/instance.h"
#include "common/io.h"

namespace asterix::feeds {

FeedManager::FeedManager(Instance* instance, meta::MetadataManager* metadata,
                         std::string feeds_dir)
    : instance_(instance),
      metadata_(metadata),
      feeds_dir_(std::move(feeds_dir)) {
  // Make the asterix-layer adapters (gleambook) resolvable by name before
  // any CONNECT FEED can reach MakeAdapter.
  RegisterAsterixFeedAdapters();
}

FeedManager::~FeedManager() {
  // axlint: allow(must-check): destructor; nowhere to surface the error
  (void)StopAll();
}

Status FeedManager::CreateFeed(const std::string& name,
                               const std::string& adapter,
                               std::map<std::string, std::string> props) {
  if (!HasAdapterFactory(adapter)) {
    return Status::InvalidArgument("unknown feed adapter '" + adapter + "'");
  }
  meta::FeedDef def;
  def.name = name;
  def.adapter = adapter;
  def.props = std::move(props);
  return metadata_->CreateFeed(std::move(def));
}

Status FeedManager::DropFeed(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connections_.count(name) > 0) {
      return Status::InvalidArgument("feed '" + name +
                                     "' is connected; disconnect it first");
    }
  }
  AX_RETURN_NOT_OK(metadata_->DropFeed(name));
  const std::string progress = ProgressPathFor(name);
  if (fs::Exists(progress)) {
    AX_RETURN_NOT_OK(fs::RemoveFile(progress));
  }
  return Status::OK();
}

Status FeedManager::ConnectFeed(const std::string& name,
                                const std::string& dataset,
                                const std::string& policy_name) {
  AX_ASSIGN_OR_RETURN(
      FeedPolicy policy,
      FeedPolicy::Named(policy_name.empty() ? "BASIC" : policy_name));
  AX_RETURN_NOT_OK(Connect(name, dataset, policy));
  return metadata_->SetFeedConnection(name, dataset, policy.name());
}

Status FeedManager::DisconnectFeed(const std::string& name) {
  std::unique_ptr<FeedRuntime> runtime;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.find(name);
    if (it == connections_.end()) {
      return Status::NotFound("feed '" + name + "' is not connected");
    }
    runtime = std::move(it->second.runtime);
    connections_.erase(it);
  }
  // Graceful stop persists the drained watermark; the progress file is kept
  // so a later CONNECT resumes after the last applied record.
  Status stop_status = runtime->Stop();
  AX_ASSIGN_OR_RETURN(meta::FeedDef def, metadata_->GetFeed(name));
  AX_RETURN_NOT_OK(metadata_->SetFeedConnection(name, "", def.policy));
  return stop_status;
}

Status FeedManager::Connect(const std::string& name, const std::string& dataset,
                            const FeedPolicy& policy, FaultInjector* faults) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connections_.count(name) > 0) {
      return Status::AlreadyExists("feed '" + name + "' is already connected");
    }
  }
  AX_ASSIGN_OR_RETURN(meta::FeedDef def, metadata_->GetFeed(name));
  AX_ASSIGN_OR_RETURN(meta::DatasetDef ds, metadata_->GetDataset(dataset));
  if (ds.external) {
    return Status::InvalidArgument(
        "cannot connect a feed to external dataset '" + dataset + "'");
  }
  adm::TypePtr type;
  auto type_result = metadata_->GetType(ds.type_name);
  if (type_result.ok()) type = type_result.value();
  AX_ASSIGN_OR_RETURN(ParseSpec parse, BuildParseSpec(def.props, type));
  AX_ASSIGN_OR_RETURN(std::unique_ptr<FeedAdapter> adapter,
                      MakeAdapter(def.adapter, def.props));
  AX_RETURN_NOT_OK(fs::CreateDirs(feeds_dir_));
  AX_ASSIGN_OR_RETURN(uint64_t resume_after,
                      FeedRuntime::LoadProgress(ProgressPathFor(name)));

  FeedRuntimeOptions options;
  options.feed_name = name;
  options.dataset = dataset;
  options.policy = policy;
  options.parse = parse;
  options.faults = faults;
  options.spill_dir = feeds_dir_ + "/spill";
  options.progress_path = ProgressPathFor(name);
  options.resume_after = resume_after;

  auto* chan = dynamic_cast<ChannelAdapter*>(adapter.get());
  auto runtime = std::make_unique<FeedRuntime>(instance_, std::move(adapter),
                                               std::move(options));
  AX_RETURN_NOT_OK(runtime->Start());

  std::lock_guard<std::mutex> lock(mu_);
  Connection& conn = connections_[name];
  conn.runtime = std::move(runtime);
  conn.channel = chan;
  return Status::OK();
}

FeedRuntime* FeedManager::runtime(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = connections_.find(name);
  return it == connections_.end() ? nullptr : it->second.runtime.get();
}

ChannelAdapter* FeedManager::channel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = connections_.find(name);
  return it == connections_.end() ? nullptr : it->second.channel;
}

Status FeedManager::PersistProgress() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, conn] : connections_) {
    AX_RETURN_NOT_OK(conn.runtime->PersistProgress());
  }
  return Status::OK();
}

Status FeedManager::StopAll() {
  std::vector<std::unique_ptr<FeedRuntime>> runtimes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, conn] : connections_) {
      runtimes.push_back(std::move(conn.runtime));
    }
    connections_.clear();
  }
  Status first_error = Status::OK();
  for (auto& runtime : runtimes) {
    Status st = runtime->Stop();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace asterix::feeds
