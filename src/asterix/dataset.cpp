#include "asterix/dataset.h"

#include "adm/key_encoder.h"
#include "adm/serde.h"

namespace asterix {

using adm::Value;

Result<std::unique_ptr<DatasetPartition>> DatasetPartition::Open(
    const meta::DatasetDef& def, const PartitionOptions& options) {
  if (def.external) {
    return Status::InvalidArgument(
        "external datasets have no storage partitions");
  }
  auto part = std::unique_ptr<DatasetPartition>(
      new DatasetPartition(def, options));
  AX_RETURN_NOT_OK(fs::CreateDirs(options.dir));
  storage::LsmOptions lsm;
  lsm.dir = options.dir;
  lsm.name = "primary";
  lsm.cache = options.cache;
  lsm.mem_budget_bytes = options.mem_budget_bytes;
  lsm.merge_policy = options.merge_policy;
  lsm.storage_format = options.storage_format;
  lsm.scheduler = options.scheduler;
  lsm.max_pending_immutables = options.max_pending_immutables;
  AX_ASSIGN_OR_RETURN(part->primary_, storage::LsmBTree::Open(lsm));
  for (const auto& ix : def.indexes) {
    switch (ix.kind) {
      case meta::IndexKind::kBTree: {
        storage::LsmOptions o = lsm;
        o.name = "ix_" + ix.name;
        // Secondary entries are key->PK pairs, not records: always row.
        o.storage_format = storage::StorageFormat::kRow;
        AX_ASSIGN_OR_RETURN(auto tree, storage::LsmBTree::Open(o));
        part->btree_indexes_[ix.name] = std::move(tree);
        break;
      }
      case meta::IndexKind::kRTree: {
        storage::LsmRTreeOptions o;
        o.dir = options.dir;
        o.name = "ix_" + ix.name;
        o.cache = options.cache;
        o.mem_budget_bytes = options.mem_budget_bytes;
        o.scheduler = options.scheduler;
        o.max_pending_immutables = options.max_pending_immutables;
        AX_ASSIGN_OR_RETURN(auto tree, storage::LsmRTree::Open(o));
        part->rtree_indexes_[ix.name] = std::move(tree);
        break;
      }
      case meta::IndexKind::kKeyword: {
        storage::InvertedIndexOptions o;
        o.dir = options.dir;
        o.name = "ix_" + ix.name;
        o.cache = options.cache;
        o.mem_budget_bytes = options.mem_budget_bytes;
        o.scheduler = options.scheduler;
        AX_ASSIGN_OR_RETURN(auto idx, storage::LsmInvertedIndex::Open(o));
        part->keyword_indexes_[ix.name] = std::move(idx);
        break;
      }
    }
  }
  return part;
}

Result<std::string> DatasetPartition::EncodePk(const adm::Value& pk) {
  return adm::EncodeKey(pk);
}

Result<adm::Value> DatasetPartition::ExtractPk(const Value& record) const {
  if (!record.is_object()) {
    return Status::TypeMismatch("dataset records must be objects, got " +
                                record.ToString());
  }
  const Value& pk = record.GetField(def_.primary_key);
  if (pk.is_unknown()) {
    return Status::InvalidArgument("record lacks primary key field '" +
                                   def_.primary_key + "'");
  }
  return pk;
}

Status DatasetPartition::LogMutation(txn::LogRecordType type,
                                     const std::string& pk_key,
                                     const adm::Value* record) {
  if (options_.wal == nullptr) return Status::OK();
  txn::LogRecord rec;
  rec.type = type;
  rec.dataset = def_.name;
  rec.partition = options_.partition_id;
  rec.key = pk_key;
  if (record) rec.value = adm::Serialize(*record);
  return options_.wal->Append(rec).ok()
             ? Status::OK()
             : Status::IOError("WAL append failed for dataset " + def_.name);
}

Status DatasetPartition::AddToIndexes(const Value& record,
                                      const std::string& pk_key) {
  for (const auto& ix : def_.indexes) {
    const Value& field = record.GetField(ix.field);
    if (field.is_unknown()) continue;  // unindexed when absent
    switch (ix.kind) {
      case meta::IndexKind::kBTree: {
        std::string key;
        AX_RETURN_NOT_OK(adm::EncodeKeyPart(field, &key));
        key += pk_key;
        AX_RETURN_NOT_OK(btree_indexes_.at(ix.name)->Put(key, ""));
        break;
      }
      case meta::IndexKind::kRTree: {
        if (!field.is_point() && !field.is_rectangle()) continue;
        AX_RETURN_NOT_OK(rtree_indexes_.at(ix.name)->Insert(field.Mbr(), pk_key));
        break;
      }
      case meta::IndexKind::kKeyword: {
        if (!field.is_string()) continue;
        AX_RETURN_NOT_OK(
            keyword_indexes_.at(ix.name)->InsertText(field.AsString(), pk_key));
        break;
      }
    }
  }
  return Status::OK();
}

Status DatasetPartition::RemoveFromIndexes(const Value& record,
                                           const std::string& pk_key) {
  for (const auto& ix : def_.indexes) {
    const Value& field = record.GetField(ix.field);
    if (field.is_unknown()) continue;
    switch (ix.kind) {
      case meta::IndexKind::kBTree: {
        std::string key;
        AX_RETURN_NOT_OK(adm::EncodeKeyPart(field, &key));
        key += pk_key;
        AX_RETURN_NOT_OK(btree_indexes_.at(ix.name)->Delete(key));
        break;
      }
      case meta::IndexKind::kRTree: {
        if (!field.is_point() && !field.is_rectangle()) continue;
        AX_RETURN_NOT_OK(rtree_indexes_.at(ix.name)->Remove(field.Mbr(), pk_key));
        break;
      }
      case meta::IndexKind::kKeyword: {
        if (!field.is_string()) continue;
        AX_RETURN_NOT_OK(
            keyword_indexes_.at(ix.name)->RemoveText(field.AsString(), pk_key));
        break;
      }
    }
  }
  return Status::OK();
}

Status DatasetPartition::Upsert(const Value& record, bool log) {
  AX_ASSIGN_OR_RETURN(Value pk, ExtractPk(record));
  AX_ASSIGN_OR_RETURN(std::string pk_key, EncodePk(pk));
  if (log) {
    AX_RETURN_NOT_OK(LogMutation(txn::LogRecordType::kUpsert, pk_key, &record));
  }
  // Read the prior version to unhook its index entries.
  if (!def_.indexes.empty()) {
    std::string old_raw;
    AX_ASSIGN_OR_RETURN(bool existed, primary_->Get(pk_key, &old_raw));
    if (existed) {
      AX_ASSIGN_OR_RETURN(Value old_record, adm::Deserialize(old_raw));
      AX_RETURN_NOT_OK(RemoveFromIndexes(old_record, pk_key));
    }
  }
  AX_RETURN_NOT_OK(primary_->Put(pk_key, adm::Serialize(record)));
  return AddToIndexes(record, pk_key);
}

Status DatasetPartition::Insert(const Value& record, bool log) {
  AX_ASSIGN_OR_RETURN(Value pk, ExtractPk(record));
  AX_ASSIGN_OR_RETURN(std::string pk_key, EncodePk(pk));
  AX_ASSIGN_OR_RETURN(bool exists, primary_->Get(pk_key, nullptr));
  if (exists) {
    return Status::AlreadyExists("duplicate primary key " + pk.ToString() +
                                 " in dataset " + def_.name);
  }
  return Upsert(record, log);
}

Result<bool> DatasetPartition::DeleteByKey(const Value& pk, bool log) {
  AX_ASSIGN_OR_RETURN(std::string pk_key, EncodePk(pk));
  std::string old_raw;
  AX_ASSIGN_OR_RETURN(bool existed, primary_->Get(pk_key, &old_raw));
  if (!existed) return false;
  if (log) {
    AX_RETURN_NOT_OK(LogMutation(txn::LogRecordType::kDelete, pk_key, nullptr));
  }
  AX_ASSIGN_OR_RETURN(Value old_record, adm::Deserialize(old_raw));
  AX_RETURN_NOT_OK(RemoveFromIndexes(old_record, pk_key));
  AX_RETURN_NOT_OK(primary_->Delete(pk_key));
  return true;
}

Result<bool> DatasetPartition::Get(const Value& pk, Value* record) const {
  AX_ASSIGN_OR_RETURN(std::string pk_key, EncodePk(pk));
  return GetByEncodedPk(pk_key, record);
}

Result<bool> DatasetPartition::GetByEncodedPk(const std::string& pk_key,
                                              Value* record) const {
  std::string raw;
  AX_ASSIGN_OR_RETURN(bool found, primary_->Get(pk_key, &raw));
  if (!found) return false;
  if (record) {
    AX_ASSIGN_OR_RETURN(*record, adm::Deserialize(raw));
  }
  return true;
}

Result<storage::LsmBTree::Iterator> DatasetPartition::ScanIterator() const {
  return primary_->NewIterator();
}

Result<std::vector<std::string>> DatasetPartition::BTreeSearch(
    const std::string& index_name, const Value& lo, const Value& hi) const {
  auto it_tree = btree_indexes_.find(index_name);
  if (it_tree == btree_indexes_.end()) {
    return Status::NotFound("no B+tree index '" + index_name + "'");
  }
  std::string lo_key = adm::MinKey();
  if (!lo.is_unknown()) {
    lo_key.clear();
    AX_RETURN_NOT_OK(adm::EncodeKeyPart(lo, &lo_key));
  }
  std::string hi_bound;
  if (hi.is_unknown()) {
    hi_bound = adm::MaxKey();
  } else {
    AX_RETURN_NOT_OK(adm::EncodeKeyPart(hi, &hi_bound));
    hi_bound += '\xff';  // include every (hi, pk) composite
  }
  std::vector<std::string> pks;
  AX_ASSIGN_OR_RETURN(auto it, it_tree->second->NewIterator());
  AX_RETURN_NOT_OK(it.Seek(lo_key));
  while (it.Valid() && it.key() <= hi_bound) {
    // Composite key: secondary part then pk part; decode to split.
    size_t pos = 0;
    AX_ASSIGN_OR_RETURN(Value sk, adm::DecodeKeyPart(it.key(), &pos));
    (void)sk;
    pks.push_back(it.key().substr(pos));
    AX_RETURN_NOT_OK(it.Next());
  }
  return pks;
}

Result<std::vector<std::string>> DatasetPartition::RTreeSearch(
    const std::string& index_name, const adm::Rectangle& query) const {
  auto it = rtree_indexes_.find(index_name);
  if (it == rtree_indexes_.end()) {
    return Status::NotFound("no R-tree index '" + index_name + "'");
  }
  AX_ASSIGN_OR_RETURN(auto entries, it->second->Query(query));
  std::vector<std::string> pks;
  pks.reserve(entries.size());
  for (auto& e : entries) pks.push_back(std::move(e.payload));
  return pks;
}

Result<std::vector<std::string>> DatasetPartition::KeywordSearch(
    const std::string& index_name, const std::string& term) const {
  auto it = keyword_indexes_.find(index_name);
  if (it == keyword_indexes_.end()) {
    return Status::NotFound("no keyword index '" + index_name + "'");
  }
  auto terms = storage::TokenizeKeywords(term);
  return it->second->SearchAll(terms);
}

Status DatasetPartition::Flush() {
  AX_RETURN_NOT_OK(primary_->Flush());
  for (auto& [n, t] : btree_indexes_) AX_RETURN_NOT_OK(t->Flush());
  for (auto& [n, t] : rtree_indexes_) AX_RETURN_NOT_OK(t->Flush());
  for (auto& [n, t] : keyword_indexes_) AX_RETURN_NOT_OK(t->Flush());
  return Status::OK();
}

}  // namespace asterix
