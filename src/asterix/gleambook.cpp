#include "asterix/gleambook.h"

#include "adm/temporal.h"
#include "common/io.h"

namespace asterix::gleambook {

using adm::Value;

Generator::Generator(GeneratorOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  auto epoch = adm::temporal::ParseDatetime(options_.epoch_start);
  epoch_ms_ = epoch.ok() ? epoch.value() : 0;
  for (int i = 0; i < options_.vocabulary; i++) {
    vocabulary_.push_back("word" + std::to_string(i));
  }
  orgs_ = {"Couchbase", "UC Irvine", "UC Riverside", "Oracle Labs",
           "Yahoo Research", "BEA Systems", "Gleambook", "Apache"};
}

std::string Generator::AliasOf(int64_t user_id) const {
  return "user" + std::to_string(user_id);
}

adm::Value Generator::MakeUser(int64_t id) {
  // Skewed friend counts: most users few friends, some many.
  int64_t nfriends = static_cast<int64_t>(
      rng_.Skewed(static_cast<uint64_t>(options_.max_friends)));
  std::vector<Value> friends;
  for (int64_t f = 0; f < nfriends; f++) {
    friends.push_back(Value::Int(static_cast<int64_t>(
        rng_.Uniform(static_cast<uint64_t>(options_.num_users)))));
  }
  int64_t since =
      epoch_ms_ - static_cast<int64_t>(rng_.Uniform(3650)) * 86400000;
  std::vector<Value> jobs;
  int njobs = static_cast<int>(rng_.Uniform(3));
  for (int j = 0; j < njobs; j++) {
    int64_t start_day = since / 86400000 + static_cast<int64_t>(rng_.Uniform(1000));
    adm::ObjectBuilder job;
    job.Add("organizationName", Value::String(rng_.Pick(orgs_)));
    job.Add("startDate", Value::Date(start_day));
    if (rng_.Uniform(2) == 0) {
      job.Add("endDate",
              Value::Date(start_day + static_cast<int64_t>(rng_.Uniform(900))));
    }
    jobs.push_back(job.Build());
  }
  return adm::ObjectBuilder()
      .Add("id", Value::Int(id))
      .Add("alias", Value::String(AliasOf(id)))
      .Add("name", Value::String("Name" + std::to_string(id)))
      .Add("userSince", Value::Datetime(since))
      .Add("friendIds", Value::Multiset(std::move(friends)))
      .Add("employment", Value::Array(std::move(jobs)))
      .Build();
}

adm::Value Generator::MakeMessage(int64_t message_id) {
  // Popular (low-id-skewed) authors write more messages.
  int64_t author = static_cast<int64_t>(
      rng_.Skewed(static_cast<uint64_t>(options_.num_users)));
  std::string text;
  int words = 3 + static_cast<int>(rng_.Uniform(12));
  for (int w = 0; w < words; w++) {
    if (w) text += " ";
    text += rng_.Pick(vocabulary_);
  }
  adm::ObjectBuilder msg;
  msg.Add("messageId", Value::Int(message_id));
  msg.Add("authorId", Value::Int(author));
  if (rng_.Uniform(3) == 0 && message_id > 0) {
    msg.Add("inResponseTo",
            Value::Int(static_cast<int64_t>(
                rng_.Uniform(static_cast<uint64_t>(message_id)))));
  }
  msg.Add("senderLocation",
          Value::MakePoint(rng_.NextDouble() * options_.world_size,
                           rng_.NextDouble() * options_.world_size));
  msg.Add("message", Value::String(std::move(text)));
  return msg.Build();
}

std::string Generator::MakeAccessLogLine(int64_t seq) {
  int64_t user = static_cast<int64_t>(
      rng_.Skewed(static_cast<uint64_t>(options_.num_users)));
  int64_t ts = epoch_ms_ + static_cast<int64_t>(rng_.Uniform(
                               static_cast<uint64_t>(options_.window_days) *
                               86400000ull));
  std::string line;
  line += "10." + std::to_string(rng_.Uniform(256)) + "." +
          std::to_string(rng_.Uniform(256)) + "." +
          std::to_string(rng_.Uniform(256));
  line += "|";
  // Second-resolution ISO timestamp (the Fig. 3(b) log format).
  line += adm::temporal::FormatDatetime(ts / 1000 * 1000);
  line.erase(line.size() - 5);  // strip ".000Z" -> parseable, compact
  line += "|" + AliasOf(user);
  line += rng_.Uniform(10) == 0 ? "|POST|/msg/new|201|" : "|GET|/feed|200|";
  line += std::to_string(128 + rng_.Uniform(8192));
  (void)seq;
  return line;
}

std::vector<adm::Value> Generator::Users() {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(options_.num_users));
  for (int64_t i = 0; i < options_.num_users; i++) out.push_back(MakeUser(i));
  return out;
}

std::vector<adm::Value> Generator::Messages() {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(options_.num_messages));
  for (int64_t i = 0; i < options_.num_messages; i++) {
    out.push_back(MakeMessage(i));
  }
  return out;
}

Status Generator::WriteAccessLog(const std::string& path) {
  std::string content;
  for (int64_t i = 0; i < options_.num_access_log_lines; i++) {
    content += MakeAccessLogLine(i);
    content += "\n";
  }
  return fs::WriteStringToFile(path, content);
}

std::string Generator::Ddl(bool with_indexes) {
  std::string ddl = R"sql(
CREATE TYPE EmploymentType AS {
  organizationName: string, startDate: date, endDate: date?
};
CREATE TYPE GleambookUserType AS {
  id: int, alias: string, name: string, userSince: datetime,
  friendIds: {{ int }}, employment: [EmploymentType]
};
CREATE TYPE GleambookMessageType AS {
  messageId: int, authorId: int, inResponseTo: int?,
  senderLocation: point?, message: string
};
CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
CREATE DATASET GleambookMessages(GleambookMessageType) PRIMARY KEY messageId
)sql";
  if (with_indexes) {
    ddl += R"sql(;
CREATE INDEX gbUserSinceIdx ON GleambookUsers (userSince);
CREATE INDEX gbAuthorIdx ON GleambookMessages (authorId) TYPE BTREE;
CREATE INDEX gbSenderLocIndex ON GleambookMessages (senderLocation) TYPE RTREE;
CREATE INDEX gbMessageIdx ON GleambookMessages (message) TYPE KEYWORD
)sql";
  }
  return ddl;
}

}  // namespace asterix::gleambook
