// Metadata manager: the catalog of types, datasets and indexes (paper
// Fig. 1's "metadata manager" box). Durable: persisted as an ADM document
// under the instance's system directory, reloaded on open. Implements the
// optimizer's Catalog interface.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adm/type.h"
#include "algebricks/optimizer.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace asterix::meta {

enum class IndexKind : uint8_t { kBTree, kRTree, kKeyword };

struct IndexDef {
  std::string name;
  std::string field;
  IndexKind kind = IndexKind::kBTree;
};

struct DatasetDef {
  std::string name;
  std::string type_name;       // declared item type
  std::string primary_key;     // empty for external datasets
  bool external = false;
  std::map<std::string, std::string> external_props;  // path/format/delimiter
  std::vector<IndexDef> indexes;
  /// Physical component format of the primary index: "row" (default) or
  /// "columnar" (DDL: WITH {"storage-format": "columnar"}).
  std::string storage_format = "row";
};

/// A data feed declared via CREATE FEED: a named adapter + properties,
/// optionally connected to a dataset under an ingestion policy. Feeds are
/// catalog objects — they survive restart; the connection records which
/// dataset/policy to resume with (the runtime's progress watermark lives
/// in a separate per-feed progress file, not here).
struct FeedDef {
  std::string name;
  std::string adapter;  // "localfs" | "gleambook" | "channel"
  std::map<std::string, std::string> props;
  std::string connected_dataset;  // empty = not connected
  std::string policy = "BASIC";
};

/// Thread-safe catalog with durable persistence.
class MetadataManager : public algebricks::Catalog {
 public:
  /// Load (or initialize) the catalog stored at `path`.
  static Result<std::unique_ptr<MetadataManager>> Open(const std::string& path);

  // ---- DDL -----------------------------------------------------------------
  Status CreateType(const std::string& name, adm::TypePtr type)
      AX_EXCLUDES(mu_);
  Status DropType(const std::string& name) AX_EXCLUDES(mu_);
  Result<adm::TypePtr> GetType(const std::string& name) const AX_EXCLUDES(mu_);

  Status CreateDataset(DatasetDef def) AX_EXCLUDES(mu_);
  Status DropDataset(const std::string& name) AX_EXCLUDES(mu_);
  Result<DatasetDef> GetDataset(const std::string& name) const
      AX_EXCLUDES(mu_);
  std::vector<DatasetDef> AllDatasets() const AX_EXCLUDES(mu_);

  Status CreateIndex(const std::string& dataset, IndexDef index)
      AX_EXCLUDES(mu_);
  Status DropIndex(const std::string& dataset, const std::string& index)
      AX_EXCLUDES(mu_);

  Status CreateFeed(FeedDef def) AX_EXCLUDES(mu_);
  Status DropFeed(const std::string& name) AX_EXCLUDES(mu_);
  Result<FeedDef> GetFeed(const std::string& name) const AX_EXCLUDES(mu_);
  std::vector<FeedDef> AllFeeds() const AX_EXCLUDES(mu_);
  /// Record (or clear, with empty dataset) a feed's connection.
  Status SetFeedConnection(const std::string& feed, const std::string& dataset,
                           const std::string& policy) AX_EXCLUDES(mu_);

  // ---- algebricks::Catalog ---------------------------------------------------
  bool HasDataset(const std::string& name) const override AX_EXCLUDES(mu_);
  std::string PrimaryKeyField(const std::string& name) const override
      AX_EXCLUDES(mu_);
  std::vector<IndexInfo> SecondaryIndexes(
      const std::string& name) const override AX_EXCLUDES(mu_);
  std::string StorageFormat(const std::string& name) const override
      AX_EXCLUDES(mu_);

 private:
  explicit MetadataManager(std::string path) : path_(std::move(path)) {}
  Status PersistLocked() AX_REQUIRES(mu_);
  Status LoadLocked() AX_REQUIRES(mu_);

  std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, adm::TypePtr> types_ AX_GUARDED_BY(mu_);
  std::map<std::string, DatasetDef> datasets_ AX_GUARDED_BY(mu_);
  std::map<std::string, FeedDef> feeds_ AX_GUARDED_BY(mu_);
  // Raw type declarations kept for persistence (round-trip source of truth).
  std::map<std::string, adm::Value> type_docs_ AX_GUARDED_BY(mu_);

 public:
  /// Serialize a Type declaration to an ADM document / restore from one.
  /// (Public for tests.)
  static adm::Value TypeToDoc(const adm::TypePtr& type);
  static Result<adm::TypePtr> TypeFromDoc(
      const adm::Value& doc,
      const std::map<std::string, adm::TypePtr>& known);
};

}  // namespace asterix::meta
