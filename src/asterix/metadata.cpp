#include "asterix/metadata.h"

#include "adm/json.h"
#include "common/io.h"

namespace asterix::meta {

using adm::Value;

namespace {
Value IndexToDoc(const IndexDef& ix) {
  return adm::ObjectBuilder()
      .Add("name", Value::String(ix.name))
      .Add("field", Value::String(ix.field))
      .Add("kind", Value::Int(static_cast<int64_t>(ix.kind)))
      .Build();
}

Value DatasetToDoc(const DatasetDef& ds) {
  std::vector<Value> indexes;
  for (const auto& ix : ds.indexes) indexes.push_back(IndexToDoc(ix));
  adm::FieldVec props;
  for (const auto& [k, v] : ds.external_props) {
    props.emplace_back(k, Value::String(v));
  }
  return adm::ObjectBuilder()
      .Add("name", Value::String(ds.name))
      .Add("type", Value::String(ds.type_name))
      .Add("primary_key", Value::String(ds.primary_key))
      .Add("external", Value::Boolean(ds.external))
      .Add("props", Value::Object(std::move(props)))
      .Add("indexes", Value::Array(std::move(indexes)))
      .Add("storage_format", Value::String(ds.storage_format))
      .Build();
}
Value FeedToDoc(const FeedDef& fd) {
  adm::FieldVec props;
  for (const auto& [k, v] : fd.props) {
    props.emplace_back(k, Value::String(v));
  }
  return adm::ObjectBuilder()
      .Add("name", Value::String(fd.name))
      .Add("adapter", Value::String(fd.adapter))
      .Add("props", Value::Object(std::move(props)))
      .Add("dataset", Value::String(fd.connected_dataset))
      .Add("policy", Value::String(fd.policy))
      .Build();
}
}  // namespace

adm::Value MetadataManager::TypeToDoc(const adm::TypePtr& type) {
  using adm::TypeKind;
  switch (type->kind()) {
    case TypeKind::kAny:
      return adm::ObjectBuilder().Add("kind", Value::String("any")).Build();
    case TypeKind::kPrimitive:
      return adm::ObjectBuilder()
          .Add("kind", Value::String("primitive"))
          .Add("tag", Value::String(adm::TypeTagName(type->primitive_tag())))
          .Build();
    case TypeKind::kArray:
    case TypeKind::kMultiset:
      return adm::ObjectBuilder()
          .Add("kind", Value::String(type->kind() == TypeKind::kArray
                                         ? "array"
                                         : "multiset"))
          .Add("item", TypeToDoc(type->item_type()
                                     ? type->item_type()
                                     : adm::Type::Any()))
          .Build();
    case TypeKind::kObject: {
      std::vector<Value> fields;
      for (const auto& f : type->object_fields()) {
        fields.push_back(adm::ObjectBuilder()
                             .Add("name", Value::String(f.name))
                             .Add("optional", Value::Boolean(f.optional))
                             .Add("type", TypeToDoc(f.type ? f.type
                                                           : adm::Type::Any()))
                             .Build());
      }
      return adm::ObjectBuilder()
          .Add("kind", Value::String("object"))
          .Add("name", Value::String(type->name()))
          .Add("open", Value::Boolean(type->open()))
          .Add("fields", Value::Array(std::move(fields)))
          .Build();
    }
  }
  return Value::Null();
}

Result<adm::TypePtr> MetadataManager::TypeFromDoc(
    const adm::Value& doc, const std::map<std::string, adm::TypePtr>& known) {
  const std::string& kind = doc.GetField("kind").AsString();
  if (kind == "any") return adm::Type::Any();
  if (kind == "primitive") {
    const std::string& tag = doc.GetField("tag").AsString();
    AX_ASSIGN_OR_RETURN(adm::TypeTag t, adm::PrimitiveTagFromName(tag));
    return adm::Type::Primitive(t);
  }
  if (kind == "array" || kind == "multiset") {
    AX_ASSIGN_OR_RETURN(adm::TypePtr item,
                        TypeFromDoc(doc.GetField("item"), known));
    return kind == "array" ? adm::Type::MakeArray(item)
                           : adm::Type::MakeMultiset(item);
  }
  if (kind == "object") {
    std::vector<adm::FieldDef> fields;
    for (const auto& f : doc.GetField("fields").items()) {
      adm::FieldDef fd;
      fd.name = f.GetField("name").AsString();
      fd.optional = f.GetField("optional").AsBool();
      AX_ASSIGN_OR_RETURN(fd.type, TypeFromDoc(f.GetField("type"), known));
      fields.push_back(std::move(fd));
    }
    return adm::Type::MakeObject(doc.GetField("name").AsString(),
                                 std::move(fields),
                                 doc.GetField("open").AsBool());
  }
  return Status::Corruption("bad type document kind '" + kind + "'");
}

Result<std::unique_ptr<MetadataManager>> MetadataManager::Open(
    const std::string& path) {
  auto mgr = std::unique_ptr<MetadataManager>(new MetadataManager(path));
  std::lock_guard<std::mutex> lock(mgr->mu_);
  if (fs::Exists(path)) {
    AX_RETURN_NOT_OK(mgr->LoadLocked());
  }
  return mgr;
}

Status MetadataManager::LoadLocked() {
  AX_ASSIGN_OR_RETURN(std::string text, fs::ReadFileToString(path_));
  AX_ASSIGN_OR_RETURN(Value doc, adm::ParseAdm(text));
  for (const auto& tdoc : doc.GetField("types").items()) {
    AX_ASSIGN_OR_RETURN(adm::TypePtr t, TypeFromDoc(tdoc, types_));
    types_[t->name()] = t;
    type_docs_[t->name()] = tdoc;
  }
  for (const auto& dsdoc : doc.GetField("datasets").items()) {
    DatasetDef ds;
    ds.name = dsdoc.GetField("name").AsString();
    ds.type_name = dsdoc.GetField("type").AsString();
    ds.primary_key = dsdoc.GetField("primary_key").AsString();
    ds.external = dsdoc.GetField("external").AsBool();
    for (const auto& [k, v] : dsdoc.GetField("props").fields()) {
      ds.external_props[k] = v.AsString();
    }
    for (const auto& ixdoc : dsdoc.GetField("indexes").items()) {
      IndexDef ix;
      ix.name = ixdoc.GetField("name").AsString();
      ix.field = ixdoc.GetField("field").AsString();
      ix.kind = static_cast<IndexKind>(ixdoc.GetField("kind").AsInt());
      ds.indexes.push_back(std::move(ix));
    }
    // Catalogs written before the columnar format lack this field.
    const Value& sf = dsdoc.GetField("storage_format");
    ds.storage_format = sf.is_string() ? sf.AsString() : "row";
    datasets_[ds.name] = std::move(ds);
  }
  // Older catalog files predate feeds and lack the array entirely.
  const Value& feeds = doc.GetField("feeds");
  if (feeds.is_array()) {
    for (const auto& fdoc : feeds.items()) {
      FeedDef fd;
      fd.name = fdoc.GetField("name").AsString();
      fd.adapter = fdoc.GetField("adapter").AsString();
      for (const auto& [k, v] : fdoc.GetField("props").fields()) {
        fd.props[k] = v.AsString();
      }
      fd.connected_dataset = fdoc.GetField("dataset").AsString();
      fd.policy = fdoc.GetField("policy").AsString();
      feeds_[fd.name] = std::move(fd);
    }
  }
  return Status::OK();
}

Status MetadataManager::PersistLocked() {
  std::vector<Value> types;
  for (const auto& [name, t] : types_) types.push_back(TypeToDoc(t));
  std::vector<Value> datasets;
  for (const auto& [name, ds] : datasets_) datasets.push_back(DatasetToDoc(ds));
  std::vector<Value> feeds;
  for (const auto& [name, fd] : feeds_) feeds.push_back(FeedToDoc(fd));
  Value doc = adm::ObjectBuilder()
                  .Add("types", Value::Array(std::move(types)))
                  .Add("datasets", Value::Array(std::move(datasets)))
                  .Add("feeds", Value::Array(std::move(feeds)))
                  .Build();
  return fs::WriteStringToFile(path_, doc.ToString());
}

Status MetadataManager::CreateType(const std::string& name, adm::TypePtr type) {
  std::lock_guard<std::mutex> lock(mu_);
  if (types_.count(name)) {
    return Status::AlreadyExists("type '" + name + "' exists");
  }
  types_[name] = std::move(type);
  return PersistLocked();
}

Status MetadataManager::DropType(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [ds_name, ds] : datasets_) {
    if (ds.type_name == name) {
      return Status::InvalidArgument("type '" + name + "' in use by dataset '" +
                                     ds_name + "'");
    }
  }
  if (types_.erase(name) == 0) {
    return Status::NotFound("no type '" + name + "'");
  }
  return PersistLocked();
}

Result<adm::TypePtr> MetadataManager::GetType(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(name);
  if (it == types_.end()) return Status::NotFound("no type '" + name + "'");
  return it->second;
}

Status MetadataManager::CreateDataset(DatasetDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.count(def.name)) {
    return Status::AlreadyExists("dataset '" + def.name + "' exists");
  }
  if (!types_.count(def.type_name)) {
    return Status::NotFound("no type '" + def.type_name + "'");
  }
  datasets_[def.name] = std::move(def);
  return PersistLocked();
}

Status MetadataManager::DropDataset(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.erase(name) == 0) {
    return Status::NotFound("no dataset '" + name + "'");
  }
  return PersistLocked();
}

Result<DatasetDef> MetadataManager::GetDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + name + "'");
  }
  return it->second;
}

std::vector<DatasetDef> MetadataManager::AllDatasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DatasetDef> out;
  for (const auto& [n, ds] : datasets_) out.push_back(ds);
  return out;
}

Status MetadataManager::CreateIndex(const std::string& dataset, IndexDef index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + dataset + "'");
  }
  if (it->second.external) {
    return Status::InvalidArgument("cannot index external dataset '" + dataset +
                                   "'");
  }
  for (const auto& ix : it->second.indexes) {
    if (ix.name == index.name) {
      return Status::AlreadyExists("index '" + index.name + "' exists on '" +
                                   dataset + "'");
    }
  }
  it->second.indexes.push_back(std::move(index));
  return PersistLocked();
}

Status MetadataManager::DropIndex(const std::string& dataset,
                                  const std::string& index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset '" + dataset + "'");
  }
  auto& ixs = it->second.indexes;
  for (auto iit = ixs.begin(); iit != ixs.end(); ++iit) {
    if (iit->name == index) {
      ixs.erase(iit);
      return PersistLocked();
    }
  }
  return Status::NotFound("no index '" + index + "' on '" + dataset + "'");
}

Status MetadataManager::CreateFeed(FeedDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  if (feeds_.count(def.name)) {
    return Status::AlreadyExists("feed '" + def.name + "' exists");
  }
  feeds_[def.name] = std::move(def);
  return PersistLocked();
}

Status MetadataManager::DropFeed(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (feeds_.erase(name) == 0) {
    return Status::NotFound("no feed '" + name + "'");
  }
  return PersistLocked();
}

Result<FeedDef> MetadataManager::GetFeed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = feeds_.find(name);
  if (it == feeds_.end()) return Status::NotFound("no feed '" + name + "'");
  return it->second;
}

std::vector<FeedDef> MetadataManager::AllFeeds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeedDef> out;
  for (const auto& [n, fd] : feeds_) out.push_back(fd);
  return out;
}

Status MetadataManager::SetFeedConnection(const std::string& feed,
                                          const std::string& dataset,
                                          const std::string& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = feeds_.find(feed);
  if (it == feeds_.end()) return Status::NotFound("no feed '" + feed + "'");
  it->second.connected_dataset = dataset;
  it->second.policy = policy;
  return PersistLocked();
}

bool MetadataManager::HasDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_.count(name) > 0;
}

std::string MetadataManager::PrimaryKeyField(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? "" : it->second.primary_key;
}

std::string MetadataManager::StorageFormat(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? "row" : it->second.storage_format;
}

std::vector<algebricks::Catalog::IndexInfo> MetadataManager::SecondaryIndexes(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IndexInfo> out;
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return out;
  for (const auto& ix : it->second.indexes) {
    IndexInfo info;
    info.name = ix.name;
    info.field = ix.field;
    info.kind = ix.kind == IndexKind::kBTree ? IndexInfo::kBTree
                : ix.kind == IndexKind::kRTree ? IndexInfo::kRTree
                                               : IndexInfo::kKeyword;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace asterix::meta
