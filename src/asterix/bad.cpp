#include "asterix/bad.h"

#include <chrono>

#include "adm/serde.h"
#include "common/metrics.h"

namespace asterix::bad {

namespace {
// Render a parameter value as a SQL++ literal for template substitution.
// Strings need quoting; everything else uses ADM text syntax (which SQL++
// literals share for numbers, booleans and typed constructors).
std::string RenderParam(const adm::Value& v) {
  return v.ToString();
}

std::string SubstituteParam(const std::string& tmpl, const adm::Value& param) {
  std::string out;
  const std::string kPlaceholder = "$param";
  size_t pos = 0;
  std::string rendered = RenderParam(param);
  while (true) {
    size_t hit = tmpl.find(kPlaceholder, pos);
    if (hit == std::string::npos) {
      out += tmpl.substr(pos);
      return out;
    }
    out += tmpl.substr(pos, hit - pos);
    out += rendered;
    pos = hit + kPlaceholder.size();
  }
}
}  // namespace

ChannelManager::~ChannelManager() { StopPeriodic(); }

Status ChannelManager::CreateChannel(const std::string& name,
                                     const std::string& query_template) {
  std::lock_guard<std::mutex> lock(mu_);
  if (channels_.count(name)) {
    return Status::AlreadyExists("channel '" + name + "' exists");
  }
  channels_[name] = query_template;
  return Status::OK();
}

Status ChannelManager::DropChannel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (channels_.erase(name) == 0) {
    return Status::NotFound("no channel '" + name + "'");
  }
  for (auto it = subscriptions_.begin(); it != subscriptions_.end();) {
    if (it->second.channel == name) {
      it = subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::vector<std::string> ChannelManager::Channels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, q] : channels_) out.push_back(name);
  return out;
}

Result<SubscriptionId> ChannelManager::Subscribe(const std::string& channel,
                                                 const adm::Value& param,
                                                 DeliveryCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!channels_.count(channel)) {
    return Status::NotFound("no channel '" + channel + "'");
  }
  SubscriptionId id = next_id_++;
  Subscription sub;
  sub.id = id;
  sub.channel = channel;
  sub.param = param;
  sub.callback = std::move(callback);
  subscriptions_[id] = std::move(sub);
  return id;
}

Status ChannelManager::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subscriptions_.erase(id) == 0) {
    return Status::NotFound("no subscription " + std::to_string(id));
  }
  return Status::OK();
}

Status ChannelManager::ExecuteOnce() {
  // Snapshot subscriptions so queries run without holding the lock.
  struct Work {
    SubscriptionId id;
    std::string channel;
    std::string query;
    adm::Value param;
  };
  std::vector<Work> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, sub] : subscriptions_) {
      auto ch = channels_.find(sub.channel);
      if (ch == channels_.end()) continue;
      work.push_back(Work{id, sub.channel,
                          SubstituteParam(ch->second, sub.param), sub.param});
    }
  }
  uint64_t exec = executions_.fetch_add(1) + 1;
  // One subscription's failure (e.g. its dataset was dropped) must not
  // starve the healthy subscriptions in the same round, and must not
  // vanish: deliver to everyone we can, record the failure, return the
  // first one.
  Status first_error = Status::OK();
  auto* error_counter =
      metrics::Registry::Global().GetCounter("bad.channel.execute_errors");
  for (const auto& w : work) {
    auto exec_result = instance_->Execute(w.query);
    if (!exec_result.ok()) {
      error_counter->Add(1);
      if (first_error.ok()) first_error = exec_result.status();
      continue;
    }
    auto result = std::move(exec_result).value();
    Delivery delivery;
    delivery.channel = w.channel;
    delivery.subscription = w.id;
    delivery.param = w.param;
    delivery.execution = exec;
    DeliveryCallback callback;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = subscriptions_.find(w.id);
      if (it == subscriptions_.end()) continue;  // unsubscribed meanwhile
      for (auto& row : result.rows) {
        std::string key = adm::Serialize(row);
        if (it->second.seen.insert(std::move(key)).second) {
          delivery.new_results.push_back(std::move(row));
        }
      }
      callback = it->second.callback;
    }
    if (!delivery.new_results.empty() && callback) callback(delivery);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_error_ = first_error;
  }
  return first_error;
}

Status ChannelManager::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

Status ChannelManager::StartPeriodic(int period_ms) {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("channel job already running");
  }
  periodic_ = std::thread([this, period_ms] {
    while (running_.load()) {
      // The channel job ticks through failures: ExecuteOnce already counts
      // them (bad.channel.execute_errors) and exposes them via last_error().
      (void)ExecuteOnce();  // axlint: allow(must-check): surfaced via last_error()
      for (int waited = 0; waited < period_ms && running_.load(); waited += 5) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  });
  return Status::OK();
}

void ChannelManager::StopPeriodic() {
  running_ = false;
  if (periodic_.joinable()) periodic_.join();
}

}  // namespace asterix::bad
