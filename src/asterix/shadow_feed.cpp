#include "asterix/shadow_feed.h"

#include <chrono>

#include "adm/serde.h"

namespace asterix::feeds {

using adm::Value;

Status OperationalStore::Upsert(const Value& document) {
  const Value& key = document.GetField(key_field_);
  if (key.is_unknown()) {
    return Status::InvalidArgument("document lacks key field '" + key_field_ +
                                   "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  docs_[adm::Serialize(key)] = document;
  Mutation m;
  m.deletion = false;
  m.key = key;
  m.record = document;
  m.seqno = ++seqno_;
  stream_.push_back(std::move(m));
  cv_.notify_one();
  return Status::OK();
}

Status OperationalStore::Delete(const Value& key) {
  std::lock_guard<std::mutex> lock(mu_);
  docs_.erase(adm::Serialize(key));
  Mutation m;
  m.deletion = true;
  m.key = key;
  m.seqno = ++seqno_;
  stream_.push_back(std::move(m));
  cv_.notify_one();
  return Status::OK();
}

Result<bool> OperationalStore::Get(const Value& key, Value* document) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(adm::Serialize(key));
  if (it == docs_.end()) return false;
  if (document) *document = it->second;
  return true;
}

size_t OperationalStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

std::vector<Mutation> OperationalStore::Drain(size_t max, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stream_.empty() && timeout_ms > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (stream_.empty() &&
           cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
  }
  std::vector<Mutation> out;
  while (!stream_.empty() && out.size() < max) {
    out.push_back(std::move(stream_.front()));
    stream_.pop_front();
  }
  return out;
}

ShadowFeed::~ShadowFeed() {
  (void)Stop();
}

Status ShadowFeed::Start() {
  if (running_.exchange(true)) {
    return Status::InvalidArgument("feed already running");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ShadowFeed::Run() {
  while (true) {
    bool still_running = running_.load();
    auto batch = source_->Drain(256, still_running ? 20 : 0);
    if (batch.empty()) {
      if (!still_running) break;
      continue;
    }
    for (auto& m : batch) {
      Status st = m.deletion
                      ? analytics_->DeleteByKey(dataset_, m.key).status()
                      : analytics_->UpsertValue(dataset_, m.record);
      if (!st.ok() && !st.IsNotFound()) {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (error_.ok()) error_ = st;
        running_ = false;
        return;
      }
      applied_ = m.seqno;
      count_++;
    }
  }
}

Status ShadowFeed::Stop() {
  running_ = false;
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

Status ShadowFeed::WaitForCatchUp(int timeout_ms) {
  uint64_t target = source_->last_seqno();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (applied_.load() < target) {
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_.ok()) return error_;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Internal("shadow feed failed to catch up in time");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Status::OK();
}

}  // namespace asterix::feeds
