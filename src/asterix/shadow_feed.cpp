#include "asterix/shadow_feed.h"

#include <chrono>
#include <iterator>

#include "adm/serde.h"

namespace asterix::feeds {

using adm::Value;

Status OperationalStore::Upsert(const Value& document) {
  const Value& key = document.GetField(key_field_);
  if (key.is_unknown()) {
    return Status::InvalidArgument("document lacks key field '" + key_field_ +
                                   "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  docs_[adm::Serialize(key)] = document;
  Mutation m;
  m.deletion = false;
  m.key = key;
  m.record = document;
  m.seqno = ++seqno_;
  stream_.push_back(std::move(m));
  cv_.notify_one();
  return Status::OK();
}

Status OperationalStore::Delete(const Value& key) {
  std::lock_guard<std::mutex> lock(mu_);
  docs_.erase(adm::Serialize(key));
  Mutation m;
  m.deletion = true;
  m.key = key;
  m.seqno = ++seqno_;
  stream_.push_back(std::move(m));
  cv_.notify_one();
  return Status::OK();
}

Result<bool> OperationalStore::Get(const Value& key, Value* document) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(adm::Serialize(key));
  if (it == docs_.end()) return false;
  if (document) *document = it->second;
  return true;
}

size_t OperationalStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

std::vector<Mutation> OperationalStore::Drain(size_t max, int timeout_ms) {
  std::deque<Mutation> taken;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stream_.empty() && timeout_ms > 0) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(timeout_ms);
      while (stream_.empty() &&
             cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
      }
    }
    if (stream_.size() <= max) {
      // Common case: hand the whole backlog over in O(1) and let producers
      // go on filling a fresh deque.
      taken.swap(stream_);
    } else {
      auto end = stream_.begin() + static_cast<ptrdiff_t>(max);
      taken.insert(taken.end(), std::make_move_iterator(stream_.begin()),
                   std::make_move_iterator(end));
      stream_.erase(stream_.begin(), end);
    }
  }
  return std::vector<Mutation>(std::make_move_iterator(taken.begin()),
                               std::make_move_iterator(taken.end()));
}

Result<bool> OperationalStoreAdapter::NextBatch(std::vector<FeedRecord>* out,
                                                size_t max, int timeout_ms) {
  bool stopping = stop_.load();
  auto batch = source_->Drain(max, stopping ? 0 : timeout_ms);
  for (auto& m : batch) {
    FeedRecord r;
    r.seqno = m.seqno;
    r.deletion = m.deletion;
    r.parsed = !m.deletion;
    r.key = std::move(m.key);
    r.value = std::move(m.record);
    out->push_back(std::move(r));
  }
  // End-of-feed only once a stop was requested AND the stream is drained.
  return !(stopping && batch.empty());
}

ShadowFeed::~ShadowFeed() {
  // axlint: allow(must-check): destructor; Stop() errors land in error()
  (void)Stop();
}

Status ShadowFeed::Start() {
  if (runtime_) return Status::InvalidArgument("feed already running");
  auto adapter = std::make_unique<OperationalStoreAdapter>(source_);
  adapter_ = adapter.get();
  FeedRuntimeOptions options;
  options.feed_name = "shadow";
  options.dataset = dataset_;
  options.policy.kind = PolicyKind::kBasic;
  options.parse.format = ParseSpec::Format::kParsed;
  options.adapter_batch = 256;
  runtime_ = std::make_unique<FeedRuntime>(analytics_, std::move(adapter),
                                           std::move(options));
  Status st = runtime_->Start();
  if (!st.ok()) {
    runtime_.reset();
    adapter_ = nullptr;
  }
  return st;
}

Status ShadowFeed::Stop() {
  if (!runtime_) return Status::OK();
  adapter_->RequestStop();
  // Wait for the adapter to report end-of-feed and the pipeline to drain,
  // then join; the old backlog must be fully applied before Stop returns.
  Status drained = runtime_->WaitForCompletion();
  Status stopped = runtime_->Stop();
  final_seqno_.store(runtime_->watermark());
  final_count_.store(runtime_->records_applied());
  runtime_.reset();
  adapter_ = nullptr;
  return stopped.ok() ? drained : stopped;
}

Status ShadowFeed::WaitForCatchUp(int timeout_ms) {
  if (!runtime_) return Status::InvalidArgument("shadow feed not running");
  return runtime_->WaitForSeqno(source_->last_seqno(), timeout_ms);
}

}  // namespace asterix::feeds
