// The ADM type system: the paper's "open" type idea — users declare as much
// or as little schema as they like. Object types list declared fields (each
// possibly optional); instances of open types may carry arbitrary extra
// fields, while closed types forbid them (Fig. 3(b)'s AccessLogType).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::adm {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// Kind of a declared type.
enum class TypeKind : uint8_t {
  kAny,        // no constraint
  kPrimitive,  // one of the scalar TypeTags
  kObject,     // record type with declared fields, open or closed
  kArray,      // ordered list of item type
  kMultiset,   // unordered list of item type
};

/// A declared field of an object type.
struct FieldDef {
  std::string name;
  TypePtr type;
  bool optional = false;  // "field: type?" in DDL
};

/// An ADM type. Immutable; shared via TypePtr.
class Type {
 public:
  /// The unconstrained type (anything validates).
  static TypePtr Any();
  /// A primitive type for a scalar tag (int64, string, datetime, point, ...).
  static TypePtr Primitive(TypeTag tag);
  /// An object type. `open` permits undeclared extra fields.
  static TypePtr MakeObject(std::string name, std::vector<FieldDef> fields,
                            bool open);
  static TypePtr MakeArray(TypePtr item);
  static TypePtr MakeMultiset(TypePtr item);

  TypeKind kind() const { return kind_; }
  TypeTag primitive_tag() const { return tag_; }
  const std::string& name() const { return name_; }
  bool open() const { return open_; }
  const std::vector<FieldDef>& object_fields() const { return fields_; }
  const TypePtr& item_type() const { return item_; }

  /// Find a declared field by name; nullptr when undeclared.
  const FieldDef* FindField(const std::string& name) const;

  /// Validate `v` against this type. Enforces: declared field types,
  /// required (non-optional) fields present and non-missing, and no
  /// undeclared fields when the type is closed. Numeric int->double
  /// promotion is permitted (a declared double field accepts an int).
  Status Validate(const Value& v) const;

  /// DDL-ish rendering, e.g. "GleambookUserType AS { id: int64, ... }".
  std::string ToString() const;

 private:
  Type() = default;
  TypeKind kind_ = TypeKind::kAny;
  TypeTag tag_ = TypeTag::kMissing;
  std::string name_;
  bool open_ = true;
  std::vector<FieldDef> fields_;
  TypePtr item_;
};

/// Parse a primitive type name used in DDL ("int", "int64", "string",
/// "double", "boolean", "datetime", "date", "time", "duration", "point",
/// "rectangle", "int32" (alias of int64 in this implementation)).
Result<TypeTag> PrimitiveTagFromName(const std::string& name);

}  // namespace asterix::adm
