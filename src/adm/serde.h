// Binary serialization of ADM values: a compact tagged format used for
// LSM storage payloads, spill files, and the write-ahead log. Not ordered —
// index keys use the separate order-preserving encoding in key_encoder.h.
#pragma once

#include <cstdint>
#include <string>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::adm {

/// Append the binary encoding of `v` to `out`.
void SerializeValue(const Value& v, std::string* out);

/// Serialize to a fresh buffer.
inline std::string Serialize(const Value& v) {
  std::string out;
  SerializeValue(v, &out);
  return out;
}

/// Decode one value from `data` starting at `*pos`; advances `*pos`.
Result<Value> DeserializeValue(const std::string& data, size_t* pos);

/// Decode a buffer that contains exactly one value.
Result<Value> Deserialize(const std::string& data);

/// Varint helpers shared with the storage layer (LEB128, unsigned).
void PutVarint(uint64_t v, std::string* out);
Result<uint64_t> GetVarint(const std::string& data, size_t* pos);

}  // namespace asterix::adm
