// Delimited-text parsing for ADM values: one line of separated cells
// converted per a (closed) object type's declared fields. Lives in adm —
// below both the external-dataset reader and the feed pipeline, which both
// parse the same wire format.
#pragma once

#include <string>

#include "adm/type.h"
#include "adm/value.h"
#include "common/result.h"

namespace asterix::adm {

/// Parse one delimited-text line per the (closed) type's declared fields.
/// The cell count must match the field count exactly; cells are converted
/// to the declared primitive types (int64, double, string, boolean, and
/// the temporal types).
Result<Value> ParseDelimitedLine(const std::string& line, char delimiter,
                                 const TypePtr& type);

}  // namespace asterix::adm
