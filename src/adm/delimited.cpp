#include "adm/delimited.h"

#include <cstdlib>
#include <vector>

#include "adm/temporal.h"

namespace asterix::adm {

namespace {

Result<Value> ConvertField(const std::string& text, const TypePtr& type) {
  if (type == nullptr || type->kind() == TypeKind::kAny) {
    return Value::String(text);
  }
  if (type->kind() != TypeKind::kPrimitive) {
    return Status::NotSupported(
        "delimited-text supports only primitive fields");
  }
  switch (type->primitive_tag()) {
    case TypeTag::kInt64:
      return Value::Int(std::atoll(text.c_str()));
    case TypeTag::kDouble:
      return Value::Double(std::atof(text.c_str()));
    case TypeTag::kString:
      return Value::String(text);
    case TypeTag::kBoolean:
      return Value::Boolean(text == "true" || text == "1");
    case TypeTag::kDatetime: {
      AX_ASSIGN_OR_RETURN(int64_t ms, temporal::ParseDatetime(text));
      return Value::Datetime(ms);
    }
    case TypeTag::kDate: {
      AX_ASSIGN_OR_RETURN(int64_t d, temporal::ParseDate(text));
      return Value::Date(d);
    }
    case TypeTag::kTime: {
      AX_ASSIGN_OR_RETURN(int64_t ms, temporal::ParseTime(text));
      return Value::Time(ms);
    }
    case TypeTag::kDuration: {
      AX_ASSIGN_OR_RETURN(int64_t ms, temporal::ParseDuration(text));
      return Value::Duration(ms);
    }
    default:
      return Status::NotSupported(std::string("cannot parse '") + text +
                                  "' as " +
                                  TypeTagName(type->primitive_tag()));
  }
}

}  // namespace

Result<Value> ParseDelimitedLine(const std::string& line, char delimiter,
                                 const TypePtr& type) {
  if (type->kind() != TypeKind::kObject) {
    return Status::InvalidArgument("external dataset type must be an object");
  }
  std::vector<std::string> cells;
  std::string cur;
  for (char c : line) {
    if (c == delimiter) {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  cells.push_back(std::move(cur));
  const auto& fields = type->object_fields();
  if (cells.size() != fields.size()) {
    return Status::ParseError("expected " + std::to_string(fields.size()) +
                              " delimited fields, got " +
                              std::to_string(cells.size()) + " in line '" +
                              line + "'");
  }
  FieldVec out;
  for (size_t i = 0; i < fields.size(); i++) {
    AX_ASSIGN_OR_RETURN(Value v, ConvertField(cells[i], fields[i].type));
    out.emplace_back(fields[i].name, std::move(v));
  }
  return Value::Object(std::move(out));
}

}  // namespace asterix::adm
