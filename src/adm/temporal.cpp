#include "adm/temporal.h"

#include <cstdio>
#include <cstdlib>

namespace asterix::adm::temporal {

// Howard Hinnant's days_from_civil algorithm.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

namespace {
bool ParseFixedInt(const std::string& s, size_t pos, size_t len, int* out) {
  if (pos + len > s.size()) return false;
  int v = 0;
  for (size_t i = 0; i < len; i++) {
    char c = s[pos + i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}
}  // namespace

Result<int64_t> ParseDate(const std::string& s) {
  int y, m, d;
  bool neg = !s.empty() && s[0] == '-';
  size_t off = neg ? 1 : 0;
  if (!ParseFixedInt(s, off, 4, &y) || s.size() < off + 10 ||
      s[off + 4] != '-' || !ParseFixedInt(s, off + 5, 2, &m) ||
      s[off + 7] != '-' || !ParseFixedInt(s, off + 8, 2, &d) ||
      m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::ParseError("bad date literal '" + s + "'");
  }
  return DaysFromCivil(neg ? -y : y, m, d);
}

Result<int64_t> ParseTime(const std::string& s) {
  int hh, mm, ss = 0, ms = 0;
  if (!ParseFixedInt(s, 0, 2, &hh) || s.size() < 5 || s[2] != ':' ||
      !ParseFixedInt(s, 3, 2, &mm) || hh > 23 || mm > 59) {
    return Status::ParseError("bad time literal '" + s + "'");
  }
  size_t pos = 5;
  if (pos < s.size() && s[pos] == ':') {
    if (!ParseFixedInt(s, pos + 1, 2, &ss) || ss > 60) {
      return Status::ParseError("bad time literal '" + s + "'");
    }
    pos += 3;
    if (pos < s.size() && s[pos] == '.') {
      size_t digits = 0;
      int frac = 0;
      pos++;
      while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9' && digits < 3) {
        frac = frac * 10 + (s[pos] - '0');
        digits++;
        pos++;
      }
      while (digits < 3) {
        frac *= 10;
        digits++;
      }
      // skip extra sub-ms digits
      while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') pos++;
      ms = frac;
    }
  }
  if (pos < s.size() && (s[pos] == 'Z' || s[pos] == 'z')) pos++;
  if (pos != s.size()) {
    return Status::ParseError("trailing characters in time literal '" + s + "'");
  }
  return (static_cast<int64_t>(hh) * 3600 + mm * 60 + ss) * 1000 + ms;
}

Result<int64_t> ParseDatetime(const std::string& s) {
  size_t t = s.find_first_of("Tt");
  if (t == std::string::npos) {
    return Status::ParseError("datetime literal missing 'T': '" + s + "'");
  }
  AX_ASSIGN_OR_RETURN(int64_t days, ParseDate(s.substr(0, t)));
  AX_ASSIGN_OR_RETURN(int64_t ms, ParseTime(s.substr(t + 1)));
  return days * 86400000 + ms;
}

Result<int64_t> ParseDuration(const std::string& s) {
  if (s.empty() || (s[0] != 'P' && s[0] != 'p')) {
    return Status::ParseError("duration must start with 'P': '" + s + "'");
  }
  int64_t total = 0;
  bool in_time = false;
  size_t pos = 1;
  while (pos < s.size()) {
    if (s[pos] == 'T' || s[pos] == 't') {
      in_time = true;
      pos++;
      continue;
    }
    size_t start = pos;
    while (pos < s.size() && (std::isdigit(s[pos]) || s[pos] == '.')) pos++;
    if (pos == start || pos == s.size()) {
      return Status::ParseError("bad duration literal '" + s + "'");
    }
    double n = std::atof(s.substr(start, pos - start).c_str());
    char unit = s[pos++];
    switch (unit) {
      case 'D': case 'd': total += static_cast<int64_t>(n * 86400000); break;
      case 'H': case 'h':
        if (!in_time) return Status::ParseError("H before T in '" + s + "'");
        total += static_cast<int64_t>(n * 3600000);
        break;
      case 'M': case 'm':
        if (in_time) {
          total += static_cast<int64_t>(n * 60000);
        } else {
          return Status::ParseError(
              "year/month duration components are not supported: '" + s + "'");
        }
        break;
      case 'S': case 's':
        if (!in_time) return Status::ParseError("S before T in '" + s + "'");
        total += static_cast<int64_t>(n * 1000);
        break;
      case 'W': case 'w': total += static_cast<int64_t>(n * 7 * 86400000); break;
      case 'Y': case 'y':
        return Status::ParseError(
            "year/month duration components are not supported: '" + s + "'");
      default:
        return Status::ParseError("bad duration unit in '" + s + "'");
    }
  }
  return total;
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::string FormatTime(int64_t ms) {
  int64_t s = ms / 1000;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d",
                static_cast<int>(s / 3600), static_cast<int>((s / 60) % 60),
                static_cast<int>(s % 60), static_cast<int>(ms % 1000));
  return buf;
}

std::string FormatDatetime(int64_t ms) {
  int64_t days = ms >= 0 ? ms / 86400000 : (ms - 86399999) / 86400000;
  int64_t rem = ms - days * 86400000;
  return FormatDate(days) + "T" + FormatTime(rem) + "Z";
}

std::string FormatDuration(int64_t ms) {
  bool neg = ms < 0;
  if (neg) ms = -ms;
  int64_t days = ms / 86400000;
  ms %= 86400000;
  int64_t h = ms / 3600000;
  ms %= 3600000;
  int64_t m = ms / 60000;
  ms %= 60000;
  int64_t s = ms / 1000;
  ms %= 1000;
  std::string out = neg ? "-P" : "P";
  if (days) out += std::to_string(days) + "D";
  if (h || m || s || ms || !days) {
    out += "T";
    if (h) out += std::to_string(h) + "H";
    if (m) out += std::to_string(m) + "M";
    out += std::to_string(s);
    if (ms) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), ".%03d", static_cast<int>(ms));
      out += buf;
    }
    out += "S";
  }
  return out;
}

int64_t IntervalBinStart(int64_t ts_ms, int64_t anchor_ms, int64_t bin_ms) {
  int64_t delta = ts_ms - anchor_ms;
  int64_t bin = delta >= 0 ? delta / bin_ms : (delta - bin_ms + 1) / bin_ms;
  return anchor_ms + bin * bin_ms;
}

int64_t OverlapMs(int64_t a_start, int64_t a_end, int64_t b_start,
                  int64_t b_end) {
  int64_t lo = a_start > b_start ? a_start : b_start;
  int64_t hi = a_end < b_end ? a_end : b_end;
  return hi > lo ? hi - lo : 0;
}

}  // namespace asterix::adm::temporal
