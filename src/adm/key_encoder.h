// Order-preserving key encoding: encodes ADM scalar values (and composite
// keys) into byte strings whose memcmp order equals Value::Compare order.
// This is what lets on-disk B+trees compare keys without deserializing.
//
// Encoding per value: one class byte, then a class-specific payload:
//   numbers   -> class 0x20, 8-byte order-preserving double image + an
//                order-preserving int64 image as tiebreak (keeps int64
//                precision beyond 2^53 while ordering ints and doubles
//                together, as Value::Compare does)
//   strings   -> class 0x30, bytes with 0x00 escaped as {0x00,0xFF},
//                terminated by {0x00,0x00}
//   temporals -> class 0x4x (per tag), big-endian biased int64
// Composite keys are simple concatenations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::adm {

/// Append the order-preserving encoding of `v` to `out`.
/// Supported tags: missing, null, boolean, int64, double, string,
/// date, time, datetime, duration, point (as x then y). Other tags fail.
Status EncodeKeyPart(const Value& v, std::string* out);

/// Encode a composite key from `parts` (concatenated part encodings).
Result<std::string> EncodeKey(const std::vector<Value>& parts);

/// Encode a single-part key.
Result<std::string> EncodeKey(const Value& v);

/// Decode one key part from `data` at `*pos` (inverse of EncodeKeyPart).
Result<Value> DecodeKeyPart(const std::string& data, size_t* pos);

/// Decode all parts of a composite key.
Result<std::vector<Value>> DecodeKey(const std::string& data);

/// Smallest possible key ("" — less than every encoded key).
inline std::string MinKey() { return std::string(); }
/// A key greater than every encoded key.
inline std::string MaxKey() { return std::string(1, '\xff'); }

}  // namespace asterix::adm
