#include "adm/key_encoder.h"

#include <cstring>

namespace asterix::adm {

namespace {

constexpr char kClassMissing = 0x01;
constexpr char kClassNull = 0x02;
constexpr char kClassFalse = 0x10;
constexpr char kClassTrue = 0x11;
constexpr char kClassNumber = 0x20;
constexpr char kClassString = 0x30;
constexpr char kClassDate = 0x40;
constexpr char kClassTime = 0x41;
constexpr char kClassDatetime = 0x42;
constexpr char kClassDuration = 0x43;
constexpr char kClassPoint = 0x50;

// Big-endian image of an int64 with the sign bit flipped: memcmp order
// equals numeric order.
void PutOrderedInt64(int64_t v, std::string* out) {
  uint64_t u = static_cast<uint64_t>(v) ^ (1ULL << 63);
  for (int i = 7; i >= 0; i--) out->push_back(static_cast<char>(u >> (8 * i)));
}

int64_t GetOrderedInt64(const unsigned char* p) {
  uint64_t u = 0;
  for (int i = 0; i < 8; i++) u = (u << 8) | p[i];
  return static_cast<int64_t>(u ^ (1ULL << 63));
}

// Order-preserving image of a double: flip all bits for negatives, flip
// sign bit for non-negatives. (-0.0 normalized to 0.0 first.)
uint64_t OrderedDoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits & (1ULL << 63)) return ~bits;
  return bits | (1ULL << 63);
}

double DoubleFromOrderedBits(uint64_t u) {
  uint64_t bits = (u & (1ULL << 63)) ? (u & ~(1ULL << 63)) : ~u;
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

void PutOrderedDoubleBits(uint64_t u, std::string* out) {
  for (int i = 7; i >= 0; i--) out->push_back(static_cast<char>(u >> (8 * i)));
}

uint64_t GetBe64(const unsigned char* p) {
  uint64_t u = 0;
  for (int i = 0; i < 8; i++) u = (u << 8) | p[i];
  return u;
}

}  // namespace

Status EncodeKeyPart(const Value& v, std::string* out) {
  switch (v.tag()) {
    case TypeTag::kMissing:
      out->push_back(kClassMissing);
      return Status::OK();
    case TypeTag::kNull:
      out->push_back(kClassNull);
      return Status::OK();
    case TypeTag::kBoolean:
      out->push_back(v.AsBool() ? kClassTrue : kClassFalse);
      return Status::OK();
    case TypeTag::kInt64:
    case TypeTag::kDouble: {
      out->push_back(kClassNumber);
      // Primary order: the double image (orders ints and doubles together).
      PutOrderedDoubleBits(OrderedDoubleBits(v.AsNumber()), out);
      // Tiebreak: exact int64 (doubles get their truncated-int neighbour;
      // only consulted when double images are equal). Tag byte last so a
      // double and an int with identical numeric value stay adjacent but
      // deterministic: int64 encodes its exact value, double encodes 0.
      if (v.tag() == TypeTag::kInt64) {
        PutOrderedInt64(v.AsInt(), out);
        out->push_back(0);
      } else {
        PutOrderedInt64(0, out);
        out->push_back(1);
      }
      return Status::OK();
    }
    case TypeTag::kString: {
      out->push_back(kClassString);
      for (char c : v.AsString()) {
        if (c == '\x00') {
          out->push_back('\x00');
          out->push_back('\xff');
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\x00');
      out->push_back('\x00');
      return Status::OK();
    }
    case TypeTag::kDate:
    case TypeTag::kTime:
    case TypeTag::kDatetime:
    case TypeTag::kDuration: {
      char cls = v.tag() == TypeTag::kDate       ? kClassDate
                 : v.tag() == TypeTag::kTime     ? kClassTime
                 : v.tag() == TypeTag::kDatetime ? kClassDatetime
                                                 : kClassDuration;
      out->push_back(cls);
      PutOrderedInt64(v.TemporalValue(), out);
      return Status::OK();
    }
    case TypeTag::kPoint: {
      out->push_back(kClassPoint);
      Point p = v.AsPoint();
      PutOrderedDoubleBits(OrderedDoubleBits(p.x), out);
      PutOrderedDoubleBits(OrderedDoubleBits(p.y), out);
      return Status::OK();
    }
    default:
      return Status::NotSupported(std::string("cannot use ") +
                                  TypeTagName(v.tag()) + " as an index key");
  }
}

Result<std::string> EncodeKey(const std::vector<Value>& parts) {
  std::string out;
  for (const auto& p : parts) AX_RETURN_NOT_OK(EncodeKeyPart(p, &out));
  return out;
}

Result<std::string> EncodeKey(const Value& v) {
  std::string out;
  AX_RETURN_NOT_OK(EncodeKeyPart(v, &out));
  return out;
}

Result<Value> DecodeKeyPart(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) return Status::Corruption("truncated key");
  char cls = data[*pos];
  (*pos)++;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  switch (cls) {
    case kClassMissing: return Value::Missing();
    case kClassNull: return Value::Null();
    case kClassFalse: return Value::Boolean(false);
    case kClassTrue: return Value::Boolean(true);
    case kClassNumber: {
      if (*pos + 17 > data.size()) return Status::Corruption("truncated number key");
      uint64_t dbits = GetBe64(bytes + *pos);
      int64_t ival = GetOrderedInt64(bytes + *pos + 8);
      char tag = data[*pos + 16];
      *pos += 17;
      if (tag == 0) return Value::Int(ival);
      return Value::Double(DoubleFromOrderedBits(dbits));
    }
    case kClassString: {
      std::string s;
      while (true) {
        if (*pos >= data.size()) return Status::Corruption("truncated string key");
        char c = data[*pos];
        (*pos)++;
        if (c == '\x00') {
          if (*pos >= data.size()) return Status::Corruption("truncated string key");
          char next = data[*pos];
          (*pos)++;
          if (next == '\x00') break;
          if (next == '\xff') {
            s.push_back('\x00');
            continue;
          }
          return Status::Corruption("bad string key escape");
        }
        s.push_back(c);
      }
      return Value::String(std::move(s));
    }
    case kClassDate:
    case kClassTime:
    case kClassDatetime:
    case kClassDuration: {
      if (*pos + 8 > data.size()) return Status::Corruption("truncated temporal key");
      int64_t raw = GetOrderedInt64(bytes + *pos);
      *pos += 8;
      switch (cls) {
        case kClassDate: return Value::Date(raw);
        case kClassTime: return Value::Time(raw);
        case kClassDatetime: return Value::Datetime(raw);
        default: return Value::Duration(raw);
      }
    }
    case kClassPoint: {
      if (*pos + 16 > data.size()) return Status::Corruption("truncated point key");
      double x = DoubleFromOrderedBits(GetBe64(bytes + *pos));
      double y = DoubleFromOrderedBits(GetBe64(bytes + *pos + 8));
      *pos += 16;
      return Value::MakePoint(x, y);
    }
    default:
      return Status::Corruption("bad key class byte " + std::to_string(cls));
  }
}

Result<std::vector<Value>> DecodeKey(const std::string& data) {
  std::vector<Value> out;
  size_t pos = 0;
  while (pos < data.size()) {
    AX_ASSIGN_OR_RETURN(Value v, DecodeKeyPart(data, &pos));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace asterix::adm
