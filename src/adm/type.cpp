#include "adm/type.h"

#include <algorithm>

namespace asterix::adm {

TypePtr Type::Any() {
  static TypePtr any = [] {
    auto t = std::shared_ptr<Type>(new Type());
    t->kind_ = TypeKind::kAny;
    t->name_ = "any";
    return TypePtr(t);
  }();
  return any;
}

TypePtr Type::Primitive(TypeTag tag) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kPrimitive;
  t->tag_ = tag;
  t->name_ = TypeTagName(tag);
  return t;
}

TypePtr Type::MakeObject(std::string name, std::vector<FieldDef> fields,
                         bool open) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kObject;
  t->name_ = std::move(name);
  t->fields_ = std::move(fields);
  t->open_ = open;
  return t;
}

TypePtr Type::MakeArray(TypePtr item) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kArray;
  t->name_ = "array";
  t->item_ = std::move(item);
  return t;
}

TypePtr Type::MakeMultiset(TypePtr item) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kMultiset;
  t->name_ = "multiset";
  t->item_ = std::move(item);
  return t;
}

const FieldDef* Type::FindField(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

namespace {
bool TagMatches(TypeTag declared, const Value& v) {
  if (v.tag() == declared) return true;
  // int promotes to a declared double field.
  if (declared == TypeTag::kDouble && v.tag() == TypeTag::kInt64) return true;
  return false;
}
}  // namespace

Status Type::Validate(const Value& v) const {
  switch (kind_) {
    case TypeKind::kAny:
      return Status::OK();
    case TypeKind::kPrimitive:
      if (!TagMatches(tag_, v)) {
        return Status::TypeMismatch(std::string("expected ") + name_ +
                                    ", got " + TypeTagName(v.tag()) + " (" +
                                    v.ToString() + ")");
      }
      return Status::OK();
    case TypeKind::kArray:
    case TypeKind::kMultiset: {
      TypeTag want = kind_ == TypeKind::kArray ? TypeTag::kArray
                                               : TypeTag::kMultiset;
      if (v.tag() != want) {
        return Status::TypeMismatch(std::string("expected ") +
                                    TypeTagName(want) + ", got " +
                                    TypeTagName(v.tag()));
      }
      if (item_ && item_->kind() != TypeKind::kAny) {
        for (const auto& item : v.items()) {
          AX_RETURN_NOT_OK(item_->Validate(item));
        }
      }
      return Status::OK();
    }
    case TypeKind::kObject: {
      if (!v.is_object()) {
        return Status::TypeMismatch("expected object of type " + name_ +
                                    ", got " + TypeTagName(v.tag()));
      }
      for (const auto& f : fields_) {
        const Value& fv = v.GetField(f.name);
        if (fv.is_missing()) {
          if (!f.optional) {
            return Status::TypeMismatch("missing required field '" + f.name +
                                        "' of type " + name_);
          }
          continue;
        }
        if (fv.is_null() && f.optional) continue;
        if (f.type) AX_RETURN_NOT_OK(f.type->Validate(fv));
      }
      if (!open_) {
        for (const auto& [fname, fv] : v.fields()) {
          if (FindField(fname) == nullptr) {
            return Status::TypeMismatch("closed type " + name_ +
                                        " does not allow field '" + fname + "'");
          }
        }
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kAny:
      return "any";
    case TypeKind::kPrimitive:
      return name_;
    case TypeKind::kArray:
      return "[" + (item_ ? item_->ToString() : std::string("any")) + "]";
    case TypeKind::kMultiset:
      return "{{" + (item_ ? item_->ToString() : std::string("any")) + "}}";
    case TypeKind::kObject: {
      std::string out = name_;
      out += open_ ? " AS {" : " AS CLOSED {";
      bool first = true;
      for (const auto& f : fields_) {
        if (!first) out += ",";
        first = false;
        out += " " + f.name + ": " +
               (f.type ? f.type->ToString() : std::string("any"));
        if (f.optional) out += "?";
      }
      out += " }";
      return out;
    }
  }
  return "?";
}

Result<TypeTag> PrimitiveTagFromName(const std::string& name) {
  std::string n;
  n.reserve(name.size());
  for (char c : name) n.push_back(static_cast<char>(std::tolower(c)));
  if (n == "int" || n == "int64" || n == "int32" || n == "int16" ||
      n == "int8" || n == "bigint") {
    return TypeTag::kInt64;
  }
  if (n == "double" || n == "float") return TypeTag::kDouble;
  if (n == "string") return TypeTag::kString;
  if (n == "boolean" || n == "bool") return TypeTag::kBoolean;
  if (n == "datetime") return TypeTag::kDatetime;
  if (n == "date") return TypeTag::kDate;
  if (n == "time") return TypeTag::kTime;
  if (n == "duration") return TypeTag::kDuration;
  if (n == "point") return TypeTag::kPoint;
  if (n == "rectangle") return TypeTag::kRectangle;
  if (n == "null") return TypeTag::kNull;
  return Status::InvalidArgument("unknown primitive type '" + name + "'");
}

}  // namespace asterix::adm
