// ADM (Asterix Data Model) values: JSON extended with the database-oriented
// modeling features the paper describes in Section III — multisets in
// addition to lists, temporal types (date/time/datetime/duration), simple
// spatial types (point/rectangle), and distinct NULL vs MISSING semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace asterix::adm {

/// Runtime type tag of an ADM value. The enum order defines the cross-type
/// total order used by comparisons and index key encoding (with the single
/// exception that kInt64 and kDouble compare numerically against each other).
enum class TypeTag : uint8_t {
  kMissing = 0,
  kNull = 1,
  kBoolean = 2,
  kInt64 = 3,
  kDouble = 4,
  kString = 5,
  kDate = 6,      // days since 1970-01-01
  kTime = 7,      // milliseconds since midnight
  kDatetime = 8,  // milliseconds since epoch
  kDuration = 9,  // milliseconds
  kPoint = 10,
  kRectangle = 11,
  kArray = 12,     // ordered list  [ ... ]
  kMultiset = 13,  // unordered bag {{ ... }}
  kObject = 14,
};

/// Human-readable tag name ("int64", "object", ...).
const char* TypeTagName(TypeTag tag);

/// 2-D point, the paper's "simple (Googlemap style) spatial" primitive.
struct Point {
  double x = 0;
  double y = 0;
  bool operator==(const Point&) const = default;
};

/// Axis-aligned rectangle (lo = bottom-left, hi = top-right).
struct Rectangle {
  Point lo;
  Point hi;
  bool operator==(const Rectangle&) const = default;
  bool Intersects(const Rectangle& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }
  bool Contains(const Point& p) const {
    return lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y;
  }
};

class Value;
/// An object's fields, kept sorted by field name for canonical comparison.
using FieldVec = std::vector<std::pair<std::string, Value>>;

/// An immutable ADM value. Copy is cheap (nested data is shared). Values
/// form a total order (Compare) and hash consistently with that order, which
/// the storage and runtime layers rely on for indexing, sorting and hashing.
class Value {
 public:
  /// Default-constructed value is MISSING.
  Value() : tag_(TypeTag::kMissing) {}

  // ---- constructors -------------------------------------------------------
  static Value Missing() { return Value(); }
  static Value Null() { return Scalar(TypeTag::kNull, 0); }
  static Value Boolean(bool b) { return Scalar(TypeTag::kBoolean, b ? 1 : 0); }
  static Value Int(int64_t v) { return Scalar(TypeTag::kInt64, v); }
  static Value Double(double v);
  static Value String(std::string s);
  static Value Date(int64_t days) { return Scalar(TypeTag::kDate, days); }
  static Value Time(int64_t ms) { return Scalar(TypeTag::kTime, ms); }
  static Value Datetime(int64_t ms) { return Scalar(TypeTag::kDatetime, ms); }
  static Value Duration(int64_t ms) { return Scalar(TypeTag::kDuration, ms); }
  static Value MakePoint(double x, double y);
  static Value MakeRectangle(Point lo, Point hi);
  static Value Array(std::vector<Value> items);
  static Value Multiset(std::vector<Value> items);
  /// Builds an object; fields are sorted by name, later duplicates win.
  static Value Object(FieldVec fields);

  // ---- inspectors ---------------------------------------------------------
  TypeTag tag() const { return tag_; }
  bool is_missing() const { return tag_ == TypeTag::kMissing; }
  bool is_null() const { return tag_ == TypeTag::kNull; }
  bool is_unknown() const { return is_missing() || is_null(); }
  bool is_boolean() const { return tag_ == TypeTag::kBoolean; }
  bool is_int() const { return tag_ == TypeTag::kInt64; }
  bool is_double() const { return tag_ == TypeTag::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return tag_ == TypeTag::kString; }
  bool is_temporal() const {
    return tag_ == TypeTag::kDate || tag_ == TypeTag::kTime ||
           tag_ == TypeTag::kDatetime || tag_ == TypeTag::kDuration;
  }
  bool is_point() const { return tag_ == TypeTag::kPoint; }
  bool is_rectangle() const { return tag_ == TypeTag::kRectangle; }
  bool is_array() const { return tag_ == TypeTag::kArray; }
  bool is_multiset() const { return tag_ == TypeTag::kMultiset; }
  bool is_collection() const { return is_array() || is_multiset(); }
  bool is_object() const { return tag_ == TypeTag::kObject; }

  /// Raw accessors; valid only for the matching tag.
  bool AsBool() const { return i64_ != 0; }
  int64_t AsInt() const { return i64_; }
  double AsDoubleExact() const { return dbl_; }
  /// Numeric value promoted to double (valid for kInt64/kDouble).
  double AsNumber() const {
    return tag_ == TypeTag::kInt64 ? static_cast<double>(i64_) : dbl_;
  }
  /// Raw temporal payload (days or ms depending on tag).
  int64_t TemporalValue() const { return i64_; }
  const std::string& AsString() const { return *str_; }
  Point AsPoint() const { return Point{dbl_, dbl2_}; }
  Rectangle AsRectangle() const;
  const std::vector<Value>& items() const { return *items_; }
  const FieldVec& fields() const { return *fields_; }

  /// Field lookup by name; returns MISSING when absent (ADM semantics).
  const Value& GetField(const std::string& name) const;
  /// True if the object has the named field.
  bool HasField(const std::string& name) const;

  /// Minimal bounding rectangle of a point or rectangle value.
  Rectangle Mbr() const;

  // ---- algebra ------------------------------------------------------------
  /// Total-order comparison: negative/zero/positive. Numbers compare
  /// numerically across kInt64/kDouble; otherwise differing tags compare by
  /// tag. Collections compare lexicographically (multisets as sorted bags),
  /// objects by their sorted field vectors.
  int Compare(const Value& other) const;
  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Hash consistent with Compare (equal values hash equal).
  uint64_t Hash() const;

  /// Approximate in-memory footprint, used for operator memory budgeting.
  size_t ByteSize() const;

  /// Render in ADM text syntax (JSON extended with typed constructors,
  /// e.g. datetime("2017-01-01T00:00:00.000Z"), {{ ... }} for multisets).
  std::string ToString() const;

 private:
  static Value Scalar(TypeTag tag, int64_t v) {
    Value out;
    out.tag_ = tag;
    out.i64_ = v;
    return out;
  }

  TypeTag tag_;
  int64_t i64_ = 0;   // ints, booleans, temporals
  double dbl_ = 0;    // double payload; point.x; rect.lo.x
  double dbl2_ = 0;   // point.y; rect.lo.y
  double dbl3_ = 0;   // rect.hi.x
  double dbl4_ = 0;   // rect.hi.y
  std::shared_ptr<const std::string> str_;
  std::shared_ptr<const std::vector<Value>> items_;
  std::shared_ptr<const FieldVec> fields_;
};

/// Convenience helpers for building objects in C++ call sites.
class ObjectBuilder {
 public:
  ObjectBuilder& Add(std::string name, Value v) {
    fields_.emplace_back(std::move(name), std::move(v));
    return *this;
  }
  Value Build() { return Value::Object(std::move(fields_)); }

 private:
  FieldVec fields_;
};

}  // namespace asterix::adm
