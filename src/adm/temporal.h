// Temporal support for ADM: ISO-8601 parsing/formatting and the binning
// functions added for the multichannel temporal-study users (paper §V-D).
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace asterix::adm::temporal {

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
int64_t DaysFromCivil(int year, int month, int day);
/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Parse "YYYY-MM-DD" into days since epoch.
Result<int64_t> ParseDate(const std::string& s);
/// Parse "hh:mm:ss[.sss]" into ms since midnight.
Result<int64_t> ParseTime(const std::string& s);
/// Parse "YYYY-MM-DDThh:mm:ss[.sss][Z]" into ms since epoch (UTC).
Result<int64_t> ParseDatetime(const std::string& s);
/// Parse an ISO-8601 duration subset "PnDTnHnMnS" / "PTnH..." into ms.
/// (Year/month components are rejected: they have no fixed ms length.)
Result<int64_t> ParseDuration(const std::string& s);

std::string FormatDate(int64_t days);
std::string FormatTime(int64_t ms);
std::string FormatDatetime(int64_t ms);
std::string FormatDuration(int64_t ms);

/// interval_bin(ts, anchor, bin): start of the bin of width `bin_ms`
/// (anchored at `anchor_ms`) that contains `ts_ms`. This is the temporal
/// binning primitive the stress/multitasking study needed.
int64_t IntervalBinStart(int64_t ts_ms, int64_t anchor_ms, int64_t bin_ms);

/// Overlap in ms between [a_start,a_end) and [b_start,b_end); 0 if disjoint.
/// Used to allocate portions of an activity that spans bins to each bin.
int64_t OverlapMs(int64_t a_start, int64_t a_end, int64_t b_start,
                  int64_t b_end);

}  // namespace asterix::adm::temporal
