#include "adm/serde.h"

#include <cstring>

namespace asterix::adm {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint(const std::string& data, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t b = static_cast<uint8_t>(data[*pos]);
    (*pos)++;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

namespace {
void PutFixed64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

Result<uint64_t> GetFixed64(const std::string& data, size_t* pos) {
  if (*pos + 8 > data.size()) return Status::Corruption("truncated fixed64");
  uint64_t v;
  std::memcpy(&v, data.data() + *pos, 8);
  *pos += 8;
  return v;
}

void PutDouble(double d, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  PutFixed64(bits, out);
}

Result<double> GetDouble(const std::string& data, size_t* pos) {
  AX_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64(data, pos));
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

// Zig-zag so small negative ints stay short.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}
}  // namespace

void SerializeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.tag()));
  switch (v.tag()) {
    case TypeTag::kMissing:
    case TypeTag::kNull:
      return;
    case TypeTag::kBoolean:
      out->push_back(v.AsBool() ? 1 : 0);
      return;
    case TypeTag::kInt64:
      PutVarint(ZigZag(v.AsInt()), out);
      return;
    case TypeTag::kDate:
    case TypeTag::kTime:
    case TypeTag::kDatetime:
    case TypeTag::kDuration:
      PutVarint(ZigZag(v.TemporalValue()), out);
      return;
    case TypeTag::kDouble:
      PutDouble(v.AsDoubleExact(), out);
      return;
    case TypeTag::kString: {
      const std::string& s = v.AsString();
      PutVarint(s.size(), out);
      out->append(s);
      return;
    }
    case TypeTag::kPoint: {
      Point p = v.AsPoint();
      PutDouble(p.x, out);
      PutDouble(p.y, out);
      return;
    }
    case TypeTag::kRectangle: {
      Rectangle r = v.AsRectangle();
      PutDouble(r.lo.x, out);
      PutDouble(r.lo.y, out);
      PutDouble(r.hi.x, out);
      PutDouble(r.hi.y, out);
      return;
    }
    case TypeTag::kArray:
    case TypeTag::kMultiset: {
      PutVarint(v.items().size(), out);
      for (const auto& item : v.items()) SerializeValue(item, out);
      return;
    }
    case TypeTag::kObject: {
      PutVarint(v.fields().size(), out);
      for (const auto& [name, fv] : v.fields()) {
        PutVarint(name.size(), out);
        out->append(name);
        SerializeValue(fv, out);
      }
      return;
    }
  }
}

Result<Value> DeserializeValue(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) return Status::Corruption("truncated value tag");
  auto tag = static_cast<TypeTag>(data[*pos]);
  (*pos)++;
  switch (tag) {
    case TypeTag::kMissing: return Value::Missing();
    case TypeTag::kNull: return Value::Null();
    case TypeTag::kBoolean: {
      if (*pos >= data.size()) return Status::Corruption("truncated boolean");
      bool b = data[*pos] != 0;
      (*pos)++;
      return Value::Boolean(b);
    }
    case TypeTag::kInt64: {
      AX_ASSIGN_OR_RETURN(uint64_t z, GetVarint(data, pos));
      return Value::Int(UnZigZag(z));
    }
    case TypeTag::kDate:
    case TypeTag::kTime:
    case TypeTag::kDatetime:
    case TypeTag::kDuration: {
      AX_ASSIGN_OR_RETURN(uint64_t z, GetVarint(data, pos));
      int64_t raw = UnZigZag(z);
      switch (tag) {
        case TypeTag::kDate: return Value::Date(raw);
        case TypeTag::kTime: return Value::Time(raw);
        case TypeTag::kDatetime: return Value::Datetime(raw);
        default: return Value::Duration(raw);
      }
    }
    case TypeTag::kDouble: {
      AX_ASSIGN_OR_RETURN(double d, GetDouble(data, pos));
      return Value::Double(d);
    }
    case TypeTag::kString: {
      AX_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, pos));
      if (*pos + n > data.size()) return Status::Corruption("truncated string");
      Value v = Value::String(data.substr(*pos, n));
      *pos += n;
      return v;
    }
    case TypeTag::kPoint: {
      AX_ASSIGN_OR_RETURN(double x, GetDouble(data, pos));
      AX_ASSIGN_OR_RETURN(double y, GetDouble(data, pos));
      return Value::MakePoint(x, y);
    }
    case TypeTag::kRectangle: {
      AX_ASSIGN_OR_RETURN(double x1, GetDouble(data, pos));
      AX_ASSIGN_OR_RETURN(double y1, GetDouble(data, pos));
      AX_ASSIGN_OR_RETURN(double x2, GetDouble(data, pos));
      AX_ASSIGN_OR_RETURN(double y2, GetDouble(data, pos));
      return Value::MakeRectangle({x1, y1}, {x2, y2});
    }
    case TypeTag::kArray:
    case TypeTag::kMultiset: {
      AX_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, pos));
      std::vector<Value> items;
      items.reserve(n);
      for (uint64_t i = 0; i < n; i++) {
        AX_ASSIGN_OR_RETURN(Value item, DeserializeValue(data, pos));
        items.push_back(std::move(item));
      }
      return tag == TypeTag::kArray ? Value::Array(std::move(items))
                                    : Value::Multiset(std::move(items));
    }
    case TypeTag::kObject: {
      AX_ASSIGN_OR_RETURN(uint64_t n, GetVarint(data, pos));
      FieldVec fields;
      fields.reserve(n);
      for (uint64_t i = 0; i < n; i++) {
        AX_ASSIGN_OR_RETURN(uint64_t len, GetVarint(data, pos));
        if (*pos + len > data.size()) {
          return Status::Corruption("truncated field name");
        }
        std::string name = data.substr(*pos, len);
        *pos += len;
        AX_ASSIGN_OR_RETURN(Value fv, DeserializeValue(data, pos));
        fields.emplace_back(std::move(name), std::move(fv));
      }
      return Value::Object(std::move(fields));
    }
  }
  return Status::Corruption("bad type tag " + std::to_string(data[*pos - 1]));
}

Result<Value> Deserialize(const std::string& data) {
  size_t pos = 0;
  AX_ASSIGN_OR_RETURN(Value v, DeserializeValue(data, &pos));
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after serialized value");
  }
  return v;
}

}  // namespace asterix::adm
