#include "adm/json.h"

#include <cmath>
#include <cstdlib>

#include "adm/temporal.h"

namespace asterix::adm {

namespace {

class Parser {
 public:
  Parser(const std::string& text, size_t pos) : s_(text), pos_(pos) {}

  Result<Value> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{': return ParseObjectOrMultiset();
      case '[': return ParseArray();
      case '"': {
        AX_ASSIGN_OR_RETURN(std::string str, ParseStringLiteral());
        return Value::String(std::move(str));
      }
      case 't': case 'f': return ParseBool();
      case 'n': return ParseKeyword("null", Value::Null());
      case 'm': return ParseKeyword("missing", Value::Missing());
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        if (std::isalpha(c)) return ParseTypedConstructor();
        return Err(std::string("unexpected character '") + c + "'");
    }
  }

  size_t pos() const { return pos_; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      pos_++;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  Result<Value> ParseKeyword(const std::string& kw, Value v) {
    if (s_.compare(pos_, kw.size(), kw) == 0) {
      pos_ += kw.size();
      return v;
    }
    return Err("bad literal");
  }

  Result<Value> ParseBool() {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Value::Boolean(true);
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Value::Boolean(false);
    }
    return Err("bad boolean literal");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') pos_++;
    bool is_double = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        pos_++;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '-'/'+' only valid inside exponent; accept loosely, strtod checks.
        if (c == '-' || c == '+') {
          char prev = s_[pos_ - 1];
          if (prev != 'e' && prev != 'E') break;
        }
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        pos_++;
      } else {
        break;
      }
    }
    std::string num = s_.substr(start, pos_ - start);
    if (num.empty() || num == "-") return Err("bad number");
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(num.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') return Value::Int(v);
      // fall through to double on int64 overflow
    }
    return Value::Double(std::strtod(num.c_str(), nullptr));
  }

  Result<std::string> ParseStringLiteral() {
    if (s_[pos_] != '"') return Err("expected '\"'");
    pos_++;
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Err("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; i++) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Err("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return Err("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Value> ParseArray() {
    pos_++;  // '['
    std::vector<Value> items;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      pos_++;
      return Value::Array(std::move(items));
    }
    while (true) {
      AX_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Err("unterminated array");
      if (s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (s_[pos_] == ']') {
        pos_++;
        return Value::Array(std::move(items));
      }
      return Err("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObjectOrMultiset() {
    pos_++;  // '{'
    if (pos_ < s_.size() && s_[pos_] == '{') return ParseMultiset();
    FieldVec fields;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      pos_++;
      return Value::Object(std::move(fields));
    }
    while (true) {
      SkipWs();
      AX_ASSIGN_OR_RETURN(std::string name, ParseStringLiteral());
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return Err("expected ':'");
      pos_++;
      AX_ASSIGN_OR_RETURN(Value v, ParseValue());
      fields.emplace_back(std::move(name), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Err("unterminated object");
      if (s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (s_[pos_] == '}') {
        pos_++;
        return Value::Object(std::move(fields));
      }
      return Err("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseMultiset() {
    pos_++;  // second '{'
    std::vector<Value> items;
    SkipWs();
    if (s_.compare(pos_, 2, "}}") == 0) {
      pos_ += 2;
      return Value::Multiset(std::move(items));
    }
    while (true) {
      AX_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Err("unterminated multiset");
      if (s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (s_.compare(pos_, 2, "}}") == 0) {
        pos_ += 2;
        return Value::Multiset(std::move(items));
      }
      return Err("expected ',' or '}}' in multiset");
    }
  }

  Result<Value> ParseTypedConstructor() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_'))
      pos_++;
    std::string name = s_.substr(start, pos_ - start);
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '(') return Err("expected '('");
    pos_++;
    SkipWs();
    AX_ASSIGN_OR_RETURN(std::string arg, ParseStringLiteral());
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != ')') return Err("expected ')'");
    pos_++;
    if (name == "datetime") {
      AX_ASSIGN_OR_RETURN(int64_t ms, temporal::ParseDatetime(arg));
      return Value::Datetime(ms);
    }
    if (name == "date") {
      AX_ASSIGN_OR_RETURN(int64_t d, temporal::ParseDate(arg));
      return Value::Date(d);
    }
    if (name == "time") {
      AX_ASSIGN_OR_RETURN(int64_t ms, temporal::ParseTime(arg));
      return Value::Time(ms);
    }
    if (name == "duration") {
      AX_ASSIGN_OR_RETURN(int64_t ms, temporal::ParseDuration(arg));
      return Value::Duration(ms);
    }
    if (name == "point") {
      double x, y;
      if (std::sscanf(arg.c_str(), "%lf,%lf", &x, &y) != 2) {
        return Err("bad point literal '" + arg + "'");
      }
      return Value::MakePoint(x, y);
    }
    if (name == "rectangle") {
      double x1, y1, x2, y2;
      if (std::sscanf(arg.c_str(), "%lf,%lf %lf,%lf", &x1, &y1, &x2, &y2) != 4) {
        return Err("bad rectangle literal '" + arg + "'");
      }
      return Value::MakeRectangle({x1, y1}, {x2, y2});
    }
    return Err("unknown constructor '" + name + "'");
  }

  const std::string& s_;
  size_t pos_;
};

}  // namespace

Result<Value> ParseAdmPrefix(const std::string& text, size_t* pos) {
  Parser p(text, *pos);
  AX_ASSIGN_OR_RETURN(Value v, p.ParseValue());
  *pos = p.pos();
  return v;
}

Result<Value> ParseAdm(const std::string& text) {
  size_t pos = 0;
  Parser p(text, pos);
  AX_ASSIGN_OR_RETURN(Value v, p.ParseValue());
  p.SkipWs();
  if (p.pos() != text.size()) {
    return Status::ParseError("trailing content after value at offset " +
                              std::to_string(p.pos()));
  }
  return v;
}

}  // namespace asterix::adm
