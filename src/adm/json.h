// Parser for ADM text syntax: JSON extended with multiset constructors
// `{{ ... }}`, typed constructors (datetime("..."), date("..."), time("..."),
// duration("..."), point("x,y"), rectangle("x1,y1 x2,y2")), and the literals
// `missing`/`null`. Plain JSON is a subset and parses unchanged.
#pragma once

#include <string>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::adm {

/// Parse one ADM value from `text`. Trailing whitespace is permitted;
/// any other trailing content is an error.
Result<Value> ParseAdm(const std::string& text);

/// Parse one ADM value starting at `*pos`; on success `*pos` is advanced
/// past the value. Lets callers parse newline-delimited streams.
Result<Value> ParseAdmPrefix(const std::string& text, size_t* pos);

}  // namespace asterix::adm
