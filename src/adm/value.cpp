#include "adm/value.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "adm/temporal.h"

namespace asterix::adm {

const char* TypeTagName(TypeTag tag) {
  switch (tag) {
    case TypeTag::kMissing: return "missing";
    case TypeTag::kNull: return "null";
    case TypeTag::kBoolean: return "boolean";
    case TypeTag::kInt64: return "int64";
    case TypeTag::kDouble: return "double";
    case TypeTag::kString: return "string";
    case TypeTag::kDate: return "date";
    case TypeTag::kTime: return "time";
    case TypeTag::kDatetime: return "datetime";
    case TypeTag::kDuration: return "duration";
    case TypeTag::kPoint: return "point";
    case TypeTag::kRectangle: return "rectangle";
    case TypeTag::kArray: return "array";
    case TypeTag::kMultiset: return "multiset";
    case TypeTag::kObject: return "object";
  }
  return "unknown";
}

Value Value::Double(double v) {
  Value out;
  out.tag_ = TypeTag::kDouble;
  out.dbl_ = v;
  return out;
}

Value Value::String(std::string s) {
  Value out;
  out.tag_ = TypeTag::kString;
  out.str_ = std::make_shared<const std::string>(std::move(s));
  return out;
}

Value Value::MakePoint(double x, double y) {
  Value out;
  out.tag_ = TypeTag::kPoint;
  out.dbl_ = x;
  out.dbl2_ = y;
  return out;
}

Value Value::MakeRectangle(Point lo, Point hi) {
  Value out;
  out.tag_ = TypeTag::kRectangle;
  out.dbl_ = lo.x;
  out.dbl2_ = lo.y;
  out.dbl3_ = hi.x;
  out.dbl4_ = hi.y;
  return out;
}

Rectangle Value::AsRectangle() const {
  return Rectangle{{dbl_, dbl2_}, {dbl3_, dbl4_}};
}

Value Value::Array(std::vector<Value> items) {
  Value out;
  out.tag_ = TypeTag::kArray;
  out.items_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return out;
}

Value Value::Multiset(std::vector<Value> items) {
  Value out;
  out.tag_ = TypeTag::kMultiset;
  out.items_ = std::make_shared<const std::vector<Value>>(std::move(items));
  return out;
}

Value Value::Object(FieldVec fields) {
  // Stable sort + keep the last occurrence of each duplicate name.
  std::stable_sort(fields.begin(), fields.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  FieldVec dedup;
  dedup.reserve(fields.size());
  for (auto& f : fields) {
    if (!dedup.empty() && dedup.back().first == f.first) {
      dedup.back().second = std::move(f.second);
    } else {
      dedup.emplace_back(std::move(f));
    }
  }
  Value out;
  out.tag_ = TypeTag::kObject;
  out.fields_ = std::make_shared<const FieldVec>(std::move(dedup));
  return out;
}

namespace {
const Value kMissingValue;
}

const Value& Value::GetField(const std::string& name) const {
  if (tag_ != TypeTag::kObject) return kMissingValue;
  const FieldVec& fv = *fields_;
  auto it = std::lower_bound(
      fv.begin(), fv.end(), name,
      [](const auto& f, const std::string& n) { return f.first < n; });
  if (it != fv.end() && it->first == name) return it->second;
  return kMissingValue;
}

bool Value::HasField(const std::string& name) const {
  return !GetField(name).is_missing();
}

Rectangle Value::Mbr() const {
  if (tag_ == TypeTag::kPoint) {
    Point p = AsPoint();
    return Rectangle{p, p};
  }
  return AsRectangle();
}

namespace {
int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

int CompareNumeric(const Value& a, const Value& b) {
  if (a.tag() == TypeTag::kInt64 && b.tag() == TypeTag::kInt64) {
    int64_t x = a.AsInt(), y = b.AsInt();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return CompareDoubles(a.AsNumber(), b.AsNumber());
}
}  // namespace

int Value::Compare(const Value& other) const {
  bool num_a = is_numeric();
  bool num_b = other.is_numeric();
  if (num_a && num_b) return CompareNumeric(*this, other);
  if (tag_ != other.tag_) {
    return static_cast<int>(tag_) < static_cast<int>(other.tag_) ? -1 : 1;
  }
  switch (tag_) {
    case TypeTag::kMissing:
    case TypeTag::kNull:
      return 0;
    case TypeTag::kBoolean:
    case TypeTag::kInt64:
    case TypeTag::kDate:
    case TypeTag::kTime:
    case TypeTag::kDatetime:
    case TypeTag::kDuration:
      return i64_ < other.i64_ ? -1 : (i64_ > other.i64_ ? 1 : 0);
    case TypeTag::kDouble:
      return CompareDoubles(dbl_, other.dbl_);
    case TypeTag::kString:
      return str_->compare(*other.str_) < 0   ? -1
             : str_->compare(*other.str_) > 0 ? 1
                                              : 0;
    case TypeTag::kPoint: {
      int c = CompareDoubles(dbl_, other.dbl_);
      if (c != 0) return c;
      return CompareDoubles(dbl2_, other.dbl2_);
    }
    case TypeTag::kRectangle: {
      const double a[4] = {dbl_, dbl2_, dbl3_, dbl4_};
      const double b[4] = {other.dbl_, other.dbl2_, other.dbl3_, other.dbl4_};
      for (int i = 0; i < 4; i++) {
        int c = CompareDoubles(a[i], b[i]);
        if (c != 0) return c;
      }
      return 0;
    }
    case TypeTag::kArray: {
      const auto& a = *items_;
      const auto& b = *other.items_;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; i++) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    case TypeTag::kMultiset: {
      // Bags compare as sorted sequences (order-insensitive equality).
      std::vector<Value> a = *items_;
      std::vector<Value> b = *other.items_;
      auto lt = [](const Value& x, const Value& y) { return x.Compare(y) < 0; };
      std::sort(a.begin(), a.end(), lt);
      std::sort(b.begin(), b.end(), lt);
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; i++) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    case TypeTag::kObject: {
      const auto& a = *fields_;
      const auto& b = *other.fields_;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; i++) {
        int c = a[i].first.compare(b[i].first);
        if (c != 0) return c < 0 ? -1 : 1;
        c = a[i].second.Compare(b[i].second);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
  }
  return 0;
}

namespace {
constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t HashBytes(const void* data, size_t n, uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}
}  // namespace

uint64_t Value::Hash() const {
  switch (tag_) {
    case TypeTag::kMissing: return 0x6d697373;
    case TypeTag::kNull: return 0x6e756c6c;
    case TypeTag::kBoolean: return i64_ ? 0xb001 : 0xb000;
    case TypeTag::kInt64:
    case TypeTag::kDouble: {
      // Numbers equal across tags must hash equal: hash the double image
      // when the int is exactly representable, else hash the int bits.
      if (tag_ == TypeTag::kInt64) {
        double d = static_cast<double>(i64_);
        if (static_cast<int64_t>(d) == i64_ &&
            std::abs(i64_) < (int64_t{1} << 53)) {
          uint64_t bits;
          std::memcpy(&bits, &d, 8);
          return HashBytes(&bits, 8);
        }
        return HashBytes(&i64_, 8);
      }
      double d = dbl_ == 0.0 ? 0.0 : dbl_;  // normalize -0.0
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return HashBytes(&bits, 8);
    }
    case TypeTag::kDate:
    case TypeTag::kTime:
    case TypeTag::kDatetime:
    case TypeTag::kDuration: {
      uint64_t h = HashBytes(&i64_, 8);
      return HashCombine(h, static_cast<uint64_t>(tag_));
    }
    case TypeTag::kString:
      return HashBytes(str_->data(), str_->size());
    case TypeTag::kPoint: {
      double d[2] = {dbl_, dbl2_};
      return HashBytes(d, sizeof(d));
    }
    case TypeTag::kRectangle: {
      double d[4] = {dbl_, dbl2_, dbl3_, dbl4_};
      return HashBytes(d, sizeof(d));
    }
    case TypeTag::kArray: {
      uint64_t h = 0xa77a;
      for (const auto& v : *items_) h = HashCombine(h, v.Hash());
      return h;
    }
    case TypeTag::kMultiset: {
      // Order-insensitive: combine with addition.
      uint64_t h = 0xba6;
      for (const auto& v : *items_) h += v.Hash() * kFnvPrime;
      return h;
    }
    case TypeTag::kObject: {
      uint64_t h = 0x0b7ec7;
      for (const auto& [name, v] : *fields_) {
        h = HashCombine(h, HashBytes(name.data(), name.size()));
        h = HashCombine(h, v.Hash());
      }
      return h;
    }
  }
  return 0;
}

size_t Value::ByteSize() const {
  size_t base = sizeof(Value);
  switch (tag_) {
    case TypeTag::kString:
      return base + str_->size();
    case TypeTag::kArray:
    case TypeTag::kMultiset: {
      size_t s = base + sizeof(std::vector<Value>);
      for (const auto& v : *items_) s += v.ByteSize();
      return s;
    }
    case TypeTag::kObject: {
      size_t s = base + sizeof(FieldVec);
      for (const auto& [name, v] : *fields_) s += name.size() + v.ByteSize();
      return s;
    }
    default:
      return base;
  }
}

namespace {
void AppendEscapedJson(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double d, std::string* out) {
  if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
    *out += std::to_string(static_cast<int64_t>(d));
    *out += ".0";
    return;
  }
  std::ostringstream ss;
  ss.precision(17);
  ss << d;
  *out += ss.str();
}

void AppendValue(const Value& v, std::string* out) {
  switch (v.tag()) {
    case TypeTag::kMissing: *out += "missing"; return;
    case TypeTag::kNull: *out += "null"; return;
    case TypeTag::kBoolean: *out += v.AsBool() ? "true" : "false"; return;
    case TypeTag::kInt64: *out += std::to_string(v.AsInt()); return;
    case TypeTag::kDouble: AppendDouble(v.AsDoubleExact(), out); return;
    case TypeTag::kString: AppendEscapedJson(v.AsString(), out); return;
    case TypeTag::kDate:
      *out += "date(\"" + temporal::FormatDate(v.TemporalValue()) + "\")";
      return;
    case TypeTag::kTime:
      *out += "time(\"" + temporal::FormatTime(v.TemporalValue()) + "\")";
      return;
    case TypeTag::kDatetime:
      *out += "datetime(\"" + temporal::FormatDatetime(v.TemporalValue()) + "\")";
      return;
    case TypeTag::kDuration:
      *out += "duration(\"" + temporal::FormatDuration(v.TemporalValue()) + "\")";
      return;
    case TypeTag::kPoint: {
      Point p = v.AsPoint();
      *out += "point(\"";
      AppendDouble(p.x, out);
      *out += ",";
      AppendDouble(p.y, out);
      *out += "\")";
      return;
    }
    case TypeTag::kRectangle: {
      Rectangle r = v.AsRectangle();
      *out += "rectangle(\"";
      AppendDouble(r.lo.x, out);
      *out += ",";
      AppendDouble(r.lo.y, out);
      *out += " ";
      AppendDouble(r.hi.x, out);
      *out += ",";
      AppendDouble(r.hi.y, out);
      *out += "\")";
      return;
    }
    case TypeTag::kArray: {
      *out += "[";
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) *out += ",";
        first = false;
        AppendValue(item, out);
      }
      *out += "]";
      return;
    }
    case TypeTag::kMultiset: {
      *out += "{{";
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) *out += ",";
        first = false;
        AppendValue(item, out);
      }
      *out += "}}";
      return;
    }
    case TypeTag::kObject: {
      *out += "{";
      bool first = true;
      for (const auto& [name, fv] : v.fields()) {
        if (!first) *out += ",";
        first = false;
        AppendEscapedJson(name, out);
        *out += ":";
        AppendValue(fv, out);
      }
      *out += "}";
      return;
    }
  }
}
}  // namespace

std::string Value::ToString() const {
  std::string out;
  AppendValue(*this, &out);
  return out;
}

}  // namespace asterix::adm
