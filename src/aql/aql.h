// AQL front end (paper §IV-A): the project's original query language —
// "XQuery with the XML cruft thrown overboard" — kept here as the second
// language peer that demonstrates the Fig. 4/Fig. 5 layering claim: AQL
// and SQL++ compile through the *same* Algebricks algebra, optimizer rules
// and Hyracks runtime. (AsterixDB has since deprecated AQL in favor of
// SQL++; this front end covers the classic FLWOR core.)
//
// Supported grammar (FLWOR subset):
//   for $x in dataset DatasetName
//   [for $y in $x.field | for $y in dataset Other]...
//   [let $v := expr]...
//   [where expr]
//   [group by $k := expr [with $x]]      (group key + collected var)
//   [order by expr [asc|desc], ...]
//   [limit n [offset m]]
//   return expr
// Expressions reuse the SQL++ expression grammar with $-prefixed variables.
#pragma once

#include <string>

#include "algebricks/logical.h"
#include "algebricks/optimizer.h"
#include "common/result.h"

namespace asterix::aql {

/// Result of translating an AQL query: same contract as the SQL++
/// translator — plan root schema is [result_var].
struct TranslatedAql {
  algebricks::LogicalOpPtr plan;
  algebricks::VarId result_var = -1;
};

/// Parse and translate one AQL FLWOR query against `catalog`.
Result<TranslatedAql> TranslateAql(const std::string& query,
                                   const algebricks::Catalog& catalog);

}  // namespace asterix::aql
