#include "aql/aql.h"

#include <functional>
#include <map>

#include "sqlpp/parser.h"
#include "sqlpp/translator.h"

namespace asterix::aql {

using algebricks::Expr;
using algebricks::ExprPtr;
using algebricks::LogicalOp;
using algebricks::LogicalOpKind;
using algebricks::LogicalOpPtr;
using algebricks::VarId;
using sqlpp::ast::ExprNodeKind;
using sqlpp::ast::ExprNodePtr;

namespace {

// Rewrite AQL's scalar aggregate names over collections: after an AQL
// group-by, grouped variables ARE lists, so count($x) is list-count.
ExprNodePtr RewriteCollAggs(const ExprNodePtr& e) {
  if (!e) return e;
  auto copy = std::make_shared<sqlpp::ast::ExprNode>(*e);
  if (e->kind == ExprNodeKind::kCall) {
    if (e->fn == "count") copy->fn = "coll-count";
    if (e->fn == "sum") copy->fn = "coll-sum";
    if (e->fn == "avg") copy->fn = "coll-avg";
    if (e->fn == "min") copy->fn = "coll-min";
    if (e->fn == "max") copy->fn = "coll-max";
  }
  for (auto& a : copy->args) a = RewriteCollAggs(a);
  for (auto& i : copy->items) i = RewriteCollAggs(i);
  for (auto& [n, v] : copy->obj_fields) v = RewriteCollAggs(v);
  copy->base = RewriteCollAggs(e->base);
  copy->index = RewriteCollAggs(e->index);
  copy->collection = RewriteCollAggs(e->collection);
  copy->predicate = RewriteCollAggs(e->predicate);
  return copy;
}

struct ForClause {
  std::string var;           // "$x"
  std::string dataset;       // set when "in dataset Name"
  ExprNodePtr expr;          // set when "in <expr>"
};

struct LetClause {
  std::string var;
  ExprNodePtr expr;
};

struct GroupClause {
  std::string key_var;   // "$k"
  ExprNodePtr key_expr;
  std::vector<std::string> with_vars;  // collected variables
};

struct FlworQuery {
  std::vector<ForClause> fors;
  std::vector<LetClause> lets;       // pre-group lets
  ExprNodePtr where;
  bool has_group = false;
  GroupClause group;
  std::vector<LetClause> post_lets;  // lets after group by
  std::vector<std::pair<ExprNodePtr, bool>> order_by;
  int64_t limit = -1, offset = 0;
  ExprNodePtr ret;
};

Result<FlworQuery> ParseFlwor(const std::string& text) {
  sqlpp::SubParser p(text);
  FlworQuery q;
  if (!p.PeekKeyword("FOR")) return p.error("AQL query must start with 'for'");
  bool seen_group = false;
  while (true) {
    if (p.AcceptKeyword("FOR")) {
      ForClause fc;
      AX_ASSIGN_OR_RETURN(fc.var, p.ExpectIdentifier());
      if (!p.AcceptKeyword("IN")) return p.error("expected 'in'");
      if (p.AcceptKeyword("DATASET")) {
        AX_ASSIGN_OR_RETURN(fc.dataset, p.ExpectIdentifier());
      } else {
        AX_ASSIGN_OR_RETURN(fc.expr, p.ParseExpr());
      }
      q.fors.push_back(std::move(fc));
      continue;
    }
    if (p.AcceptKeyword("LET")) {
      LetClause lc;
      AX_ASSIGN_OR_RETURN(lc.var, p.ExpectIdentifier());
      if (!p.AcceptSymbol(":")) return p.error("expected ':=' after let var");
      if (!p.AcceptSymbol("=")) return p.error("expected ':=' after let var");
      AX_ASSIGN_OR_RETURN(lc.expr, p.ParseExpr());
      (seen_group ? q.post_lets : q.lets).push_back(std::move(lc));
      continue;
    }
    if (p.AcceptKeyword("WHERE")) {
      AX_ASSIGN_OR_RETURN(q.where, p.ParseExpr());
      continue;
    }
    if (p.AcceptKeyword("GROUP")) {
      if (!p.AcceptKeyword("BY")) return p.error("expected 'by' after group");
      q.has_group = true;
      seen_group = true;
      AX_ASSIGN_OR_RETURN(q.group.key_var, p.ExpectIdentifier());
      if (!p.AcceptSymbol(":")) return p.error("expected ':=' in group by");
      if (!p.AcceptSymbol("=")) return p.error("expected ':=' in group by");
      AX_ASSIGN_OR_RETURN(q.group.key_expr, p.ParseExpr());
      if (!p.AcceptKeyword("WITH")) return p.error("expected 'with'");
      while (true) {
        AX_ASSIGN_OR_RETURN(std::string v, p.ExpectIdentifier());
        q.group.with_vars.push_back(std::move(v));
        if (!p.AcceptSymbol(",")) break;
      }
      continue;
    }
    if (p.AcceptKeyword("ORDER")) {
      if (!p.AcceptKeyword("BY")) return p.error("expected 'by' after order");
      while (true) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr e, p.ParseExpr());
        bool asc = true;
        if (p.AcceptKeyword("DESC")) {
          asc = false;
        } else {
          (void)p.AcceptKeyword("ASC");
        }
        q.order_by.emplace_back(std::move(e), asc);
        if (!p.AcceptSymbol(",")) break;
      }
      continue;
    }
    if (p.AcceptKeyword("LIMIT")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr e, p.ParseExpr());
      if (e->kind != ExprNodeKind::kLiteral || !e->literal.is_int()) {
        return p.error("limit must be an integer literal");
      }
      q.limit = e->literal.AsInt();
      if (p.AcceptKeyword("OFFSET")) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr o, p.ParseExpr());
        if (o->kind != ExprNodeKind::kLiteral || !o->literal.is_int()) {
          return p.error("offset must be an integer literal");
        }
        q.offset = o->literal.AsInt();
      }
      continue;
    }
    if (p.AcceptKeyword("RETURN")) {
      AX_ASSIGN_OR_RETURN(q.ret, p.ParseExpr());
      break;
    }
    return p.error("expected for/let/where/group/order/limit/return");
  }
  if (!p.AtEnd()) return p.error("trailing tokens after return expression");
  return q;
}

}  // namespace

Result<TranslatedAql> TranslateAql(const std::string& query,
                                   const algebricks::Catalog& catalog) {
  AX_ASSIGN_OR_RETURN(FlworQuery q, ParseFlwor(query));
  sqlpp::Translator translator(&catalog);  // shared expression lowering

  std::vector<std::pair<std::string, VarId>> scope;
  auto bind = [&](const std::string& name, VarId v) {
    for (auto& [n, existing] : scope) {
      if (n == name) {
        existing = v;
        return;
      }
    }
    scope.emplace_back(name, v);
  };

  LogicalOpPtr plan = LogicalOp::Make(LogicalOpKind::kEmptySource);
  bool have_source = false;

  for (const auto& fc : q.fors) {
    VarId v = translator.AllocateVar();
    if (!fc.dataset.empty()) {
      if (!catalog.HasDataset(fc.dataset)) {
        return Status::NotFound("no dataset '" + fc.dataset + "'");
      }
      auto scan = LogicalOp::Make(LogicalOpKind::kDataScan);
      scan->dataset = fc.dataset;
      scan->scan_var = v;
      if (!have_source) {
        plan = scan;
      } else {
        auto join = LogicalOp::Make(LogicalOpKind::kJoin);
        join->join_kind = algebricks::JoinKind::kInner;
        join->condition = Expr::Constant(adm::Value::Boolean(true));
        join->children = {plan, scan};
        plan = join;
      }
    } else {
      AX_ASSIGN_OR_RETURN(ExprPtr coll,
                          translator.TranslateWithBindings(
                              RewriteCollAggs(fc.expr), scope));
      auto unnest = LogicalOp::Make(LogicalOpKind::kUnnest);
      unnest->unnest_var = v;
      unnest->unnest_expr = std::move(coll);
      unnest->children = {plan};
      plan = unnest;
    }
    bind(fc.var, v);
    have_source = true;
  }

  for (const auto& lc : q.lets) {
    AX_ASSIGN_OR_RETURN(
        ExprPtr e, translator.TranslateWithBindings(RewriteCollAggs(lc.expr),
                                                    scope));
    VarId v = translator.AllocateVar();
    auto a = LogicalOp::Make(LogicalOpKind::kAssign);
    a->assigns.emplace_back(v, std::move(e));
    a->children = {plan};
    plan = a;
    bind(lc.var, v);
  }

  if (q.where) {
    AX_ASSIGN_OR_RETURN(
        ExprPtr cond, translator.TranslateWithBindings(
                          RewriteCollAggs(q.where), scope));
    auto sel = LogicalOp::Make(LogicalOpKind::kSelect);
    sel->condition = std::move(cond);
    sel->children = {plan};
    plan = sel;
  }

  if (q.has_group) {
    auto group = LogicalOp::Make(LogicalOpKind::kGroupBy);
    group->children = {plan};
    AX_ASSIGN_OR_RETURN(
        ExprPtr key, translator.TranslateWithBindings(
                         RewriteCollAggs(q.group.key_expr), scope));
    VarId key_var = translator.AllocateVar();
    group->group_keys.emplace_back(key_var, std::move(key));
    std::vector<std::pair<std::string, VarId>> post_scope;
    post_scope.emplace_back(q.group.key_var, key_var);
    for (const auto& wv : q.group.with_vars) {
      // Collect the listed variable's values into an array per group.
      const VarId* src = nullptr;
      for (const auto& [n, v] : scope) {
        if (n == wv) src = &v;
      }
      if (src == nullptr) {
        return Status::InvalidArgument("group-by 'with' variable " + wv +
                                       " is not in scope");
      }
      LogicalOp::Agg agg;
      agg.var = translator.AllocateVar();
      agg.kind = hyracks::AggKind::kCollect;
      agg.arg = Expr::Variable(*src);
      group->aggs.push_back(agg);
      post_scope.emplace_back(wv, agg.var);
    }
    plan = group;
    scope = std::move(post_scope);
  }

  for (const auto& lc : q.post_lets) {
    AX_ASSIGN_OR_RETURN(
        ExprPtr e, translator.TranslateWithBindings(RewriteCollAggs(lc.expr),
                                                    scope));
    VarId v = translator.AllocateVar();
    auto a = LogicalOp::Make(LogicalOpKind::kAssign);
    a->assigns.emplace_back(v, std::move(e));
    a->children = {plan};
    plan = a;
    bind(lc.var, v);
  }

  // return expression -> result var.
  VarId result_var = translator.AllocateVar();
  {
    AX_ASSIGN_OR_RETURN(
        ExprPtr e,
        translator.TranslateWithBindings(RewriteCollAggs(q.ret), scope));
    auto a = LogicalOp::Make(LogicalOpKind::kAssign);
    a->assigns.emplace_back(result_var, std::move(e));
    a->children = {plan};
    plan = a;
  }

  if (!q.order_by.empty()) {
    auto order = LogicalOp::Make(LogicalOpKind::kOrder);
    // Order keys may reference scope vars or the return value; translate
    // in the current scope.
    for (const auto& [e, asc] : q.order_by) {
      AX_ASSIGN_OR_RETURN(
          ExprPtr key,
          translator.TranslateWithBindings(RewriteCollAggs(e), scope));
      order->order_keys.push_back({std::move(key), asc});
    }
    order->children = {plan};
    plan = order;
  }
  if (q.limit >= 0) {
    auto lim = LogicalOp::Make(LogicalOpKind::kLimit);
    lim->limit = q.limit;
    lim->offset = q.offset;
    lim->children = {plan};
    plan = lim;
  }

  auto proj = LogicalOp::Make(LogicalOpKind::kProject);
  proj->project_vars = {result_var};
  proj->children = {plan};

  TranslatedAql out;
  out.plan = proj;
  out.result_var = result_var;
  return out;
}

}  // namespace asterix::aql
