// SQL++ recursive-descent parser (paper §III item 2, §IV-A). Covers the
// dialect subset exercised by the paper's Fig. 3 plus the usual
// SELECT-FROM-WHERE-GROUP BY-HAVING-ORDER BY-LIMIT pipeline, joins,
// quantified predicates, DDL and DML.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sqlpp/ast.h"

namespace asterix::sqlpp {

/// Parse one statement (optionally ';'-terminated).
Result<ast::Statement> ParseStatement(const std::string& input);

/// Split a script on top-level ';' and parse each statement.
Result<std::vector<ast::Statement>> ParseScript(const std::string& input);

/// Parse a standalone expression (the whole input must be one expression).
Result<ast::ExprNodePtr> ParseExpression(const std::string& input);

/// Incremental expression/token access for other language front ends
/// (the AQL parser drives its FLWOR grammar and borrows SQL++'s
/// expression grammar through this — the Fig. 4 reuse in practice).
class SubParser {
 public:
  explicit SubParser(const std::string& input);
  ~SubParser();
  /// Parse one expression at the current position.
  Result<ast::ExprNodePtr> ParseExpr();
  bool AcceptSymbol(const std::string& symbol);
  bool AcceptKeyword(const std::string& keyword);
  /// Peek whether the current token is the given keyword.
  bool PeekKeyword(const std::string& keyword) const;
  Result<std::string> ExpectIdentifier();
  bool AtEnd() const;
  Status error(const std::string& msg) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Status init_error_;
};

}  // namespace asterix::sqlpp
