// SQL++ abstract syntax. The parser (parser.h) produces these; the
// translator (translator.h) lowers them onto the Algebricks algebra that
// AQL shares (paper Fig. 4/Fig. 5 and §IV-A's "SQL++ as a peer of AQL").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"

namespace asterix::sqlpp::ast {

struct ExprNode;
using ExprNodePtr = std::shared_ptr<ExprNode>;
struct SelectQuery;
using SelectQueryPtr = std::shared_ptr<SelectQuery>;

enum class ExprNodeKind : uint8_t {
  kLiteral,
  kIdent,        // variable or dataset reference, resolved by the translator
  kFieldAccess,  // base.field
  kIndexAccess,  // base[expr]
  kCall,         // fn(args...)
  kObject,       // { "a": e, ... }
  kArray,        // [ e, ... ]
  kMultiset,     // {{ e, ... }}
  kCase,         // CASE WHEN c THEN v ... [ELSE d] END
  kQuantified,   // SOME/EVERY x IN coll SATISFIES pred
  kExists,       // EXISTS coll-expr
  kSubquery,     // ( SELECT ... )
};

struct ExprNode {
  ExprNodeKind kind;
  adm::Value literal;                                  // kLiteral
  std::string ident;                                   // kIdent
  ExprNodePtr base;                                    // field/index access
  std::string field;
  ExprNodePtr index;
  std::string fn;                                      // kCall (normalized)
  std::vector<ExprNodePtr> args;                       // kCall / kCase pairs
  std::vector<std::pair<std::string, ExprNodePtr>> obj_fields;  // kObject
  std::vector<ExprNodePtr> items;                      // kArray / kMultiset
  bool some = true;                                    // kQuantified
  std::string bound_name;
  ExprNodePtr collection;
  ExprNodePtr predicate;
  SelectQueryPtr subquery;                             // kSubquery

  static ExprNodePtr Literal(adm::Value v) {
    auto e = std::make_shared<ExprNode>();
    e->kind = ExprNodeKind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static ExprNodePtr Ident(std::string name) {
    auto e = std::make_shared<ExprNode>();
    e->kind = ExprNodeKind::kIdent;
    e->ident = std::move(name);
    return e;
  }
  static ExprNodePtr Call(std::string fn, std::vector<ExprNodePtr> args) {
    auto e = std::make_shared<ExprNode>();
    e->kind = ExprNodeKind::kCall;
    e->fn = std::move(fn);
    e->args = std::move(args);
    return e;
  }
};

enum class JoinStyle : uint8_t { kFirst, kComma, kInner, kLeftOuter };

struct FromClause {
  ExprNodePtr expr;
  std::string alias;
  JoinStyle style = JoinStyle::kFirst;
  ExprNodePtr on;  // JOIN ... ON condition
};

struct Projection {
  ExprNodePtr expr;
  std::string alias;
  bool star = false;  // SELECT *
};

struct SelectQuery {
  std::vector<std::pair<std::string, ExprNodePtr>> with;
  bool distinct = false;
  bool select_value = false;
  ExprNodePtr value_expr;              // SELECT VALUE expr
  std::vector<Projection> projections;  // SELECT a AS x, ...
  std::vector<FromClause> froms;
  std::vector<std::pair<std::string, ExprNodePtr>> lets;
  ExprNodePtr where;
  std::vector<std::pair<std::string, ExprNodePtr>> group_by;  // alias, expr
  std::string group_as;                // GROUP AS g
  ExprNodePtr having;
  std::vector<std::pair<ExprNodePtr, bool>> order_by;  // expr, ascending
  int64_t limit = -1;
  int64_t offset = 0;
};

/// Type specification in CREATE TYPE.
struct TypeSpec {
  enum Kind : uint8_t { kNamed, kArray, kMultiset } kind = kNamed;
  std::string name;                 // kNamed: primitive or declared type
  std::shared_ptr<TypeSpec> item;   // kArray/kMultiset
};

struct TypeField {
  std::string name;
  TypeSpec type;
  bool optional = false;
};

/// One parsed statement.
struct Statement {
  enum Kind : uint8_t {
    kQuery,
    kCreateType,
    kCreateDataset,
    kCreateExternalDataset,
    kCreateIndex,
    kDropDataset,
    kDropIndex,
    kDropType,
    kInsert,
    kUpsert,
    kDelete,
    kCreateFeed,      // CREATE FEED f USING adapter (("k"="v"),...)
    kDropFeed,        // DROP FEED f
    kConnectFeed,     // CONNECT FEED f TO DATASET ds [USING POLICY p]
    kDisconnectFeed,  // DISCONNECT FEED f
  } kind = kQuery;

  SelectQueryPtr query;  // kQuery

  // CREATE TYPE
  std::string type_name;
  bool closed = false;
  std::vector<TypeField> type_fields;

  // CREATE [EXTERNAL] DATASET
  std::string dataset_name;
  std::string dataset_type;
  std::string primary_key;
  std::map<std::string, std::string> external_props;  // path/format/delimiter
  /// Internal-dataset WITH record, e.g. {"storage-format": "columnar"}.
  std::map<std::string, std::string> with_props;

  // CREATE INDEX / DROP INDEX
  std::string index_name;
  std::string on_dataset;
  std::string on_field;
  std::string index_type;  // "BTREE" | "RTREE" | "KEYWORD"

  // CREATE FEED / CONNECT FEED (props reuse external_props; the CONNECT
  // target dataset reuses dataset_name)
  std::string feed_name;
  std::string feed_adapter;
  std::string feed_policy;  // empty = BASIC

  // INSERT / UPSERT / DELETE
  std::string target;
  ExprNodePtr payload;      // record (or array of records) to insert
  std::string delete_alias;
  ExprNodePtr where;        // DELETE ... WHERE
};

}  // namespace asterix::sqlpp::ast
