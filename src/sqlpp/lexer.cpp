#include "sqlpp/lexer.h"

#include <cctype>
#include <cstdlib>

namespace asterix::sqlpp {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t pos = 0;
  auto err = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos));
  };
  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pos++;
      continue;
    }
    // Comments: -- to end of line, /* ... */
    if (c == '-' && pos + 1 < input.size() && input[pos + 1] == '-') {
      while (pos < input.size() && input[pos] != '\n') pos++;
      continue;
    }
    if (c == '/' && pos + 1 < input.size() && input[pos + 1] == '*') {
      size_t end = input.find("*/", pos + 2);
      if (end == std::string::npos) return err("unterminated comment");
      pos = end + 2;
      continue;
    }
    Token tok;
    tok.offset = pos;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      size_t start = pos;
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '_' || input[pos] == '$')) {
        pos++;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = input.substr(start, pos - start);
      tok.upper = tok.text;
      for (auto& ch : tok.upper) ch = static_cast<char>(std::toupper(ch));
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '`') {
      pos++;
      size_t start = pos;
      while (pos < input.size() && input[pos] != '`') pos++;
      if (pos >= input.size()) return err("unterminated quoted identifier");
      tok.kind = TokenKind::kQuotedIdent;
      tok.text = input.substr(start, pos - start);
      tok.upper = tok.text;
      pos++;
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[pos + 1])))) {
      size_t start = pos;
      bool is_double = false;
      while (pos < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '.' || input[pos] == 'e' || input[pos] == 'E' ||
              ((input[pos] == '+' || input[pos] == '-') && pos > start &&
               (input[pos - 1] == 'e' || input[pos - 1] == 'E')))) {
        if (input[pos] == '.' || input[pos] == 'e' || input[pos] == 'E') {
          is_double = true;
        }
        pos++;
      }
      std::string num = input.substr(start, pos - start);
      if (is_double) {
        tok.kind = TokenKind::kDouble;
        tok.double_value = std::atof(num.c_str());
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::atoll(num.c_str());
      }
      tok.text = std::move(num);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      pos++;
      std::string s;
      while (pos < input.size() && input[pos] != quote) {
        if (input[pos] == '\\' && pos + 1 < input.size()) {
          pos++;
          char e = input[pos];
          switch (e) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case 'r': s += '\r'; break;
            default: s += e;
          }
        } else {
          s += input[pos];
        }
        pos++;
      }
      if (pos >= input.size()) return err("unterminated string literal");
      pos++;
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    static const char* kTwoChar[] = {"<=", ">=", "!=", "<>", "||", "::",
                                     "{{", "}}"};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (input.compare(pos, 2, sym) == 0) {
        tok.kind = TokenKind::kSymbol;
        tok.text = sym;
        pos += 2;
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOneChar = "()[]{},.;:*/%+-<>=?@";
    if (kOneChar.find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      pos++;
      out.push_back(std::move(tok));
      continue;
    }
    return err(std::string("unexpected character '") + c + "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  out.push_back(end);
  return out;
}

}  // namespace asterix::sqlpp
