#include "sqlpp/parser.h"

#include <algorithm>

#include "adm/temporal.h"
#include "sqlpp/lexer.h"

namespace asterix::sqlpp {

namespace {

using namespace ast;

// Normalize a function identifier to registry form: lowercase, '_' -> '-'.
std::string NormalizeFn(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(c == '_' ? '-' : static_cast<char>(std::tolower(c)));
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseOneStatement() {
    AX_ASSIGN_OR_RETURN(Statement st, ParseStatementInner());
    (void)Accept(";");
    if (!Cur().Is("") && Cur().kind != TokenKind::kEnd) {
      return Err("trailing tokens after statement");
    }
    return st;
  }

  // Accessors for SubParser (other language front ends).
  Result<ExprNodePtr> ParseExprPublic() { return ParseExpr(); }
  bool AcceptPublic(const std::string& s) { return Accept(s); }
  bool AcceptKwPublic(const std::string& k) { return AcceptKw(k); }
  const Token& CurPublic() const { return Cur(); }
  Result<std::string> ExpectIdentPublic() { return ExpectIdent(); }
  Status ErrPublic(const std::string& m) const { return Err(m); }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (Cur().kind != TokenKind::kEnd) {
      AX_ASSIGN_OR_RETURN(Statement st, ParseStatementInner());
      out.push_back(std::move(st));
      if (!Accept(";")) break;
    }
    if (Cur().kind != TokenKind::kEnd) return Err("trailing tokens");
    return out;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) pos_++;
  }
  bool Accept(const std::string& symbol) {
    if (Cur().Is(symbol)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKw(const std::string& kw) {
    if (Cur().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const std::string& symbol) {
    if (!Accept(symbol)) return Err("expected '" + symbol + "'");
    return Status::OK();
  }
  Status ExpectKw(const std::string& kw) {
    if (!AcceptKw(kw)) return Err("expected " + kw);
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Cur().offset) + " (token '" +
                              Cur().text + "')");
  }
  Result<std::string> ExpectIdent() {
    if (Cur().kind != TokenKind::kIdent &&
        Cur().kind != TokenKind::kQuotedIdent) {
      return Err("expected identifier");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // ---- statements ----------------------------------------------------------

  Result<Statement> ParseStatementInner() {
    if (Cur().IsKeyword("CREATE")) return ParseCreate();
    if (Cur().IsKeyword("DROP")) return ParseDrop();
    if (Cur().IsKeyword("INSERT") || Cur().IsKeyword("UPSERT")) {
      return ParseInsertUpsert();
    }
    if (Cur().IsKeyword("DELETE")) return ParseDelete();
    if (Cur().IsKeyword("CONNECT")) return ParseConnectFeed();
    if (Cur().IsKeyword("DISCONNECT")) return ParseDisconnectFeed();
    if (Cur().IsKeyword("SELECT") || Cur().IsKeyword("WITH")) {
      Statement st;
      st.kind = Statement::kQuery;
      AX_ASSIGN_OR_RETURN(st.query, ParseSelectQuery());
      return st;
    }
    return Err("expected a statement");
  }

  Result<Statement> ParseCreate() {
    AX_RETURN_NOT_OK(ExpectKw("CREATE"));
    if (AcceptKw("TYPE")) return ParseCreateType();
    if (AcceptKw("DATASET")) return ParseCreateDataset(/*external=*/false);
    if (AcceptKw("EXTERNAL")) {
      AX_RETURN_NOT_OK(ExpectKw("DATASET"));
      return ParseCreateDataset(/*external=*/true);
    }
    if (AcceptKw("INDEX")) return ParseCreateIndex();
    if (AcceptKw("FEED")) return ParseCreateFeed();
    return Err("expected TYPE, DATASET, EXTERNAL DATASET, INDEX or FEED");
  }

  /// AsterixDB-style property list: (("key"="value"), ...).
  Status ParsePropList(std::map<std::string, std::string>* out) {
    AX_RETURN_NOT_OK(Expect("("));
    while (true) {
      AX_RETURN_NOT_OK(Expect("("));
      if (Cur().kind != TokenKind::kString) return Err("expected property name");
      std::string key = Cur().text;
      Advance();
      AX_RETURN_NOT_OK(Expect("="));
      if (Cur().kind != TokenKind::kString) {
        return Err("expected property value");
      }
      (*out)[key] = Cur().text;
      Advance();
      AX_RETURN_NOT_OK(Expect(")"));
      if (Accept(",")) continue;
      AX_RETURN_NOT_OK(Expect(")"));
      break;
    }
    return Status::OK();
  }

  Result<TypeSpec> ParseTypeSpec() {
    TypeSpec spec;
    if (Accept("[")) {
      spec.kind = TypeSpec::kArray;
      AX_ASSIGN_OR_RETURN(TypeSpec item, ParseTypeSpec());
      spec.item = std::make_shared<TypeSpec>(std::move(item));
      AX_RETURN_NOT_OK(Expect("]"));
      return spec;
    }
    if (Accept("{{")) {
      spec.kind = TypeSpec::kMultiset;
      AX_ASSIGN_OR_RETURN(TypeSpec item, ParseTypeSpec());
      spec.item = std::make_shared<TypeSpec>(std::move(item));
      AX_RETURN_NOT_OK(Expect("}}"));
      return spec;
    }
    AX_ASSIGN_OR_RETURN(spec.name, ExpectIdent());
    return spec;
  }

  Result<Statement> ParseCreateType() {
    Statement st;
    st.kind = Statement::kCreateType;
    AX_ASSIGN_OR_RETURN(st.type_name, ExpectIdent());
    AX_RETURN_NOT_OK(ExpectKw("AS"));
    st.closed = AcceptKw("CLOSED");
    (void)AcceptKw("OPEN");
    AX_RETURN_NOT_OK(Expect("{"));
    if (!Accept("}")) {
      while (true) {
        TypeField f;
        AX_ASSIGN_OR_RETURN(f.name, ExpectIdent());
        AX_RETURN_NOT_OK(Expect(":"));
        AX_ASSIGN_OR_RETURN(f.type, ParseTypeSpec());
        f.optional = Accept("?");
        st.type_fields.push_back(std::move(f));
        if (Accept(",")) continue;
        AX_RETURN_NOT_OK(Expect("}"));
        break;
      }
    }
    return st;
  }

  Result<Statement> ParseCreateDataset(bool external) {
    Statement st;
    st.kind = external ? Statement::kCreateExternalDataset
                       : Statement::kCreateDataset;
    AX_ASSIGN_OR_RETURN(st.dataset_name, ExpectIdent());
    AX_RETURN_NOT_OK(Expect("("));
    AX_ASSIGN_OR_RETURN(st.dataset_type, ExpectIdent());
    AX_RETURN_NOT_OK(Expect(")"));
    if (external) {
      AX_RETURN_NOT_OK(ExpectKw("USING"));
      AX_ASSIGN_OR_RETURN(std::string adapter, ExpectIdent());
      if (NormalizeFn(adapter) != "localfs") {
        return Err("unsupported external adapter '" + adapter + "'");
      }
      AX_RETURN_NOT_OK(ParsePropList(&st.external_props));
      return st;
    }
    AX_RETURN_NOT_OK(ExpectKw("PRIMARY"));
    AX_RETURN_NOT_OK(ExpectKw("KEY"));
    AX_ASSIGN_OR_RETURN(st.primary_key, ExpectIdent());
    // Optional AsterixDB-style WITH record of string properties, e.g.
    //   WITH { "storage-format" : "columnar" }
    if (AcceptKw("WITH")) {
      AX_RETURN_NOT_OK(Expect("{"));
      if (!Accept("}")) {
        while (true) {
          if (Cur().kind != TokenKind::kString) {
            return Err("expected string property name in WITH record");
          }
          std::string key = Cur().text;
          Advance();
          AX_RETURN_NOT_OK(Expect(":"));
          if (Cur().kind != TokenKind::kString) {
            return Err("expected string property value in WITH record");
          }
          st.with_props[key] = Cur().text;
          Advance();
          if (Accept(",")) continue;
          AX_RETURN_NOT_OK(Expect("}"));
          break;
        }
      }
    }
    return st;
  }

  Result<Statement> ParseCreateIndex() {
    Statement st;
    st.kind = Statement::kCreateIndex;
    AX_ASSIGN_OR_RETURN(st.index_name, ExpectIdent());
    AX_RETURN_NOT_OK(ExpectKw("ON"));
    AX_ASSIGN_OR_RETURN(st.on_dataset, ExpectIdent());
    AX_RETURN_NOT_OK(Expect("("));
    AX_ASSIGN_OR_RETURN(st.on_field, ExpectIdent());
    AX_RETURN_NOT_OK(Expect(")"));
    st.index_type = "BTREE";
    if (AcceptKw("TYPE")) {
      AX_ASSIGN_OR_RETURN(std::string t, ExpectIdent());
      std::transform(t.begin(), t.end(), t.begin(), ::toupper);
      if (t != "BTREE" && t != "RTREE" && t != "KEYWORD") {
        return Err("unknown index type '" + t + "'");
      }
      st.index_type = t;
    }
    return st;
  }

  Result<Statement> ParseDrop() {
    AX_RETURN_NOT_OK(ExpectKw("DROP"));
    Statement st;
    if (AcceptKw("DATASET")) {
      st.kind = Statement::kDropDataset;
      AX_ASSIGN_OR_RETURN(st.dataset_name, ExpectIdent());
      (void)AcceptKw("IF");  // tolerate IF EXISTS
      (void)AcceptKw("EXISTS");
      return st;
    }
    if (AcceptKw("TYPE")) {
      st.kind = Statement::kDropType;
      AX_ASSIGN_OR_RETURN(st.type_name, ExpectIdent());
      return st;
    }
    if (AcceptKw("INDEX")) {
      st.kind = Statement::kDropIndex;
      AX_ASSIGN_OR_RETURN(st.on_dataset, ExpectIdent());
      AX_RETURN_NOT_OK(Expect("."));
      AX_ASSIGN_OR_RETURN(st.index_name, ExpectIdent());
      return st;
    }
    if (AcceptKw("FEED")) {
      st.kind = Statement::kDropFeed;
      AX_ASSIGN_OR_RETURN(st.feed_name, ExpectIdent());
      return st;
    }
    return Err("expected DATASET, TYPE, INDEX or FEED after DROP");
  }

  /// CREATE FEED f USING adapter [(("k"="v"), ...)]
  Result<Statement> ParseCreateFeed() {
    Statement st;
    st.kind = Statement::kCreateFeed;
    AX_ASSIGN_OR_RETURN(st.feed_name, ExpectIdent());
    AX_RETURN_NOT_OK(ExpectKw("USING"));
    AX_ASSIGN_OR_RETURN(std::string adapter, ExpectIdent());
    st.feed_adapter = NormalizeFn(adapter);
    if (Cur().Is("(")) {
      AX_RETURN_NOT_OK(ParsePropList(&st.external_props));
    }
    return st;
  }

  /// CONNECT FEED f TO DATASET ds [USING POLICY p]
  Result<Statement> ParseConnectFeed() {
    AX_RETURN_NOT_OK(ExpectKw("CONNECT"));
    AX_RETURN_NOT_OK(ExpectKw("FEED"));
    Statement st;
    st.kind = Statement::kConnectFeed;
    AX_ASSIGN_OR_RETURN(st.feed_name, ExpectIdent());
    AX_RETURN_NOT_OK(ExpectKw("TO"));
    AX_RETURN_NOT_OK(ExpectKw("DATASET"));
    AX_ASSIGN_OR_RETURN(st.dataset_name, ExpectIdent());
    if (AcceptKw("USING")) {
      AX_RETURN_NOT_OK(ExpectKw("POLICY"));
      AX_ASSIGN_OR_RETURN(st.feed_policy, ExpectIdent());
    }
    return st;
  }

  /// DISCONNECT FEED f
  Result<Statement> ParseDisconnectFeed() {
    AX_RETURN_NOT_OK(ExpectKw("DISCONNECT"));
    AX_RETURN_NOT_OK(ExpectKw("FEED"));
    Statement st;
    st.kind = Statement::kDisconnectFeed;
    AX_ASSIGN_OR_RETURN(st.feed_name, ExpectIdent());
    return st;
  }

  Result<Statement> ParseInsertUpsert() {
    Statement st;
    st.kind = Cur().IsKeyword("UPSERT") ? Statement::kUpsert : Statement::kInsert;
    Advance();
    AX_RETURN_NOT_OK(ExpectKw("INTO"));
    AX_ASSIGN_OR_RETURN(st.target, ExpectIdent());
    // Payload: parenthesized expression, or a bare constructor.
    bool parens = Accept("(");
    AX_ASSIGN_OR_RETURN(st.payload, ParseExpr());
    if (parens) AX_RETURN_NOT_OK(Expect(")"));
    return st;
  }

  Result<Statement> ParseDelete() {
    AX_RETURN_NOT_OK(ExpectKw("DELETE"));
    AX_RETURN_NOT_OK(ExpectKw("FROM"));
    Statement st;
    st.kind = Statement::kDelete;
    AX_ASSIGN_OR_RETURN(st.target, ExpectIdent());
    if (Cur().kind == TokenKind::kIdent && !Cur().IsKeyword("WHERE")) {
      (void)AcceptKw("AS");
      if (Cur().kind == TokenKind::kIdent && !Cur().IsKeyword("WHERE")) {
        AX_ASSIGN_OR_RETURN(st.delete_alias, ExpectIdent());
      }
    }
    if (AcceptKw("WHERE")) {
      AX_ASSIGN_OR_RETURN(st.where, ParseExpr());
    }
    return st;
  }

  // ---- query ----------------------------------------------------------------

  Result<SelectQueryPtr> ParseSelectQuery() {
    auto q = std::make_shared<SelectQuery>();
    if (AcceptKw("WITH")) {
      while (true) {
        AX_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        AX_RETURN_NOT_OK(ExpectKw("AS"));
        AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
        q->with.emplace_back(std::move(name), std::move(e));
        if (!Accept(",")) break;
      }
    }
    AX_RETURN_NOT_OK(ExpectKw("SELECT"));
    q->distinct = AcceptKw("DISTINCT");
    (void)AcceptKw("ALL");
    if (AcceptKw("VALUE") || AcceptKw("ELEMENT")) {
      q->select_value = true;
      AX_ASSIGN_OR_RETURN(q->value_expr, ParseExpr());
    } else {
      while (true) {
        Projection p;
        if (Accept("*")) {
          p.star = true;
        } else {
          AX_ASSIGN_OR_RETURN(p.expr, ParseExpr());
          if (AcceptKw("AS")) {
            AX_ASSIGN_OR_RETURN(p.alias, ExpectIdent());
          } else if (Cur().kind == TokenKind::kIdent && !IsClauseKeyword(Cur())) {
            AX_ASSIGN_OR_RETURN(p.alias, ExpectIdent());
          } else {
            // Implicit alias: last field name or the identifier itself.
            p.alias = ImplicitAlias(p.expr);
          }
        }
        q->projections.push_back(std::move(p));
        if (!Accept(",")) break;
      }
    }
    if (AcceptKw("FROM")) {
      FromClause first_fc;
      first_fc.style = JoinStyle::kFirst;
      AX_RETURN_NOT_OK(ParseFromSource(&first_fc));
      q->froms.push_back(std::move(first_fc));
      while (true) {
        if (Accept(",")) {
          FromClause fc;
          fc.style = JoinStyle::kComma;
          AX_RETURN_NOT_OK(ParseFromSource(&fc));
          q->froms.push_back(std::move(fc));
          continue;
        }
        if (Cur().IsKeyword("JOIN") || Cur().IsKeyword("INNER") ||
            Cur().IsKeyword("LEFT")) {
          FromClause jc;
          if (AcceptKw("LEFT")) {
            (void)AcceptKw("OUTER");
            jc.style = JoinStyle::kLeftOuter;
          } else {
            (void)AcceptKw("INNER");
            jc.style = JoinStyle::kInner;
          }
          AX_RETURN_NOT_OK(ExpectKw("JOIN"));
          AX_RETURN_NOT_OK(ParseFromSource(&jc));
          AX_RETURN_NOT_OK(ExpectKw("ON"));
          AX_ASSIGN_OR_RETURN(jc.on, ParseExpr());
          q->froms.push_back(std::move(jc));
          continue;
        }
        break;
      }
    }
    while (AcceptKw("LET") || AcceptKw("LETTING")) {
      while (true) {
        AX_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        AX_RETURN_NOT_OK(Expect("="));
        AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
        q->lets.emplace_back(std::move(name), std::move(e));
        if (!Accept(",")) break;
      }
    }
    if (AcceptKw("WHERE")) {
      AX_ASSIGN_OR_RETURN(q->where, ParseExpr());
    }
    if (AcceptKw("GROUP")) {
      AX_RETURN_NOT_OK(ExpectKw("BY"));
      while (true) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
        std::string alias;
        if (AcceptKw("AS")) {
          AX_ASSIGN_OR_RETURN(alias, ExpectIdent());
        } else if (e->kind == ExprNodeKind::kIdent) {
          alias = e->ident;
        }
        q->group_by.emplace_back(std::move(alias), std::move(e));
        if (!Accept(",")) break;
      }
      if (AcceptKw("GROUP")) {
        AX_RETURN_NOT_OK(ExpectKw("AS"));
        AX_ASSIGN_OR_RETURN(q->group_as, ExpectIdent());
      }
    }
    if (AcceptKw("HAVING")) {
      AX_ASSIGN_OR_RETURN(q->having, ParseExpr());
    }
    if (AcceptKw("ORDER")) {
      AX_RETURN_NOT_OK(ExpectKw("BY"));
      while (true) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
        bool asc = true;
        if (AcceptKw("DESC")) {
          asc = false;
        } else {
          (void)AcceptKw("ASC");
        }
        q->order_by.emplace_back(std::move(e), asc);
        if (!Accept(",")) break;
      }
    }
    if (AcceptKw("LIMIT")) {
      if (Cur().kind != TokenKind::kInt) return Err("expected LIMIT count");
      q->limit = Cur().int_value;
      Advance();
      if (AcceptKw("OFFSET")) {
        if (Cur().kind != TokenKind::kInt) return Err("expected OFFSET count");
        q->offset = Cur().int_value;
        Advance();
      }
    }
    return q;
  }

  static bool IsClauseKeyword(const Token& t) {
    static const char* kws[] = {"FROM", "WHERE",  "GROUP", "HAVING", "ORDER",
                                "LIMIT", "OFFSET", "LET",   "AS",     "JOIN",
                                "ON",    "LEFT",   "INNER", "SELECT", "VALUE",
                                "UNION", "SATISFIES", "AND", "OR", "ASC",
                                "DESC", "BY", "LETTING"};
    for (const char* k : kws) {
      if (t.IsKeyword(k)) return true;
    }
    return false;
  }

  static std::string ImplicitAlias(const ExprNodePtr& e) {
    if (e->kind == ExprNodeKind::kIdent) return e->ident;
    if (e->kind == ExprNodeKind::kFieldAccess) return e->field;
    return "$unnamed";
  }

  Status ParseFromSource(FromClause* fc) {
    AX_ASSIGN_OR_RETURN(fc->expr, ParseExpr());
    if (AcceptKw("AS")) {
      AX_ASSIGN_OR_RETURN(fc->alias, ExpectIdent());
    } else if ((Cur().kind == TokenKind::kIdent && !IsClauseKeyword(Cur())) ||
               Cur().kind == TokenKind::kQuotedIdent) {
      AX_ASSIGN_OR_RETURN(fc->alias, ExpectIdent());
    } else {
      fc->alias = ImplicitAlias(fc->expr);
    }
    return Status::OK();
  }

  // ---- expressions ------------------------------------------------------

  Result<ExprNodePtr> ParseExpr() { return ParseOr(); }

  Result<ExprNodePtr> ParseOr() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseAnd());
    while (AcceptKw("OR")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseAnd());
      lhs = ExprNode::Call("or", {lhs, rhs});
    }
    return lhs;
  }

  Result<ExprNodePtr> ParseAnd() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseNot());
    while (AcceptKw("AND")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseNot());
      lhs = ExprNode::Call("and", {lhs, rhs});
    }
    return lhs;
  }

  Result<ExprNodePtr> ParseNot() {
    if (AcceptKw("NOT")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseNot());
      return ExprNode::Call("not", {e});
    }
    return ParseQuantified();
  }

  Result<ExprNodePtr> ParseQuantified() {
    if (Cur().IsKeyword("SOME") || Cur().IsKeyword("EVERY")) {
      bool some = Cur().IsKeyword("SOME");
      Advance();
      auto e = std::make_shared<ExprNode>();
      e->kind = ExprNodeKind::kQuantified;
      e->some = some;
      AX_ASSIGN_OR_RETURN(e->bound_name, ExpectIdent());
      AX_RETURN_NOT_OK(ExpectKw("IN"));
      AX_ASSIGN_OR_RETURN(e->collection, ParseComparison());
      AX_RETURN_NOT_OK(ExpectKw("SATISFIES"));
      AX_ASSIGN_OR_RETURN(e->predicate, ParseExpr());
      return e;
    }
    if (Cur().IsKeyword("EXISTS")) {
      Advance();
      auto e = std::make_shared<ExprNode>();
      e->kind = ExprNodeKind::kExists;
      AX_ASSIGN_OR_RETURN(e->collection, ParseComparison());
      return e;
    }
    return ParseComparison();
  }

  Result<ExprNodePtr> ParseComparison() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseConcat());
    // IS [NOT] NULL / MISSING / UNKNOWN
    if (AcceptKw("IS")) {
      bool negate = AcceptKw("NOT");
      std::string test;
      if (AcceptKw("NULL")) {
        test = "is-null";
      } else if (AcceptKw("MISSING")) {
        test = "is-missing";
      } else if (AcceptKw("UNKNOWN")) {
        test = "is-unknown";
      } else {
        return Err("expected NULL, MISSING or UNKNOWN after IS");
      }
      ExprNodePtr e = ExprNode::Call(test, {lhs});
      if (negate) e = ExprNode::Call("not", {e});
      return e;
    }
    if (AcceptKw("BETWEEN")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr lo, ParseConcat());
      AX_RETURN_NOT_OK(ExpectKw("AND"));
      AX_ASSIGN_OR_RETURN(ExprNodePtr hi, ParseConcat());
      return ExprNode::Call("and", {ExprNode::Call("ge", {lhs, lo}),
                                    ExprNode::Call("le", {lhs, hi})});
    }
    bool negate = false;
    if (Cur().IsKeyword("NOT") &&
        (Peek().IsKeyword("IN") || Peek().IsKeyword("LIKE"))) {
      negate = true;
      Advance();
    }
    if (AcceptKw("IN")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseConcat());
      ExprNodePtr e = ExprNode::Call("in", {lhs, rhs});
      if (negate) e = ExprNode::Call("not", {e});
      return e;
    }
    if (AcceptKw("LIKE")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseConcat());
      ExprNodePtr e = ExprNode::Call("like", {lhs, rhs});
      if (negate) e = ExprNode::Call("not", {e});
      return e;
    }
    std::string op;
    if (Accept("=")) {
      op = "eq";
    } else if (Accept("!=") || Accept("<>")) {
      op = "neq";
    } else if (Accept("<=")) {
      op = "le";
    } else if (Accept(">=")) {
      op = "ge";
    } else if (Accept("<")) {
      op = "lt";
    } else if (Accept(">")) {
      op = "gt";
    } else {
      return lhs;
    }
    AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseConcat());
    return ExprNode::Call(op, {lhs, rhs});
  }

  Result<ExprNodePtr> ParseConcat() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseAdditive());
    while (Accept("||")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseAdditive());
      lhs = ExprNode::Call("concat", {lhs, rhs});
    }
    return lhs;
  }

  Result<ExprNodePtr> ParseAdditive() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseMultiplicative());
    while (true) {
      if (Accept("+")) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseMultiplicative());
        lhs = ExprNode::Call("add", {lhs, rhs});
      } else if (Accept("-")) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseMultiplicative());
        lhs = ExprNode::Call("sub", {lhs, rhs});
      } else {
        return lhs;
      }
    }
  }

  Result<ExprNodePtr> ParseMultiplicative() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseUnary());
    while (true) {
      if (Accept("*")) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseUnary());
        lhs = ExprNode::Call("mul", {lhs, rhs});
      } else if (Accept("/")) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseUnary());
        lhs = ExprNode::Call("div", {lhs, rhs});
      } else if (Accept("%")) {
        AX_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseUnary());
        lhs = ExprNode::Call("mod", {lhs, rhs});
      } else {
        return lhs;
      }
    }
  }

  Result<ExprNodePtr> ParseUnary() {
    if (Accept("-")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseUnary());
      if (e->kind == ExprNodeKind::kLiteral && e->literal.is_int()) {
        return ExprNode::Literal(adm::Value::Int(-e->literal.AsInt()));
      }
      if (e->kind == ExprNodeKind::kLiteral && e->literal.is_double()) {
        return ExprNode::Literal(
            adm::Value::Double(-e->literal.AsDoubleExact()));
      }
      return ExprNode::Call("neg", {e});
    }
    (void)Accept("+");
    return ParsePostfix();
  }

  Result<ExprNodePtr> ParsePostfix() {
    AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParsePrimary());
    while (true) {
      if (Accept(".")) {
        AX_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
        auto fa = std::make_shared<ExprNode>();
        fa->kind = ExprNodeKind::kFieldAccess;
        fa->base = e;
        fa->field = std::move(field);
        e = fa;
        continue;
      }
      if (Accept("[")) {
        auto ia = std::make_shared<ExprNode>();
        ia->kind = ExprNodeKind::kIndexAccess;
        ia->base = e;
        AX_ASSIGN_OR_RETURN(ia->index, ParseExpr());
        AX_RETURN_NOT_OK(Expect("]"));
        e = ia;
        continue;
      }
      return e;
    }
  }

  Result<ExprNodePtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kInt: {
        Advance();
        return ExprNode::Literal(adm::Value::Int(t.int_value));
      }
      case TokenKind::kDouble: {
        Advance();
        return ExprNode::Literal(adm::Value::Double(t.double_value));
      }
      case TokenKind::kString: {
        Advance();
        return ExprNode::Literal(adm::Value::String(t.text));
      }
      case TokenKind::kQuotedIdent: {
        Advance();
        return ExprNode::Ident(t.text);
      }
      case TokenKind::kIdent: {
        if (t.IsKeyword("TRUE")) {
          Advance();
          return ExprNode::Literal(adm::Value::Boolean(true));
        }
        if (t.IsKeyword("FALSE")) {
          Advance();
          return ExprNode::Literal(adm::Value::Boolean(false));
        }
        if (t.IsKeyword("NULL")) {
          Advance();
          return ExprNode::Literal(adm::Value::Null());
        }
        if (t.IsKeyword("MISSING")) {
          Advance();
          return ExprNode::Literal(adm::Value::Missing());
        }
        if (t.IsKeyword("CASE")) return ParseCase();
        // Function call?
        if (Peek().Is("(")) {
          std::string name = t.text;
          Advance();  // name
          Advance();  // '('
          std::vector<ExprNodePtr> args;
          bool star_arg = false;
          if (!Accept(")")) {
            if (Accept("*")) {
              star_arg = true;
              AX_RETURN_NOT_OK(Expect(")"));
            } else {
              while (true) {
                AX_ASSIGN_OR_RETURN(ExprNodePtr a, ParseExpr());
                args.push_back(std::move(a));
                if (Accept(",")) continue;
                AX_RETURN_NOT_OK(Expect(")"));
                break;
              }
            }
          }
          auto call = ExprNode::Call(NormalizeFn(name), std::move(args));
          if (star_arg) call->fn += "-star";  // COUNT(*) -> "count-star"
          return call;
        }
        Advance();
        return ExprNode::Ident(t.text);
      }
      case TokenKind::kSymbol: {
        if (t.text == "(") {
          Advance();
          if (Cur().IsKeyword("SELECT") || Cur().IsKeyword("WITH")) {
            auto e = std::make_shared<ExprNode>();
            e->kind = ExprNodeKind::kSubquery;
            AX_ASSIGN_OR_RETURN(e->subquery, ParseSelectQuery());
            AX_RETURN_NOT_OK(Expect(")"));
            return e;
          }
          AX_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
          AX_RETURN_NOT_OK(Expect(")"));
          return e;
        }
        if (t.text == "[") {
          Advance();
          auto e = std::make_shared<ExprNode>();
          e->kind = ExprNodeKind::kArray;
          if (!Accept("]")) {
            while (true) {
              AX_ASSIGN_OR_RETURN(ExprNodePtr item, ParseExpr());
              e->items.push_back(std::move(item));
              if (Accept(",")) continue;
              AX_RETURN_NOT_OK(Expect("]"));
              break;
            }
          }
          return e;
        }
        if (t.text == "{{") {
          Advance();
          auto e = std::make_shared<ExprNode>();
          e->kind = ExprNodeKind::kMultiset;
          if (!Accept("}}")) {
            while (true) {
              AX_ASSIGN_OR_RETURN(ExprNodePtr item, ParseExpr());
              e->items.push_back(std::move(item));
              if (Accept(",")) continue;
              AX_RETURN_NOT_OK(Expect("}}"));
              break;
            }
          }
          return e;
        }
        if (t.text == "{") {
          Advance();
          auto e = std::make_shared<ExprNode>();
          e->kind = ExprNodeKind::kObject;
          if (!Accept("}")) {
            while (true) {
              std::string name;
              if (Cur().kind == TokenKind::kString) {
                name = Cur().text;
                Advance();
              } else {
                AX_ASSIGN_OR_RETURN(name, ExpectIdent());
              }
              AX_RETURN_NOT_OK(Expect(":"));
              AX_ASSIGN_OR_RETURN(ExprNodePtr v, ParseExpr());
              e->obj_fields.emplace_back(std::move(name), std::move(v));
              if (Accept(",")) continue;
              AX_RETURN_NOT_OK(Expect("}"));
              break;
            }
          }
          return e;
        }
        break;
      }
      default:
        break;
    }
    return Err("expected an expression");
  }

  Result<ExprNodePtr> ParseCase() {
    AX_RETURN_NOT_OK(ExpectKw("CASE"));
    auto e = std::make_shared<ExprNode>();
    e->kind = ExprNodeKind::kCase;
    while (AcceptKw("WHEN")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr cond, ParseExpr());
      AX_RETURN_NOT_OK(ExpectKw("THEN"));
      AX_ASSIGN_OR_RETURN(ExprNodePtr val, ParseExpr());
      e->args.push_back(std::move(cond));
      e->args.push_back(std::move(val));
    }
    if (AcceptKw("ELSE")) {
      AX_ASSIGN_OR_RETURN(ExprNodePtr d, ParseExpr());
      e->args.push_back(std::move(d));
    }
    AX_RETURN_NOT_OK(ExpectKw("END"));
    if (e->args.size() < 2) return Err("CASE needs at least one WHEN");
    return e;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ast::Statement> ParseStatement(const std::string& input) {
  AX_ASSIGN_OR_RETURN(auto tokens, Lex(input));
  Parser p(std::move(tokens));
  return p.ParseOneStatement();
}

Result<ast::ExprNodePtr> ParseExpression(const std::string& input) {
  SubParser sp(input);
  AX_ASSIGN_OR_RETURN(auto e, sp.ParseExpr());
  if (!sp.AtEnd()) return sp.error("trailing tokens after expression");
  return e;
}

struct SubParser::Impl {
  explicit Impl(std::vector<Token> tokens) : parser(std::move(tokens)) {}
  Parser parser;
};

SubParser::SubParser(const std::string& input) {
  auto tokens = Lex(input);
  if (!tokens.ok()) {
    init_error_ = tokens.status();
    return;
  }
  impl_ = std::make_unique<Impl>(std::move(tokens).value());
}

SubParser::~SubParser() = default;

Result<ast::ExprNodePtr> SubParser::ParseExpr() {
  if (!impl_) return init_error_;
  return impl_->parser.ParseExprPublic();
}
bool SubParser::AcceptSymbol(const std::string& symbol) {
  return impl_ && impl_->parser.AcceptPublic(symbol);
}
bool SubParser::AcceptKeyword(const std::string& keyword) {
  return impl_ && impl_->parser.AcceptKwPublic(keyword);
}
bool SubParser::PeekKeyword(const std::string& keyword) const {
  return impl_ && impl_->parser.CurPublic().IsKeyword(keyword);
}
Result<std::string> SubParser::ExpectIdentifier() {
  if (!impl_) return init_error_;
  return impl_->parser.ExpectIdentPublic();
}
bool SubParser::AtEnd() const {
  return impl_ && impl_->parser.CurPublic().kind == TokenKind::kEnd;
}
Status SubParser::error(const std::string& msg) const {
  if (!impl_) return init_error_;
  return impl_->parser.ErrPublic(msg);
}

Result<std::vector<ast::Statement>> ParseScript(const std::string& input) {
  AX_ASSIGN_OR_RETURN(auto tokens, Lex(input));
  Parser p(std::move(tokens));
  return p.ParseAll();
}

}  // namespace asterix::sqlpp
