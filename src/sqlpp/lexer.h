// SQL++ lexer. Keywords are case-insensitive; identifiers keep their case.
// Backtick-quoted identifiers (`path`) are supported as in Fig. 3(b).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace asterix::sqlpp {

enum class TokenKind : uint8_t {
  kEnd,
  kIdent,       // possibly a keyword; text is upper-cased in `upper`
  kQuotedIdent, // `...`
  kInt,
  kDouble,
  kString,
  kSymbol,      // punctuation / operators, text holds the symbol
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // raw text (identifier case preserved)
  std::string upper;  // upper-cased text for keyword matching
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // for error messages

  bool Is(const std::string& symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
  bool IsKeyword(const std::string& kw) const {
    return kind == TokenKind::kIdent && upper == kw;
  }
};

/// Tokenize a full statement string.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace asterix::sqlpp
