// SQL++ -> Algebricks translation. Produces the same logical algebra the
// AQL front end produces (paper §IV-A: "sharing the Algebricks query
// algebra and many optimizer rules"), which is what makes the Fig. 4
// stack-reuse experiment meaningful.
#pragma once

#include <string>

#include "algebricks/logical.h"
#include "algebricks/optimizer.h"
#include "sqlpp/ast.h"

namespace asterix::sqlpp {

/// A translated query: plan root whose schema is exactly [result_var];
/// each output tuple carries the query result value in that variable.
struct TranslatedQuery {
  algebricks::LogicalOpPtr plan;
  algebricks::VarId result_var = -1;
};

/// Translates parsed queries against a catalog (for dataset resolution).
class Translator {
 public:
  explicit Translator(const algebricks::Catalog* catalog)
      : catalog_(catalog) {}

  Result<TranslatedQuery> TranslateQuery(const ast::SelectQuery& q);

  /// Translate a standalone expression (INSERT payloads, DELETE conditions).
  /// `self_alias`/`self_var`, when given, bind the alias to a variable
  /// (DELETE FROM ds v WHERE v.x = 1).
  Result<algebricks::ExprPtr> TranslateScalar(
      const ast::ExprNodePtr& e, const std::string& self_alias = "",
      algebricks::VarId self_var = -1);

  /// Translate an expression with multiple variable bindings in scope.
  /// Used by the AQL front end, which shares this translator's expression
  /// lowering (the paper's Fig. 4 layer reuse).
  Result<algebricks::ExprPtr> TranslateWithBindings(
      const ast::ExprNodePtr& e,
      const std::vector<std::pair<std::string, algebricks::VarId>>& bindings);

  /// Allocate a fresh logical variable (front ends share the counter).
  algebricks::VarId AllocateVar() { return NewVar(); }

 private:
  struct Scope;  // alias -> var bindings, lexically chained
  algebricks::VarId NewVar() { return next_var_++; }

  Result<TranslatedQuery> TranslateQueryScoped(const ast::SelectQuery& q,
                                               const Scope* outer);
  Result<algebricks::ExprPtr> TranslateExpr(const ast::ExprNodePtr& e,
                                            const Scope& scope);

  const algebricks::Catalog* catalog_;
  algebricks::VarId next_var_ = 1;
};

}  // namespace asterix::sqlpp
