#include "sqlpp/translator.h"

#include <algorithm>
#include <functional>
#include <map>

namespace asterix::sqlpp {

namespace {
using namespace ast;
using algebricks::Expr;
using algebricks::ExprPtr;
using algebricks::LogicalOp;
using algebricks::LogicalOpKind;
using algebricks::LogicalOpPtr;
using algebricks::VarId;

bool IsAggFn(const std::string& fn) {
  return fn == "count" || fn == "count-star" || fn == "sum" || fn == "min" ||
         fn == "max" || fn == "avg" || fn == "array-agg";
}

hyracks::AggKind AggKindOf(const std::string& fn) {
  if (fn == "count" || fn == "count-star") return hyracks::AggKind::kCount;
  if (fn == "sum") return hyracks::AggKind::kSum;
  if (fn == "min") return hyracks::AggKind::kMin;
  if (fn == "max") return hyracks::AggKind::kMax;
  if (fn == "avg") return hyracks::AggKind::kAvg;
  return hyracks::AggKind::kCollect;
}

// Structural AST equality — used to recognize SELECT/ORDER expressions that
// syntactically match a GROUP BY key (SQL semantics: such references
// resolve to the grouping key).
bool AstEquals(const ExprNodePtr& a, const ExprNodePtr& b) {
  if (a == b) return true;
  if (!a || !b || a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprNodeKind::kLiteral:
      return a->literal == b->literal;
    case ExprNodeKind::kIdent:
      return a->ident == b->ident;
    case ExprNodeKind::kFieldAccess:
      return a->field == b->field && AstEquals(a->base, b->base);
    case ExprNodeKind::kIndexAccess:
      return AstEquals(a->base, b->base) && AstEquals(a->index, b->index);
    case ExprNodeKind::kCall: {
      if (a->fn != b->fn || a->args.size() != b->args.size()) return false;
      for (size_t i = 0; i < a->args.size(); i++) {
        if (!AstEquals(a->args[i], b->args[i])) return false;
      }
      return true;
    }
    default:
      return false;  // conservatively unequal for complex nodes
  }
}

bool ContainsAgg(const ExprNodePtr& e) {
  if (!e) return false;
  if (e->kind == ExprNodeKind::kCall && IsAggFn(e->fn)) return true;
  auto any = [](const std::vector<ExprNodePtr>& v) {
    for (const auto& x : v) {
      if (ContainsAgg(x)) return true;
    }
    return false;
  };
  if (any(e->args) || any(e->items)) return true;
  for (const auto& [n, v] : e->obj_fields) {
    if (ContainsAgg(v)) return true;
  }
  return ContainsAgg(e->base) || ContainsAgg(e->index) ||
         ContainsAgg(e->collection) || ContainsAgg(e->predicate);
}
}  // namespace

struct Translator::Scope {
  const Scope* parent = nullptr;
  std::map<std::string, VarId> bindings;

  const VarId* Find(const std::string& name) const {
    auto it = bindings.find(name);
    if (it != bindings.end()) return &it->second;
    return parent ? parent->Find(name) : nullptr;
  }
  void Bind(const std::string& name, VarId v) { bindings[name] = v; }
  std::vector<std::pair<std::string, VarId>> Visible() const {
    std::vector<std::pair<std::string, VarId>> out;
    if (parent) out = parent->Visible();
    for (const auto& [n, v] : bindings) {
      bool shadowed = false;
      for (auto& [on, ov] : out) {
        if (on == n) {
          ov = v;
          shadowed = true;
        }
      }
      if (!shadowed) out.emplace_back(n, v);
    }
    return out;
  }
};

Result<ExprPtr> Translator::TranslateExpr(const ExprNodePtr& e,
                                          const Scope& scope) {
  switch (e->kind) {
    case ExprNodeKind::kLiteral:
      return Expr::Constant(e->literal);
    case ExprNodeKind::kIdent: {
      const VarId* v = scope.Find(e->ident);
      if (v == nullptr) {
        return Status::InvalidArgument("unresolved identifier '" + e->ident +
                                       "'");
      }
      return Expr::Variable(*v);
    }
    case ExprNodeKind::kFieldAccess: {
      AX_ASSIGN_OR_RETURN(ExprPtr base, TranslateExpr(e->base, scope));
      return Expr::Field(std::move(base), e->field);
    }
    case ExprNodeKind::kIndexAccess: {
      AX_ASSIGN_OR_RETURN(ExprPtr base, TranslateExpr(e->base, scope));
      AX_ASSIGN_OR_RETURN(ExprPtr idx, TranslateExpr(e->index, scope));
      return Expr::Call("get-item", {std::move(base), std::move(idx)});
    }
    case ExprNodeKind::kCall: {
      if (IsAggFn(e->fn)) {
        return Status::InvalidArgument(
            "aggregate function '" + e->fn +
            "' used outside SELECT/HAVING of a grouped query");
      }
      std::vector<ExprPtr> args;
      for (const auto& a : e->args) {
        AX_ASSIGN_OR_RETURN(ExprPtr ta, TranslateExpr(a, scope));
        args.push_back(std::move(ta));
      }
      return Expr::Call(e->fn, std::move(args));
    }
    case ExprNodeKind::kObject: {
      std::vector<ExprPtr> args;
      for (const auto& [name, v] : e->obj_fields) {
        args.push_back(Expr::Constant(adm::Value::String(name)));
        AX_ASSIGN_OR_RETURN(ExprPtr tv, TranslateExpr(v, scope));
        args.push_back(std::move(tv));
      }
      return Expr::Call("open-record", std::move(args));
    }
    case ExprNodeKind::kArray:
    case ExprNodeKind::kMultiset: {
      std::vector<ExprPtr> args;
      for (const auto& item : e->items) {
        AX_ASSIGN_OR_RETURN(ExprPtr ti, TranslateExpr(item, scope));
        args.push_back(std::move(ti));
      }
      return Expr::Call(
          e->kind == ExprNodeKind::kArray ? "ordered-list" : "unordered-list",
          std::move(args));
    }
    case ExprNodeKind::kCase: {
      std::vector<ExprPtr> args;
      for (const auto& a : e->args) {
        AX_ASSIGN_OR_RETURN(ExprPtr ta, TranslateExpr(a, scope));
        args.push_back(std::move(ta));
      }
      return Expr::Call("switch-case", std::move(args));
    }
    case ExprNodeKind::kQuantified: {
      AX_ASSIGN_OR_RETURN(ExprPtr coll, TranslateExpr(e->collection, scope));
      VarId bound = NewVar();
      Scope inner;
      inner.parent = &scope;
      inner.Bind(e->bound_name, bound);
      AX_ASSIGN_OR_RETURN(ExprPtr pred, TranslateExpr(e->predicate, inner));
      return Expr::Quantified(e->some, bound, std::move(coll), std::move(pred));
    }
    case ExprNodeKind::kExists: {
      AX_ASSIGN_OR_RETURN(ExprPtr coll, TranslateExpr(e->collection, scope));
      return Expr::Call("gt", {Expr::Call("coll-count", {std::move(coll)}),
                               Expr::Constant(adm::Value::Int(0))});
    }
    case ExprNodeKind::kSubquery:
      return Status::NotSupported(
          "general subqueries are not supported in this dialect subset");
  }
  return Status::Internal("bad AST node");
}

Result<algebricks::ExprPtr> Translator::TranslateScalar(
    const ast::ExprNodePtr& e, const std::string& self_alias,
    algebricks::VarId self_var) {
  Scope scope;
  if (!self_alias.empty()) scope.Bind(self_alias, self_var);
  return TranslateExpr(e, scope);
}

Result<algebricks::ExprPtr> Translator::TranslateWithBindings(
    const ast::ExprNodePtr& e,
    const std::vector<std::pair<std::string, algebricks::VarId>>& bindings) {
  Scope scope;
  for (const auto& [name, var] : bindings) scope.Bind(name, var);
  return TranslateExpr(e, scope);
}

Result<TranslatedQuery> Translator::TranslateQuery(const ast::SelectQuery& q) {
  return TranslateQueryScoped(q, nullptr);
}

Result<TranslatedQuery> Translator::TranslateQueryScoped(const SelectQuery& q,
                                                         const Scope* outer) {
  Scope scope;
  scope.parent = outer;
  LogicalOpPtr plan = LogicalOp::Make(LogicalOpKind::kEmptySource);

  auto add_assign = [&](VarId var, ExprPtr expr) {
    auto a = LogicalOp::Make(LogicalOpKind::kAssign);
    a->assigns.emplace_back(var, std::move(expr));
    a->children = {plan};
    plan = a;
  };

  // --- WITH ------------------------------------------------------------------
  for (const auto& [name, e] : q.with) {
    AX_ASSIGN_OR_RETURN(ExprPtr te, TranslateExpr(e, scope));
    VarId v = NewVar();
    add_assign(v, std::move(te));
    scope.Bind(name, v);
  }

  // --- FROM ------------------------------------------------------------------
  bool have_source = false;
  for (const auto& fc : q.froms) {
    bool is_dataset = fc.expr->kind == ExprNodeKind::kIdent &&
                      catalog_->HasDataset(fc.expr->ident);
    VarId v = NewVar();
    if (is_dataset) {
      auto scan = LogicalOp::Make(LogicalOpKind::kDataScan);
      scan->dataset = fc.expr->ident;
      scan->scan_var = v;
      if (!have_source && plan->kind == LogicalOpKind::kEmptySource) {
        plan = scan;
      } else {
        auto join = LogicalOp::Make(LogicalOpKind::kJoin);
        join->join_kind = fc.style == JoinStyle::kLeftOuter
                              ? algebricks::JoinKind::kLeftOuter
                              : algebricks::JoinKind::kInner;
        join->children = {plan, scan};
        if (fc.on) {
          Scope with_right;
          with_right.parent = &scope;
          with_right.Bind(fc.alias, v);
          AX_ASSIGN_OR_RETURN(join->condition,
                              TranslateExpr(fc.on, with_right));
        } else {
          join->condition = Expr::Constant(adm::Value::Boolean(true));
        }
        plan = join;
      }
    } else {
      // Collection expression (possibly correlated): unnest.
      AX_ASSIGN_OR_RETURN(ExprPtr coll, TranslateExpr(fc.expr, scope));
      auto unnest = LogicalOp::Make(LogicalOpKind::kUnnest);
      unnest->unnest_var = v;
      unnest->unnest_expr = std::move(coll);
      unnest->unnest_outer = fc.style == JoinStyle::kLeftOuter;
      unnest->children = {plan};
      plan = unnest;
      if (fc.on) {
        AX_ASSIGN_OR_RETURN(ExprPtr cond, [&]() -> Result<ExprPtr> {
          Scope with_right;
          with_right.parent = &scope;
          with_right.Bind(fc.alias, v);
          return TranslateExpr(fc.on, with_right);
        }());
        auto sel = LogicalOp::Make(LogicalOpKind::kSelect);
        sel->condition = std::move(cond);
        sel->children = {plan};
        plan = sel;
      }
    }
    scope.Bind(fc.alias, v);
    have_source = true;
  }

  // --- LET -------------------------------------------------------------------
  for (const auto& [name, e] : q.lets) {
    AX_ASSIGN_OR_RETURN(ExprPtr te, TranslateExpr(e, scope));
    VarId v = NewVar();
    add_assign(v, std::move(te));
    scope.Bind(name, v);
  }

  // --- WHERE -----------------------------------------------------------------
  if (q.where) {
    // Split AST-level conjuncts so quantified predicates over datasets can
    // become semi-joins (the Fig. 3(c) SOME ... SATISFIES pattern).
    std::vector<ExprNodePtr> conjuncts;
    std::function<void(const ExprNodePtr&)> split = [&](const ExprNodePtr& n) {
      if (n->kind == ExprNodeKind::kCall && n->fn == "and") {
        for (const auto& a : n->args) split(a);
      } else {
        conjuncts.push_back(n);
      }
    };
    split(q.where);
    std::vector<ExprPtr> plain;
    for (const auto& cj : conjuncts) {
      if (cj->kind == ExprNodeKind::kQuantified && cj->some &&
          cj->collection->kind == ExprNodeKind::kIdent &&
          catalog_->HasDataset(cj->collection->ident)) {
        // SOME x IN Dataset SATISFIES p(x, outer)  ->  left semi-join.
        VarId bound = NewVar();
        auto scan = LogicalOp::Make(LogicalOpKind::kDataScan);
        scan->dataset = cj->collection->ident;
        scan->scan_var = bound;
        Scope inner;
        inner.parent = &scope;
        inner.Bind(cj->bound_name, bound);
        AX_ASSIGN_OR_RETURN(ExprPtr pred, TranslateExpr(cj->predicate, inner));
        auto join = LogicalOp::Make(LogicalOpKind::kJoin);
        join->join_kind = algebricks::JoinKind::kLeftSemi;
        join->condition = std::move(pred);
        join->children = {plan, scan};
        plan = join;
        continue;
      }
      AX_ASSIGN_OR_RETURN(ExprPtr te, TranslateExpr(cj, scope));
      plain.push_back(std::move(te));
    }
    if (!plain.empty()) {
      auto sel = LogicalOp::Make(LogicalOpKind::kSelect);
      sel->condition = algebricks::AndAll(std::move(plain));
      sel->children = {plan};
      plan = sel;
    }
  }

  // --- GROUP BY / aggregates ---------------------------------------------------
  bool has_group = !q.group_by.empty();
  bool has_agg = ContainsAgg(q.value_expr) || ContainsAgg(q.having);
  for (const auto& p : q.projections) has_agg = has_agg || ContainsAgg(p.expr);
  for (const auto& [e, asc] : q.order_by) has_agg = has_agg || ContainsAgg(e);

  LogicalOpPtr group_op;
  Scope post_group;  // replaces `scope` for post-aggregation clauses
  Scope* current = &scope;

  // Rewrites an AST expression in the post-group context: aggregate calls
  // get evaluated over the pre-group scope and replaced by agg variables.
  std::function<Result<ExprPtr>(const ExprNodePtr&)> translate_post =
      [&](const ExprNodePtr& e) -> Result<ExprPtr> {
    // An expression syntactically equal to a grouping key resolves to it.
    if (group_op) {
      for (size_t i = 0; i < q.group_by.size(); i++) {
        if (AstEquals(e, q.group_by[i].second)) {
          return Expr::Variable(group_op->group_keys[i].first);
        }
      }
    }
    if (e->kind == ExprNodeKind::kCall && IsAggFn(e->fn)) {
      LogicalOp::Agg agg;
      agg.var = NewVar();
      agg.kind = AggKindOf(e->fn);
      if (e->fn == "count-star" || e->args.empty()) {
        agg.arg = nullptr;
      } else {
        AX_ASSIGN_OR_RETURN(agg.arg, TranslateExpr(e->args[0], scope));
      }
      group_op->aggs.push_back(agg);
      return Expr::Variable(agg.var);
    }
    // Recurse structurally; non-agg identifiers resolve in post scope.
    switch (e->kind) {
      case ExprNodeKind::kLiteral:
      case ExprNodeKind::kIdent:
        return TranslateExpr(e, post_group);
      case ExprNodeKind::kFieldAccess: {
        AX_ASSIGN_OR_RETURN(ExprPtr base, translate_post(e->base));
        return Expr::Field(std::move(base), e->field);
      }
      case ExprNodeKind::kIndexAccess: {
        AX_ASSIGN_OR_RETURN(ExprPtr base, translate_post(e->base));
        AX_ASSIGN_OR_RETURN(ExprPtr idx, translate_post(e->index));
        return Expr::Call("get-item", {std::move(base), std::move(idx)});
      }
      case ExprNodeKind::kCall: {
        std::vector<ExprPtr> args;
        for (const auto& a : e->args) {
          AX_ASSIGN_OR_RETURN(ExprPtr ta, translate_post(a));
          args.push_back(std::move(ta));
        }
        return Expr::Call(e->fn, std::move(args));
      }
      case ExprNodeKind::kObject: {
        std::vector<ExprPtr> args;
        for (const auto& [name, v] : e->obj_fields) {
          args.push_back(Expr::Constant(adm::Value::String(name)));
          AX_ASSIGN_OR_RETURN(ExprPtr tv, translate_post(v));
          args.push_back(std::move(tv));
        }
        return Expr::Call("open-record", std::move(args));
      }
      case ExprNodeKind::kArray:
      case ExprNodeKind::kMultiset: {
        std::vector<ExprPtr> args;
        for (const auto& item : e->items) {
          AX_ASSIGN_OR_RETURN(ExprPtr ti, translate_post(item));
          args.push_back(std::move(ti));
        }
        return Expr::Call(e->kind == ExprNodeKind::kArray ? "ordered-list"
                                                          : "unordered-list",
                          std::move(args));
      }
      default:
        return TranslateExpr(e, post_group);
    }
  };

  if (has_group || has_agg) {
    group_op = LogicalOp::Make(LogicalOpKind::kGroupBy);
    group_op->children = {plan};
    for (const auto& [alias, e] : q.group_by) {
      AX_ASSIGN_OR_RETURN(ExprPtr te, TranslateExpr(e, scope));
      VarId v = NewVar();
      group_op->group_keys.emplace_back(v, std::move(te));
      if (!alias.empty()) post_group.Bind(alias, v);
    }
    if (!q.group_as.empty()) {
      // GROUP AS g: collect a record of all visible aliases per row.
      std::vector<ExprPtr> rec_args;
      for (const auto& [name, var] : scope.Visible()) {
        rec_args.push_back(Expr::Constant(adm::Value::String(name)));
        rec_args.push_back(Expr::Variable(var));
      }
      LogicalOp::Agg agg;
      agg.var = NewVar();
      agg.kind = hyracks::AggKind::kCollect;
      agg.arg = Expr::Call("open-record", std::move(rec_args));
      group_op->aggs.push_back(agg);
      post_group.Bind(q.group_as, agg.var);
    }
    plan = group_op;
    current = &post_group;
  }

  auto translate_clause = [&](const ExprNodePtr& e) -> Result<ExprPtr> {
    if (group_op) return translate_post(e);
    return TranslateExpr(e, *current);
  };

  // --- HAVING ---------------------------------------------------------------
  if (q.having) {
    AX_ASSIGN_OR_RETURN(ExprPtr cond, translate_clause(q.having));
    auto sel = LogicalOp::Make(LogicalOpKind::kSelect);
    sel->condition = std::move(cond);
    sel->children = {plan};
    plan = sel;
  }

  // --- SELECT ----------------------------------------------------------------
  VarId result_var = NewVar();
  Scope select_scope;  // projection aliases for ORDER BY
  select_scope.parent = current;
  if (q.select_value) {
    AX_ASSIGN_OR_RETURN(ExprPtr ve, translate_clause(q.value_expr));
    auto a = LogicalOp::Make(LogicalOpKind::kAssign);
    a->assigns.emplace_back(result_var, std::move(ve));
    a->children = {plan};
    plan = a;
  } else {
    std::vector<ExprPtr> rec_args;
    auto a = LogicalOp::Make(LogicalOpKind::kAssign);
    for (const auto& p : q.projections) {
      if (p.star) {
        for (const auto& [name, var] : current->Visible()) {
          rec_args.push_back(Expr::Constant(adm::Value::String(name)));
          rec_args.push_back(Expr::Variable(var));
        }
        continue;
      }
      AX_ASSIGN_OR_RETURN(ExprPtr pe, translate_clause(p.expr));
      VarId pv = NewVar();
      a->assigns.emplace_back(pv, std::move(pe));
      select_scope.Bind(p.alias, pv);
      rec_args.push_back(Expr::Constant(adm::Value::String(p.alias)));
      rec_args.push_back(Expr::Variable(pv));
    }
    a->assigns.emplace_back(result_var,
                            Expr::Call("open-record", std::move(rec_args)));
    a->children = {plan};
    plan = a;
  }

  // --- DISTINCT --------------------------------------------------------------
  if (q.distinct) {
    auto proj = LogicalOp::Make(LogicalOpKind::kProject);
    proj->project_vars = {result_var};
    proj->children = {plan};
    auto dist = LogicalOp::Make(LogicalOpKind::kDistinct);
    dist->children = {proj};
    plan = dist;
  }

  // --- ORDER BY ---------------------------------------------------------------
  if (!q.order_by.empty()) {
    auto order = LogicalOp::Make(LogicalOpKind::kOrder);
    for (const auto& [e, asc] : q.order_by) {
      ExprPtr key;
      if (q.distinct) {
        // Post-distinct only the result record survives: rebind aliases to
        // field accesses on the result.
        if (e->kind == ExprNodeKind::kIdent) {
          key = Expr::Field(Expr::Variable(result_var), e->ident);
        } else {
          return Status::NotSupported(
              "ORDER BY after DISTINCT must reference select aliases");
        }
      } else if (group_op) {
        // Grouped query: try the post-group rewrite first; a bare alias
        // introduced by SELECT resolves via the projection scope.
        auto post = translate_post(e);
        if (post.ok()) {
          key = std::move(post).value();
        } else {
          AX_ASSIGN_OR_RETURN(key, TranslateExpr(e, select_scope));
        }
      } else {
        AX_ASSIGN_OR_RETURN(key, TranslateExpr(e, select_scope));
      }
      order->order_keys.push_back({std::move(key), asc});
    }
    order->children = {plan};
    plan = order;
  }

  // --- LIMIT -----------------------------------------------------------------
  if (q.limit >= 0) {
    auto lim = LogicalOp::Make(LogicalOpKind::kLimit);
    lim->limit = q.limit;
    lim->offset = q.offset;
    lim->children = {plan};
    plan = lim;
  }

  // --- final projection --------------------------------------------------------
  auto proj = LogicalOp::Make(LogicalOpKind::kProject);
  proj->project_vars = {result_var};
  proj->children = {plan};

  TranslatedQuery out;
  out.plan = proj;
  out.result_var = result_var;
  return out;
}

}  // namespace asterix::sqlpp
