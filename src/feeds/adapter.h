// Feed adapters: pluggable data sources for the ingestion pipeline (the
// feeds paper's "adapter" abstraction — §3 of Grover & Carey). An adapter
// produces sequence-numbered FeedRecords; the runtime owns threading,
// policies and failure handling. Adapters must support reopening at a
// resume point: after a crash or an injected adapter death the runtime
// calls Open(resume_after) and expects records with seqno > resume_after
// to be re-produced identically (at-least-once delivery; the storage stage
// is idempotent).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adm/type.h"
#include "adm/value.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "feeds/record.h"

namespace asterix::feeds {

/// How the parse stage turns a raw record into an ADM value. Built per
/// connection from the adapter's properties plus the target dataset's
/// declared type (delimited-text needs the closed type's field list).
struct ParseSpec {
  enum class Format : uint8_t {
    kParsed,     // records arrive parsed; parse stage is a pass-through
    kDelimited,  // delimited-text via adm::ParseDelimitedLine
    kAdm,        // ADM/JSON text via adm::ParseAdm
  };
  Format format = Format::kParsed;
  char delimiter = ',';
  adm::TypePtr type;  // required for kDelimited
};

/// Build a ParseSpec from adapter properties ("format", "delimiter") and
/// the target dataset's type.
Result<ParseSpec> BuildParseSpec(
    const std::map<std::string, std::string>& props, adm::TypePtr type);

/// Parse one raw record per the spec.
Result<adm::Value> ParseRaw(const ParseSpec& spec, const std::string& raw);

/// A feed data source. Not thread-safe; driven by the runtime's single
/// intake thread (the test-facing ChannelAdapter additionally accepts
/// pushes from other threads and synchronizes internally).
class FeedAdapter {
 public:
  virtual ~FeedAdapter() = default;

  virtual const char* name() const = 0;

  /// Open (or reopen after an adapter restart / instance crash). Records
  /// with seqno <= resume_after must be skipped; the record→seqno mapping
  /// must be stable across reopens.
  virtual Status Open(uint64_t resume_after) = 0;

  /// Append up to `max` records to `*out`. Returns false when the feed has
  /// ended (no record will ever arrive again); true otherwise — possibly
  /// having appended nothing after waiting up to `timeout_ms`.
  virtual Result<bool> NextBatch(std::vector<FeedRecord>* out, size_t max,
                                 int timeout_ms) = 0;

  virtual Status Close() = 0;

  /// Wired by the runtime before the intake thread starts. Long-running
  /// NextBatch loops poll it so Stop()/Kill() latency stays bounded even
  /// while backlog keeps data available (the timeout is only consulted when
  /// the adapter has nothing left to read).
  void SetStopProbe(std::function<bool()> probe) {
    stop_probe_ = std::move(probe);
  }

 protected:
  /// True once the runtime wants the intake stage to wind down.
  bool ShouldStop() const { return stop_probe_ && stop_probe_(); }

 private:
  std::function<bool()> stop_probe_;
};

/// Tails a local file of line-oriented records (delimited-text or ADM/JSON
/// per line), reusing the byte-source conventions of asterix/external.
/// Properties: "path" (required, "localhost://" prefix accepted), "format",
/// "delimiter", "tail" ("true" keeps polling past EOF for appended lines;
/// default stops at EOF). seqno = 1-based index of the non-empty line, so
/// resume just re-scans and skips.
class LocalFsAdapter : public FeedAdapter {
 public:
  LocalFsAdapter(std::string path, bool tail)
      : path_(std::move(path)), tail_(tail) {}

  const char* name() const override { return "localfs"; }
  Status Open(uint64_t resume_after) override;
  Result<bool> NextBatch(std::vector<FeedRecord>* out, size_t max,
                         int timeout_ms) override;
  Status Close() override { return Status::OK(); }

 private:
  std::string path_;
  bool tail_;
  uint64_t offset_ = 0;      // bytes of the file already consumed
  std::string pending_;      // trailing partial line (tail mode)
  uint64_t next_seqno_ = 1;  // seqno of the next non-empty line
  uint64_t skip_ = 0;        // records still to skip for resume
};

/// In-process socket-like channel: tests (and embedded producers) push
/// changes from any thread; the intake thread pulls them. The channel
/// retains its full record log so an adapter restart can replay from the
/// resume point — it stands in for a seekable upstream (a TCP source with
/// client-side buffering, or the operational store of shadow_feed).
class ChannelAdapter : public FeedAdapter {
 public:
  // ---- producer side --------------------------------------------------------
  uint64_t Push(adm::Value record) AX_EXCLUDES(mu_);
  uint64_t PushRaw(std::string raw) AX_EXCLUDES(mu_);
  uint64_t PushDelete(adm::Value key) AX_EXCLUDES(mu_);
  /// No more pushes; the feed ends once the log is drained.
  void CloseChannel() AX_EXCLUDES(mu_);
  uint64_t pushed() const AX_EXCLUDES(mu_);

  // ---- FeedAdapter ----------------------------------------------------------
  const char* name() const override { return "channel"; }
  Status Open(uint64_t resume_after) override AX_EXCLUDES(mu_);
  Result<bool> NextBatch(std::vector<FeedRecord>* out, size_t max,
                         int timeout_ms) override AX_EXCLUDES(mu_);
  Status Close() override { return Status::OK(); }

 private:
  uint64_t PushRecord(FeedRecord r) AX_EXCLUDES(mu_);
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<FeedRecord> log_ AX_GUARDED_BY(mu_);  // seqno i at log_[i-1]
  size_t cursor_ AX_GUARDED_BY(mu_) = 0;
  bool closed_ AX_GUARDED_BY(mu_) = false;
};

/// Property lookup helper shared by adapter factories.
std::string GetAdapterProp(const std::map<std::string, std::string>& props,
                           const char* key, const std::string& fallback);

/// Factory for adapters registered from higher layers (e.g. the asterix
/// layer's synthetic "gleambook" source). The feeds layer itself only
/// knows the built-in "localfs" and "channel" adapters; anything that
/// would drag an upward dependency into feeds registers here instead.
using AdapterFactory =
    std::function<Result<std::unique_ptr<FeedAdapter>>(
        const std::map<std::string, std::string>& props)>;

/// Register (or replace) a named adapter factory. Thread-safe; idempotent
/// re-registration with an equivalent factory is the expected pattern.
void RegisterAdapterFactory(const std::string& name, AdapterFactory factory);

/// True when `name` is a built-in or registered adapter.
bool HasAdapterFactory(const std::string& name);

/// Instantiate an adapter by DDL name: built-ins ("localfs" | "channel")
/// first, then the registry.
Result<std::unique_ptr<FeedAdapter>> MakeAdapter(
    const std::string& adapter, const std::map<std::string, std::string>& props);

}  // namespace asterix::feeds
