#include "feeds/runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "adm/json.h"
#include "common/io.h"
#include "hyracks/batch.h"

namespace asterix::feeds {

using hyracks::Frame;
using hyracks::kFrameTuples;

// ---- ProgressTracker --------------------------------------------------------

bool ProgressTracker::RetireLocked(uint64_t seqno) {
  if (seqno < next_) return false;  // duplicate: re-emitted after a restart
  if (seqno != next_) {
    pending_.insert(seqno);
    return false;
  }
  next_++;
  while (!pending_.empty() && *pending_.begin() == next_) {
    pending_.erase(pending_.begin());
    next_++;
  }
  watermark_ = next_ - 1;
  return true;
}

void ProgressTracker::Retire(uint64_t seqno) {
  std::lock_guard<std::mutex> lock(mu_);
  if (RetireLocked(seqno)) cv_.notify_all();
}

void ProgressTracker::RetireMany(const std::vector<uint64_t>& seqnos) {
  if (seqnos.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  bool advanced = false;
  for (uint64_t s : seqnos) advanced |= RetireLocked(s);
  if (advanced) cv_.notify_all();
}

uint64_t ProgressTracker::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

bool ProgressTracker::WaitForWatermark(uint64_t seqno, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Explicit wait loop (not a predicate lambda) so thread-safety analysis
  // sees the guarded accesses under the lock.
  while (watermark_ < seqno) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return watermark_ >= seqno;
    }
  }
  return true;
}

// ---- FeedRuntime ------------------------------------------------------------

FeedRuntime::FeedRuntime(FeedSink* sink,
                         std::unique_ptr<FeedAdapter> adapter,
                         FeedRuntimeOptions options)
    : sink_(sink),
      adapter_(std::move(adapter)),
      options_(std::move(options)),
      intake_q_(options_.policy.queue_capacity_tuples),
      storage_q_(options_.policy.queue_capacity_tuples),
      progress_(options_.resume_after) {
  parse_fused_ = options_.parse.format == ParseSpec::Format::kParsed;
  out_q_ = parse_fused_ ? &storage_q_ : &intake_q_;
  intake_q_.SetProducerCount(1);
  storage_q_.SetProducerCount(1);
  auto& reg = metrics::Registry::Global();
  const std::string& feed = options_.feed_name;
  m_ingested_ = reg.GetCounter("feeds.ingested_tuples", feed);
  m_discarded_ = reg.GetCounter("feeds.discarded", feed);
  m_spilled_bytes_ = reg.GetCounter("feeds.spilled_bytes", feed);
  m_spilled_records_ = reg.GetCounter("feeds.spilled_records", feed);
  m_retries_parse_ = reg.GetCounter("feeds.retries", "parse");
  m_retries_storage_ = reg.GetCounter("feeds.retries", "storage");
  m_retries_adapter_ = reg.GetCounter("feeds.retries", "adapter");
  m_restarts_ = reg.GetCounter("feeds.restarts", feed);
  m_parse_errors_ = reg.GetCounter("feeds.parse_errors", feed);
  m_throttled_ = reg.GetCounter("feeds.throttled", feed);
  m_intake_blocked_ = reg.GetCounter("feeds.intake_blocked", feed);
  m_depth_intake_ = reg.GetHistogram("feeds.queue_depth", "intake");
  m_depth_storage_ = reg.GetHistogram("feeds.queue_depth", "storage");
}

FeedRuntime::~FeedRuntime() {
  if (started_.load()) Kill();
}

Status FeedRuntime::Start() {
  if (started_.load()) return Status::InvalidArgument("feed already started");
  if (options_.policy.kind == PolicyKind::kSpill) {
    if (options_.spill_dir.empty()) {
      return Status::InvalidArgument("Spill policy requires a spill dir");
    }
    AX_RETURN_NOT_OK(fs::CreateDirs(options_.spill_dir));
  }
  adapter_->SetStopProbe(
      [this] { return stop_requested_.load() || killed_.load(); });
  AX_RETURN_NOT_OK(adapter_->Open(options_.resume_after));
  last_enqueued_ = options_.resume_after;
  throttle_epoch_ns_ = metrics::NowNs();
  started_.store(true);
  intake_thread_ = std::thread([this] { IntakeLoop(); });
  if (!parse_fused_) parse_thread_ = std::thread([this] { ParseLoop(); });
  storage_thread_ = std::thread([this] { StorageLoop(); });
  return Status::OK();
}

Status FeedRuntime::Stop() {
  if (!started_.load()) return error();
  stop_requested_.store(true);
  intake_thread_.join();
  if (parse_thread_.joinable()) parse_thread_.join();
  storage_thread_.join();
  started_.store(false);
  // axlint: allow(must-check): already draining; Close failure is moot
  (void)adapter_->Close();
  if (!killed_.load() && !options_.progress_path.empty()) {
    Status st = PersistProgress();
    if (!st.ok() && error().ok()) SetError(st);
  }
  return error();
}

void FeedRuntime::Kill() {
  if (!started_.load()) return;
  killed_.store(true);
  stop_requested_.store(true);
  Status st = Status::IOError("feed killed");
  intake_q_.Poison(st);
  storage_q_.Poison(st);
  intake_thread_.join();
  if (parse_thread_.joinable()) parse_thread_.join();
  storage_thread_.join();
  started_.store(false);
  // axlint: allow(must-check): kill path tears down unconditionally
  (void)adapter_->Close();
  // Deliberately no PersistProgress: a crash resumes from the checkpoint.
}

Status FeedRuntime::WaitForCompletion(int timeout_ms) {
  std::unique_lock<std::mutex> lock(finish_mu_);
  bool done = finish_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                  [&] { return finished_.load(); });
  if (!done) return Status::IOError("timed out waiting for feed completion");
  return error();
}

Status FeedRuntime::WaitForSeqno(uint64_t seqno, int timeout_ms) {
  if (progress_.WaitForWatermark(seqno, timeout_ms)) return Status::OK();
  Status st = error();
  if (!st.ok()) return st;
  return Status::IOError("timed out waiting for feed watermark " +
                         std::to_string(seqno));
}

Status FeedRuntime::error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return error_;
}

void FeedRuntime::SetError(const Status& st) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.ok()) error_ = st;
}

void FeedRuntime::BackoffSleep(int attempt) const {
  double ms = options_.policy.initial_backoff_ms;
  for (int i = 1; i < attempt; i++) ms *= options_.policy.backoff_multiplier;
  ms = std::min<double>(ms, options_.policy.max_backoff_ms);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

// ---- progress persistence ---------------------------------------------------

Status FeedRuntime::PersistProgress() const {
  if (options_.progress_path.empty()) return Status::OK();
  adm::Value doc = adm::ObjectBuilder()
                       .Add("feed", adm::Value::String(options_.feed_name))
                       .Add("dataset", adm::Value::String(options_.dataset))
                       .Add("seqno", adm::Value::Int(static_cast<int64_t>(
                                         progress_.watermark())))
                       .Build();
  std::string tmp = options_.progress_path + ".tmp";
  AX_RETURN_NOT_OK(fs::WriteStringToFile(tmp, doc.ToString()));
  return fs::RenameFile(tmp, options_.progress_path);
}

Result<uint64_t> FeedRuntime::LoadProgress(const std::string& path) {
  if (!fs::Exists(path)) return uint64_t{0};
  AX_ASSIGN_OR_RETURN(std::string text, fs::ReadFileToString(path));
  AX_ASSIGN_OR_RETURN(adm::Value doc, adm::ParseAdm(text));
  const adm::Value& s = doc.GetField("seqno");
  if (!s.is_int()) {
    return Status::Corruption("malformed feed progress file: " + path);
  }
  return static_cast<uint64_t>(s.AsInt());
}

// ---- intake stage -----------------------------------------------------------

void FeedRuntime::IntakeLoop() {
  Status st = RunIntake();
  if (!st.ok()) {
    SetError(st);
    intake_q_.Poison(st);
    storage_q_.Poison(st);
  }
  out_q_->CloseOneProducer();
}

Status FeedRuntime::RunIntake() {
  int restarts = 0;
  bool ended = false;
  while (!ended) {
    if (killed_.load()) return Status::IOError("feed killed");
    if (stop_requested_.load()) break;
    Status st = PullOnce(&ended);
    if (st.ok()) continue;
    // Adapter-level failure: bounded reopen-at-resume-point with backoff.
    // Records at or below last_enqueued_ are already in the pipeline, so
    // the reopened adapter resumes right behind them (at-least-once; the
    // storage stage is idempotent if it re-sees any).
    for (;;) {
      if (killed_.load() || stop_requested_.load()) return st;
      if (restarts >= options_.policy.adapter_max_restarts) return st;
      restarts++;
      m_restarts_->Add();
      m_retries_adapter_->Add();
      BackoffSleep(restarts);
      // axlint: allow(must-check): adapter already failed; reopen decides
      (void)adapter_->Close();
      Status open_st = adapter_->Open(last_enqueued_);
      if (open_st.ok()) break;
      st = open_st;
    }
    // The failed poll may have reported end-of-feed before dying; the
    // reopened adapter decides that afresh from the resume point.
    ended = false;
  }
  // Graceful end (adapter end-of-feed or requested stop): everything that
  // overflowed to disk still has to reach the dataset.
  return DrainSpill(/*blocking=*/true);
}

Status FeedRuntime::PullOnce(bool* ended) {
  // Opportunistically move spilled backlog forward while the queue has room.
  AX_RETURN_NOT_OK(DrainSpill(/*blocking=*/false));

  std::vector<FeedRecord> batch;
  auto more = adapter_->NextBatch(&batch, options_.adapter_batch, 50);
  if (!more.ok()) return more.status();
  if (!more.value()) *ended = true;
  if (batch.empty()) return Status::OK();

  // An injected adapter death fires right after its target record was
  // emitted: later records of this poll were never produced.
  bool die = false;
  if (options_.faults != nullptr) {
    for (size_t i = 0; i < batch.size(); i++) {
      if (options_.faults->TakeAdapterKill(batch[i].seqno)) {
        batch.resize(i + 1);
        die = true;
        break;
      }
    }
  }

  // Throttle pacing: once the clamp engaged, delay delivery to the target
  // rate so downstream pressure stays under control without drops.
  if (options_.policy.kind == PolicyKind::kThrottle && throttle_rate_ > 0) {
    double need = static_cast<double>(throttle_sent_ + batch.size());
    for (;;) {
      double elapsed_s =
          static_cast<double>(metrics::NowNs() - throttle_epoch_ns_) / 1e9;
      if (elapsed_s * throttle_rate_ >= need) break;
      if (killed_.load() || stop_requested_.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  throttle_sent_ += batch.size();

  uint64_t last_seq = batch.back().seqno;
  Frame frame;
  frame.reserve(kFrameTuples);
  for (auto& r : batch) {
    frame.push_back(RecordToTuple(std::move(r)));
    if (frame.size() >= kFrameTuples) AX_RETURN_NOT_OK(DeliverFrame(&frame));
  }
  AX_RETURN_NOT_OK(DeliverFrame(&frame));
  last_enqueued_ = std::max(last_enqueued_, last_seq);
  if (die) return Status::IOError("injected adapter death");
  return Status::OK();
}

Status FeedRuntime::DeliverFrame(Frame* frame) {
  if (frame->empty()) return Status::OK();
  m_depth_intake_->Record(out_q_->ApproxFrames());
  switch (options_.policy.kind) {
    case PolicyKind::kBasic: {
      AX_ASSIGN_OR_RETURN(bool pushed, out_q_->TryPushFrame(frame));
      if (pushed) return Status::OK();
      // Block: backpressure propagates through the adapter to the source.
      m_intake_blocked_->Add();
      Frame recycled;
      Status st = out_q_->PushFrame(std::move(*frame), &recycled);
      *frame = std::move(recycled);
      return st;
    }
    case PolicyKind::kSpill: {
      // While a disk backlog exists all new arrivals join it, so the
      // dataset still sees records in seqno order.
      if (!SpillBacklogEmpty()) return SpillFrame(frame);
      AX_ASSIGN_OR_RETURN(bool pushed, out_q_->TryPushFrame(frame));
      if (pushed) return Status::OK();
      return SpillFrame(frame);
    }
    case PolicyKind::kDiscard: {
      AX_ASSIGN_OR_RETURN(bool pushed, out_q_->TryPushFrame(frame));
      if (pushed) return Status::OK();
      m_discarded_->Add(frame->size());
      // Dropped records are retired: the watermark must advance past them
      // or a crash would resurrect deliberately shed load.
      for (const auto& t : *frame) {
        progress_.Retire(static_cast<uint64_t>(t.fields[0].AsInt()));
      }
      frame->clear();
      return Status::OK();
    }
    case PolicyKind::kThrottle: {
      AX_ASSIGN_OR_RETURN(bool pushed, out_q_->TryPushFrame(frame));
      if (pushed) {
        if (throttle_rate_ > 0 && ++clean_pushes_ >= 32) {
          // Congestion cleared for a stretch: recover offered rate by 25%.
          throttle_rate_ *= 1.25;
          throttle_epoch_ns_ = metrics::NowNs();
          throttle_sent_ = 0;
          clean_pushes_ = 0;
        }
        return Status::OK();
      }
      m_throttled_->Add();
      // Clamp: halve the rate (seeding from the observed rate the first
      // time), floored at the policy minimum, and deliver blocking.
      double elapsed_s =
          static_cast<double>(metrics::NowNs() - throttle_epoch_ns_) / 1e9;
      double observed = elapsed_s > 0
                            ? static_cast<double>(throttle_sent_) / elapsed_s
                            : options_.policy.throttle_min_rate * 2;
      double base = throttle_rate_ > 0 ? throttle_rate_ : observed;
      throttle_rate_ =
          std::max(options_.policy.throttle_min_rate, base / 2);
      throttle_epoch_ns_ = metrics::NowNs();
      throttle_sent_ = 0;
      clean_pushes_ = 0;
      Frame recycled;
      Status st = out_q_->PushFrame(std::move(*frame), &recycled);
      *frame = std::move(recycled);
      return st;
    }
  }
  return Status::Internal("unreachable feed policy");
}

// ---- spill overflow ---------------------------------------------------------

bool FeedRuntime::SpillBacklogEmpty() const {
  return spill_pending_.empty() && spill_reader_ == nullptr &&
         spill_segments_.empty() &&
         (spill_writer_ == nullptr || spill_writer_->tuple_count() == 0);
}

Status FeedRuntime::SpillFrame(Frame* frame) {
  if (spill_writer_ == nullptr) {
    std::string path = options_.spill_dir + "/" + options_.feed_name +
                       ".spill." + std::to_string(spill_seq_++);
    AX_ASSIGN_OR_RETURN(spill_writer_, hyracks::RunWriter::Create(path));
  }
  for (const auto& t : *frame) AX_RETURN_NOT_OK(spill_writer_->Write(t));
  m_spilled_records_->Add(frame->size());
  frame->clear();
  if (spill_writer_->tuple_count() >= options_.policy.spill_segment_tuples) {
    AX_RETURN_NOT_OK(RotateSpill());
  }
  return Status::OK();
}

Status FeedRuntime::RotateSpill() {
  AX_RETURN_NOT_OK(spill_writer_->Finish());
  m_spilled_bytes_->Add(spill_writer_->bytes_written());
  spill_segments_.push_back(spill_writer_->path());
  spill_writer_.reset();
  return Status::OK();
}

Status FeedRuntime::DrainSpill(bool blocking) {
  if (options_.policy.kind != PolicyKind::kSpill) return Status::OK();
  for (;;) {
    // 1. A frame read off disk but not yet accepted has priority: it holds
    //    the oldest spilled records.
    if (!spill_pending_.empty()) {
      if (blocking) {
        Frame recycled;
        AX_RETURN_NOT_OK(
            out_q_->PushFrame(std::move(spill_pending_), &recycled));
        spill_pending_ = std::move(recycled);
        spill_pending_.clear();
      } else {
        AX_ASSIGN_OR_RETURN(bool pushed,
                            out_q_->TryPushFrame(&spill_pending_));
        if (!pushed) return Status::OK();  // queue still full; try later
      }
    }
    // 2. Refill from the open reader / next finished segment.
    if (spill_reader_ == nullptr) {
      if (spill_segments_.empty()) {
        if (spill_writer_ == nullptr || spill_writer_->tuple_count() == 0) {
          return Status::OK();  // backlog fully drained
        }
        // Only the open segment remains. Cut it early when the pipeline is
        // idle (or on the final drain); under sustained overload keep
        // batching into it instead of churning tiny run files.
        if (!blocking && out_q_->ApproxFrames() > 0) return Status::OK();
        AX_RETURN_NOT_OK(RotateSpill());
      }
      AX_ASSIGN_OR_RETURN(
          spill_reader_,
          hyracks::RunReader::Open(spill_segments_.front(),
                                   /*delete_on_close=*/true));
      spill_segments_.pop_front();
    }
    for (size_t i = spill_pending_.size(); i < kFrameTuples; i++) {
      hyracks::Tuple t;
      AX_ASSIGN_OR_RETURN(bool have, spill_reader_->Next(&t));
      if (!have) {
        spill_reader_.reset();
        break;
      }
      spill_pending_.push_back(std::move(t));
    }
  }
}

// ---- parse stage ------------------------------------------------------------

void FeedRuntime::ParseLoop() {
  Status st = RunParse();
  if (!st.ok()) {
    SetError(st);
    intake_q_.Poison(st);
    storage_q_.Poison(st);
  }
  storage_q_.CloseOneProducer();
}

Status FeedRuntime::RunParse() {
  Frame in, out;
  out.reserve(kFrameTuples);
  auto flush = [&]() -> Status {
    if (out.empty()) return Status::OK();
    m_depth_storage_->Record(storage_q_.ApproxFrames());
    Frame recycled;
    Status st = storage_q_.PushFrame(std::move(out), &recycled);
    out = std::move(recycled);
    out.clear();
    return st;
  };
  for (;;) {
    AX_ASSIGN_OR_RETURN(bool more, intake_q_.PopFrame(&in));
    if (!more) break;
    for (auto& t : in) {
      // Fast path: deletions and records the adapter already produced in
      // parsed form have no work in this stage — forward the tuple as-is
      // instead of paying the record↔tuple round trip per record.
      if (t.fields.size() == 3 && t.fields[1].is_int() &&
          t.fields[1].AsInt() != 0) {
        out.push_back(std::move(t));
        if (out.size() >= kFrameTuples) AX_RETURN_NOT_OK(flush());
        continue;
      }
      AX_ASSIGN_OR_RETURN(FeedRecord r, TupleToRecord(std::move(t)));
      if (!r.deletion && !r.parsed) {
        bool parsed_ok = false;
        for (int attempt = 0; attempt <= options_.policy.max_retries;
             attempt++) {
          if (attempt > 0) {
            m_retries_parse_->Add();
            BackoffSleep(attempt);
          }
          Status st = options_.faults != nullptr
                          ? options_.faults->CheckParse(r.seqno)
                          : Status::OK();
          if (st.ok()) {
            auto v = ParseRaw(options_.parse, r.raw);
            if (v.ok()) {
              r.value = std::move(v).value();
              r.parsed = true;
              r.raw.clear();
              parsed_ok = true;
              break;
            }
          }
          if (killed_.load()) return Status::IOError("feed killed");
        }
        if (!parsed_ok) {
          // Soft error (feeds-paper semantics): a malformed record is
          // skipped and counted, not fatal — but it must retire or the
          // watermark would stall behind it forever.
          m_parse_errors_->Add();
          progress_.Retire(r.seqno);
          continue;
        }
      }
      out.push_back(RecordToTuple(std::move(r)));
      if (out.size() >= kFrameTuples) AX_RETURN_NOT_OK(flush());
    }
    in.clear();
    // Ship the partial frame now rather than holding it for the next pop:
    // a quiescent feed must not strand its last records in this stage.
    AX_RETURN_NOT_OK(flush());
  }
  return flush();
}

// ---- storage stage ----------------------------------------------------------

void FeedRuntime::StorageLoop() {
  Status st = RunStorage();
  if (!st.ok()) {
    SetError(st);
    intake_q_.Poison(st);
    storage_q_.Poison(st);
  }
  finished_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
  }
  finish_cv_.notify_all();
}

Status FeedRuntime::RunStorage() {
  Frame in;
  std::vector<uint64_t> done;  // applied this frame, not yet retired
  done.reserve(kFrameTuples);
  // Progress bookkeeping is batched per frame (one lock, one counter
  // update); a fatal mid-frame exit settles the batch first so the
  // watermark and applied count stay exact up to the failing record.
  auto settle = [&]() {
    if (done.empty()) return;
    applied_.fetch_add(done.size(), std::memory_order_relaxed);
    m_ingested_->Add(done.size());
    progress_.RetireMany(done);
    done.clear();
  };
  for (;;) {
    AX_ASSIGN_OR_RETURN(bool more, storage_q_.PopFrame(&in));
    if (!more) return Status::OK();
    for (auto& t : in) {
      // Decode in place (the layout of RecordToTuple): every record on
      // this queue is a deletion key or a parsed value, and applying it
      // by reference skips a FeedRecord construction per record.
      if (t.fields.size() != 3 || !t.fields[0].is_int() ||
          !t.fields[1].is_int()) {
        return Status::Corruption("malformed feed record tuple");
      }
      const uint64_t seqno = static_cast<uint64_t>(t.fields[0].AsInt());
      const bool deletion =
          (t.fields[1].AsInt() & kRecordFlagDeletion) != 0;
      const adm::Value& payload = t.fields[2];
      Status last = Status::OK();
      bool applied = false;
      for (int attempt = 0; attempt <= options_.policy.max_retries;
           attempt++) {
        if (attempt > 0) {
          m_retries_storage_->Add();
          BackoffSleep(attempt);
        }
        last = options_.faults != nullptr
                   ? options_.faults->CheckStorage(seqno)
                   : Status::OK();
        if (last.ok()) last = ApplyRecord(deletion, payload);
        if (last.ok()) {
          applied = true;
          break;
        }
        if (killed_.load()) {
          settle();
          return Status::IOError("feed killed");
        }
      }
      // Storage failure past the retry budget is fatal: the WAL'd upsert
      // path refusing a record means the feed cannot make progress.
      if (!applied) {
        settle();
        return last;
      }
      done.push_back(seqno);
    }
    in.clear();
    settle();
  }
}

Status FeedRuntime::ApplyRecord(bool deletion, const adm::Value& payload) {
  if (deletion) {
    // Deleting an absent key is a no-op, not an error: an at-least-once
    // replay may re-delete.
    auto res = sink_->DeleteByKey(options_.dataset, payload);
    return res.ok() ? Status::OK() : res.status();
  }
  return sink_->UpsertValue(options_.dataset, payload);
}

}  // namespace asterix::feeds
