// FeedRuntime: the three-stage intake → parse → storage pipeline of the
// feeds paper, built on hyracks bounded frame queues. Each stage runs on
// its own thread; the ingestion policy acts at the intake→parse boundary
// (the only place the paper's policies differ — everything downstream uses
// plain blocking backpressure); failures are handled per stage with
// bounded exponential-backoff retry; progress is a contiguously-applied
// seqno watermark that can be persisted and resumed at-least-once.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "feeds/adapter.h"
#include "feeds/fault_injector.h"
#include "feeds/sink.h"
#include "feeds/policy.h"
#include "hyracks/exchange.h"
#include "hyracks/spill.h"

namespace asterix::feeds {

/// Tracks the highest seqno up to which *every* record has been retired
/// (applied to storage, deliberately discarded, or skipped as a soft parse
/// error). Records retire out of order — Discard drops at intake while
/// earlier records are still in flight — so the watermark only advances
/// contiguously; persisting it can never create a gap. Retiring the same
/// seqno twice is legal (adapter restarts re-emit records).
class ProgressTracker {
 public:
  explicit ProgressTracker(uint64_t watermark = 0)
      : watermark_(watermark), next_(watermark + 1) {}

  void Retire(uint64_t seqno) AX_EXCLUDES(mu_);
  /// Retire a batch under one lock (the storage stage's per-frame path).
  void RetireMany(const std::vector<uint64_t>& seqnos) AX_EXCLUDES(mu_);
  uint64_t watermark() const AX_EXCLUDES(mu_);
  /// Block until watermark() >= seqno (false on timeout).
  bool WaitForWatermark(uint64_t seqno, int timeout_ms) AX_EXCLUDES(mu_);

 private:
  /// Returns true when the contiguous watermark advanced.
  bool RetireLocked(uint64_t seqno) AX_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t watermark_ AX_GUARDED_BY(mu_);
  uint64_t next_ AX_GUARDED_BY(mu_);
  std::set<uint64_t> pending_ AX_GUARDED_BY(mu_);  // retired above next_
};

struct FeedRuntimeOptions {
  std::string feed_name = "feed";
  std::string dataset;
  FeedPolicy policy;
  ParseSpec parse;
  /// Optional deterministic fault hooks (not owned; must outlive Stop).
  FaultInjector* faults = nullptr;
  /// Directory for kSpill run files (required for the Spill policy).
  std::string spill_dir;
  /// Progress file for durable resume; empty disables persistence.
  std::string progress_path;
  /// Resume point: the adapter re-produces records with seqno > this.
  uint64_t resume_after = 0;
  /// Records pulled per adapter poll. Matching the frame size keeps the
  /// intake stage producing full frames instead of fragments.
  size_t adapter_batch = 256;
};

/// One running feed connection. Start() spawns the three stage threads;
/// Stop() drains gracefully and persists progress; Kill() simulates a
/// crash (poison, join, no persistence) for fault/restart tests.
class FeedRuntime {
 public:
  FeedRuntime(FeedSink* sink, std::unique_ptr<FeedAdapter> adapter,
              FeedRuntimeOptions options);
  ~FeedRuntime();

  Status Start();
  /// Graceful: stop pulling from the adapter, drain the pipeline (spill
  /// backlog included), join, persist progress. Returns the feed's error
  /// state (OK for a clean stop).
  Status Stop();
  /// Crash simulation: poison the queues, join, and deliberately skip
  /// progress persistence — recovery must start from the last checkpoint.
  void Kill();

  /// Wait until the feed has fully drained after the adapter reported
  /// end-of-feed (or failed). Does not join threads — call Stop() after.
  Status WaitForCompletion(int timeout_ms = 30000);
  /// Wait until the applied watermark reaches `seqno`.
  Status WaitForSeqno(uint64_t seqno, int timeout_ms = 30000);

  /// Highest contiguously retired seqno (the durable resume point).
  uint64_t watermark() const { return progress_.watermark(); }
  /// Records actually applied to storage (upserts + deletes).
  uint64_t records_applied() const {
    return applied_.load(std::memory_order_relaxed);
  }
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  Status error() const AX_EXCLUDES(error_mu_);
  const FeedRuntimeOptions& options() const { return options_; }

  /// Atomically write the current watermark to options().progress_path.
  Status PersistProgress() const;
  /// Read a progress file written by PersistProgress; 0 when absent.
  static Result<uint64_t> LoadProgress(const std::string& path);

 private:
  // ---- stage bodies (one thread each) ---------------------------------------
  void IntakeLoop();
  void ParseLoop();
  void StorageLoop();

  Status RunIntake();
  Status RunParse();
  Status RunStorage();
  /// One adapter poll + policy-aware delivery. Sets *ended at end-of-feed.
  Status PullOnce(bool* ended);
  Status DeliverFrame(hyracks::Frame* frame);
  Status SpillFrame(hyracks::Frame* frame);
  Status RotateSpill();
  /// Move spilled records into the intake queue while it has room.
  Status DrainSpill(bool blocking);
  bool SpillBacklogEmpty() const;

  Status ApplyRecord(bool deletion, const adm::Value& payload);
  void SetError(const Status& st) AX_EXCLUDES(error_mu_);
  void BackoffSleep(int attempt) const;

  FeedSink* sink_;
  std::unique_ptr<FeedAdapter> adapter_;
  FeedRuntimeOptions options_;

  hyracks::BoundedTupleQueue intake_q_;   // intake -> parse
  hyracks::BoundedTupleQueue storage_q_;  // parse -> storage
  /// Where the intake stage delivers. Adapters whose contract says every
  /// record arrives parsed (ParseSpec::Format::kParsed) have no parse
  /// work at all, so the parse stage is fused out: intake feeds
  /// storage_q_ directly and the parse thread is never spawned. Ordering
  /// is unaffected — every record takes the same path.
  hyracks::BoundedTupleQueue* out_q_;
  bool parse_fused_;

  std::thread intake_thread_, parse_thread_, storage_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> finished_{false};
  std::atomic<uint64_t> applied_{0};
  /// Highest seqno handed to the parse queue or spill (the adapter-restart
  /// resume point: everything at or below it is already in the pipeline).
  uint64_t last_enqueued_ = 0;  // intake thread only

  ProgressTracker progress_;
  // axlint: allow(lock-order): cv rendezvous for Finish(); predicate is atomic
  std::mutex finish_mu_;
  std::condition_variable finish_cv_;
  mutable std::mutex error_mu_;
  Status error_ AX_GUARDED_BY(error_mu_);

  // ---- kSpill state (intake thread only) ------------------------------------
  std::unique_ptr<hyracks::RunWriter> spill_writer_;
  std::deque<std::string> spill_segments_;  // finished, unread run files
  std::unique_ptr<hyracks::RunReader> spill_reader_;
  hyracks::Frame spill_pending_;  // oldest spilled frame awaiting queue room
  uint64_t spill_seq_ = 0;

  // ---- kThrottle state (intake thread only) ---------------------------------
  double throttle_rate_ = 0;  // records/sec; 0 = unclamped
  uint64_t throttle_sent_ = 0;
  uint64_t throttle_epoch_ns_ = 0;
  uint64_t clean_pushes_ = 0;

  // ---- cached metrics -------------------------------------------------------
  metrics::Counter* m_ingested_;
  metrics::Counter* m_discarded_;
  metrics::Counter* m_spilled_bytes_;
  metrics::Counter* m_spilled_records_;
  metrics::Counter* m_retries_parse_;
  metrics::Counter* m_retries_storage_;
  metrics::Counter* m_retries_adapter_;
  metrics::Counter* m_restarts_;
  metrics::Counter* m_parse_errors_;
  metrics::Counter* m_throttled_;
  metrics::Counter* m_intake_blocked_;
  metrics::Histogram* m_depth_intake_;
  metrics::Histogram* m_depth_storage_;
};

}  // namespace asterix::feeds
