#include "feeds/adapter.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "adm/delimited.h"
#include "adm/json.h"
#include "common/io.h"
#include "common/metrics.h"

namespace asterix::feeds {

namespace {

constexpr size_t kReadChunk = 256 * 1024;

std::string GetProp(const std::map<std::string, std::string>& props,
                    const char* key, const std::string& fallback) {
  return GetAdapterProp(props, key, fallback);
}

/// Registry of adapters contributed by higher layers. Guarded by its own
/// local mutex; registration happens at subsystem init, lookups at feed
/// connect — never on the data path.
struct AdapterRegistry {
  std::mutex mu;
  std::map<std::string, AdapterFactory> factories AX_GUARDED_BY(mu);
};

AdapterRegistry& Registry() {
  static AdapterRegistry* r = new AdapterRegistry();
  return *r;
}

}  // namespace

std::string GetAdapterProp(const std::map<std::string, std::string>& props,
                           const char* key, const std::string& fallback) {
  auto it = props.find(key);
  return it == props.end() ? fallback : it->second;
}

void RegisterAdapterFactory(const std::string& name, AdapterFactory factory) {
  AdapterRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.factories[name] = std::move(factory);
}

bool HasAdapterFactory(const std::string& name) {
  if (name == "localfs" || name == "channel") return true;
  AdapterRegistry& r = Registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.factories.count(name) > 0;
}

// ---- parse spec -------------------------------------------------------------

Result<ParseSpec> BuildParseSpec(
    const std::map<std::string, std::string>& props, adm::TypePtr type) {
  ParseSpec spec;
  std::string fmt = GetProp(props, "format", "adm");
  if (fmt == "delimited-text" || fmt == "csv") {
    spec.format = ParseSpec::Format::kDelimited;
    std::string d = GetProp(props, "delimiter", ",");
    if (d.size() != 1) {
      return Status::InvalidArgument("feed delimiter must be one character");
    }
    spec.delimiter = d[0];
    if (!type) {
      return Status::InvalidArgument(
          "delimited-text feed requires a dataset with a declared type");
    }
    spec.type = std::move(type);
  } else if (fmt == "adm" || fmt == "json") {
    spec.format = ParseSpec::Format::kAdm;
    spec.type = std::move(type);
  } else {
    return Status::InvalidArgument("unknown feed format '" + fmt + "'");
  }
  return spec;
}

Result<adm::Value> ParseRaw(const ParseSpec& spec, const std::string& raw) {
  if (spec.format == ParseSpec::Format::kDelimited) {
    return adm::ParseDelimitedLine(raw, spec.delimiter, spec.type);
  }
  return adm::ParseAdm(raw);
}

// ---- LocalFsAdapter ---------------------------------------------------------

Status LocalFsAdapter::Open(uint64_t resume_after) {
  offset_ = 0;
  pending_.clear();
  next_seqno_ = 1;
  skip_ = resume_after;
  if (!tail_ && !fs::Exists(path_)) {
    return Status::IOError("feed source not found: " + path_);
  }
  return Status::OK();
}

Result<bool> LocalFsAdapter::NextBatch(std::vector<FeedRecord>* out,
                                       size_t max, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  size_t appended = 0;
  auto emit = [&](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return;  // blank lines carry no seqno
    uint64_t seq = next_seqno_++;
    if (skip_ > 0) {
      skip_--;
      return;
    }
    FeedRecord r;
    r.seqno = seq;
    r.raw = std::move(line);
    out->push_back(std::move(r));
    appended++;
  };
  for (;;) {
    // A large on-disk backlog keeps read_any true for many iterations, so
    // the deadline branch below is never reached; poll the runtime's stop
    // probe here or Stop() blocks for the whole catch-up.
    if (ShouldStop()) return true;
    size_t nl;
    while (appended < max &&
           (nl = pending_.find('\n')) != std::string::npos) {
      emit(pending_.substr(0, nl));
      pending_.erase(0, nl + 1);
    }
    if (appended >= max) return true;

    bool read_any = false;
    if (fs::Exists(path_)) {
      AX_ASSIGN_OR_RETURN(std::unique_ptr<File> file, File::Open(path_));
      uint64_t size = file->size();
      if (offset_ < size) {
        size_t n = static_cast<size_t>(
            std::min<uint64_t>(kReadChunk, size - offset_));
        size_t old = pending_.size();
        pending_.resize(old + n);
        AX_RETURN_NOT_OK(file->ReadAt(offset_, n, pending_.data() + old));
        offset_ += n;
        read_any = true;
      }
    }
    if (read_any) {
      // Honor the timeout during backlog catch-up too: hand back whatever
      // is complete and let the runtime re-poll (and notice stop/kill).
      if (std::chrono::steady_clock::now() >= deadline) return true;
      continue;
    }

    if (!tail_) {
      // EOF: a trailing unterminated line is still one record.
      emit(std::move(pending_));
      pending_.clear();
      return false;
    }
    if (appended > 0) return true;
    if (std::chrono::steady_clock::now() >= deadline) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---- ChannelAdapter ---------------------------------------------------------

uint64_t ChannelAdapter::PushRecord(FeedRecord r) {
  std::lock_guard<std::mutex> lock(mu_);
  r.seqno = log_.size() + 1;
  log_.push_back(std::move(r));
  cv_.notify_all();
  return log_.size();
}

uint64_t ChannelAdapter::Push(adm::Value record) {
  FeedRecord r;
  r.parsed = true;
  r.value = std::move(record);
  return PushRecord(std::move(r));
}

uint64_t ChannelAdapter::PushRaw(std::string raw) {
  FeedRecord r;
  r.raw = std::move(raw);
  return PushRecord(std::move(r));
}

uint64_t ChannelAdapter::PushDelete(adm::Value key) {
  FeedRecord r;
  r.deletion = true;
  r.key = std::move(key);
  return PushRecord(std::move(r));
}

void ChannelAdapter::CloseChannel() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

uint64_t ChannelAdapter::pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

Status ChannelAdapter::Open(uint64_t resume_after) {
  std::lock_guard<std::mutex> lock(mu_);
  cursor_ = std::min<size_t>(resume_after, log_.size());
  return Status::OK();
}

Result<bool> ChannelAdapter::NextBatch(std::vector<FeedRecord>* out,
                                       size_t max, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Explicit wait loop (not a predicate lambda) so thread-safety analysis
  // sees the guarded accesses under the lock.
  while (cursor_ >= log_.size() && !closed_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  size_t appended = 0;
  while (cursor_ < log_.size() && appended < max) {
    out->push_back(log_[cursor_++]);
    appended++;
  }
  return !(closed_ && cursor_ >= log_.size());
}

// ---- factory ----------------------------------------------------------------

Result<std::unique_ptr<FeedAdapter>> MakeAdapter(
    const std::string& adapter,
    const std::map<std::string, std::string>& props) {
  if (adapter == "localfs") {
    std::string path = GetProp(props, "path", "");
    if (path.empty()) {
      return Status::InvalidArgument(
          "localfs feed requires a \"path\" property");
    }
    const std::string prefix = "localhost://";
    if (path.rfind(prefix, 0) == 0) path = path.substr(prefix.size());
    bool tail = GetProp(props, "tail", "false") == "true";
    return {std::make_unique<LocalFsAdapter>(std::move(path), tail)};
  }
  if (adapter == "channel") {
    return {std::make_unique<ChannelAdapter>()};
  }
  {
    AdapterRegistry& r = Registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.factories.find(adapter);
    if (it != r.factories.end()) return it->second(props);
  }
  return Status::InvalidArgument("unknown feed adapter '" + adapter + "'");
}

}  // namespace asterix::feeds
