// The unit flowing through a feed pipeline: one sequence-numbered change
// (an upsert — raw or already parsed — or a deletion). Records ride the
// hyracks BoundedTupleQueue between stages encoded as 3-field tuples, so
// the feed pipeline reuses the exchange's frame batching, backpressure and
// poison semantics unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "adm/value.h"
#include "common/result.h"
#include "hyracks/tuple.h"

namespace asterix::feeds {

/// One feed change. `seqno` is assigned by the adapter, dense from 1 within
/// one feed lifetime, and is the unit of durable progress: the runtime
/// persists the contiguously-applied watermark and a restarted feed asks
/// its adapter to resume after it (at-least-once; the WAL'd upsert path is
/// idempotent, so replays converge).
struct FeedRecord {
  uint64_t seqno = 0;
  bool deletion = false;
  /// True when `value` holds a parsed ADM record (generator/channel
  /// adapters); false when `raw` still needs the parse stage (localfs).
  bool parsed = false;
  adm::Value key;    // primary key, deletions only
  adm::Value value;  // parsed record, upserts with parsed=true
  std::string raw;   // unparsed line, upserts with parsed=false
};

/// Tuple layout: [seqno:int64, flags:int64, payload]. Payload is the key
/// for deletions, the parsed record for parsed upserts, the raw line (as an
/// ADM string) otherwise.
inline constexpr int64_t kRecordFlagDeletion = 1;
inline constexpr int64_t kRecordFlagParsed = 2;

inline hyracks::Tuple RecordToTuple(FeedRecord&& r) {
  int64_t flags = (r.deletion ? kRecordFlagDeletion : 0) |
                  (r.parsed ? kRecordFlagParsed : 0);
  hyracks::Tuple t;
  t.fields.reserve(3);
  t.fields.push_back(adm::Value::Int(static_cast<int64_t>(r.seqno)));
  t.fields.push_back(adm::Value::Int(flags));
  if (r.deletion) {
    t.fields.push_back(std::move(r.key));
  } else if (r.parsed) {
    t.fields.push_back(std::move(r.value));
  } else {
    t.fields.push_back(adm::Value::String(std::move(r.raw)));
  }
  return t;
}

inline Result<FeedRecord> TupleToRecord(hyracks::Tuple&& t) {
  if (t.fields.size() != 3 || !t.fields[0].is_int() || !t.fields[1].is_int()) {
    return Status::Corruption("malformed feed record tuple");
  }
  FeedRecord r;
  r.seqno = static_cast<uint64_t>(t.fields[0].AsInt());
  int64_t flags = t.fields[1].AsInt();
  r.deletion = (flags & kRecordFlagDeletion) != 0;
  r.parsed = (flags & kRecordFlagParsed) != 0;
  if (r.deletion) {
    r.key = std::move(t.fields[2]);
  } else if (r.parsed) {
    r.value = std::move(t.fields[2]);
  } else {
    if (!t.fields[2].is_string()) {
      return Status::Corruption("raw feed record payload must be a string");
    }
    r.raw = t.fields[2].AsString();
  }
  return r;
}

}  // namespace asterix::feeds
