// Deterministic fault injection for the feed pipeline. Tests (and the
// ingestion bench's recovery scenario) arm failures keyed by record seqno
// or stage; the runtime consults the injector at each stage boundary. All
// hooks are thread-safe (the three pipeline stages run on their own
// threads) and no-ops when nothing is armed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace asterix::feeds {

class FaultInjector {
 public:
  // ---- arming (test side) ---------------------------------------------------
  /// Parsing record `seqno` fails `times` times, then succeeds.
  void FailParseAt(uint64_t seqno, int times) AX_EXCLUDES(mu_);
  /// Storing record `seqno` fails `times` times, then succeeds.
  void FailStorageAt(uint64_t seqno, int times) AX_EXCLUDES(mu_);
  /// The next `n_records` storage applies each sleep `stall_ms` first —
  /// a slow consumer, the overload every ingestion policy is about.
  void StallStorage(int stall_ms, uint64_t n_records) AX_EXCLUDES(mu_);
  /// The adapter dies (once) right after emitting record `seqno`.
  void KillAdapterAfter(uint64_t seqno) AX_EXCLUDES(mu_);

  // ---- hooks (runtime side) -------------------------------------------------
  /// Non-OK when an armed parse fault fires for `seqno` (decrements it).
  Status CheckParse(uint64_t seqno) AX_EXCLUDES(mu_);
  /// Applies any armed stall, then fires any armed storage fault.
  Status CheckStorage(uint64_t seqno) AX_EXCLUDES(mu_);
  /// True exactly once when the armed adapter kill covers `seqno`.
  bool TakeAdapterKill(uint64_t seqno) AX_EXCLUDES(mu_);

 private:
  std::mutex mu_;
  std::map<uint64_t, int> parse_faults_ AX_GUARDED_BY(mu_);
  std::map<uint64_t, int> storage_faults_ AX_GUARDED_BY(mu_);
  int stall_ms_ AX_GUARDED_BY(mu_) = 0;
  uint64_t stall_records_ AX_GUARDED_BY(mu_) = 0;
  uint64_t kill_after_seqno_ AX_GUARDED_BY(mu_) = 0;
  bool kill_armed_ AX_GUARDED_BY(mu_) = false;
};

}  // namespace asterix::feeds
