// FeedSink: the narrow surface a feed pipeline needs from whatever it
// feeds INTO. The storage stage applies parsed records as upserts/deletes;
// it must not know about the full Instance facade (that would invert the
// layering — feeds sits below asterix; see DESIGN.md §4e layering DAG).
// asterix::Instance implements this interface.
#pragma once

#include <string>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::feeds {

class FeedSink {
 public:
  virtual ~FeedSink() = default;

  /// Idempotent primary-key upsert of one record into `dataset`.
  virtual Status UpsertValue(const std::string& dataset,
                             const adm::Value& record) = 0;

  /// Delete by primary key; false when the key was absent (a legal
  /// outcome for at-least-once replay).
  virtual Result<bool> DeleteByKey(const std::string& dataset,
                                   const adm::Value& pk) = 0;
};

}  // namespace asterix::feeds
