#include "feeds/policy.h"

#include <algorithm>

namespace asterix::feeds {

Result<FeedPolicy> FeedPolicy::Named(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
  FeedPolicy p;
  if (upper == "BASIC") {
    p.kind = PolicyKind::kBasic;
  } else if (upper == "SPILL") {
    p.kind = PolicyKind::kSpill;
  } else if (upper == "DISCARD") {
    p.kind = PolicyKind::kDiscard;
  } else if (upper == "THROTTLE") {
    p.kind = PolicyKind::kThrottle;
  } else {
    return Status::InvalidArgument(
        "unknown ingestion policy '" + name +
        "' (expected BASIC, SPILL, DISCARD or THROTTLE)");
  }
  return p;
}

const char* FeedPolicy::name() const {
  switch (kind) {
    case PolicyKind::kBasic:
      return "BASIC";
    case PolicyKind::kSpill:
      return "SPILL";
    case PolicyKind::kDiscard:
      return "DISCARD";
    case PolicyKind::kThrottle:
      return "THROTTLE";
  }
  return "BASIC";
}

}  // namespace asterix::feeds
