#include "feeds/fault_injector.h"

#include <chrono>
#include <thread>

namespace asterix::feeds {

void FaultInjector::FailParseAt(uint64_t seqno, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  parse_faults_[seqno] = times;
}

void FaultInjector::FailStorageAt(uint64_t seqno, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  storage_faults_[seqno] = times;
}

void FaultInjector::StallStorage(int stall_ms, uint64_t n_records) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_ms_ = stall_ms;
  stall_records_ = n_records;
}

void FaultInjector::KillAdapterAfter(uint64_t seqno) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_after_seqno_ = seqno;
  kill_armed_ = true;
}

Status FaultInjector::CheckParse(uint64_t seqno) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = parse_faults_.find(seqno);
  if (it == parse_faults_.end() || it->second <= 0) return Status::OK();
  it->second--;
  return Status::IOError("injected parse fault at seqno " +
                         std::to_string(seqno));
}

Status FaultInjector::CheckStorage(uint64_t seqno) {
  int sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stall_records_ > 0 && stall_ms_ > 0) {
      stall_records_--;
      sleep_ms = stall_ms_;
    }
  }
  // Sleep outside the lock so a stalled storage stage doesn't serialize
  // against the test thread arming further faults.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = storage_faults_.find(seqno);
  if (it == storage_faults_.end() || it->second <= 0) return Status::OK();
  it->second--;
  return Status::IOError("injected storage fault at seqno " +
                         std::to_string(seqno));
}

bool FaultInjector::TakeAdapterKill(uint64_t seqno) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!kill_armed_ || seqno < kill_after_seqno_) return false;
  kill_armed_ = false;
  return true;
}

}  // namespace asterix::feeds
