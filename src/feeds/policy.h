// Ingestion policies: what a feed does when the consumer can't keep up or
// a stage fails (Grover & Carey, "Scalable Fault-Tolerant Data Feeds in
// AsterixDB" — PAPERS.md). The policy lattice here mirrors the paper's
// built-in policies: Basic blocks (backpressure reaches the source), Spill
// overflows to disk so memory stays bounded, Discard sheds load and counts
// it, Throttle adaptively clamps the intake rate.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace asterix::feeds {

enum class PolicyKind : uint8_t {
  kBasic,     // block on a full queue — backpressure the adapter/source
  kSpill,     // overflow to disk run files; re-queue when pressure eases
  kDiscard,   // drop overflow records (counted in feeds.discarded)
  kThrottle,  // adaptively clamp intake rate; never drops, rarely blocks
};

/// Everything tunable about one feed connection: the overflow policy plus
/// the per-stage failure handling (bounded retry with exponential backoff)
/// the feeds paper prescribes.
struct FeedPolicy {
  PolicyKind kind = PolicyKind::kBasic;

  /// Per-stage queue capacity in tuples (rounded up to whole frames by the
  /// underlying hyracks::BoundedTupleQueue).
  size_t queue_capacity_tuples = 1024;

  // ---- per-stage retry (parse failures, storage failures, adapter death) ----
  int max_retries = 3;
  int initial_backoff_ms = 2;
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 200;
  /// How many times a dead adapter is reopened before the feed fails.
  int adapter_max_restarts = 3;

  // ---- kSpill ---------------------------------------------------------------
  /// Tuples per spill segment before the run file is rotated.
  size_t spill_segment_tuples = 4096;

  // ---- kThrottle ------------------------------------------------------------
  /// Floor for the adaptive clamp (records/sec). The clamp halves the
  /// observed intake rate on congestion and recovers by 25% per clean
  /// stretch, but never below this.
  double throttle_min_rate = 200.0;

  /// Parse a DDL policy name ("BASIC" | "SPILL" | "DISCARD" | "THROTTLE",
  /// case-insensitive) into the defaults above.
  static Result<FeedPolicy> Named(const std::string& name);
  /// Inverse of Named for metadata persistence.
  const char* name() const;
};

}  // namespace asterix::feeds
