// Algebricks logical operators (paper Fig. 5: "Algebricks algebra" box).
// Language translators (SQL++/AQL) produce this tree; the rule-based
// rewriter (rules.h) normalizes and optimizes it; the asterix executor
// lowers it to partitioned Hyracks pipelines.
//
// Schema convention: every operator exposes `schema()` — the ordered list
// of live variables its output tuples carry; the position of a variable in
// that list is its tuple field position at runtime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebricks/expr.h"
#include "hyracks/groupby.h"

namespace asterix::algebricks {

enum class LogicalOpKind : uint8_t {
  kEmptySource,   // produces one empty tuple
  kDataScan,      // scan a dataset partition-parallel; binds one var
  kUnnest,        // binds var = each item of a collection expr
  kSelect,        // filter by condition expr
  kAssign,        // binds vars = scalar exprs
  kJoin,          // inner / left-outer / left-semi with condition
  kGroupBy,       // grouping keys + aggregates (+ optional GROUP AS)
  kOrder,         // order by exprs
  kLimit,         // limit/offset
  kDistinct,      // duplicate elimination on the full output record
  kProject,       // keep listed vars
  kIndexSearch,   // access-path op introduced by the optimizer
  kInsert,        // DML sinks (insert/upsert/delete into a dataset)
  kDelete,
};

enum class JoinKind : uint8_t { kInner, kLeftOuter, kLeftSemi };

/// Index access paths the optimizer can select (paper §III item 8).
enum class AccessPathKind : uint8_t {
  kPrimaryLookup,    // primary key point lookup
  kPrimaryRange,     // primary key range
  kSecondaryBTree,   // secondary B+tree range + sorted-PK primary fetch
  kRTree,            // spatial intersection + sorted-PK primary fetch
  kKeyword,          // inverted keyword index + sorted-PK primary fetch
};

struct LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

/// One node of the logical plan. A deliberately "flat" struct (per-kind
/// fields coexist) — the tree is short-lived compiler state.
struct LogicalOp {
  LogicalOpKind kind;
  std::vector<LogicalOpPtr> children;

  // kDataScan
  std::string dataset;
  VarId scan_var = -1;
  /// Columnar pushdown (optimizer-filled, columnar datasets only; see
  /// PushColumnarScans). Predicates are conjuncts absorbed from a Select:
  /// field <cmp> constant, with cmp one of eq/lt/le/gt/ge.
  struct ScanPredicate {
    std::string field;
    std::string cmp;
    adm::Value constant = adm::Value::Missing();
  };
  std::vector<ScanPredicate> scan_predicates;
  /// Projected top-level fields, valid iff scan_fields_pushed (an empty
  /// pushed set is legal — COUNT(*) touches no fields).
  std::vector<std::string> scan_fields;
  bool scan_fields_pushed = false;

  // kUnnest
  VarId unnest_var = -1;
  ExprPtr unnest_expr;
  bool unnest_outer = false;

  // kSelect / kJoin condition
  ExprPtr condition;
  JoinKind join_kind = JoinKind::kInner;

  // kAssign
  std::vector<std::pair<VarId, ExprPtr>> assigns;

  // kGroupBy
  std::vector<std::pair<VarId, ExprPtr>> group_keys;
  struct Agg {
    VarId var;
    hyracks::AggKind kind;
    ExprPtr arg;  // null for COUNT(*)
  };
  std::vector<Agg> aggs;

  // kOrder
  struct OrderKey {
    ExprPtr expr;
    bool ascending = true;
  };
  std::vector<OrderKey> order_keys;

  // kLimit
  int64_t limit = -1;
  int64_t offset = 0;

  // kProject
  std::vector<VarId> project_vars;

  // kIndexSearch (replaces a kDataScan + selects)
  AccessPathKind access_path = AccessPathKind::kPrimaryLookup;
  std::string index_name;      // which secondary index
  ExprPtr search_lo, search_hi;  // key bounds (inclusive); point: lo==hi
  bool sort_pks_before_fetch = true;  // the [26] trick — ablatable
  ExprPtr residual;            // re-check predicate after fetch

  // kInsert / kDelete
  std::string target_dataset;
  ExprPtr payload;  // record to insert / key expr for delete
  bool upsert = false;

  /// Output variables in tuple position order.
  std::vector<VarId> schema() const;

  /// Pretty-print the subtree (for plan fingerprints and EXPLAIN).
  std::string ToString(int indent = 0) const;

  static LogicalOpPtr Make(LogicalOpKind kind) {
    auto op = std::make_shared<LogicalOp>();
    op->kind = kind;
    return op;
  }
};

}  // namespace asterix::algebricks
