// The rule-based, data-partition-aware rewriter of paper Fig. 5 ("Rewriter"
// + "Rule Sets"). Rules: constant folding, conjunct splitting, select
// push-down (below assigns/unnests, into join branches and join
// conditions), access-path selection (primary/secondary B+tree, R-tree,
// inverted keyword — §III item 8), and dead-assign elimination. Each rule
// can be toggled off for the Fig. 5 ablation benchmark.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebricks/functions.h"
#include "algebricks/logical.h"

namespace asterix::algebricks {

/// What the optimizer needs to know about datasets (implemented by the
/// asterix metadata manager; a test fake suffices for unit tests).
class Catalog {
 public:
  virtual ~Catalog() = default;

  struct IndexInfo {
    std::string name;
    enum Kind { kBTree, kRTree, kKeyword } kind = kBTree;
    std::string field;
  };

  virtual bool HasDataset(const std::string& name) const = 0;
  /// Primary key field name; empty when `name` is an external dataset.
  virtual std::string PrimaryKeyField(const std::string& name) const = 0;
  virtual std::vector<IndexInfo> SecondaryIndexes(
      const std::string& name) const = 0;
  /// Physical storage format of the dataset's components ("row" or
  /// "columnar"). Columnar pushdown rules only fire for "columnar".
  virtual std::string StorageFormat(const std::string& name) const {
    (void)name;
    return "row";
  }
};

/// Per-rule switches (all on by default). The Fig. 5 ablation bench flips
/// these one at a time.
struct OptimizerOptions {
  bool constant_folding = true;
  bool select_pushdown = true;
  bool index_selection = true;
  bool dead_assign_elimination = true;
  /// The [26] trick: sort secondary-index result PKs before primary fetch.
  bool sort_pks_before_fetch = true;
  /// Push projections and comparison conjuncts into scans over columnar
  /// datasets (paper §VII: columnar storage). Off = scans stay row-shaped.
  bool columnar_scan_pushdown = true;
};

/// Rewrite `root` to a (hopefully) better plan. Pure function of the tree.
Result<LogicalOpPtr> Optimize(LogicalOpPtr root, const Catalog& catalog,
                              const OptimizerOptions& options,
                              const FunctionRegistry& registry);

}  // namespace asterix::algebricks
