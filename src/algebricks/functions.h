// The scalar function registry shared by all language front ends. SQL++
// and AQL both compile to calls into this registry (paper §IV: SQL++ was
// implemented "fairly quickly as a peer of AQL, sharing the Algebricks
// query algebra"). Functions follow SQL++'s unknown-propagation rules:
// MISSING dominates NULL, and both propagate through most functions.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::algebricks {

using ScalarFn =
    std::function<Result<adm::Value>(const std::vector<adm::Value>&)>;

/// Registry of scalar functions by name. One shared instance per process
/// (Instance()); tests may build private registries.
class FunctionRegistry {
 public:
  FunctionRegistry();

  /// Look up a function; NotFound if unregistered.
  Result<const ScalarFn*> Lookup(const std::string& name) const;

  /// Register/override a function (extensions use this — paper §VII's
  /// "recognized extensions" add their own functions).
  void Register(const std::string& name, ScalarFn fn);

  bool Contains(const std::string& name) const {
    return fns_.count(name) > 0;
  }

  /// Process-wide registry with all built-ins.
  static const FunctionRegistry& Instance();

 private:
  std::map<std::string, ScalarFn> fns_;
};

}  // namespace asterix::algebricks
