#include "algebricks/expr.h"

#include <algorithm>

namespace asterix::algebricks {

void Expr::CollectVars(std::vector<VarId>* out) const {
  switch (kind) {
    case ExprKind::kConstant:
      return;
    case ExprKind::kVariable:
      if (std::find(out->begin(), out->end(), var) == out->end()) {
        out->push_back(var);
      }
      return;
    case ExprKind::kCall:
      for (const auto& a : args) a->CollectVars(out);
      return;
    case ExprKind::kQuantified: {
      args[0]->CollectVars(out);
      std::vector<VarId> inner;
      args[1]->CollectVars(&inner);
      for (VarId v : inner) {
        if (v == bound_var) continue;  // bound, not free
        if (std::find(out->begin(), out->end(), v) == out->end()) {
          out->push_back(v);
        }
      }
      return;
    }
  }
}

bool Expr::UsesOnly(const std::vector<VarId>& allowed) const {
  std::vector<VarId> used;
  CollectVars(&used);
  for (VarId v : used) {
    if (std::find(allowed.begin(), allowed.end(), v) == allowed.end()) {
      return false;
    }
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kConstant:
      return constant.ToString();
    case ExprKind::kVariable:
      return "$" + std::to_string(var);
    case ExprKind::kCall: {
      std::string s = fn + "(";
      for (size_t i = 0; i < args.size(); i++) {
        if (i) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kQuantified:
      return std::string(quantifier_some ? "some" : "every") + " $" +
             std::to_string(bound_var) + " in " + args[0]->ToString() +
             " satisfies " + args[1]->ToString();
  }
  return "?";
}

ExprPtr SubstituteVar(const ExprPtr& e, VarId from, const ExprPtr& to) {
  switch (e->kind) {
    case ExprKind::kConstant:
      return e;
    case ExprKind::kVariable:
      return e->var == from ? to : e;
    case ExprKind::kCall: {
      bool changed = false;
      std::vector<ExprPtr> new_args;
      new_args.reserve(e->args.size());
      for (const auto& a : e->args) {
        ExprPtr na = SubstituteVar(a, from, to);
        changed = changed || na != a;
        new_args.push_back(std::move(na));
      }
      if (!changed) return e;
      return Expr::Call(e->fn, std::move(new_args));
    }
    case ExprKind::kQuantified: {
      ExprPtr coll = SubstituteVar(e->args[0], from, to);
      // The bound variable shadows `from` inside the predicate.
      ExprPtr pred = e->bound_var == from
                         ? e->args[1]
                         : SubstituteVar(e->args[1], from, to);
      if (coll == e->args[0] && pred == e->args[1]) return e;
      return Expr::Quantified(e->quantifier_some, e->bound_var,
                              std::move(coll), std::move(pred));
    }
  }
  return e;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kCall && e->fn == "and") {
    for (const auto& a : e->args) SplitConjuncts(a, out);
    return;
  }
  out->push_back(e);
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Expr::Constant(adm::Value::Boolean(true));
  if (conjuncts.size() == 1) return conjuncts[0];
  return Expr::Call("and", std::move(conjuncts));
}

}  // namespace asterix::algebricks
