// Algebricks scalar expressions (paper Fig. 5: the "data model-agnostic"
// algebraic layer shared by every language front end — AQL, SQL++, and the
// other stack reuses of Fig. 4). An expression is a constant, a variable
// reference, or a function call; field access, comparisons, boolean logic
// and arithmetic are all function calls resolved in the function registry.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace asterix::algebricks {

/// Logical variable id, assigned by the language translator.
using VarId = int32_t;

enum class ExprKind : uint8_t { kConstant, kVariable, kCall, kQuantified };

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Immutable expression tree node.
struct Expr {
  ExprKind kind;
  adm::Value constant;        // kConstant
  VarId var = -1;             // kVariable
  std::string fn;             // kCall: registry name
  std::vector<ExprPtr> args;  // kCall

  // kQuantified: SOME/EVERY bound_var IN args[0] SATISFIES args[1].
  // args[1] may reference bound_var (correlated evaluation).
  bool quantifier_some = true;
  VarId bound_var = -1;

  static ExprPtr Constant(adm::Value v) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kConstant;
    e->constant = std::move(v);
    return e;
  }
  static ExprPtr Variable(VarId v) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kVariable;
    e->var = v;
    return e;
  }
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCall;
    e->fn = std::move(fn);
    e->args = std::move(args);
    return e;
  }
  /// field-access(base, "name") — the most common call.
  static ExprPtr Field(ExprPtr base, const std::string& name) {
    return Call("field-access",
                {std::move(base), Constant(adm::Value::String(name))});
  }
  /// SOME/EVERY var IN collection SATISFIES predicate.
  static ExprPtr Quantified(bool some, VarId var, ExprPtr collection,
                            ExprPtr predicate) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kQuantified;
    e->quantifier_some = some;
    e->bound_var = var;
    e->args = {std::move(collection), std::move(predicate)};
    return e;
  }

  /// Collect every variable referenced in the subtree.
  void CollectVars(std::vector<VarId>* out) const;
  /// True if the subtree references no variables outside `allowed`.
  bool UsesOnly(const std::vector<VarId>& allowed) const;

  std::string ToString() const;
};

/// Deep-substitute variable `from` with expression `to` (returns new tree;
/// shared subtrees are fine because expressions are immutable).
ExprPtr SubstituteVar(const ExprPtr& e, VarId from, const ExprPtr& to);

/// Split a boolean expression into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Re-join conjuncts with AND (returns TRUE constant when empty).
ExprPtr AndAll(std::vector<ExprPtr> conjuncts);

}  // namespace asterix::algebricks
