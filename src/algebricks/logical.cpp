#include "algebricks/logical.h"

#include <sstream>

namespace asterix::algebricks {

std::vector<VarId> LogicalOp::schema() const {
  switch (kind) {
    case LogicalOpKind::kEmptySource:
      return {};
    case LogicalOpKind::kDataScan:
      return {scan_var};
    case LogicalOpKind::kIndexSearch:
      return {scan_var};
    case LogicalOpKind::kUnnest: {
      auto s = children[0]->schema();
      s.push_back(unnest_var);
      return s;
    }
    case LogicalOpKind::kSelect:
    case LogicalOpKind::kLimit:
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kOrder:
      return children[0]->schema();
    case LogicalOpKind::kAssign: {
      auto s = children[0]->schema();
      for (const auto& [v, e] : assigns) s.push_back(v);
      return s;
    }
    case LogicalOpKind::kJoin: {
      auto s = children[0]->schema();
      if (join_kind != JoinKind::kLeftSemi) {
        auto r = children[1]->schema();
        s.insert(s.end(), r.begin(), r.end());
      }
      return s;
    }
    case LogicalOpKind::kGroupBy: {
      std::vector<VarId> s;
      for (const auto& [v, e] : group_keys) s.push_back(v);
      for (const auto& a : aggs) s.push_back(a.var);
      return s;
    }
    case LogicalOpKind::kProject:
      return project_vars;
    case LogicalOpKind::kInsert:
    case LogicalOpKind::kDelete:
      return {};
  }
  return {};
}

std::string LogicalOp::ToString(int indent) const {
  std::ostringstream out;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out << pad;
  switch (kind) {
    case LogicalOpKind::kEmptySource:
      out << "empty-source";
      break;
    case LogicalOpKind::kDataScan:
      out << "data-scan " << dataset << " -> $" << scan_var;
      if (scan_fields_pushed) {
        out << " project:[";
        for (size_t i = 0; i < scan_fields.size(); i++) {
          if (i) out << ",";
          out << scan_fields[i];
        }
        out << "]";
      }
      for (const auto& p : scan_predicates) {
        out << " where:" << p.field << " " << p.cmp << " "
            << p.constant.ToString();
      }
      break;
    case LogicalOpKind::kIndexSearch: {
      const char* path = access_path == AccessPathKind::kPrimaryLookup ? "primary-lookup"
                         : access_path == AccessPathKind::kPrimaryRange ? "primary-range"
                         : access_path == AccessPathKind::kSecondaryBTree ? "btree-search"
                         : access_path == AccessPathKind::kRTree ? "rtree-search"
                                                                 : "keyword-search";
      out << "index-search[" << path << "] " << dataset;
      if (!index_name.empty()) out << "." << index_name;
      out << " -> $" << scan_var;
      if (search_lo) out << " lo=" << search_lo->ToString();
      if (search_hi) out << " hi=" << search_hi->ToString();
      if (!sort_pks_before_fetch) out << " (unsorted-fetch)";
      if (residual) out << " residual=" << residual->ToString();
      break;
    }
    case LogicalOpKind::kUnnest:
      out << "unnest $" << unnest_var << " <- " << unnest_expr->ToString()
          << (unnest_outer ? " (outer)" : "");
      break;
    case LogicalOpKind::kSelect:
      out << "select " << condition->ToString();
      break;
    case LogicalOpKind::kAssign: {
      out << "assign";
      for (const auto& [v, e] : assigns) {
        out << " $" << v << " := " << e->ToString() << ";";
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      const char* jk = join_kind == JoinKind::kInner ? "inner"
                       : join_kind == JoinKind::kLeftOuter ? "left-outer"
                                                           : "left-semi";
      out << "join[" << jk << "] " << (condition ? condition->ToString() : "true");
      break;
    }
    case LogicalOpKind::kGroupBy: {
      out << "group-by keys:";
      for (const auto& [v, e] : group_keys) {
        out << " $" << v << "=" << e->ToString();
      }
      out << " aggs:";
      for (const auto& a : aggs) {
        const char* k = a.kind == hyracks::AggKind::kCount ? "count"
                        : a.kind == hyracks::AggKind::kSum ? "sum"
                        : a.kind == hyracks::AggKind::kMin ? "min"
                        : a.kind == hyracks::AggKind::kMax ? "max"
                        : a.kind == hyracks::AggKind::kAvg ? "avg"
                                                           : "collect";
        out << " $" << a.var << "=" << k << "("
            << (a.arg ? a.arg->ToString() : "*") << ")";
      }
      break;
    }
    case LogicalOpKind::kOrder: {
      out << "order-by";
      for (const auto& k : order_keys) {
        out << " " << k.expr->ToString() << (k.ascending ? " asc" : " desc");
      }
      break;
    }
    case LogicalOpKind::kLimit:
      out << "limit " << limit << " offset " << offset;
      break;
    case LogicalOpKind::kDistinct:
      out << "distinct";
      break;
    case LogicalOpKind::kProject: {
      out << "project";
      for (VarId v : project_vars) out << " $" << v;
      break;
    }
    case LogicalOpKind::kInsert:
      out << (upsert ? "upsert into " : "insert into ") << target_dataset
          << " value " << payload->ToString();
      break;
    case LogicalOpKind::kDelete:
      out << "delete from " << target_dataset;
      if (condition) out << " where " << condition->ToString();
      break;
  }
  out << "\n";
  for (const auto& c : children) out << c->ToString(indent + 1);
  return out.str();
}

}  // namespace asterix::algebricks
