#include "algebricks/optimizer.h"

#include <algorithm>
#include <set>

#include "algebricks/compiler.h"

namespace asterix::algebricks {

namespace {

bool IsDeterministic(const std::string& fn) {
  return fn != "current-datetime";
}

// ---------------------------------------------------------------------------
// Constant folding (expression-level)
// ---------------------------------------------------------------------------
Result<ExprPtr> FoldExpr(const ExprPtr& e, const FunctionRegistry& registry) {
  if (e->kind != ExprKind::kCall) return e;
  bool all_const = true;
  std::vector<ExprPtr> folded_args;
  folded_args.reserve(e->args.size());
  for (const auto& a : e->args) {
    AX_ASSIGN_OR_RETURN(ExprPtr fa, FoldExpr(a, registry));
    all_const = all_const && fa->kind == ExprKind::kConstant;
    folded_args.push_back(std::move(fa));
  }
  ExprPtr call = Expr::Call(e->fn, std::move(folded_args));
  if (all_const && IsDeterministic(e->fn) && registry.Contains(e->fn)) {
    auto v = EvaluateConst(call, registry);
    if (v.ok()) return Expr::Constant(std::move(v).value());
  }
  return call;
}

Status FoldAllExprs(const LogicalOpPtr& op, const FunctionRegistry& registry) {
  for (const auto& c : op->children) AX_RETURN_NOT_OK(FoldAllExprs(c, registry));
  auto fold = [&](ExprPtr* e) -> Status {
    if (*e) {
      AX_ASSIGN_OR_RETURN(*e, FoldExpr(*e, registry));
    }
    return Status::OK();
  };
  AX_RETURN_NOT_OK(fold(&op->condition));
  AX_RETURN_NOT_OK(fold(&op->unnest_expr));
  AX_RETURN_NOT_OK(fold(&op->payload));
  AX_RETURN_NOT_OK(fold(&op->search_lo));
  AX_RETURN_NOT_OK(fold(&op->search_hi));
  AX_RETURN_NOT_OK(fold(&op->residual));
  for (auto& [v, e] : op->assigns) AX_RETURN_NOT_OK(fold(&e));
  for (auto& [v, e] : op->group_keys) AX_RETURN_NOT_OK(fold(&e));
  for (auto& a : op->aggs) AX_RETURN_NOT_OK(fold(&a.arg));
  for (auto& k : op->order_keys) AX_RETURN_NOT_OK(fold(&k.expr));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Select push-down
// ---------------------------------------------------------------------------

LogicalOpPtr MakeSelect(ExprPtr cond, LogicalOpPtr child) {
  auto sel = LogicalOp::Make(LogicalOpKind::kSelect);
  sel->condition = std::move(cond);
  sel->children = {std::move(child)};
  return sel;
}

// Push one conjunct as deep as possible into `op`'s subtree; returns the
// node that now owns it, or null if it couldn't be placed below `op`
// (caller must keep a select above).
bool TryPush(const ExprPtr& conjunct, LogicalOpPtr* op_ref) {
  LogicalOp* op = op_ref->get();
  switch (op->kind) {
    case LogicalOpKind::kAssign: {
      // Below the assign if it doesn't use assigned vars.
      std::vector<VarId> below = op->children[0]->schema();
      if (conjunct->UsesOnly(below)) {
        if (!TryPush(conjunct, &op->children[0])) {
          op->children[0] = MakeSelect(conjunct, op->children[0]);
        }
        return true;
      }
      return false;
    }
    case LogicalOpKind::kSelect:
    case LogicalOpKind::kOrder: {
      if (!TryPush(conjunct, &op->children[0])) {
        op->children[0] = MakeSelect(conjunct, op->children[0]);
      }
      return true;
    }
    case LogicalOpKind::kUnnest: {
      std::vector<VarId> below = op->children[0]->schema();
      if (conjunct->UsesOnly(below)) {
        if (!TryPush(conjunct, &op->children[0])) {
          op->children[0] = MakeSelect(conjunct, op->children[0]);
        }
        return true;
      }
      return false;
    }
    case LogicalOpKind::kJoin: {
      std::vector<VarId> left = op->children[0]->schema();
      std::vector<VarId> right = op->children[1]->schema();
      if (conjunct->UsesOnly(left)) {
        if (!TryPush(conjunct, &op->children[0])) {
          op->children[0] = MakeSelect(conjunct, op->children[0]);
        }
        return true;
      }
      // Pushing into the right (inner) branch of a left-outer join would
      // change semantics; attach to the join condition instead.
      if (op->join_kind == JoinKind::kInner && conjunct->UsesOnly(right)) {
        if (!TryPush(conjunct, &op->children[1])) {
          op->children[1] = MakeSelect(conjunct, op->children[1]);
        }
        return true;
      }
      if (op->join_kind == JoinKind::kInner) {
        // Uses both sides: fold into the join condition.
        std::vector<ExprPtr> conjuncts;
        if (op->condition) SplitConjuncts(op->condition, &conjuncts);
        conjuncts.push_back(conjunct);
        op->condition = AndAll(std::move(conjuncts));
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// One pass: find Select nodes, split their conjuncts, push each down.
void PushSelectsOnce(LogicalOpPtr* op_ref, bool* changed) {
  LogicalOp* op = op_ref->get();
  for (auto& c : op->children) PushSelectsOnce(&c, changed);
  if (op->kind != LogicalOpKind::kSelect) return;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(op->condition, &conjuncts);
  std::vector<ExprPtr> kept;
  for (const auto& cj : conjuncts) {
    if (TryPush(cj, &op->children[0])) {
      *changed = true;
    } else {
      kept.push_back(cj);
    }
  }
  if (kept.empty()) {
    *op_ref = op->children[0];
    *changed = true;
  } else if (kept.size() != conjuncts.size()) {
    op->condition = AndAll(std::move(kept));
  }
}

// ---------------------------------------------------------------------------
// Singleton cross-join inlining
// ---------------------------------------------------------------------------

// True when `op` is a chain of kAssign over kEmptySource — cardinality is
// exactly one tuple (the WITH-clause shape).
bool IsSingletonAssignChain(const LogicalOpPtr& op,
                            std::vector<LogicalOpPtr>* assigns) {
  if (op->kind == LogicalOpKind::kEmptySource) return true;
  if (op->kind != LogicalOpKind::kAssign) return false;
  if (!IsSingletonAssignChain(op->children[0], assigns)) return false;
  assigns->push_back(op);
  return true;
}

// Join(inner, true, singleton, X) -> X with the singleton's assigns stacked
// on top. Removes the degenerate cross join WITH clauses produce — which
// would otherwise force a keyless (single-bucket) hash join.
void InlineSingletonCrossJoins(LogicalOpPtr* op_ref, bool* changed) {
  for (auto& c : (*op_ref)->children) InlineSingletonCrossJoins(&c, changed);
  LogicalOp* op = op_ref->get();
  if (op->kind != LogicalOpKind::kJoin ||
      op->join_kind != JoinKind::kInner) {
    return;
  }
  bool trivially_true =
      op->condition == nullptr ||
      (op->condition->kind == ExprKind::kConstant &&
       op->condition->constant.is_boolean() && op->condition->constant.AsBool());
  if (!trivially_true) return;
  for (int side = 0; side < 2; side++) {
    std::vector<LogicalOpPtr> assigns;
    if (!IsSingletonAssignChain(op->children[static_cast<size_t>(side)],
                                &assigns)) {
      continue;
    }
    LogicalOpPtr result = op->children[static_cast<size_t>(1 - side)];
    // Restack the singleton's assigns (in original order) over the
    // surviving child; they reference no variables of that child.
    for (const auto& a : assigns) {
      auto stacked = LogicalOp::Make(LogicalOpKind::kAssign);
      stacked->assigns = a->assigns;
      stacked->children = {result};
      result = stacked;
    }
    *op_ref = result;
    *changed = true;
    return;
  }
}

// ---------------------------------------------------------------------------
// Index access-path selection
// ---------------------------------------------------------------------------

// Matches field-access($var, "f") and returns f.
bool MatchFieldAccess(const ExprPtr& e, VarId var, std::string* field) {
  if (e->kind != ExprKind::kCall || e->fn != "field-access") return false;
  if (e->args.size() != 2) return false;
  if (e->args[0]->kind != ExprKind::kVariable || e->args[0]->var != var) {
    return false;
  }
  if (e->args[1]->kind != ExprKind::kConstant ||
      !e->args[1]->constant.is_string()) {
    return false;
  }
  *field = e->args[1]->constant.AsString();
  return true;
}

struct PathChoice {
  AccessPathKind path;
  std::string index_name;
  ExprPtr lo, hi;  // constant bounds
};

// Inspect one conjunct for an indexable pattern on `var`.
bool MatchConjunct(const ExprPtr& cj, VarId var, const Catalog& catalog,
                   const std::string& dataset, PathChoice* out) {
  if (cj->kind != ExprKind::kCall) return false;
  const std::string& fn = cj->fn;
  std::string pk = catalog.PrimaryKeyField(dataset);
  auto indexes = catalog.SecondaryIndexes(dataset);

  auto classify = [&](const std::string& field, Catalog::IndexInfo::Kind kind,
                      std::string* index_name) {
    if (kind == Catalog::IndexInfo::kBTree && field == pk) {
      index_name->clear();
      return true;
    }
    for (const auto& ix : indexes) {
      if (ix.kind == kind && ix.field == field) {
        *index_name = ix.name;
        return true;
      }
    }
    return false;
  };

  if (fn == "eq" || fn == "lt" || fn == "le" || fn == "gt" || fn == "ge") {
    if (cj->args.size() != 2) return false;
    std::string field;
    ExprPtr cmp_const;
    std::string op = fn;
    if (MatchFieldAccess(cj->args[0], var, &field) &&
        cj->args[1]->kind == ExprKind::kConstant) {
      cmp_const = cj->args[1];
    } else if (MatchFieldAccess(cj->args[1], var, &field) &&
               cj->args[0]->kind == ExprKind::kConstant) {
      cmp_const = cj->args[0];
      // Mirror the operator: const OP field  ==  field OP' const.
      op = fn == "lt" ? "gt" : fn == "le" ? "ge" : fn == "gt" ? "lt"
           : fn == "ge" ? "le" : fn;
    } else {
      return false;
    }
    std::string index_name;
    if (!classify(field, Catalog::IndexInfo::kBTree, &index_name)) return false;
    bool primary = index_name.empty();
    out->index_name = index_name;
    if (op == "eq") {
      out->path = primary ? AccessPathKind::kPrimaryLookup
                          : AccessPathKind::kSecondaryBTree;
      out->lo = out->hi = cmp_const;
    } else {
      out->path = primary ? AccessPathKind::kPrimaryRange
                          : AccessPathKind::kSecondaryBTree;
      if (op == "lt" || op == "le") {
        out->hi = cmp_const;
      } else {
        out->lo = cmp_const;
      }
    }
    return true;
  }
  if (fn == "spatial-intersect" && cj->args.size() == 2) {
    std::string field;
    ExprPtr query;
    if (MatchFieldAccess(cj->args[0], var, &field) &&
        cj->args[1]->kind == ExprKind::kConstant) {
      query = cj->args[1];
    } else if (MatchFieldAccess(cj->args[1], var, &field) &&
               cj->args[0]->kind == ExprKind::kConstant) {
      query = cj->args[0];
    } else {
      return false;
    }
    std::string index_name;
    if (!classify(field, Catalog::IndexInfo::kRTree, &index_name)) return false;
    out->path = AccessPathKind::kRTree;
    out->index_name = index_name;
    out->lo = out->hi = query;
    return true;
  }
  if (fn == "ftcontains" && cj->args.size() == 2) {
    std::string field;
    if (!MatchFieldAccess(cj->args[0], var, &field)) return false;
    if (cj->args[1]->kind != ExprKind::kConstant ||
        !cj->args[1]->constant.is_string()) {
      return false;
    }
    std::string index_name;
    if (!classify(field, Catalog::IndexInfo::kKeyword, &index_name)) {
      return false;
    }
    out->path = AccessPathKind::kKeyword;
    out->index_name = index_name;
    out->lo = out->hi = cj->args[1];
    return true;
  }
  return false;
}

// Select directly above a DataScan -> IndexSearch when a conjunct matches.
void IntroduceIndexSearches(LogicalOpPtr* op_ref, const Catalog& catalog,
                            bool sort_pks, bool* changed) {
  LogicalOp* op = op_ref->get();
  for (auto& c : op->children) {
    IntroduceIndexSearches(&c, catalog, sort_pks, changed);
  }
  if (op->kind != LogicalOpKind::kSelect) return;
  LogicalOpPtr child = op->children[0];
  if (child->kind != LogicalOpKind::kDataScan) return;
  if (!catalog.HasDataset(child->dataset)) return;
  if (catalog.PrimaryKeyField(child->dataset).empty()) return;  // external

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(op->condition, &conjuncts);
  PathChoice choice;
  int match_idx = -1;
  for (size_t i = 0; i < conjuncts.size(); i++) {
    if (MatchConjunct(conjuncts[i], child->scan_var, catalog, child->dataset,
                      &choice)) {
      match_idx = static_cast<int>(i);
      break;
    }
  }
  if (match_idx < 0) return;

  auto search = LogicalOp::Make(LogicalOpKind::kIndexSearch);
  search->dataset = child->dataset;
  search->scan_var = child->scan_var;
  search->access_path = choice.path;
  search->index_name = choice.index_name;
  search->search_lo = choice.lo;
  search->search_hi = choice.hi;
  search->sort_pks_before_fetch = sort_pks;
  // Keep the full predicate as a residual select above the search: the
  // index prunes, the select guarantees exactness (range bounds are
  // inclusive approximations for spatial/keyword paths).
  *op_ref = MakeSelect(op->condition, search);
  *changed = true;
}

// ---------------------------------------------------------------------------
// Columnar scan pushdown (paper §VII: columnar storage)
// ---------------------------------------------------------------------------

// Absorb comparison conjuncts of a Select sitting directly over a columnar
// DataScan into the scan itself (field OP constant, either operand order).
// The scan evaluates them column-at-a-time before materializing tuples with
// identical SQL++ semantics, so absorbed conjuncts leave the Select — and
// the Select disappears entirely when nothing remains.
void PushScanPredicates(LogicalOpPtr* op_ref, const Catalog& catalog,
                        bool* changed) {
  LogicalOp* op = op_ref->get();
  for (auto& c : op->children) PushScanPredicates(&c, catalog, changed);
  if (op->kind != LogicalOpKind::kSelect) return;
  LogicalOpPtr child = op->children[0];
  if (child->kind != LogicalOpKind::kDataScan) return;
  if (!catalog.HasDataset(child->dataset)) return;
  if (catalog.StorageFormat(child->dataset) != "columnar") return;

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(op->condition, &conjuncts);
  std::vector<ExprPtr> kept;
  for (const auto& cj : conjuncts) {
    bool absorbed = false;
    if (cj->kind == ExprKind::kCall && cj->args.size() == 2 &&
        (cj->fn == "eq" || cj->fn == "lt" || cj->fn == "le" ||
         cj->fn == "gt" || cj->fn == "ge")) {
      std::string field;
      std::string cmp = cj->fn;
      ExprPtr cst;
      if (MatchFieldAccess(cj->args[0], child->scan_var, &field) &&
          cj->args[1]->kind == ExprKind::kConstant) {
        cst = cj->args[1];
      } else if (MatchFieldAccess(cj->args[1], child->scan_var, &field) &&
                 cj->args[0]->kind == ExprKind::kConstant) {
        cst = cj->args[0];
        // Mirror the operator: const OP field  ==  field OP' const.
        cmp = cj->fn == "lt" ? "gt" : cj->fn == "le" ? "ge"
              : cj->fn == "gt" ? "lt" : cj->fn == "ge" ? "le" : cj->fn;
      }
      if (cst) {
        child->scan_predicates.push_back({field, cmp, cst->constant});
        absorbed = true;
        *changed = true;
      }
    }
    if (!absorbed) kept.push_back(cj);
  }
  if (kept.empty()) {
    *op_ref = child;
  } else if (kept.size() != conjuncts.size()) {
    op->condition = AndAll(std::move(kept));
  }
}

// Record how a scan variable is consumed: field-access($var, "f") against a
// constant name contributes the field; any other reference (a bare $var, a
// computed field name, DISTINCT over the record) demands the whole record.
void CollectFieldUses(const ExprPtr& e, VarId var,
                      std::set<std::string>* fields, bool* whole) {
  if (!e) return;
  if (e->kind == ExprKind::kVariable) {
    if (e->var == var) *whole = true;
    return;
  }
  if (e->kind == ExprKind::kCall && e->fn == "field-access" &&
      e->args.size() == 2 && e->args[0]->kind == ExprKind::kVariable &&
      e->args[0]->var == var && e->args[1]->kind == ExprKind::kConstant &&
      e->args[1]->constant.is_string()) {
    fields->insert(e->args[1]->constant.AsString());
    return;
  }
  for (const auto& a : e->args) CollectFieldUses(a, var, fields, whole);
}

void CollectFieldUsesInPlan(const LogicalOp& op, VarId var,
                            std::set<std::string>* fields, bool* whole) {
  auto take = [&](const ExprPtr& e) { CollectFieldUses(e, var, fields, whole); };
  take(op.condition);
  take(op.unnest_expr);
  take(op.payload);
  take(op.search_lo);
  take(op.search_hi);
  take(op.residual);
  for (const auto& [v, e] : op.assigns) take(e);
  for (const auto& [v, e] : op.group_keys) take(e);
  for (const auto& a : op.aggs) take(a.arg);
  for (const auto& k : op.order_keys) take(k.expr);
  for (VarId v : op.project_vars) {
    if (v == var) *whole = true;
  }
  if (op.kind == LogicalOpKind::kDistinct) {
    // Distinct compares full records: pruning would conflate rows that
    // differ only in unprojected fields.
    for (VarId v : op.children[0]->schema()) {
      if (v == var) *whole = true;
    }
  }
  for (const auto& c : op.children) CollectFieldUsesInPlan(*c, var, fields, whole);
}

void FindDataScans(const LogicalOpPtr& op, std::vector<LogicalOp*>* scans) {
  if (op->kind == LogicalOpKind::kDataScan) scans->push_back(op.get());
  for (const auto& c : op->children) FindDataScans(c, scans);
}

// For every columnar DataScan whose variable is consumed only through
// constant field accesses, push the accessed field set into the scan so the
// runtime reads only those columns. Runs last (after dead-assign removal)
// so the analysis sees the minimal plan.
void ComputeScanProjections(const LogicalOpPtr& root, const Catalog& catalog,
                            bool* changed) {
  std::vector<LogicalOp*> scans;
  FindDataScans(root, &scans);
  for (LogicalOp* scan : scans) {
    if (!catalog.HasDataset(scan->dataset)) continue;
    if (catalog.StorageFormat(scan->dataset) != "columnar") continue;
    bool whole = false;
    std::set<std::string> fields;
    CollectFieldUsesInPlan(*root, scan->scan_var, &fields, &whole);
    for (VarId v : root->schema()) {
      if (v == scan->scan_var) whole = true;  // the record itself is output
    }
    if (whole) continue;
    scan->scan_fields.assign(fields.begin(), fields.end());
    scan->scan_fields_pushed = true;
    *changed = true;
  }
}

// ---------------------------------------------------------------------------
// Dead assign elimination
// ---------------------------------------------------------------------------

void CollectUsedVars(const LogicalOp& op, std::set<VarId>* used) {
  auto take = [&](const ExprPtr& e) {
    if (!e) return;
    std::vector<VarId> vars;
    e->CollectVars(&vars);
    used->insert(vars.begin(), vars.end());
  };
  take(op.condition);
  take(op.unnest_expr);
  take(op.payload);
  take(op.search_lo);
  take(op.search_hi);
  take(op.residual);
  for (const auto& [v, e] : op.assigns) take(e);
  for (const auto& [v, e] : op.group_keys) take(e);
  for (const auto& a : op.aggs) take(a.arg);
  for (const auto& k : op.order_keys) take(k.expr);
  for (VarId v : op.project_vars) used->insert(v);
  for (const auto& c : op.children) CollectUsedVars(*c, used);
}

void RemoveDeadAssigns(const LogicalOpPtr& root, bool* changed) {
  std::set<VarId> used;
  CollectUsedVars(*root, &used);
  // Root outputs are always live.
  for (VarId v : root->schema()) used.insert(v);

  std::function<void(const LogicalOpPtr&)> walk = [&](const LogicalOpPtr& op) {
    for (const auto& c : op->children) walk(c);
    if (op->kind != LogicalOpKind::kAssign) return;
    auto before = op->assigns.size();
    op->assigns.erase(
        std::remove_if(op->assigns.begin(), op->assigns.end(),
                       [&](const auto& p) { return used.count(p.first) == 0; }),
        op->assigns.end());
    if (op->assigns.size() != before) *changed = true;
  };
  walk(root);
}

// Remove now-empty assigns (no bindings left).
void PruneEmptyAssigns(LogicalOpPtr* op_ref, bool* changed) {
  for (auto& c : (*op_ref)->children) PruneEmptyAssigns(&c, changed);
  LogicalOp* op = op_ref->get();
  if (op->kind == LogicalOpKind::kAssign && op->assigns.empty()) {
    *op_ref = op->children[0];
    *changed = true;
  }
}

}  // namespace

Result<LogicalOpPtr> Optimize(LogicalOpPtr root, const Catalog& catalog,
                              const OptimizerOptions& options,
                              const FunctionRegistry& registry) {
  if (options.constant_folding) {
    AX_RETURN_NOT_OK(FoldAllExprs(root, registry));
  }
  {
    // Always-on structural cleanup: degenerate singleton cross joins from
    // WITH clauses become stacked assigns.
    bool changed = false;
    InlineSingletonCrossJoins(&root, &changed);
  }
  if (options.select_pushdown) {
    for (int iter = 0; iter < 8; iter++) {
      bool changed = false;
      PushSelectsOnce(&root, &changed);
      if (!changed) break;
    }
  }
  if (options.index_selection) {
    bool changed = false;
    IntroduceIndexSearches(&root, catalog, options.sort_pks_before_fetch,
                           &changed);
  }
  if (options.columnar_scan_pushdown) {
    // After index selection on purpose: an indexable conjunct becomes an
    // IndexSearch first; only scans with no access path absorb predicates.
    bool changed = false;
    PushScanPredicates(&root, catalog, &changed);
  }
  if (options.dead_assign_elimination) {
    for (int iter = 0; iter < 4; iter++) {
      bool changed = false;
      RemoveDeadAssigns(root, &changed);
      PruneEmptyAssigns(&root, &changed);
      if (!changed) break;
    }
  }
  if (options.columnar_scan_pushdown) {
    bool changed = false;
    ComputeScanProjections(root, catalog, &changed);
  }
  return root;
}

}  // namespace asterix::algebricks
