#include "algebricks/compiler.h"

namespace asterix::algebricks {

namespace {

enum class CmpOp { kEq, kNeq, kLt, kLe, kGt, kGe };

bool CmpOpFromName(const std::string& fn, CmpOp* op) {
  if (fn == "eq") *op = CmpOp::kEq;
  else if (fn == "neq") *op = CmpOp::kNeq;
  else if (fn == "lt") *op = CmpOp::kLt;
  else if (fn == "le") *op = CmpOp::kLe;
  else if (fn == "gt") *op = CmpOp::kGt;
  else if (fn == "ge") *op = CmpOp::kGe;
  else return false;
  return true;
}

/// Mirror of the argument swap: `const OP var` becomes `var FLIP(OP) const`.
CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // eq/neq are symmetric
  }
}

inline bool PassesCmp(int cmp, CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNeq: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
  }
  return false;
}

Status TupleTooNarrow() {
  return Status::Internal("tuple too narrow for variable");
}

/// var OP const — the dominant filter shape.
hyracks::BatchPredicate VarConstCmp(size_t pos, adm::Value c, CmpOp op) {
  // An unknown (null/missing) constant never compares true under SQL++
  // semantics, so the whole mask is zero regardless of the tuples.
  const bool never = c.is_unknown();
  return [pos, c = std::move(c), op, never](const hyracks::Batch& b,
                                            uint8_t* keep) -> Status {
    for (size_t i = 0; i < b.size(); i++) {
      const hyracks::Tuple& t = b[i];
      if (pos >= t.arity()) return TupleTooNarrow();
      const adm::Value& v = t.at(pos);
      keep[i] = !never && !v.is_unknown() && PassesCmp(v.Compare(c), op);
    }
    return Status::OK();
  };
}

/// var OP var (e.g. join residuals pushed into a select).
hyracks::BatchPredicate VarVarCmp(size_t lpos, size_t rpos, CmpOp op) {
  return [lpos, rpos, op](const hyracks::Batch& b, uint8_t* keep) -> Status {
    for (size_t i = 0; i < b.size(); i++) {
      const hyracks::Tuple& t = b[i];
      if (lpos >= t.arity() || rpos >= t.arity()) return TupleTooNarrow();
      const adm::Value& l = t.at(lpos);
      const adm::Value& r = t.at(rpos);
      keep[i] = !l.is_unknown() && !r.is_unknown() &&
                PassesCmp(l.Compare(r), op);
    }
    return Status::OK();
  };
}

}  // namespace

hyracks::BatchPredicate TryCompileBatchPredicate(const ExprPtr& expr,
                                                 const VarPositions& positions) {
  if (expr == nullptr || expr->kind != ExprKind::kCall) return nullptr;

  // and(p1, ..., pn): conjoin child masks. Correct under select semantics
  // because the 3-valued AND is boolean true iff every conjunct is.
  if (expr->fn == "and") {
    std::vector<hyracks::BatchPredicate> parts;
    parts.reserve(expr->args.size());
    for (const auto& a : expr->args) {
      hyracks::BatchPredicate p = TryCompileBatchPredicate(a, positions);
      if (!p) return nullptr;  // one opaque conjunct spoils the whole AND
      parts.push_back(std::move(p));
    }
    if (parts.empty()) return nullptr;
    if (parts.size() == 1) return std::move(parts[0]);
    return [parts = std::move(parts),
            tmp = std::vector<uint8_t>()](const hyracks::Batch& b,
                                          uint8_t* keep) mutable -> Status {
      AX_RETURN_NOT_OK(parts[0](b, keep));
      if (tmp.size() < b.size()) tmp.resize(hyracks::kFrameTuples);
      for (size_t p = 1; p < parts.size(); p++) {
        AX_RETURN_NOT_OK(parts[p](b, tmp.data()));
        for (size_t i = 0; i < b.size(); i++) keep[i] &= tmp[i];
      }
      return Status::OK();
    };
  }

  CmpOp op;
  if (!CmpOpFromName(expr->fn, &op) || expr->args.size() != 2) return nullptr;
  const ExprPtr& lhs = expr->args[0];
  const ExprPtr& rhs = expr->args[1];
  auto pos_of = [&positions](const ExprPtr& e, size_t* pos) {
    if (e->kind != ExprKind::kVariable) return false;
    auto it = positions.find(e->var);
    if (it == positions.end()) return false;
    *pos = it->second;
    return true;
  };
  size_t lpos, rpos;
  if (pos_of(lhs, &lpos) && rhs->kind == ExprKind::kConstant) {
    return VarConstCmp(lpos, rhs->constant, op);
  }
  if (lhs->kind == ExprKind::kConstant && pos_of(rhs, &rpos)) {
    return VarConstCmp(rpos, lhs->constant, FlipCmp(op));
  }
  if (pos_of(lhs, &lpos) && pos_of(rhs, &rpos)) {
    return VarVarCmp(lpos, rpos, op);
  }
  return nullptr;
}

Result<hyracks::TupleEval> CompileExpr(const ExprPtr& expr,
                                       const VarPositions& positions,
                                       const FunctionRegistry& registry) {
  switch (expr->kind) {
    case ExprKind::kConstant: {
      adm::Value v = expr->constant;
      return hyracks::TupleEval(
          [v](const hyracks::Tuple&) -> Result<adm::Value> { return v; });
    }
    case ExprKind::kVariable: {
      auto it = positions.find(expr->var);
      if (it == positions.end()) {
        return Status::Internal("unbound variable $" +
                                std::to_string(expr->var) +
                                " during compilation");
      }
      size_t pos = it->second;
      return hyracks::TupleEval(
          [pos](const hyracks::Tuple& t) -> Result<adm::Value> {
            if (pos >= t.arity()) {
              return Status::Internal("tuple too narrow for variable");
            }
            return t.at(pos);
          });
    }
    case ExprKind::kQuantified: {
      // Correlated quantifier: compile the collection over the outer
      // layout, and the predicate over the outer layout extended with the
      // bound variable appended as the last field.
      AX_ASSIGN_OR_RETURN(auto coll_eval,
                          CompileExpr(expr->args[0], positions, registry));
      VarPositions inner = positions;
      size_t bound_pos = positions.size();
      inner[expr->bound_var] = bound_pos;
      AX_ASSIGN_OR_RETURN(auto pred_eval,
                          CompileExpr(expr->args[1], inner, registry));
      bool want_some = expr->quantifier_some;
      return hyracks::TupleEval(
          [coll_eval, pred_eval, want_some,
           bound_pos](const hyracks::Tuple& t) -> Result<adm::Value> {
            AX_ASSIGN_OR_RETURN(adm::Value coll, coll_eval(t));
            if (coll.is_unknown()) return adm::Value::Null();
            if (!coll.is_collection()) return adm::Value::Null();
            hyracks::Tuple extended = t;
            if (extended.fields.size() < bound_pos + 1) {
              extended.fields.resize(bound_pos + 1);
            }
            for (const auto& item : coll.items()) {
              extended.fields[bound_pos] = item;
              AX_ASSIGN_OR_RETURN(adm::Value pass, pred_eval(extended));
              bool truthy = pass.is_boolean() && pass.AsBool();
              if (want_some && truthy) return adm::Value::Boolean(true);
              if (!want_some && !truthy) return adm::Value::Boolean(false);
            }
            return adm::Value::Boolean(!want_some);
          });
    }
    case ExprKind::kCall: {
      AX_ASSIGN_OR_RETURN(const ScalarFn* fn, registry.Lookup(expr->fn));
      std::vector<hyracks::TupleEval> arg_evals;
      arg_evals.reserve(expr->args.size());
      for (const auto& a : expr->args) {
        AX_ASSIGN_OR_RETURN(auto e, CompileExpr(a, positions, registry));
        arg_evals.push_back(std::move(e));
      }
      return hyracks::TupleEval(
          [fn, arg_evals = std::move(arg_evals)](
              const hyracks::Tuple& t) -> Result<adm::Value> {
            std::vector<adm::Value> args;
            args.reserve(arg_evals.size());
            for (const auto& e : arg_evals) {
              AX_ASSIGN_OR_RETURN(adm::Value v, e(t));
              args.push_back(std::move(v));
            }
            return (*fn)(args);
          });
    }
  }
  return Status::Internal("bad expression kind");
}

Result<adm::Value> EvaluateConst(const ExprPtr& expr,
                                 const FunctionRegistry& registry) {
  AX_ASSIGN_OR_RETURN(auto eval, CompileExpr(expr, {}, registry));
  hyracks::Tuple empty;
  return eval(empty);
}

}  // namespace asterix::algebricks
