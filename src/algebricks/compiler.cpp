#include "algebricks/compiler.h"

namespace asterix::algebricks {

Result<hyracks::TupleEval> CompileExpr(const ExprPtr& expr,
                                       const VarPositions& positions,
                                       const FunctionRegistry& registry) {
  switch (expr->kind) {
    case ExprKind::kConstant: {
      adm::Value v = expr->constant;
      return hyracks::TupleEval(
          [v](const hyracks::Tuple&) -> Result<adm::Value> { return v; });
    }
    case ExprKind::kVariable: {
      auto it = positions.find(expr->var);
      if (it == positions.end()) {
        return Status::Internal("unbound variable $" +
                                std::to_string(expr->var) +
                                " during compilation");
      }
      size_t pos = it->second;
      return hyracks::TupleEval(
          [pos](const hyracks::Tuple& t) -> Result<adm::Value> {
            if (pos >= t.arity()) {
              return Status::Internal("tuple too narrow for variable");
            }
            return t.at(pos);
          });
    }
    case ExprKind::kQuantified: {
      // Correlated quantifier: compile the collection over the outer
      // layout, and the predicate over the outer layout extended with the
      // bound variable appended as the last field.
      AX_ASSIGN_OR_RETURN(auto coll_eval,
                          CompileExpr(expr->args[0], positions, registry));
      VarPositions inner = positions;
      size_t bound_pos = positions.size();
      inner[expr->bound_var] = bound_pos;
      AX_ASSIGN_OR_RETURN(auto pred_eval,
                          CompileExpr(expr->args[1], inner, registry));
      bool want_some = expr->quantifier_some;
      return hyracks::TupleEval(
          [coll_eval, pred_eval, want_some,
           bound_pos](const hyracks::Tuple& t) -> Result<adm::Value> {
            AX_ASSIGN_OR_RETURN(adm::Value coll, coll_eval(t));
            if (coll.is_unknown()) return adm::Value::Null();
            if (!coll.is_collection()) return adm::Value::Null();
            hyracks::Tuple extended = t;
            if (extended.fields.size() < bound_pos + 1) {
              extended.fields.resize(bound_pos + 1);
            }
            for (const auto& item : coll.items()) {
              extended.fields[bound_pos] = item;
              AX_ASSIGN_OR_RETURN(adm::Value pass, pred_eval(extended));
              bool truthy = pass.is_boolean() && pass.AsBool();
              if (want_some && truthy) return adm::Value::Boolean(true);
              if (!want_some && !truthy) return adm::Value::Boolean(false);
            }
            return adm::Value::Boolean(!want_some);
          });
    }
    case ExprKind::kCall: {
      AX_ASSIGN_OR_RETURN(const ScalarFn* fn, registry.Lookup(expr->fn));
      std::vector<hyracks::TupleEval> arg_evals;
      arg_evals.reserve(expr->args.size());
      for (const auto& a : expr->args) {
        AX_ASSIGN_OR_RETURN(auto e, CompileExpr(a, positions, registry));
        arg_evals.push_back(std::move(e));
      }
      return hyracks::TupleEval(
          [fn, arg_evals = std::move(arg_evals)](
              const hyracks::Tuple& t) -> Result<adm::Value> {
            std::vector<adm::Value> args;
            args.reserve(arg_evals.size());
            for (const auto& e : arg_evals) {
              AX_ASSIGN_OR_RETURN(adm::Value v, e(t));
              args.push_back(std::move(v));
            }
            return (*fn)(args);
          });
    }
  }
  return Status::Internal("bad expression kind");
}

Result<adm::Value> EvaluateConst(const ExprPtr& expr,
                                 const FunctionRegistry& registry) {
  AX_ASSIGN_OR_RETURN(auto eval, CompileExpr(expr, {}, registry));
  hyracks::Tuple empty;
  return eval(empty);
}

}  // namespace asterix::algebricks
