// Expression compiler: lowers Algebricks expressions to Hyracks tuple
// evaluators given a variable -> tuple-position mapping. This is the seam
// between the algebraic layer and the runtime (paper Fig. 5's "Hyracks Job"
// output arrow).
#pragma once

#include <map>

#include "algebricks/expr.h"
#include "algebricks/functions.h"
#include "hyracks/stream.h"

namespace asterix::algebricks {

/// Maps each live variable to its field position in runtime tuples.
using VarPositions = std::map<VarId, size_t>;

/// Compile `expr` into an evaluator over tuples laid out per `positions`.
Result<hyracks::TupleEval> CompileExpr(const ExprPtr& expr,
                                       const VarPositions& positions,
                                       const FunctionRegistry& registry);

/// Evaluate a closed expression (no variables), e.g. constant-folding and
/// DDL argument evaluation.
Result<adm::Value> EvaluateConst(const ExprPtr& expr,
                                 const FunctionRegistry& registry);

/// Build the position map for a schema list.
inline VarPositions PositionsOf(const std::vector<VarId>& schema) {
  VarPositions out;
  for (size_t i = 0; i < schema.size(); i++) out[schema[i]] = i;
  return out;
}

}  // namespace asterix::algebricks
