// Expression compiler: lowers Algebricks expressions to Hyracks tuple
// evaluators given a variable -> tuple-position mapping. This is the seam
// between the algebraic layer and the runtime (paper Fig. 5's "Hyracks Job"
// output arrow).
#pragma once

#include <map>

#include "algebricks/expr.h"
#include "algebricks/functions.h"
#include "hyracks/operators.h"
#include "hyracks/stream.h"

namespace asterix::algebricks {

/// Maps each live variable to its field position in runtime tuples.
using VarPositions = std::map<VarId, size_t>;

/// Compile `expr` into an evaluator over tuples laid out per `positions`.
Result<hyracks::TupleEval> CompileExpr(const ExprPtr& expr,
                                       const VarPositions& positions,
                                       const FunctionRegistry& registry);

/// Try to compile `expr` into a vectorized selection predicate (one call
/// evaluates a whole batch into a keep-mask, with no per-tuple evaluator
/// dispatch or value boxing). Recognized shapes: comparisons between a
/// variable and a constant or between two variables (eq/neq/lt/le/gt/ge),
/// and conjunctions ("and") of recognized shapes. Returns an empty
/// function for anything else — the caller then relies on SelectOp's
/// tuple-at-a-time predicate. The mask uses SQL++ select semantics: a
/// tuple is kept iff the predicate is boolean true (null/missing drop).
hyracks::BatchPredicate TryCompileBatchPredicate(const ExprPtr& expr,
                                                 const VarPositions& positions);

/// Evaluate a closed expression (no variables), e.g. constant-folding and
/// DDL argument evaluation.
Result<adm::Value> EvaluateConst(const ExprPtr& expr,
                                 const FunctionRegistry& registry);

/// Build the position map for a schema list.
inline VarPositions PositionsOf(const std::vector<VarId>& schema) {
  VarPositions out;
  for (size_t i = 0; i < schema.size(); i++) out[schema[i]] = i;
  return out;
}

}  // namespace asterix::algebricks
