#include "algebricks/functions.h"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "adm/temporal.h"
#include "storage/lsm_inverted.h"

namespace asterix::algebricks {

namespace {

using adm::Value;

// SQL++ unknown propagation: MISSING beats NULL beats values.
bool PropagateUnknown(const std::vector<Value>& args, Value* out) {
  bool missing = false, null = false;
  for (const auto& a : args) {
    if (a.is_missing()) missing = true;
    if (a.is_null()) null = true;
  }
  if (missing) {
    *out = Value::Missing();
    return true;
  }
  if (null) {
    *out = Value::Null();
    return true;
  }
  return false;
}

Status ArityError(const std::string& fn, size_t want, size_t got) {
  return Status::InvalidArgument("function " + fn + " expects " +
                                 std::to_string(want) + " argument(s), got " +
                                 std::to_string(got));
}

Value CompareResult(int cmp, const std::string& op) {
  if (op == "eq") return Value::Boolean(cmp == 0);
  if (op == "neq") return Value::Boolean(cmp != 0);
  if (op == "lt") return Value::Boolean(cmp < 0);
  if (op == "le") return Value::Boolean(cmp <= 0);
  if (op == "gt") return Value::Boolean(cmp > 0);
  return Value::Boolean(cmp >= 0);  // ge
}

}  // namespace

FunctionRegistry::FunctionRegistry() {
  // ---- comparisons ---------------------------------------------------------
  for (const char* op : {"eq", "neq", "lt", "le", "gt", "ge"}) {
    std::string name = op;
    Register(name, [name](const std::vector<Value>& a) -> Result<Value> {
      if (a.size() != 2) return ArityError(name, 2, a.size());
      Value unknown;
      if (PropagateUnknown(a, &unknown)) return unknown;
      return CompareResult(a[0].Compare(a[1]), name);
    });
  }

  // ---- boolean logic (3-valued) -------------------------------------------
  Register("and", [](const std::vector<Value>& a) -> Result<Value> {
    bool has_unknown = false;
    for (const auto& v : a) {
      if (v.is_unknown()) {
        has_unknown = true;
      } else if (v.is_boolean() && !v.AsBool()) {
        return Value::Boolean(false);
      } else if (!v.is_boolean()) {
        return Value::Null();  // non-boolean operand -> unknown
      }
    }
    if (has_unknown) return Value::Null();
    return Value::Boolean(true);
  });
  Register("or", [](const std::vector<Value>& a) -> Result<Value> {
    bool has_unknown = false;
    for (const auto& v : a) {
      if (v.is_unknown()) {
        has_unknown = true;
      } else if (v.is_boolean() && v.AsBool()) {
        return Value::Boolean(true);
      } else if (!v.is_boolean()) {
        return Value::Null();
      }
    }
    if (has_unknown) return Value::Null();
    return Value::Boolean(false);
  });
  Register("not", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 1) return ArityError("not", 1, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_boolean()) return Value::Null();
    return Value::Boolean(!a[0].AsBool());
  });

  // ---- unknown tests (must NOT propagate) ----------------------------------
  Register("is-null", [](const std::vector<Value>& a) -> Result<Value> {
    return Value::Boolean(a.at(0).is_null());
  });
  Register("is-missing", [](const std::vector<Value>& a) -> Result<Value> {
    return Value::Boolean(a.at(0).is_missing());
  });
  Register("is-unknown", [](const std::vector<Value>& a) -> Result<Value> {
    return Value::Boolean(a.at(0).is_unknown());
  });
  Register("if-missing-or-null",
           [](const std::vector<Value>& a) -> Result<Value> {
             for (const auto& v : a) {
               if (!v.is_unknown()) return v;
             }
             return Value::Null();
           });

  // ---- arithmetic ----------------------------------------------------------
  auto arith = [this](const std::string& name, auto op_int, auto op_dbl,
                      bool int_result_possible) {
    Register(name, [name, op_int, op_dbl, int_result_possible](
                       const std::vector<Value>& a) -> Result<Value> {
      if (a.size() != 2) return ArityError(name, 2, a.size());
      Value unknown;
      if (PropagateUnknown(a, &unknown)) return unknown;
      if (!a[0].is_numeric() || !a[1].is_numeric()) {
        // Temporal arithmetic: datetime +/- duration.
        if (name == "add" && a[0].tag() == adm::TypeTag::kDatetime &&
            a[1].tag() == adm::TypeTag::kDuration) {
          return Value::Datetime(a[0].TemporalValue() + a[1].TemporalValue());
        }
        if (name == "sub" && a[0].tag() == adm::TypeTag::kDatetime &&
            a[1].tag() == adm::TypeTag::kDuration) {
          return Value::Datetime(a[0].TemporalValue() - a[1].TemporalValue());
        }
        if (name == "sub" && a[0].tag() == adm::TypeTag::kDatetime &&
            a[1].tag() == adm::TypeTag::kDatetime) {
          return Value::Duration(a[0].TemporalValue() - a[1].TemporalValue());
        }
        return Value::Null();
      }
      if (int_result_possible && a[0].is_int() && a[1].is_int()) {
        return Value::Int(op_int(a[0].AsInt(), a[1].AsInt()));
      }
      return Value::Double(op_dbl(a[0].AsNumber(), a[1].AsNumber()));
    });
  };
  arith("add", [](int64_t x, int64_t y) { return x + y; },
        [](double x, double y) { return x + y; }, true);
  arith("sub", [](int64_t x, int64_t y) { return x - y; },
        [](double x, double y) { return x - y; }, true);
  arith("mul", [](int64_t x, int64_t y) { return x * y; },
        [](double x, double y) { return x * y; }, true);
  Register("div", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("div", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_numeric() || !a[1].is_numeric()) return Value::Null();
    if (a[1].AsNumber() == 0) return Value::Null();
    return Value::Double(a[0].AsNumber() / a[1].AsNumber());
  });
  Register("mod", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("mod", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_int() || !a[1].is_int() || a[1].AsInt() == 0) {
      return Value::Null();
    }
    return Value::Int(a[0].AsInt() % a[1].AsInt());
  });
  Register("neg", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].is_int()) return Value::Int(-a[0].AsInt());
    if (a[0].is_double()) return Value::Double(-a[0].AsDoubleExact());
    return Value::Null();
  });
  Register("abs", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].is_int()) return Value::Int(std::abs(a[0].AsInt()));
    if (a[0].is_double()) return Value::Double(std::fabs(a[0].AsDoubleExact()));
    return Value::Null();
  });

  // ---- record / collection access ------------------------------------------
  Register("field-access", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("field-access", 2, a.size());
    if (a[0].is_missing()) return Value::Missing();
    if (a[0].is_null()) return Value::Null();
    if (!a[0].is_object() || !a[1].is_string()) return Value::Missing();
    return a[0].GetField(a[1].AsString());
  });
  Register("get-item", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("get-item", 2, a.size());
    if (a[0].is_unknown() || a[1].is_unknown()) return Value::Missing();
    if (!a[0].is_collection() || !a[1].is_int()) return Value::Missing();
    int64_t i = a[1].AsInt();
    const auto& items = a[0].items();
    if (i < 0) i += static_cast<int64_t>(items.size());
    if (i < 0 || static_cast<size_t>(i) >= items.size()) {
      return Value::Missing();
    }
    return items[static_cast<size_t>(i)];
  });
  Register("coll-count", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_collection()) return Value::Null();
    return Value::Int(static_cast<int64_t>(a[0].items().size()));
  });
  // Collection aggregates as scalar functions (AQL-style: the AQL group-by
  // collects values into lists, then applies these; SQL++'s COLL_* forms
  // also resolve here).
  auto coll_agg = [this](const std::string& name, auto combine, bool count) {
    Register(name, [name, combine, count](
                       const std::vector<Value>& a) -> Result<Value> {
      Value unknown;
      if (PropagateUnknown(a, &unknown)) return unknown;
      if (!a[0].is_collection()) return Value::Null();
      if (count) {
        return Value::Int(static_cast<int64_t>(a[0].items().size()));
      }
      Value acc = Value::Null();
      int64_t n = 0;
      for (const auto& item : a[0].items()) {
        if (item.is_unknown()) continue;
        acc = combine(acc, item);
        n++;
      }
      if (name == "coll-avg") {
        if (n == 0) return Value::Null();
        return Value::Double(acc.AsNumber() / static_cast<double>(n));
      }
      return acc;
    });
  };
  auto sum2 = [](const Value& acc, const Value& v) {
    if (acc.is_unknown()) return v;
    if (!v.is_numeric() || !acc.is_numeric()) return acc;
    if (acc.is_int() && v.is_int()) return Value::Int(acc.AsInt() + v.AsInt());
    return Value::Double(acc.AsNumber() + v.AsNumber());
  };
  coll_agg("coll-sum", sum2, false);
  coll_agg("coll-avg", sum2, false);
  coll_agg("coll-min",
           [](const Value& acc, const Value& v) {
             return acc.is_unknown() || v.Compare(acc) < 0 ? v : acc;
           },
           false);
  coll_agg("coll-max",
           [](const Value& acc, const Value& v) {
             return acc.is_unknown() || v.Compare(acc) > 0 ? v : acc;
           },
           false);
  Register("in", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("in", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[1].is_collection()) return Value::Null();
    for (const auto& item : a[1].items()) {
      if (a[0].Compare(item) == 0) return Value::Boolean(true);
    }
    return Value::Boolean(false);
  });
  Register("array-append", [](const std::vector<Value>& a) -> Result<Value> {
    if (!a.at(0).is_collection()) return Value::Null();
    std::vector<Value> items = a[0].items();
    for (size_t i = 1; i < a.size(); i++) items.push_back(a[i]);
    return Value::Array(std::move(items));
  });
  // Record constructor: pairs of (name, value); missing values drop fields.
  Register("open-record", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() % 2 != 0) {
      return Status::InvalidArgument("open-record expects name/value pairs");
    }
    adm::FieldVec fields;
    for (size_t i = 0; i < a.size(); i += 2) {
      if (!a[i].is_string()) {
        return Status::InvalidArgument("open-record: field name not a string");
      }
      if (a[i + 1].is_missing()) continue;  // MISSING fields vanish
      fields.emplace_back(a[i].AsString(), a[i + 1]);
    }
    return Value::Object(std::move(fields));
  });
  Register("ordered-list", [](const std::vector<Value>& a) -> Result<Value> {
    return Value::Array(a);
  });
  Register("unordered-list", [](const std::vector<Value>& a) -> Result<Value> {
    return Value::Multiset(a);
  });

  // ---- strings --------------------------------------------------------------
  Register("string-length", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string()) return Value::Null();
    return Value::Int(static_cast<int64_t>(a[0].AsString().size()));
  });
  Register("lower", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string()) return Value::Null();
    std::string s = a[0].AsString();
    for (auto& c : s) c = static_cast<char>(std::tolower(c));
    return Value::String(std::move(s));
  });
  Register("upper", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string()) return Value::Null();
    std::string s = a[0].AsString();
    for (auto& c : s) c = static_cast<char>(std::toupper(c));
    return Value::String(std::move(s));
  });
  Register("concat", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    std::string out;
    for (const auto& v : a) {
      if (!v.is_string()) return Value::Null();
      out += v.AsString();
    }
    return Value::String(std::move(out));
  });
  Register("contains", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("contains", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string() || !a[1].is_string()) return Value::Null();
    return Value::Boolean(a[0].AsString().find(a[1].AsString()) !=
                          std::string::npos);
  });
  Register("starts-with", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string() || !a[1].is_string()) return Value::Null();
    return Value::Boolean(a[0].AsString().rfind(a[1].AsString(), 0) == 0);
  });
  Register("substring", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string() || !a[1].is_int()) return Value::Null();
    const std::string& s = a[0].AsString();
    int64_t start = a[1].AsInt();
    if (start < 0 || static_cast<size_t>(start) > s.size()) {
      return Value::String("");
    }
    size_t len = s.size() - static_cast<size_t>(start);
    if (a.size() > 2 && a[2].is_int() && a[2].AsInt() >= 0) {
      len = std::min<size_t>(len, static_cast<size_t>(a[2].AsInt()));
    }
    return Value::String(s.substr(static_cast<size_t>(start), len));
  });
  // like with SQL % and _ wildcards (simple backtracking matcher).
  Register("like", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("like", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string() || !a[1].is_string()) return Value::Null();
    const std::string& s = a[0].AsString();
    const std::string& p = a[1].AsString();
    std::function<bool(size_t, size_t)> match = [&](size_t si, size_t pi) {
      while (pi < p.size()) {
        if (p[pi] == '%') {
          for (size_t k = si; k <= s.size(); k++) {
            if (match(k, pi + 1)) return true;
          }
          return false;
        }
        if (si >= s.size()) return false;
        if (p[pi] != '_' && p[pi] != s[si]) return false;
        si++;
        pi++;
      }
      return si == s.size();
    };
    return Value::Boolean(match(0, 0));
  });
  // Full-text keyword containment (backs the KEYWORD index).
  Register("ftcontains", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("ftcontains", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_string() || !a[1].is_string()) return Value::Null();
    auto tokens = storage::TokenizeKeywords(a[0].AsString());
    auto wanted = storage::TokenizeKeywords(a[1].AsString());
    for (const auto& w : wanted) {
      bool found = false;
      for (const auto& t : tokens) {
        if (t == w) {
          found = true;
          break;
        }
      }
      if (!found) return Value::Boolean(false);
    }
    return Value::Boolean(true);
  });

  // ---- temporal -------------------------------------------------------------
  Register("datetime", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].tag() == adm::TypeTag::kDatetime) return a[0];
    if (!a[0].is_string()) return Value::Null();
    AX_ASSIGN_OR_RETURN(int64_t ms, adm::temporal::ParseDatetime(a[0].AsString()));
    return Value::Datetime(ms);
  });
  Register("date", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].tag() == adm::TypeTag::kDate) return a[0];
    if (!a[0].is_string()) return Value::Null();
    AX_ASSIGN_OR_RETURN(int64_t d, adm::temporal::ParseDate(a[0].AsString()));
    return Value::Date(d);
  });
  Register("duration", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].tag() == adm::TypeTag::kDuration) return a[0];
    if (!a[0].is_string()) return Value::Null();
    AX_ASSIGN_OR_RETURN(int64_t ms, adm::temporal::ParseDuration(a[0].AsString()));
    return Value::Duration(ms);
  });
  Register("current-datetime", [](const std::vector<Value>&) -> Result<Value> {
    auto now = std::chrono::system_clock::now().time_since_epoch();
    return Value::Datetime(
        std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
  });
  // interval-bin(ts, anchor, bin-duration) -> start datetime of the bin
  // (the §V-D temporal-study primitive).
  Register("interval-bin", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 3) return ArityError("interval-bin", 3, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].tag() != adm::TypeTag::kDatetime ||
        a[1].tag() != adm::TypeTag::kDatetime ||
        a[2].tag() != adm::TypeTag::kDuration || a[2].TemporalValue() <= 0) {
      return Value::Null();
    }
    return Value::Datetime(adm::temporal::IntervalBinStart(
        a[0].TemporalValue(), a[1].TemporalValue(), a[2].TemporalValue()));
  });
  // overlap-ms(s1, e1, s2, e2): allocation of spanning activities to bins.
  Register("overlap-ms", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 4) return ArityError("overlap-ms", 4, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    for (const auto& v : a) {
      if (v.tag() != adm::TypeTag::kDatetime) return Value::Null();
    }
    return Value::Duration(adm::temporal::OverlapMs(
        a[0].TemporalValue(), a[1].TemporalValue(), a[2].TemporalValue(),
        a[3].TemporalValue()));
  });

  // ---- spatial ---------------------------------------------------------------
  // Typed constructors from strings, matching ADM literal syntax:
  // point("x,y") and rectangle("x1,y1 x2,y2").
  Register("point", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].is_point()) return a[0];
    if (!a[0].is_string()) return Value::Null();
    double x, y;
    if (std::sscanf(a[0].AsString().c_str(), "%lf,%lf", &x, &y) != 2) {
      return Status::ParseError("bad point literal '" + a[0].AsString() + "'");
    }
    return Value::MakePoint(x, y);
  });
  Register("rectangle", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].is_rectangle()) return a[0];
    if (!a[0].is_string()) return Value::Null();
    double x1, y1, x2, y2;
    if (std::sscanf(a[0].AsString().c_str(), "%lf,%lf %lf,%lf", &x1, &y1, &x2,
                    &y2) != 4) {
      return Status::ParseError("bad rectangle literal '" + a[0].AsString() +
                                "'");
    }
    return Value::MakeRectangle({x1, y1}, {x2, y2});
  });
  Register("create-point", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("create-point", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_numeric() || !a[1].is_numeric()) return Value::Null();
    return Value::MakePoint(a[0].AsNumber(), a[1].AsNumber());
  });
  Register("create-rectangle", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("create-rectangle", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!a[0].is_point() || !a[1].is_point()) return Value::Null();
    return Value::MakeRectangle(a[0].AsPoint(), a[1].AsPoint());
  });
  Register("spatial-intersect", [](const std::vector<Value>& a) -> Result<Value> {
    if (a.size() != 2) return ArityError("spatial-intersect", 2, a.size());
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (!(a[0].is_point() || a[0].is_rectangle()) ||
        !(a[1].is_point() || a[1].is_rectangle())) {
      return Value::Null();
    }
    return Value::Boolean(a[0].Mbr().Intersects(a[1].Mbr()));
  });

  // ---- conversions / misc ----------------------------------------------------
  Register("to-string", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].is_string()) return a[0];
    return Value::String(a[0].ToString());
  });
  Register("to-double", [](const std::vector<Value>& a) -> Result<Value> {
    Value unknown;
    if (PropagateUnknown(a, &unknown)) return unknown;
    if (a[0].is_numeric()) return Value::Double(a[0].AsNumber());
    if (a[0].is_string()) return Value::Double(std::atof(a[0].AsString().c_str()));
    return Value::Null();
  });
  Register("switch-case", [](const std::vector<Value>& a) -> Result<Value> {
    // switch-case(cond1, val1, cond2, val2, ..., default)
    size_t i = 0;
    for (; i + 1 < a.size(); i += 2) {
      if (a[i].is_boolean() && a[i].AsBool()) return a[i + 1];
    }
    if (i < a.size()) return a[i];
    return Value::Null();
  });
}

Result<const ScalarFn*> FunctionRegistry::Lookup(
    const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("unknown function '" + name + "'");
  }
  return &it->second;
}

void FunctionRegistry::Register(const std::string& name, ScalarFn fn) {
  fns_[name] = std::move(fn);
}

const FunctionRegistry& FunctionRegistry::Instance() {
  static FunctionRegistry* registry = new FunctionRegistry();
  return *registry;
}

}  // namespace asterix::algebricks
