#include "common/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace asterix {

namespace stdfs = std::filesystem;

namespace {
Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for '" + path + "': " +
                         std::strerror(errno));
}
}  // namespace

File::File(int fd, std::string path, uint64_t size)
    : fd_(fd), path_(std::move(path)), size_(size) {}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         bool writable) {
  int flags = writable ? O_RDWR : O_RDONLY;
  int fd = ::open(path.c_str(), flags);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat", path);
  }
  return std::unique_ptr<File>(
      new File(fd, path, static_cast<uint64_t>(st.st_size)));
}

Result<std::unique_ptr<File>> File::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create", path);
  return std::unique_ptr<File>(new File(fd, path, 0));
}

Status File::ReadAt(uint64_t offset, size_t n, void* buf) const {
  char* dst = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, dst + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path_);
    }
    if (r == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in '" + path_ + "'");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status File::WriteAt(uint64_t offset, size_t n, const void* buf) {
  const char* src = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd_, src + done, n - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path_);
    }
    done += static_cast<size_t>(r);
  }
  if (offset + n > size_) size_ = offset + n;
  return Status::OK();
}

Result<uint64_t> File::Append(size_t n, const void* buf) {
  uint64_t off = size_;
  AX_RETURN_NOT_OK(WriteAt(off, n, buf));
  return off;
}

Status File::Sync() {
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
  return Status::OK();
}

namespace fs {

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir '" + path + "': " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) return Status::IOError("rm -r '" + path + "': " + ec.message());
  return Status::OK();
}

bool Exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = stdfs::directory_iterator(path, ec);
       !ec && it != stdfs::directory_iterator(); it.increment(ec)) {
    out.push_back(it->path().filename().string());
  }
  if (ec) return Status::IOError("listdir '" + path + "': " + ec.message());
  return out;
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  AX_ASSIGN_OR_RETURN(auto f, File::Create(path));
  AX_RETURN_NOT_OK(f->WriteAt(0, data.size(), data.data()));
  return f->Sync();
}

Result<std::string> ReadFileToString(const std::string& path) {
  AX_ASSIGN_OR_RETURN(auto f, File::Open(path));
  std::string out(f->size(), '\0');
  if (!out.empty()) AX_RETURN_NOT_OK(f->ReadAt(0, out.size(), out.data()));
  return out;
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) return Status::IOError("rename '" + from + "': " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) return Status::IOError("rm '" + path + "': " + ec.message());
  return Status::OK();
}

}  // namespace fs

std::string TempFileManager::NextPath(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  return dir_ + "/" + tag + "." + std::to_string(id) + ".tmp";
}

}  // namespace asterix
