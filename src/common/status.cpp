#include "common/status.h"

namespace asterix {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kTypeMismatch: return "TypeMismatch";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kTxnConflict: return "TxnConflict";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace asterix
