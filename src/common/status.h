// Status: error-handling primitive used across asterix-lite public APIs.
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or Result<T>, see result.h) instead of throwing exceptions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace asterix {

/// Error categories used across the system. Kept deliberately coarse;
/// the message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kTypeMismatch,
  kParseError,
  kTxnConflict,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a human-readable message. Cheap to move; the OK status carries
/// no allocation.
///
/// [[nodiscard]] on the class makes every function returning Status warn at
/// call sites that drop the return value (enforced as an error in CI via
/// -Werror and checked again by tools/axlint's must-check pass). Truly
/// fire-and-forget sites must say why and cast: `(void)DoThing();`.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsTxnConflict() const { return code_ == StatusCode::kTxnConflict; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Render as "CODE: message" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagate a non-OK Status to the caller.
#define AX_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::asterix::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace asterix
