// Clang thread-safety-analysis annotation macros (-Wthread-safety).
//
// Annotating a member with AX_GUARDED_BY(mu_) (or a method with
// AX_REQUIRES(mu_)) turns lock-discipline violations into compile errors
// when building with Clang and -DASTERIX_THREAD_SAFETY_ANALYSIS=ON; under
// GCC (which has no such analysis) every macro expands to nothing, so the
// annotations are free documentation.
//
// Conventions used across the codebase:
//   - every mutex-protected member is AX_GUARDED_BY(its mutex);
//   - private helpers named *Locked() carry AX_REQUIRES(mu_);
//   - public entry points that take the lock themselves are AX_EXCLUDES(mu_)
//     so accidental re-entry deadlocks are caught statically;
//   - `mutable std::mutex` members keep the AX_CAPABILITY-annotated
//     std::mutex type (the analysis understands std::mutex natively via
//     -Wthread-safety's std support in libc++/libstdc++ headers, but we do
//     not rely on it: std::lock_guard/unique_lock are recognized by Clang
//     >= 15 out of the box; for the negative-compile test we use direct
//     member access, which is caught by every Clang version).
//
// See DESIGN.md "Concurrency model & correctness tooling".
#pragma once

#if defined(__clang__) && defined(ASTERIX_THREAD_SAFETY_ANALYSIS)
#define AX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AX_THREAD_ANNOTATION(x)  // no-op outside Clang analysis builds
#endif

/// Declares that a type is a capability (lock-like object).
#define AX_CAPABILITY(x) AX_THREAD_ANNOTATION(capability(x))

/// Declares that a capability is reentrant-safe to alias analysis.
#define AX_SCOPED_CAPABILITY AX_THREAD_ANNOTATION(scoped_lockable)

/// Data member is protected by the given capability (mutex).
#define AX_GUARDED_BY(x) AX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointed-to data is protected by the capability.
#define AX_PT_GUARDED_BY(x) AX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define AX_REQUIRES(...) \
  AX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability held in shared (reader) mode.
#define AX_REQUIRES_SHARED(...) \
  AX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define AX_ACQUIRE(...) AX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define AX_RELEASE(...) AX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention on re-entry).
#define AX_EXCLUDES(...) AX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock acquisition ordering hint: this lock must be taken after `x`.
#define AX_ACQUIRED_AFTER(...) \
  AX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Lock acquisition ordering hint: this lock must be taken before `x`.
#define AX_ACQUIRED_BEFORE(...) \
  AX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define AX_RETURN_CAPABILITY(x) AX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use sparingly and
/// leave a comment explaining why the analysis cannot see the invariant.
#define AX_NO_THREAD_SAFETY_ANALYSIS \
  AX_THREAD_ANNOTATION(no_thread_safety_analysis)
