// Deterministic pseudo-random utilities for workload generators and tests.
// All generators in asterix-lite are seeded so experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asterix {

/// xorshift128+ generator: fast, deterministic, adequate for workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    s0_ = seed * 0x9E3779B97F4A7C15ULL + 1;
    s1_ = (seed ^ 0xBF58476D1CE4E5B9ULL) * 0x94D049BB133111EBULL + 1;
    for (int i = 0; i < 8; i++) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }
  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }
  /// Zipf-like skewed value in [0, n): rank ~ 1/(rank+1)^theta approximation
  /// via rejection-free inverse power draw (cheap, monotone-skewed).
  uint64_t Skewed(uint64_t n, double theta = 0.99) {
    if (n == 0) return 0;
    double u = NextDouble();
    double r = 1.0 - u;
    double exp = 1.0 / (1.0 - theta);
    double v = 1.0;
    for (int i = 0; i < 4; ++i) v *= r;  // r^4 concentrates mass at low ranks
    (void)exp;
    return static_cast<uint64_t>(v * static_cast<double>(n)) % n;
  }
  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }
  /// Pick one element uniformly.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t s0_, s1_;
};

}  // namespace asterix
