// Low-level file I/O used by the storage layer: positional reads/writes on
// page-oriented files, plus filesystem helpers. POSIX-only (pread/pwrite).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace asterix {

/// A file opened for random access. Thread-safe for concurrent ReadAt calls;
/// Append/WriteAt must be externally synchronized.
class File {
 public:
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Open an existing file for reading (and writing if `writable`).
  static Result<std::unique_ptr<File>> Open(const std::string& path,
                                            bool writable = false);
  /// Create (truncate) a file for writing and reading.
  static Result<std::unique_ptr<File>> Create(const std::string& path);

  /// Read exactly `n` bytes at `offset` into `buf`. Fails on short read.
  Status ReadAt(uint64_t offset, size_t n, void* buf) const;
  /// Write exactly `n` bytes at `offset`.
  Status WriteAt(uint64_t offset, size_t n, const void* buf);
  /// Append `n` bytes at the current logical end; returns offset written at.
  Result<uint64_t> Append(size_t n, const void* buf);
  /// Flush file contents (and metadata) to stable storage.
  Status Sync();
  /// Current file size in bytes.
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path, uint64_t size);
  int fd_;
  std::string path_;
  uint64_t size_;
};

/// Filesystem helpers (thin wrappers, Status-returning).
namespace fs {
Status CreateDirs(const std::string& path);
Status RemoveAll(const std::string& path);
bool Exists(const std::string& path);
Result<std::vector<std::string>> ListDir(const std::string& path);
Status WriteStringToFile(const std::string& path, const std::string& data);
Result<std::string> ReadFileToString(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status RemoveFile(const std::string& path);
}  // namespace fs

/// Allocates process-unique temp file paths under a spill directory.
class TempFileManager {
 public:
  explicit TempFileManager(std::string dir) : dir_(std::move(dir)) {}
  /// Returns a fresh path (file not created). Thread-safe.
  std::string NextPath(const std::string& tag);
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace asterix
