// Storage compression (paper §VII lists it among the open-source
// contributions that benefited the commercial product). A dependency-free
// LZSS-style byte compressor used by the LSM disk components: greedy
// longest-match against a 64 KiB sliding window with a hash-chain index.
// Format: varint uncompressed-size, then a token stream of
//   0x00 len   <len literal bytes>
//   0x01 dist len                      (match: copy `len` from `dist` back)
// with varint-encoded fields.
#pragma once

#include <string>

#include "common/result.h"

namespace asterix {

/// Compress `input`; output is self-describing.
std::string Compress(const std::string& input);

/// Decompress a Compress() buffer; fails on corruption.
Result<std::string> Decompress(const std::string& compressed);

}  // namespace asterix
