#include "common/compress.h"

#include <cstring>
#include <vector>

namespace asterix {

namespace {
constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kHashSize = 1 << 15;

void PutVar(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVar(const std::string& data, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t b = static_cast<uint8_t>(data[*pos]);
    (*pos)++;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("truncated varint in compressed data");
}

uint32_t HashAt(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17 & (kHashSize - 1);
}
}  // namespace

std::string Compress(const std::string& input) {
  std::string out;
  PutVar(&out, input.size());
  if (input.empty()) return out;

  // Hash chains: head[h] = most recent position with hash h; prev[i] =
  // previous position in i's chain.
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(input.size(), -1);

  std::string literals;
  auto flush_literals = [&] {
    if (literals.empty()) return;
    out.push_back(0x00);
    PutVar(&out, literals.size());
    out += literals;
    literals.clear();
  };

  size_t i = 0;
  while (i < input.size()) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= input.size()) {
      uint32_t h = HashAt(input.data() + i);
      int64_t cand = head[h];
      int probes = 16;
      while (cand >= 0 && probes-- > 0 &&
             i - static_cast<size_t>(cand) <= kWindow) {
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, input.size() - i);
        const char* a = input.data() + i;
        const char* b = input.data() + cand;
        while (len < max_len && a[len] == b[len]) len++;
        if (len > best_len) {
          best_len = len;
          best_dist = i - static_cast<size_t>(cand);
        }
        cand = prev[static_cast<size_t>(cand)];
      }
    }
    if (best_len >= kMinMatch) {
      flush_literals();
      out.push_back(0x01);
      PutVar(&out, best_dist);
      PutVar(&out, best_len);
      // Index the covered positions (sparsely, to bound cost).
      size_t end = i + best_len;
      for (; i < end && i + kMinMatch <= input.size(); i += 1) {
        uint32_t h = HashAt(input.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<int64_t>(i);
      }
      i = end;
    } else {
      if (i + kMinMatch <= input.size()) {
        uint32_t h = HashAt(input.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<int64_t>(i);
      }
      literals.push_back(input[i]);
      i++;
    }
  }
  flush_literals();
  return out;
}

Result<std::string> Decompress(const std::string& compressed) {
  size_t pos = 0;
  AX_ASSIGN_OR_RETURN(uint64_t total, GetVar(compressed, &pos));
  std::string out;
  out.reserve(total);
  while (out.size() < total) {
    if (pos >= compressed.size()) {
      return Status::Corruption("compressed stream ends early");
    }
    char tag = compressed[pos++];
    if (tag == 0x00) {
      AX_ASSIGN_OR_RETURN(uint64_t len, GetVar(compressed, &pos));
      if (pos + len > compressed.size() || out.size() + len > total) {
        return Status::Corruption("bad literal run");
      }
      out.append(compressed, pos, len);
      pos += len;
    } else if (tag == 0x01) {
      AX_ASSIGN_OR_RETURN(uint64_t dist, GetVar(compressed, &pos));
      AX_ASSIGN_OR_RETURN(uint64_t len, GetVar(compressed, &pos));
      if (dist == 0 || dist > out.size() || out.size() + len > total) {
        return Status::Corruption("bad match token");
      }
      // Byte-by-byte copy: matches may overlap themselves (RLE-style).
      size_t src = out.size() - dist;
      for (uint64_t k = 0; k < len; k++) out.push_back(out[src + k]);
    } else {
      return Status::Corruption("bad token tag in compressed data");
    }
  }
  if (pos != compressed.size()) {
    return Status::Corruption("trailing bytes after compressed stream");
  }
  return out;
}

}  // namespace asterix
