// Result<T>: value-or-Status, the counterpart of Status for functions that
// produce a value. Mirrors arrow::Result / rocksdb's StatusOr idiom.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace asterix {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a programming error (asserts in debug builds).
///
/// [[nodiscard]] mirrors Status: discarding a Result discards both the value
/// and the error, so call sites must consume it (see status.h).
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value
  std::optional<T> value_;
};

/// Assign the value of a Result expression to `lhs`, or propagate its error.
#define AX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define AX_ASSIGN_OR_RETURN(lhs, expr) \
  AX_ASSIGN_OR_RETURN_IMPL(AX_CONCAT_(_ax_res_, __LINE__), lhs, expr)

#define AX_CONCAT_(a, b) AX_CONCAT_IMPL_(a, b)
#define AX_CONCAT_IMPL_(a, b) a##b

}  // namespace asterix
