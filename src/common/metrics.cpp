#include "common/metrics.h"

#include <chrono>
#include <deque>
#include <mutex>

#include "common/thread_annotations.h"

namespace asterix::metrics {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Entry {
  std::string name;
  std::string scope;
  bool is_histogram = false;
  Counter counter;
  Histogram histogram;
};

struct Registry::Impl {
  // Leaf-level mutex: held only for registration/snapshot, never while
  // acquiring any other lock (PR-1 lock hierarchy: metrics are below
  // everything).
  mutable std::mutex mu;
  // deque gives stable element addresses across growth.
  std::deque<Entry> entries AX_GUARDED_BY(mu);
  // "name\x1f scope" -> entry
  std::map<std::string, Entry*, std::less<>> index AX_GUARDED_BY(mu);
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::Global() {
  // Leaked singleton: metric pointers cached in static initializers across
  // translation units must stay valid through static destruction.
  static Registry* g = new Registry();
  return *g;
}

Registry::Entry* Registry::FindOrCreate(std::string_view name,
                                        std::string_view scope,
                                        bool histogram) {
  std::string key;
  key.reserve(name.size() + scope.size() + 1);
  key.append(name);
  key.push_back('\x1f');
  key.append(scope);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->index.find(key);
  if (it != impl_->index.end()) return it->second;
  impl_->entries.emplace_back();
  Entry* e = &impl_->entries.back();
  e->name = std::string(name);
  e->scope = std::string(scope);
  e->is_histogram = histogram;
  impl_->index.emplace(std::move(key), e);
  return e;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view scope) {
  return &FindOrCreate(name, scope, /*histogram=*/false)->counter;
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view scope) {
  return &FindOrCreate(name, scope, /*histogram=*/true)->histogram;
}

uint64_t Registry::TotalOf(std::string_view name) const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& e : impl_->entries) {
    if (e.name != name) continue;
    total += e.is_histogram ? e.histogram.sum() : e.counter.value();
  }
  return total;
}

std::vector<Sample> Registry::Samples() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.reserve(impl_->entries.size());
  for (const auto& e : impl_->entries) {
    Sample s;
    s.name = e.name;
    s.scope = e.scope;
    s.is_histogram = e.is_histogram;
    if (e.is_histogram) {
      s.count = e.histogram.count();
      s.sum = e.histogram.sum();
    } else {
      s.count = e.counter.value();
      s.sum = s.count;
    }
    out.push_back(std::move(s));
  }
  return out;
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& s : Samples()) snap.totals_[s.name] += s.sum;
  return snap;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& e : impl_->entries) {
    e.counter.Reset();
    e.histogram.Reset();
  }
}

size_t Registry::registered_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->entries.size();
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

uint64_t MetricsSnapshot::value(std::string_view name) const {
  auto it = totals_.find(name);
  return it == totals_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : totals_) {
    uint64_t prev = before.value(name);
    out.totals_[name] = v >= prev ? v - prev : 0;
  }
  return out;
}

std::string MetricsSnapshot::ToString(std::string_view prefix) const {
  std::string out;
  for (const auto& [name, v] : totals_) {
    if (v == 0) continue;
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// ScopedTimerNs
// ---------------------------------------------------------------------------

ScopedTimerNs::ScopedTimerNs(Counter* total_ns, Histogram* hist)
    : total_ns_(total_ns), hist_(hist), start_ns_(Enabled() ? NowNs() : 0) {}

ScopedTimerNs::~ScopedTimerNs() {
  if (start_ns_ == 0) return;
  uint64_t elapsed = NowNs() - start_ns_;
  if (total_ns_) total_ns_->Add(elapsed);
  if (hist_) hist_->Record(elapsed);
}

}  // namespace asterix::metrics
