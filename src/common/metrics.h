// Lightweight runtime metrics: named counters and histograms behind a
// process-global registry. This is the observability substrate the paper's
// architectural claims are verified against — every layer (Hyracks
// operators, exchanges, buffer cache, LSM trees, WAL) publishes counters
// here, and EXPERIMENTS.md cites them as evidence (see docs/METRICS.md for
// the full metric reference; axlint's metrics-sync check keeps it honest).
//
// Concurrency contract (fits the PR-1 lock hierarchy): counter and
// histogram updates are lock-free relaxed atomics and may be performed
// while holding any lock. Registration (GetCounter/GetHistogram) takes the
// registry's own leaf-level mutex and must therefore happen at
// construction/startup time on hot paths — call sites cache the returned
// pointer, which is stable for the process lifetime.
//
// Cost model: when metrics are disabled (SetEnabled(false)) an update is
// one relaxed atomic load + branch — no stores, no allocation. When
// enabled, one relaxed fetch_add. There is no per-update locking either
// way.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace asterix::metrics {

/// Global on/off switch (default on). Disabled updates are a load+branch.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic counter. Updates are lock-free; safe under any lock.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Power-of-two bucketed histogram (bucket i counts values in
/// [2^(i-1), 2^i); bucket 0 counts zeros/ones). Tracks sum and count too.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t v) {
    if (!Enabled()) return;
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double Mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

  static int BucketOf(uint64_t v) {
    return v <= 1 ? 0 : 64 - __builtin_clzll(v - 1);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// One registry entry in a snapshot. `scope` distinguishes instances of the
/// same metric (e.g. buffer-cache shards); aggregate over scopes to get the
/// per-name total.
struct Sample {
  std::string name;
  std::string scope;
  bool is_histogram = false;
  uint64_t count = 0;  // counter value, or histogram count
  uint64_t sum = 0;    // == count for counters; value sum for histograms
};

/// A point-in-time snapshot of every registered metric, aggregated by
/// name (scopes summed). Supports subtraction for before/after deltas —
/// the idiom benches use to attribute counters to one query.
class MetricsSnapshot {
 public:
  /// Total for `name` summed across scopes (0 if unregistered).
  uint64_t value(std::string_view name) const;
  /// this - before, clamped at 0 per name.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;
  const std::map<std::string, uint64_t, std::less<>>& values() const {
    return totals_;
  }
  /// "name value" lines, sorted by name; names matching `prefix` only
  /// (empty = all). Zero-valued entries are skipped.
  std::string ToString(std::string_view prefix = "") const;

 private:
  friend class Registry;
  std::map<std::string, uint64_t, std::less<>> totals_;
};

/// Process-global metric registry. Names identify *what* is measured and
/// must be string literals at the registration call site (the docs check
/// greps them); scopes identify *which instance* (shard, partition) and
/// may be dynamic.
class Registry {
 public:
  static Registry& Global();

  /// Find-or-create. The returned pointer is stable forever; cache it.
  Counter* GetCounter(std::string_view name, std::string_view scope = "");
  Histogram* GetHistogram(std::string_view name, std::string_view scope = "");

  /// Sum of a counter metric across all scopes (histograms: sum of sums).
  uint64_t TotalOf(std::string_view name) const;

  /// Every registered metric, one sample per (name, scope).
  std::vector<Sample> Samples() const;
  /// Aggregated-by-name snapshot for delta arithmetic.
  MetricsSnapshot Snapshot() const;

  /// Zero every metric (keeps registrations — pointers stay valid).
  void ResetAll();

  /// Number of distinct (name, scope) registrations (test hook).
  size_t registered_count() const;

 private:
  struct Entry;
  Entry* FindOrCreate(std::string_view name, std::string_view scope,
                      bool histogram);
  struct Impl;
  Impl* impl_;  // intentionally leaked: metrics outlive static destructors
  Registry();
};

/// RAII timer adding elapsed nanoseconds to a Counter (and optionally
/// recording them into a Histogram). No-ops entirely when disabled at
/// construction.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Counter* total_ns, Histogram* hist = nullptr);
  ~ScopedTimerNs();
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Counter* total_ns_;
  Histogram* hist_;
  uint64_t start_ns_;  // 0 = disabled at construction
};

/// Monotonic clock in nanoseconds (steady_clock; shared by profiling).
uint64_t NowNs();

}  // namespace asterix::metrics
