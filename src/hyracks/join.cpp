#include "hyracks/join.h"

#include "adm/serde.h"
#include "common/metrics.h"

namespace asterix::hyracks {

namespace {
constexpr size_t kJoinPartitions = 16;

metrics::Counter* JoinPartitionsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.join.partitions_spilled");
  return c;
}
metrics::Counter* JoinSpillBytesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.join.spill_bytes");
  return c;
}

size_t PartitionOf(const std::string& key, int level) {
  // Full splitmix64 remix: XOR-only salting preserves the equivalence
  // classes mod kJoinPartitions, so a recursion level would re-map an
  // entire oversized partition onto a single child partition forever.
  uint64_t x = std::hash<std::string>{}(key) +
               0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(level + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % kJoinPartitions);
}
}  // namespace

HashJoinOp::HashJoinOp(StreamPtr left, StreamPtr right,
                       std::vector<TupleEval> left_keys,
                       std::vector<TupleEval> right_keys, JoinType type,
                       size_t memory_budget_bytes, TempFileManager* tmp,
                       TupleEval residual, size_t right_arity_hint)
    : left_(std::move(left)), right_(std::move(right)),
      left_keys_(std::move(left_keys)), right_keys_(std::move(right_keys)),
      type_(type), budget_(memory_budget_bytes), tmp_(tmp),
      residual_(std::move(residual)), right_arity_(right_arity_hint) {}

HashJoinOp::~HashJoinOp() {
  output_reader_.reset();  // lets the output reader delete its file first
  output_writer_.reset();
  CleanupSpillFiles();
}

void HashJoinOp::CleanupSpillFiles() {
  // Abort-path safety net: most files are gone already (RunReader deletes
  // on destruction once opened), so failures here are expected and ignored.
  for (const auto& p : owned_spill_paths_) {
    // The file is usually gone already (readers delete on consumption).
    // axlint: allow(must-check): best-effort abort-path cleanup
    (void)fs::RemoveFile(p);
  }
  owned_spill_paths_.clear();
}

Result<std::string> HashJoinOp::KeyOf(const Tuple& t,
                                      const std::vector<TupleEval>& keys,
                                      bool* has_unknown) const {
  std::string id;
  *has_unknown = false;
  for (const auto& k : keys) {
    AX_ASSIGN_OR_RETURN(adm::Value v, k(t));
    if (v.is_unknown()) *has_unknown = true;
    adm::SerializeValue(v, &id);
  }
  return id;
}

Status HashJoinOp::JoinPair(TupleStream* probe, TupleStream* build,
                            int level) {
  if (level > static_cast<int>(stats_.recursion_depth)) {
    stats_.recursion_depth = static_cast<size_t>(level);
  }
  AX_RETURN_NOT_OK(build->Open());
  std::unordered_map<std::string, std::vector<Tuple>> table;
  size_t table_bytes = 0;
  bool grace = false;
  std::vector<std::unique_ptr<RunWriter>> build_parts(kJoinPartitions);
  std::vector<std::unique_ptr<RunWriter>> probe_parts(kJoinPartitions);

  // Batched build drain: one virtual NextBatch per frame of build input.
  Batch batch;
  while (true) {
    if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
    AX_ASSIGN_OR_RETURN(bool more, build->NextBatch(&batch));
    if (!more) break;
    for (size_t bi = 0; bi < batch.size(); bi++) {
      Tuple& t = batch[bi];
      bool unknown = false;
      AX_ASSIGN_OR_RETURN(std::string key, KeyOf(t, right_keys_, &unknown));
      if (unknown) continue;  // unknown keys never match
      if (right_arity_ == 0) right_arity_ = t.arity();
      // Grace partitioning only helps when keys spread rows across
      // partitions: with no equi keys (every row hashes identically) or
      // past the recursion cap (pathological skew), degrade to an
      // over-budget in-memory build instead of re-spilling the same rows
      // forever.
      // Uniform grant accounting: the tuple's in-memory footprint plus the
      // hash-entry bookkeeping it will cost if it stays in the table.
      size_t entry_bytes = t.ApproxBytes() + key.size() + kHashEntryOverheadBytes;
      bool can_partition = !right_keys_.empty() && level < 4;
      if (!grace && can_partition && table_bytes + entry_bytes > budget_) {
        // Switch to grace mode: open all partitions and dump the table.
        grace = true;
        stats_.partitions_spilled += kJoinPartitions;
        JoinPartitionsCounter()->Add(kJoinPartitions);
        for (size_t p = 0; p < kJoinPartitions; p++) {
          AX_ASSIGN_OR_RETURN(build_parts[p],
                              RunWriter::Create(tmp_->NextPath("joinbuild")));
          AX_ASSIGN_OR_RETURN(probe_parts[p],
                              RunWriter::Create(tmp_->NextPath("joinprobe")));
          owned_spill_paths_.push_back(build_parts[p]->path());
          owned_spill_paths_.push_back(probe_parts[p]->path());
        }
        for (auto& [k, tuples] : table) {
          size_t p = PartitionOf(k, level);
          for (const auto& bt : tuples) {
            AX_RETURN_NOT_OK(build_parts[p]->Write(bt));
          }
        }
        table.clear();
        table_bytes = 0;
      }
      if (grace) {
        size_t p = PartitionOf(key, level);
        AX_RETURN_NOT_OK(build_parts[p]->Write(t));
      } else {
        // The batch slot is ours to cannibalize: move, don't copy.
        table_bytes += entry_bytes;
        table[std::move(key)].push_back(std::move(t));
      }
    }
  }
  AX_RETURN_NOT_OK(build->Close());

  AX_RETURN_NOT_OK(probe->Open());
  // Batched probe drain, mirroring the build side.
  while (true) {
    if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
    AX_ASSIGN_OR_RETURN(bool more, probe->NextBatch(&batch));
    if (!more) break;
    for (size_t bi = 0; bi < batch.size(); bi++) {
      Tuple& t = batch[bi];
      bool unknown = false;
      AX_ASSIGN_OR_RETURN(std::string key, KeyOf(t, left_keys_, &unknown));
      if (unknown) {
        if (type_ == JoinType::kLeftOuter) {
          // Last use of the slot: move the probe tuple into the padded row.
          Tuple padded = std::move(t);
          padded.fields.reserve(padded.arity() + right_arity_);
          for (size_t i = 0; i < right_arity_; i++) {
            padded.fields.push_back(adm::Value::Null());
          }
          AX_RETURN_NOT_OK(EmitOutput(std::move(padded)));
        }
        continue;
      }
      if (grace) {
        size_t p = PartitionOf(key, level);
        AX_RETURN_NOT_OK(probe_parts[p]->Write(t));
        continue;
      }
      auto it = table.find(key);
      bool any_match = false;
      if (it != table.end()) {
        // Concat must copy: `t` is reused for every build match and `bt`
        // stays in the table for later probes.
        for (const auto& bt : it->second) {
          Tuple joined = Tuple::Concat(t, bt);
          if (residual_) {
            AX_ASSIGN_OR_RETURN(adm::Value pass, residual_(joined));
            if (!IsTrue(pass)) continue;
          }
          any_match = true;
          if (type_ == JoinType::kLeftSemi) break;  // existence is enough
          AX_RETURN_NOT_OK(EmitOutput(std::move(joined)));
        }
      }
      if (type_ == JoinType::kLeftSemi && any_match) {
        AX_RETURN_NOT_OK(EmitOutput(std::move(t)));
      } else if (type_ == JoinType::kLeftOuter && !any_match) {
        Tuple padded = std::move(t);
        padded.fields.reserve(padded.arity() + right_arity_);
        for (size_t i = 0; i < right_arity_; i++) {
          padded.fields.push_back(adm::Value::Null());
        }
        AX_RETURN_NOT_OK(EmitOutput(std::move(padded)));
      }
    }
  }
  AX_RETURN_NOT_OK(probe->Close());

  if (grace) {
    for (size_t p = 0; p < kJoinPartitions; p++) {
      AX_RETURN_NOT_OK(build_parts[p]->Finish());
      AX_RETURN_NOT_OK(probe_parts[p]->Finish());
      uint64_t spilled =
          build_parts[p]->bytes_written() + probe_parts[p]->bytes_written();
      stats_.bytes_spilled += spilled;
      JoinSpillBytesCounter()->Add(spilled);
      pending_.push_back(Partition{probe_parts[p]->path(),
                                   build_parts[p]->path(), level + 1});
    }
  }
  return Status::OK();
}

Status HashJoinOp::EmitOutput(Tuple t) {
  if (output_writer_) {
    return output_writer_->Write(t);
  }
  output_bytes_ += t.ApproxBytes();
  output_.push_back(std::move(t));
  if (output_bytes_ > budget_) {
    // Results outgrew the budget: move everything to a spill file and
    // stream from it (join output is unordered, so order is free).
    AX_ASSIGN_OR_RETURN(output_writer_,
                        RunWriter::Create(tmp_->NextPath("joinout")));
    owned_spill_paths_.push_back(output_writer_->path());
    for (const auto& buffered : output_) {
      AX_RETURN_NOT_OK(output_writer_->Write(buffered));
    }
    output_.clear();
    output_bytes_ = 0;
  }
  return Status::OK();
}

Status HashJoinOp::Open() {
  // Grace-partitioned probe/build key evaluators: once tuples are spilled,
  // the original key evaluators still apply (tuples keep their layout).
  AX_RETURN_NOT_OK(JoinPair(left_.get(), right_.get(), 0));
  while (!pending_.empty()) {
    if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
    Partition part = pending_.back();
    pending_.pop_back();
    AX_ASSIGN_OR_RETURN(auto probe_reader, RunReader::Open(part.left_path));
    AX_ASSIGN_OR_RETURN(auto build_reader, RunReader::Open(part.right_path));
    AX_RETURN_NOT_OK(JoinPair(probe_reader.get(), build_reader.get(),
                              part.level));
  }
  if (output_writer_) {
    AX_RETURN_NOT_OK(output_writer_->Finish());
    stats_.bytes_spilled += output_writer_->bytes_written();
    JoinSpillBytesCounter()->Add(output_writer_->bytes_written());
    AX_ASSIGN_OR_RETURN(output_reader_, RunReader::Open(output_writer_->path()));
    output_reader_->SetQueryContext(query_context());
  }
  out_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Tuple* out) {
  if (output_reader_) {
    return output_reader_->Next(out);
  }
  if (out_pos_ >= output_.size()) return false;
  *out = std::move(output_[out_pos_++]);
  return true;
}

Result<bool> HashJoinOp::NextBatch(Batch* out) {
  if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
  out->Clear();
  if (output_reader_) {
    while (!out->full()) {
      AX_RETURN_NOT_OK(PollAlive());
      Tuple* slot = out->Add();
      AX_ASSIGN_OR_RETURN(bool more, output_reader_->Next(slot));
      if (!more) {
        out->PopLast();
        break;
      }
    }
  } else {
    while (out_pos_ < output_.size() && !out->full()) {
      *out->Add() = std::move(output_[out_pos_++]);
    }
  }
  if (out->empty()) return false;
  NoteBatchEmitted(out->size());
  return true;
}

Status HashJoinOp::Close() {
  output_.clear();
  output_reader_.reset();
  output_writer_.reset();
  CleanupSpillFiles();
  grant_.Release();
  return Status::OK();
}

}  // namespace asterix::hyracks
