#include "hyracks/merge.h"

#include <algorithm>

namespace asterix::hyracks {

Result<int> OrderedMergeStream::Compare(const Tuple& a, const Tuple& b) const {
  for (const auto& k : keys_) {
    AX_ASSIGN_OR_RETURN(adm::Value va, k.eval(a));
    AX_ASSIGN_OR_RETURN(adm::Value vb, k.eval(b));
    int c = va.Compare(vb);
    if (c != 0) return k.ascending ? c : -c;
  }
  return 0;
}

Status OrderedMergeStream::Open() {
  // Open children concurrently: each child's Open() performs its local
  // sort, so this is where the parallel speedup comes from.
  std::vector<Status> statuses(children_.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(children_.size());
    for (size_t i = 0; i < children_.size(); i++) {
      threads.emplace_back(
          [this, i, &statuses] { statuses[i] = children_[i]->Open(); });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& st : statuses) AX_RETURN_NOT_OK(st);
  heads_.clear();
  for (size_t i = 0; i < children_.size(); i++) AX_RETURN_NOT_OK(PushFrom(i));
  return Status::OK();
}

Status OrderedMergeStream::PushFrom(size_t child) {
  Tuple t;
  AX_ASSIGN_OR_RETURN(bool more, children_[child]->Next(&t));
  if (!more) return Status::OK();
  // Insert keeping heads_ sorted descending, so the global minimum sits at
  // the back (pop_back is O(1); insertion is O(fan-in), which is small).
  Head head{std::move(t), child};
  size_t pos = heads_.size();
  heads_.push_back(std::move(head));
  while (pos > 0) {
    AX_ASSIGN_OR_RETURN(int c, Compare(heads_[pos - 1].tuple, heads_[pos].tuple));
    // Keep descending order: previous should be >= current.
    if (c >= 0) break;
    std::swap(heads_[pos - 1], heads_[pos]);
    pos--;
  }
  return Status::OK();
}

Result<bool> OrderedMergeStream::Next(Tuple* out) {
  if (heads_.empty()) return false;
  Head head = std::move(heads_.back());
  heads_.pop_back();
  *out = std::move(head.tuple);
  AX_RETURN_NOT_OK(PushFrom(head.src));
  return true;
}

Result<bool> OrderedMergeStream::NextBatch(Batch* out) {
  out->Clear();
  while (!heads_.empty() && !out->full()) {
    AX_RETURN_NOT_OK(PollAlive());
    Head head = std::move(heads_.back());
    heads_.pop_back();
    *out->Add() = std::move(head.tuple);
    AX_RETURN_NOT_OK(PushFrom(head.src));
  }
  if (out->empty()) return false;
  NoteBatchEmitted(out->size());
  return true;
}

Status OrderedMergeStream::Close() {
  Status first = Status::OK();
  for (auto& c : children_) {
    Status st = c->Close();
    if (!st.ok() && first.ok()) first = st;
  }
  heads_.clear();
  return first;
}

}  // namespace asterix::hyracks
