// Spill files ("run files"): temporary on-disk tuple sequences written by
// memory-bounded operators (external sort runs, grace-join partitions,
// group-by spill partitions). This is what lets asterix-lite honour the
// paper's founding assumption that data — and intermediate results — can
// well exceed memory (paper §III, Fig. 2 "working memory").
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/io.h"
#include "common/result.h"
#include "hyracks/stream.h"
#include "hyracks/tuple.h"

namespace asterix::hyracks {

/// Sequential writer of a tuple run. Buffered; call Finish() to flush.
class RunWriter {
 public:
  static Result<std::unique_ptr<RunWriter>> Create(const std::string& path);
  Status Write(const Tuple& t);
  /// Flush and close; the file can then be read with RunReader.
  Status Finish();
  uint64_t tuple_count() const { return count_; }
  /// Serialized bytes written so far (spill volume; operators report this
  /// per-operator, and `hyracks.spill.bytes_written` totals it globally).
  uint64_t bytes_written() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  RunWriter(std::string path, std::unique_ptr<File> file)
      : path_(std::move(path)), file_(std::move(file)) {}
  Status FlushBuffer();
  std::string path_;
  std::unique_ptr<File> file_;
  std::string buffer_;
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
  bool finished_ = false;
};

/// Sequential reader over a run file. Deletes the file on destruction when
/// `delete_on_close` (spill files are single-consumer temporaries).
class RunReader : public TupleStream {
 public:
  static Result<std::unique_ptr<RunReader>> Open(const std::string& path,
                                                 bool delete_on_close = true);
  ~RunReader() override;

  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override;
  /// Deserializes a frame's worth of tuples per call (non-virtual inner
  /// loop), so spill re-reads feed batch consumers efficiently.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override { return Status::OK(); }

 private:
  RunReader(std::string path, std::unique_ptr<File> file, bool del)
      : path_(std::move(path)), file_(std::move(file)), delete_on_close_(del) {}
  Status Refill();
  std::string path_;
  std::unique_ptr<File> file_;
  bool delete_on_close_;
  std::string buffer_;
  size_t buf_pos_ = 0;
  uint64_t file_pos_ = 0;
};

}  // namespace asterix::hyracks
