#include "hyracks/batch.h"

#include "common/metrics.h"

namespace asterix::hyracks {

namespace {
metrics::Counter* BatchesEmittedCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.batch.batches_emitted");
  return c;
}
metrics::Counter* BatchTuplesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.batch.tuples");
  return c;
}
metrics::Counter* FallbackBatchesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.batch.fallback_batches");
  return c;
}
}  // namespace

void NoteBatchEmitted(size_t tuples) {
  BatchesEmittedCounter()->Add(1);
  BatchTuplesCounter()->Add(tuples);
}

void NoteFallbackBatch(size_t tuples) {
  FallbackBatchesCounter()->Add(1);
  NoteBatchEmitted(tuples);
}

}  // namespace asterix::hyracks
