// Streaming (pipelined) Hyracks operators: select, assign, project, limit,
// unnest, union-all, and stream-distinct. Blocking operators live in
// sort.h / join.h / groupby.h. Select/assign/project are migrated to the
// batch path (NextBatch overrides transform whole batches in place);
// limit/unnest/distinct stay tuple-at-a-time behind the default adapter
// — their per-tuple control flow dominates, and they double as the proof
// that mixed pipelines work.
#pragma once

#include <memory>
#include <vector>

#include "hyracks/stream.h"

namespace asterix::hyracks {

/// Vectorized selection predicate: fills `keep[0..batch.size())` with SQL++
/// select semantics — keep[i] is nonzero iff the predicate evaluates to
/// boolean true on batch[i] (null/missing collapse to "not kept"). One call
/// covers the whole batch, so a compiled mask loop replaces the per-tuple
/// interpreted evaluator (std::function dispatch, boxed argument vector,
/// Result<Value> wrapping) on the hot path. Compiled by
/// algebricks::TryCompileBatchPredicate for the expression shapes it
/// recognizes; absent (empty function) otherwise.
using BatchPredicate = std::function<Status(const Batch&, uint8_t* keep)>;

/// Filter: passes tuples whose predicate evaluates to boolean true.
class SelectOp : public TupleStream {
 public:
  /// `batch_predicate` is optional: when present, NextBatch evaluates the
  /// whole batch with it; otherwise it interprets `predicate` per tuple.
  /// Next always uses `predicate` — the two must agree tuple-for-tuple.
  SelectOp(StreamPtr child, TupleEval predicate,
           BatchPredicate batch_predicate = nullptr)
      : child_(std::move(child)), predicate_(std::move(predicate)),
        batch_predicate_(std::move(batch_predicate)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  /// Filters the child's batch in place (stable compaction by move).
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  TupleEval predicate_;
  BatchPredicate batch_predicate_;
  std::vector<uint8_t> mask_;  // recycled selection-mask buffer
};

/// Assign: appends one computed field per evaluator to each tuple.
class AssignOp : public TupleStream {
 public:
  AssignOp(StreamPtr child, std::vector<TupleEval> evals)
      : child_(std::move(child)), evals_(std::move(evals)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  /// Appends the computed fields to every tuple of the child's batch.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  std::vector<TupleEval> evals_;
};

/// Project: keeps only the listed field positions, in the listed order.
class ProjectOp : public TupleStream {
 public:
  ProjectOp(StreamPtr child, std::vector<size_t> keep)
      : child_(std::move(child)), keep_(std::move(keep)) {
    monotone_ = true;
    for (size_t k = 0; k < keep_.size(); k++) {
      // Strictly increasing implies keep_[k] >= k, so the in-place
      // left-to-right shift never reads a slot it already wrote.
      if (keep_[k] < k || (k > 0 && keep_[k] <= keep_[k - 1])) {
        monotone_ = false;
        break;
      }
    }
  }
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  /// Projects every tuple of the child's batch in place. Strictly
  /// increasing keep lists (the common compiler output) shift fields
  /// within the tuple's own vector; reordering/duplicating lists cycle a
  /// scratch vector through the batch instead. Either way the steady
  /// state allocates nothing.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override { return child_->Close(); }

 private:
  /// Move the kept fields of `*t` into positions 0..keep_.size()) and drop
  /// the rest. Requires monotone_.
  Status ShiftInPlace(Tuple* t) const;

  StreamPtr child_;
  std::vector<size_t> keep_;
  bool monotone_;  // keep_ strictly increasing → in-place shift is safe
  std::vector<adm::Value> scratch_;  // recycled projection buffer
};

/// Limit/offset.
class LimitOp : public TupleStream {
 public:
  LimitOp(StreamPtr child, uint64_t limit, uint64_t offset = 0)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}
  Status Open() override {
    seen_ = emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  uint64_t limit_, offset_;
  uint64_t seen_ = 0, emitted_ = 0;
};

/// Unnest: for each input tuple, evaluates a collection expression and
/// emits one output tuple per item (input fields ++ item). When `outer`,
/// inputs with empty/missing collections emit one tuple with MISSING.
class UnnestOp : public TupleStream {
 public:
  UnnestOp(StreamPtr child, TupleEval collection, bool outer = false)
      : child_(std::move(child)), collection_(std::move(collection)),
        outer_(outer) {}
  Status Open() override {
    pending_.clear();
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  TupleEval collection_;
  bool outer_;
  std::vector<Tuple> pending_;  // queued expansion of the current input
};

/// Union-all over same-arity children, streamed in order.
class UnionAllOp : public TupleStream {
 public:
  explicit UnionAllOp(std::vector<StreamPtr> children)
      : children_(std::move(children)) {}
  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  /// Pure pass-through: forwards the current child's batches unchanged
  /// (and records no batch metrics of its own).
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

 private:
  std::vector<StreamPtr> children_;
  size_t current_ = 0;
};

/// Distinct over already-sorted input (pairs with ExternalSortOp).
class StreamDistinctOp : public TupleStream {
 public:
  explicit StreamDistinctOp(StreamPtr child) : child_(std::move(child)) {}
  Status Open() override {
    has_prev_ = false;
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  Tuple prev_;
  bool has_prev_ = false;
};

/// Compare two tuples field-wise (arity must match); total order.
int CompareTuples(const Tuple& a, const Tuple& b);

}  // namespace asterix::hyracks
