// Streaming (pipelined) Hyracks operators: select, assign, project, limit,
// unnest, union-all, and stream-distinct. Blocking operators live in
// sort.h / join.h / groupby.h.
#pragma once

#include <memory>
#include <vector>

#include "hyracks/stream.h"

namespace asterix::hyracks {

/// Filter: passes tuples whose predicate evaluates to boolean true.
class SelectOp : public TupleStream {
 public:
  SelectOp(StreamPtr child, TupleEval predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  TupleEval predicate_;
};

/// Assign: appends one computed field per evaluator to each tuple.
class AssignOp : public TupleStream {
 public:
  AssignOp(StreamPtr child, std::vector<TupleEval> evals)
      : child_(std::move(child)), evals_(std::move(evals)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  std::vector<TupleEval> evals_;
};

/// Project: keeps only the listed field positions, in the listed order.
class ProjectOp : public TupleStream {
 public:
  ProjectOp(StreamPtr child, std::vector<size_t> keep)
      : child_(std::move(child)), keep_(std::move(keep)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  std::vector<size_t> keep_;
};

/// Limit/offset.
class LimitOp : public TupleStream {
 public:
  LimitOp(StreamPtr child, uint64_t limit, uint64_t offset = 0)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}
  Status Open() override {
    seen_ = emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  uint64_t limit_, offset_;
  uint64_t seen_ = 0, emitted_ = 0;
};

/// Unnest: for each input tuple, evaluates a collection expression and
/// emits one output tuple per item (input fields ++ item). When `outer`,
/// inputs with empty/missing collections emit one tuple with MISSING.
class UnnestOp : public TupleStream {
 public:
  UnnestOp(StreamPtr child, TupleEval collection, bool outer = false)
      : child_(std::move(child)), collection_(std::move(collection)),
        outer_(outer) {}
  Status Open() override {
    pending_.clear();
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  TupleEval collection_;
  bool outer_;
  std::vector<Tuple> pending_;  // queued expansion of the current input
};

/// Union-all over same-arity children, streamed in order.
class UnionAllOp : public TupleStream {
 public:
  explicit UnionAllOp(std::vector<StreamPtr> children)
      : children_(std::move(children)) {}
  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  Status Close() override;

 private:
  std::vector<StreamPtr> children_;
  size_t current_ = 0;
};

/// Distinct over already-sorted input (pairs with ExternalSortOp).
class StreamDistinctOp : public TupleStream {
 public:
  explicit StreamDistinctOp(StreamPtr child) : child_(std::move(child)) {}
  Status Open() override {
    has_prev_ = false;
    return child_->Open();
  }
  Result<bool> Next(Tuple* out) override;
  Status Close() override { return child_->Close(); }

 private:
  StreamPtr child_;
  Tuple prev_;
  bool has_prev_ = false;
};

/// Compare two tuples field-wise (arity must match); total order.
int CompareTuples(const Tuple& a, const Tuple& b);

}  // namespace asterix::hyracks
