#include "hyracks/stream.h"

namespace asterix::hyracks {

Result<bool> TupleStream::FillBatchFromNext(Batch* out) {
  out->Clear();
  while (!out->full()) {
    Tuple* slot = out->Add();
    AX_ASSIGN_OR_RETURN(bool more, Next(slot));
    if (!more) {
      out->PopLast();
      break;
    }
  }
  return !out->empty();
}

Result<bool> TupleStream::NextBatch(Batch* out) {
  // Default adapter: tuple-at-a-time correctness for unmigrated operators.
  // hyracks.batch.fallback_batches counts how often a batch-driven
  // pipeline had to drop down to this path.
  AX_ASSIGN_OR_RETURN(bool any, FillBatchFromNext(out));
  if (!any) return false;
  NoteFallbackBatch(out->size());
  return true;
}

}  // namespace asterix::hyracks
