// Exchange connectors: move tuples between operator partitions across
// bounded queues (paper §III item 4 — the Hyracks dataflow platform's
// partitioned-parallel execution; Fig. 1's cluster of node partitions).
// Connector kinds mirror Hyracks: one-to-one, M:N hash partitioning,
// broadcast, and M:1 merge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "hyracks/stream.h"

namespace asterix::hyracks {

/// One unit of queue transfer: a batch of tuples (a "frame" — Hyracks
/// moves frames between partitions, not tuples, so synchronization cost
/// amortizes over ~hundreds of rows). kFrameTuples (the frame/batch
/// capacity) lives in batch.h: a popped frame is handed out as a Batch
/// without re-chunking.
using Frame = std::vector<Tuple>;

/// Per-exchange traffic statistics, updated lock-free by producers and
/// consumers; the query profiler harvests them into the EXCHANGE node of
/// the profiled plan (and global totals mirror into the metrics registry).
struct ExchangeStats {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> tuples_sent{0};
  std::atomic<uint64_t> producer_wait_ns{0};  // blocked on a full queue
  std::atomic<uint64_t> consumer_wait_ns{0};  // blocked on an empty queue
};

/// MPMC bounded frame queue with failure propagation.
class BoundedTupleQueue {
 public:
  /// `capacity` counts tuples; internally rounded up to whole frames.
  /// `stats` (optional) receives traffic/wait accounting; shared so the
  /// queue can outlive the owning Exchange (consumer streams hold queues).
  explicit BoundedTupleQueue(size_t capacity,
                             std::shared_ptr<ExchangeStats> stats = nullptr)
      : capacity_frames_(std::max<size_t>(2, capacity / kFrameTuples)),
        stats_(std::move(stats)) {}

  void SetProducerCount(int n) AX_EXCLUDES(mu_);
  /// Attach the query's cancellation context. Blocked pushes/pops bound
  /// their waits by the context deadline; cancellation itself wakes them
  /// through Poison (the Job registers a cancel listener that poisons every
  /// exchange). Must be called before producers/consumers start.
  void SetContext(const resource::QueryContext* ctx) AX_EXCLUDES(mu_);
  /// Pushes `frame` (blocking on backpressure). When `recycled` is
  /// non-null, an empty frame from the free list — storage returned by
  /// consumers via PopFrame — is handed back so producers refill a
  /// pre-reserved vector instead of reallocating one per frame.
  Status PushFrame(Frame frame, Frame* recycled = nullptr) AX_EXCLUDES(mu_);
  /// Non-blocking push: returns false (leaving `*frame` untouched) when the
  /// queue is at capacity, true when the frame was enqueued. Poison is
  /// reported as a Status. Feed ingestion policies use this to *observe*
  /// backpressure instead of suffering it — a full queue is the signal to
  /// spill, discard or throttle.
  Result<bool> TryPushFrame(Frame* frame) AX_EXCLUDES(mu_);
  /// Current queue depth in frames (racy snapshot, for monitoring only).
  size_t ApproxFrames() AX_EXCLUDES(mu_);
  /// Blocks; returns false when all producers closed and the queue drained.
  /// `out`'s previous storage (the frame the consumer just drained) is
  /// cleared and parked on the free list for PushFrame to recycle.
  Result<bool> PopFrame(Frame* out) AX_EXCLUDES(mu_);
  void CloseOneProducer() AX_EXCLUDES(mu_);
  void Poison(const Status& st) AX_EXCLUDES(mu_);

 private:
  /// Empty frames kept for recycling; small so idle queues hold no memory.
  static constexpr size_t kMaxFreeFrames = 8;

  /// Self-poison with `st` (already holding mu_) and wake both sides.
  void PoisonLocked(const Status& st) AX_REQUIRES(mu_);

  size_t capacity_frames_;
  std::shared_ptr<ExchangeStats> stats_;
  const resource::QueryContext* ctx_ = nullptr;  // set before threads start
  std::mutex mu_;
  std::condition_variable cv_push_, cv_pop_;
  std::deque<Frame> q_ AX_GUARDED_BY(mu_);
  std::vector<Frame> free_ AX_GUARDED_BY(mu_);
  int open_producers_ AX_GUARDED_BY(mu_) = 0;
  Status poison_ AX_GUARDED_BY(mu_) = Status::OK();
};

/// An exchange between `n_producers` upstream partitions and `n_consumers`
/// downstream partitions. Producers run on their own threads (driven by the
/// Job executor); consumers read via ConsumerStream.
class Exchange {
 public:
  /// Routing decision for one tuple: a consumer index, or kBroadcastAll.
  static constexpr size_t kBroadcastAll = SIZE_MAX;
  using RoutingFn = std::function<Result<size_t>(const Tuple&)>;

  Exchange(size_t n_producers, size_t n_consumers, size_t queue_capacity = 4096);

  size_t n_producers() const { return n_producers_; }
  size_t n_consumers() const { return queues_.size(); }

  /// Attach the query's cancellation context to every queue and to the
  /// producer loops. Must be called before RunProducer/consumer threads
  /// start (typically right after Job::AddExchange).
  void SetContext(const resource::QueryContext* ctx);

  /// The stream a downstream partition pulls from.
  StreamPtr ConsumerStream(size_t consumer);

  /// Drive one producer partition to completion: pulls `upstream`, routes
  /// each tuple. Call from a dedicated thread; closes its share of the
  /// queues at end (or poisons them on failure).
  Status RunProducer(TupleStream* upstream, const RoutingFn& route);

  /// Abort: fail every queue so blocked producers/consumers unwind.
  void PoisonAll(const Status& st);

  /// Routing helpers.
  static RoutingFn HashRoute(std::vector<TupleEval> keys, size_t n_consumers);
  static RoutingFn SingleRoute();     // everything to consumer 0 (merge)
  static RoutingFn BroadcastRoute();  // everything to all consumers

  /// Cumulative traffic through this exchange (all queues).
  const ExchangeStats& stats() const { return *stats_; }

 private:
  size_t n_producers_;
  const resource::QueryContext* ctx_ = nullptr;
  // shared_ptr: consumer QueueStreams may outlive the Exchange's queues_
  // vector reshuffles; stats_ likewise outlives detached consumers.
  std::shared_ptr<ExchangeStats> stats_;
  std::vector<std::shared_ptr<BoundedTupleQueue>> queues_;
};

}  // namespace asterix::hyracks
