// Job executor: runs a partitioned dataflow to completion. A job is a set
// of producer tasks (threads driving pipelines into exchanges) plus root
// streams (one per partition) that the caller collects. This is the
// "Hyracks jobs coordinated by the cluster controller" of paper Fig. 1,
// with threads standing in for cluster nodes.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "hyracks/exchange.h"
#include "hyracks/stream.h"

namespace asterix::hyracks {

class Job {
 public:
  Job() = default;
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;
  ~Job();

  /// Attach the query's cancellation context: every exchange (present and
  /// future) gets deadline-aware queue waits, a cancel listener poisons
  /// them all so blocked producers/consumers wake, and the root collectors
  /// check liveness per batch. Call before RunCollect; the destructor
  /// detaches the listeners (after which the context may outlive the job).
  void SetContext(resource::QueryContext* ctx);

  /// Register an exchange; the job owns it for its lifetime.
  Exchange* AddExchange(size_t n_producers, size_t n_consumers,
                        size_t queue_capacity = 4096);

  /// Register a producer task: a function that drives one upstream
  /// partition into an exchange (typically Exchange::RunProducer).
  void AddProducerTask(std::function<Status()> task);

  /// Run all producer tasks on threads, pull every root stream to
  /// completion in parallel, and return each root's tuples.
  Result<std::vector<std::vector<Tuple>>> RunCollect(
      std::vector<StreamPtr> roots);

 private:
  void NoteStatus(const Status& st) AX_EXCLUDES(mu_);
  /// Wire one exchange to ctx_: queue contexts + a poisoning listener.
  void AttachExchange(Exchange* ex);

  // Populated single-threaded during job construction; read-only while the
  // job's producer/collector threads run.
  std::vector<std::unique_ptr<Exchange>> exchanges_;
  std::vector<std::function<Status()>> tasks_;
  resource::QueryContext* ctx_ = nullptr;
  std::vector<resource::QueryContext::ListenerId> listener_ids_;
  std::mutex mu_;
  Status first_error_ AX_GUARDED_BY(mu_);
};

}  // namespace asterix::hyracks
