// Ordered merge of sorted partition streams: the final stage of the
// parallel sort (paper §VII credits "much-improved parallel sorting" as a
// community contribution). Each partition sorts locally — those sorts run
// concurrently because Open() fans out to threads — and this stream then
// k-way merges the sorted results, preserving the global order.
#pragma once

#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "hyracks/sort.h"
#include "hyracks/stream.h"

namespace asterix::hyracks {

class OrderedMergeStream : public TupleStream {
 public:
  /// `keys` must match the sort keys of the (sorted) children.
  OrderedMergeStream(std::vector<StreamPtr> children, std::vector<SortKey> keys)
      : children_(std::move(children)), keys_(std::move(keys)) {}

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  /// Pops up to a frame's worth of merged tuples per call (the heap logic
  /// runs inline, so no per-tuple virtual dispatch downstream).
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

 private:
  Result<int> Compare(const Tuple& a, const Tuple& b) const;
  Status PushFrom(size_t child);

  std::vector<StreamPtr> children_;
  std::vector<SortKey> keys_;
  struct Head {
    Tuple tuple;
    size_t src;
  };
  // Sorted heads, maintained as a vector-based heap via explicit compares
  // (comparators can fail, so std::priority_queue's noexcept-ish comparator
  // contract doesn't fit; linear insertion is fine for small fan-in).
  std::vector<Head> heads_;
};

}  // namespace asterix::hyracks
