// ColumnarScan: a batch-native TupleStream over an LSM tree's scan snapshot
// (paper §VII: columnar storage + the batch execution model of batch.h).
// Where PartitionScanSource deserializes every full record out of the
// merged row iterator, this source works a component stack directly:
//
//  * Projection pushdown — when the Algebricks lowering proves only a field
//    subset is touched, only those columns are read and decoded from
//    columnar components (the rest are never paged in; the skip count is
//    exported as storage.columnar.columns_skipped).
//  * Predicate pushdown — comparison conjuncts against constants are
//    evaluated column-at-a-time over each gathered batch (fixed-width
//    columns compare raw 8-byte payloads) and only surviving rows are
//    materialized into tuples.
//  * Mixed stacks — memory-component entries and row (.cmp) components
//    participate in the same newest-wins merge, decoding full records only
//    for rows that reach the predicate/materialize phases.
//
// Output shape matches the row scan source: 1-field tuples holding the
// record (pruned to the projected fields when the projection was pushed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hyracks/stream.h"
#include "storage/lsm_btree.h"

namespace asterix::hyracks {

/// Comparison operators a scan can absorb from a Select.
enum class ScanCmp { kEq, kLt, kLe, kGt, kGe };

/// One pushed conjunct: field <cmp> constant. SQL++ comparison semantics:
/// a row whose field is NULL/MISSING (or an unknown constant) never passes.
struct ScanPredicate {
  std::string field;
  ScanCmp cmp = ScanCmp::kEq;
  adm::Value constant = adm::Value::Missing();
};

/// Batch-native scan over one LSM partition. Single-use, one partition.
class ColumnarScanSource : public TupleStream {
 public:
  /// `fields`/`fields_pushed`: projected top-level field names, valid only
  /// when pushed (an empty pushed set is legal — e.g. COUNT(*)). `tree`
  /// must outlive the stream.
  ColumnarScanSource(const storage::LsmBTree* tree,
                     std::vector<std::string> fields, bool fields_pushed,
                     std::vector<ScanPredicate> predicates);
  ~ColumnarScanSource() override;

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

 private:
  struct Source;
  struct Candidate;
  /// Gather the next batch of newest-version candidates, run the pushed
  /// predicates column-wise, and materialize survivors into rows_.
  Status Refill();

  const storage::LsmBTree* tree_;
  std::vector<std::string> fields_;
  bool fields_pushed_ = false;
  std::vector<ScanPredicate> predicates_;

  storage::LsmBTree::ScanSnapshot snap_;
  std::vector<std::unique_ptr<Source>> sources_;
  bool exhausted_ = false;
  std::vector<Tuple> rows_;  // materialized survivors awaiting hand-off
  size_t pos_ = 0;
};

}  // namespace asterix::hyracks
