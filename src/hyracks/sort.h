// External merge sort: the memory-bounded sort operator (paper Fig. 2's
// "working memory" consumer). Accumulates tuples up to its budget, sorts
// and spills sorted runs, then k-way merges runs with a bounded fan-in
// (multi-pass when there are more runs than the fan-in).
#pragma once

#include <memory>
#include <vector>

#include "common/io.h"
#include "hyracks/spill.h"
#include "hyracks/stream.h"
#include "resource/governor.h"

namespace asterix::hyracks {

/// One sort key: an evaluator plus direction.
struct SortKey {
  TupleEval eval;
  bool ascending = true;
};

struct SortStats {
  size_t runs_spilled = 0;
  size_t merge_passes = 0;
  uint64_t tuples = 0;
  uint64_t bytes_spilled = 0;  // serialized run bytes (incl. merge rewrites)
};

class ExternalSortOp : public TupleStream {
 public:
  ExternalSortOp(StreamPtr child, std::vector<SortKey> keys,
                 size_t memory_budget_bytes, TempFileManager* tmp,
                 size_t merge_fanin = 16)
      : child_(std::move(child)), keys_(std::move(keys)),
        budget_(memory_budget_bytes), tmp_(tmp), fanin_(merge_fanin) {}
  ~ExternalSortOp() override;

  /// Adopt a governor grant (overriding the constructor budget when the
  /// grant carries bytes) and a cancellation context checked at batch
  /// granularity. The grant is RAII-released at Close/destruction.
  void AttachResources(const resource::QueryContext* ctx,
                       resource::MemoryGrant grant) {
    ctx_ = ctx;
    SetQueryContext(ctx);  // internal run readers inherit it via the base
    grant_ = std::move(grant);
    if (grant_.bytes() > 0) budget_ = grant_.bytes();
  }

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  /// Emits sorted output batch-at-a-time straight from the in-memory array
  /// (or the merged run reader), skipping the per-tuple Next chain.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

  const SortStats& stats() const { return stats_; }

 private:
  // Tuples are augmented with their evaluated keys (prefix fields) so runs
  // never re-evaluate expressions; output strips the prefix again. Takes
  // the tuple by value: keys evaluate against it, then its fields move in.
  Result<Tuple> Augment(Tuple t) const;
  // Strip the key prefix: move the payload fields of `aug` into `out`.
  void StripPrefix(Tuple* aug, Tuple* out) const;
  int CompareAugmented(const Tuple& a, const Tuple& b) const;
  Status SpillRun(std::vector<Tuple>* run);
  Result<std::string> MergeRuns(const std::vector<std::string>& paths);

  /// Remove every spill file this operator created and nobody consumed
  /// (abort/cancel paths; consumed files self-delete via RunReader).
  void CleanupSpillFiles();

  StreamPtr child_;
  std::vector<SortKey> keys_;
  size_t budget_;
  TempFileManager* tmp_;
  size_t fanin_;
  SortStats stats_;
  const resource::QueryContext* ctx_ = nullptr;
  resource::MemoryGrant grant_;

  // After Open(): either everything in memory, or one final merged reader.
  std::vector<Tuple> memory_;  // augmented, sorted
  size_t mem_pos_ = 0;
  std::unique_ptr<RunReader> merged_;
  std::vector<std::string> run_paths_back_;  // spilled run files
  /// Every temp path ever created (runs and merge outputs), kept for
  /// cleanup on abort. Removal of already-consumed (deleted) paths is a
  /// harmless no-op.
  std::vector<std::string> owned_spill_paths_;
};

}  // namespace asterix::hyracks
