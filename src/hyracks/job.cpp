#include "hyracks/job.h"

namespace asterix::hyracks {

Job::~Job() {
  // Detach cancel listeners before the exchanges they capture die. After
  // RemoveCancelListener returns, the listener can never run again, so a
  // late Instance::CancelQuery on a finished query touches nothing stale.
  if (ctx_ != nullptr) {
    for (auto id : listener_ids_) ctx_->RemoveCancelListener(id);
  }
}

void Job::SetContext(resource::QueryContext* ctx) {
  ctx_ = ctx;
  for (auto& ex : exchanges_) AttachExchange(ex.get());
}

void Job::AttachExchange(Exchange* ex) {
  if (ctx_ == nullptr) return;
  ex->SetContext(ctx_);
  listener_ids_.push_back(ctx_->AddCancelListener(
      [ex] { ex->PoisonAll(Status::Cancelled("query cancelled")); }));
}

Exchange* Job::AddExchange(size_t n_producers, size_t n_consumers,
                           size_t queue_capacity) {
  exchanges_.push_back(
      std::make_unique<Exchange>(n_producers, n_consumers, queue_capacity));
  AttachExchange(exchanges_.back().get());
  return exchanges_.back().get();
}

void Job::AddProducerTask(std::function<Status()> task) {
  tasks_.push_back(std::move(task));
}

void Job::NoteStatus(const Status& st) {
  if (st.ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_.ok()) first_error_ = st;
}

Result<std::vector<std::vector<Tuple>>> Job::RunCollect(
    std::vector<StreamPtr> roots) {
  std::vector<std::thread> threads;
  threads.reserve(tasks_.size() + roots.size());
  for (auto& task : tasks_) {
    threads.emplace_back([this, &task] { NoteStatus(task()); });
  }
  std::vector<std::vector<Tuple>> results(roots.size());
  for (size_t i = 0; i < roots.size(); i++) {
    threads.emplace_back([this, &roots, &results, i] {
      auto r = CollectAll(roots[i].get(), ctx_);
      if (r.ok()) {
        results[i] = std::move(r).value();
      } else {
        NoteStatus(r.status());
        // Poison exchanges so producers blocked on full queues unwind.
        for (auto& ex : exchanges_) ex->PoisonAll(r.status());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_error_.ok()) return first_error_;
  return results;
}

}  // namespace asterix::hyracks
