#include "hyracks/spill.h"

#include "common/metrics.h"

namespace asterix::hyracks {

namespace {
constexpr size_t kWriteBuffer = 256 * 1024;
constexpr size_t kReadChunk = 256 * 1024;

metrics::Counter* SpillRunsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.spill.runs_written");
  return c;
}
metrics::Counter* SpillBytesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.spill.bytes_written");
  return c;
}
}  // namespace

Result<std::unique_ptr<RunWriter>> RunWriter::Create(const std::string& path) {
  AX_ASSIGN_OR_RETURN(auto file, File::Create(path));
  return std::unique_ptr<RunWriter>(new RunWriter(path, std::move(file)));
}

Status RunWriter::Write(const Tuple& t) {
  const size_t before = buffer_.size();
  SerializeTuple(t, &buffer_);
  count_++;
  bytes_ += buffer_.size() - before;
  if (buffer_.size() >= kWriteBuffer) return FlushBuffer();
  return Status::OK();
}

Status RunWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  AX_ASSIGN_OR_RETURN(uint64_t off, file_->Append(buffer_.size(), buffer_.data()));
  (void)off;
  buffer_.clear();
  return Status::OK();
}

Status RunWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  AX_RETURN_NOT_OK(FlushBuffer());
  file_.reset();  // close fd (no fsync: spill files need no durability)
  SpillRunsCounter()->Add(1);
  SpillBytesCounter()->Add(bytes_);
  return Status::OK();
}

Result<std::unique_ptr<RunReader>> RunReader::Open(const std::string& path,
                                                   bool delete_on_close) {
  AX_ASSIGN_OR_RETURN(auto file, File::Open(path));
  return std::unique_ptr<RunReader>(
      new RunReader(path, std::move(file), delete_on_close));
}

RunReader::~RunReader() {
  file_.reset();
  // axlint: allow(must-check): best-effort temp cleanup in a destructor
  if (delete_on_close_) (void)fs::RemoveFile(path_);
}

Status RunReader::Refill() {
  // Keep unconsumed bytes (a tuple may straddle chunk boundaries).
  buffer_.erase(0, buf_pos_);
  buf_pos_ = 0;
  size_t want = kReadChunk;
  uint64_t remaining = file_->size() - file_pos_;
  if (want > remaining) want = static_cast<size_t>(remaining);
  if (want == 0) return Status::OK();
  size_t old = buffer_.size();
  buffer_.resize(old + want);
  AX_RETURN_NOT_OK(file_->ReadAt(file_pos_, want, buffer_.data() + old));
  file_pos_ += want;
  return Status::OK();
}

Result<bool> RunReader::Next(Tuple* out) {
  while (true) {
    AX_RETURN_NOT_OK(PollAlive());
    size_t try_pos = buf_pos_;
    auto r = DeserializeTuple(buffer_, &try_pos);
    if (r.ok()) {
      *out = std::move(r).value();
      buf_pos_ = try_pos;
      return true;
    }
    // Possibly a tuple split across the chunk boundary: refill and retry.
    bool at_eof = file_pos_ >= file_->size();
    if (at_eof) {
      if (buf_pos_ >= buffer_.size()) return false;  // clean end
      return Status::Corruption("trailing bytes in run file '" + path_ + "'");
    }
    AX_RETURN_NOT_OK(Refill());
  }
}

Result<bool> RunReader::NextBatch(Batch* out) {
  out->Clear();
  while (!out->full()) {
    AX_RETURN_NOT_OK(PollAlive());
    Tuple* slot = out->Add();
    // Qualified call: deserialize straight into the batch slot without
    // virtual dispatch per tuple.
    AX_ASSIGN_OR_RETURN(bool more, RunReader::Next(slot));
    if (!more) {
      out->PopLast();
      break;
    }
  }
  if (out->empty()) return false;
  NoteBatchEmitted(out->size());
  return true;
}

}  // namespace asterix::hyracks
