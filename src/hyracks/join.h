// Hash join with grace-style partitioning when the build side exceeds the
// memory budget (paper Fig. 2: joins are among the working-memory
// consumers; the founding assumption is that inputs can exceed memory).
// Supports inner, left-outer and left-semi joins; the left input is the
// probe side, the right input is the build side.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "hyracks/spill.h"
#include "hyracks/stream.h"
#include "resource/governor.h"

namespace asterix::hyracks {

enum class JoinType { kInner, kLeftOuter, kLeftSemi };

struct JoinStats {
  size_t partitions_spilled = 0;
  size_t recursion_depth = 0;
  uint64_t bytes_spilled = 0;  // grace partitions + spilled join output
};

class HashJoinOp : public TupleStream {
 public:
  /// `left_keys`/`right_keys` are positionally paired equi-join keys.
  /// `residual` (optional) is evaluated over the concatenated tuple
  /// (left ++ right) and filters matches (non-equi conjuncts).
  HashJoinOp(StreamPtr left, StreamPtr right, std::vector<TupleEval> left_keys,
             std::vector<TupleEval> right_keys, JoinType type,
             size_t memory_budget_bytes, TempFileManager* tmp,
             TupleEval residual = nullptr, size_t right_arity_hint = 0);
  ~HashJoinOp() override;

  /// Adopt a governor grant (overriding the constructor budget when the
  /// grant carries bytes) and a cancellation context checked at batch
  /// granularity. The grant is RAII-released at Close/destruction.
  void AttachResources(const resource::QueryContext* ctx,
                       resource::MemoryGrant grant) {
    ctx_ = ctx;
    SetQueryContext(ctx);  // internal run readers inherit it via the base
    grant_ = std::move(grant);
    if (grant_.bytes() > 0) budget_ = grant_.bytes();
  }

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  /// Emits buffered (or spilled) join results batch-at-a-time.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

  const JoinStats& stats() const { return stats_; }

 private:
  struct Partition {
    std::string left_path, right_path;
    int level;
  };

  /// Join a (probe stream, build stream) pair; appends results to output_
  /// and may push sub-partitions when the build side overflows.
  Status JoinPair(TupleStream* probe, TupleStream* build, int level);
  Result<std::string> KeyOf(const Tuple& t, const std::vector<TupleEval>& keys,
                            bool* has_unknown) const;

  /// Remove every spill file this operator created and nobody consumed
  /// (abort/cancel paths; consumed files self-delete via RunReader).
  void CleanupSpillFiles();

  StreamPtr left_, right_;
  std::vector<TupleEval> left_keys_, right_keys_;
  JoinType type_;
  size_t budget_;
  TempFileManager* tmp_;
  TupleEval residual_;
  size_t right_arity_;  // for padding left-outer non-matches
  JoinStats stats_;
  const resource::QueryContext* ctx_ = nullptr;
  resource::MemoryGrant grant_;
  /// Every temp path ever created (grace partitions, output spill), kept
  /// for cleanup on abort. Removing already-deleted paths is a no-op.
  std::vector<std::string> owned_spill_paths_;

  /// Join results stream to a spill file once they outgrow the budget —
  /// intermediate results can exceed memory too (paper §III).
  Status EmitOutput(Tuple t);

  std::vector<Tuple> output_;
  size_t output_bytes_ = 0;
  size_t out_pos_ = 0;
  std::unique_ptr<RunWriter> output_writer_;
  std::unique_ptr<RunReader> output_reader_;
  std::vector<Partition> pending_;
};

}  // namespace asterix::hyracks
