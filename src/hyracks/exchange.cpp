#include "hyracks/exchange.h"

#include "adm/serde.h"

namespace asterix::hyracks {

namespace {
// Registry counters for exchange traffic (global totals; per-exchange
// attribution lives in ExchangeStats). Cached pointers: registration locks
// only on first use.
metrics::Counter* FramesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.exchange.frames_sent");
  return c;
}
metrics::Counter* TuplesSentCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.exchange.tuples_sent");
  return c;
}
metrics::Histogram* ProducerWaitHist() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "hyracks.exchange.producer_wait_ns");
  return h;
}
metrics::Histogram* ConsumerWaitHist() {
  static metrics::Histogram* h = metrics::Registry::Global().GetHistogram(
      "hyracks.exchange.consumer_wait_ns");
  return h;
}
}  // namespace

void BoundedTupleQueue::SetProducerCount(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  open_producers_ = n;
}

void BoundedTupleQueue::SetContext(const resource::QueryContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_ = ctx;
}

void BoundedTupleQueue::PoisonLocked(const Status& st) {
  if (poison_.ok()) poison_ = st;
  cv_pop_.notify_all();
  cv_push_.notify_all();
}

Status BoundedTupleQueue::PushFrame(Frame frame, Frame* recycled) {
  if (frame.empty()) return Status::OK();
  const uint64_t n_tuples = frame.size();
  std::unique_lock<std::mutex> lock(mu_);
  // Explicit wait loop (not a predicate lambda) so thread-safety analysis
  // sees the guarded accesses under the lock.
  if (q_.size() >= capacity_frames_ && poison_.ok()) {
    // Producer is blocked by downstream backpressure: time the wait.
    const uint64_t t0 = metrics::Enabled() ? metrics::NowNs() : 0;
    while (q_.size() >= capacity_frames_ && poison_.ok()) {
      // Cancellation wakes us via Poison (the Job's cancel listener);
      // deadlines have no listener, so bound the sleep by the deadline and
      // self-poison once it passes — that also unblocks the other side.
      if (ctx_ != nullptr) {
        Status alive = ctx_->CheckAlive();
        if (!alive.ok()) {
          PoisonLocked(alive);
          break;
        }
        if (ctx_->has_deadline()) {
          cv_push_.wait_until(lock, ctx_->deadline());
          continue;
        }
      }
      cv_push_.wait(lock);
    }
    if (t0 != 0) {
      const uint64_t waited = metrics::NowNs() - t0;
      ProducerWaitHist()->Record(waited);
      if (stats_) {
        stats_->producer_wait_ns.fetch_add(waited, std::memory_order_relaxed);
      }
    }
  }
  if (!poison_.ok()) return poison_;
  q_.push_back(std::move(frame));
  if (recycled != nullptr && !free_.empty()) {
    *recycled = std::move(free_.back());
    free_.pop_back();
  }
  if (stats_) {
    stats_->frames_sent.fetch_add(1, std::memory_order_relaxed);
    stats_->tuples_sent.fetch_add(n_tuples, std::memory_order_relaxed);
  }
  FramesSentCounter()->Add(1);
  TuplesSentCounter()->Add(n_tuples);
  cv_pop_.notify_one();
  return Status::OK();
}

Result<bool> BoundedTupleQueue::TryPushFrame(Frame* frame) {
  if (frame->empty()) return true;
  const uint64_t n_tuples = frame->size();
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  if (q_.size() >= capacity_frames_) return false;
  q_.push_back(std::move(*frame));
  frame->clear();
  if (!free_.empty()) {
    *frame = std::move(free_.back());
    free_.pop_back();
  }
  if (stats_) {
    stats_->frames_sent.fetch_add(1, std::memory_order_relaxed);
    stats_->tuples_sent.fetch_add(n_tuples, std::memory_order_relaxed);
  }
  FramesSentCounter()->Add(1);
  TuplesSentCounter()->Add(n_tuples);
  cv_pop_.notify_one();
  return true;
}

size_t BoundedTupleQueue::ApproxFrames() {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

Result<bool> BoundedTupleQueue::PopFrame(Frame* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (q_.empty() && open_producers_ != 0 && poison_.ok()) {
    // Consumer is starved waiting for upstream production: time the wait.
    const uint64_t t0 = metrics::Enabled() ? metrics::NowNs() : 0;
    while (q_.empty() && open_producers_ != 0 && poison_.ok()) {
      // Same cancellation/deadline discipline as the producer wait above.
      if (ctx_ != nullptr) {
        Status alive = ctx_->CheckAlive();
        if (!alive.ok()) {
          PoisonLocked(alive);
          break;
        }
        if (ctx_->has_deadline()) {
          cv_pop_.wait_until(lock, ctx_->deadline());
          continue;
        }
      }
      cv_pop_.wait(lock);
    }
    if (t0 != 0) {
      const uint64_t waited = metrics::NowNs() - t0;
      ConsumerWaitHist()->Record(waited);
      if (stats_) {
        stats_->consumer_wait_ns.fetch_add(waited, std::memory_order_relaxed);
      }
    }
  }
  if (!poison_.ok()) return poison_;
  if (q_.empty()) return false;  // all producers done
  // Recycle the drained frame the consumer brought back: its vector keeps
  // its capacity, so a producer refilling it skips the per-frame realloc.
  if (out->capacity() > 0 && free_.size() < kMaxFreeFrames) {
    out->clear();
    free_.push_back(std::move(*out));
  }
  *out = std::move(q_.front());
  q_.pop_front();
  cv_push_.notify_one();
  return true;
}

void BoundedTupleQueue::CloseOneProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  open_producers_--;
  if (open_producers_ <= 0) cv_pop_.notify_all();
}

void BoundedTupleQueue::Poison(const Status& st) {
  std::lock_guard<std::mutex> lock(mu_);
  PoisonLocked(st);
}

Exchange::Exchange(size_t n_producers, size_t n_consumers,
                   size_t queue_capacity)
    : n_producers_(n_producers), stats_(std::make_shared<ExchangeStats>()) {
  for (size_t i = 0; i < n_consumers; i++) {
    auto q = std::make_shared<BoundedTupleQueue>(queue_capacity, stats_);
    q->SetProducerCount(static_cast<int>(n_producers));
    queues_.push_back(std::move(q));
  }
}

namespace {
/// Consumer-side stream over one queue. Next() unpacks frames tuple by
/// tuple; NextBatch() hands a popped frame straight out as a batch (one
/// vector swap, zero per-tuple work).
class QueueStream : public TupleStream {
 public:
  explicit QueueStream(std::shared_ptr<BoundedTupleQueue> q)
      : q_(std::move(q)) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(Tuple* out) override {
    while (pos_ >= frame_.size()) {
      frame_.clear();
      pos_ = 0;
      AX_ASSIGN_OR_RETURN(bool more, q_->PopFrame(&frame_));
      if (!more) return false;
    }
    *out = std::move(frame_[pos_++]);
    return true;
  }
  Result<bool> NextBatch(Batch* out) override {
    out->Clear();
    if (pos_ < frame_.size()) {
      // A Next() caller left a partially drained frame: finish it first so
      // interleaved callers never skip tuples.
      while (pos_ < frame_.size() && !out->full()) {
        *out->Add() = std::move(frame_[pos_++]);
      }
      NoteBatchEmitted(out->size());
      return true;
    }
    frame_.clear();
    pos_ = 0;
    // PopFrame parks frame_'s old storage on the queue's free list.
    AX_ASSIGN_OR_RETURN(bool more, q_->PopFrame(&frame_));
    if (!more) return false;
    // Swap the whole frame into the batch; the batch's previous slot
    // vector lands in frame_, marked fully consumed, and is recycled by
    // the next PopFrame.
    out->SwapVector(&frame_);
    pos_ = frame_.size();
    NoteBatchEmitted(out->size());
    return true;
  }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<BoundedTupleQueue> q_;
  Frame frame_;
  size_t pos_ = 0;
};
}  // namespace

void Exchange::PoisonAll(const Status& st) {
  for (auto& q : queues_) q->Poison(st);
}

void Exchange::SetContext(const resource::QueryContext* ctx) {
  ctx_ = ctx;
  for (auto& q : queues_) q->SetContext(ctx);
}

StreamPtr Exchange::ConsumerStream(size_t consumer) {
  return std::make_unique<QueueStream>(queues_[consumer]);
}

Status Exchange::RunProducer(TupleStream* upstream, const RoutingFn& route) {
  auto fail = [&](const Status& st) {
    for (auto& q : queues_) q->Poison(st);
    return st;
  };
  // Per-consumer output frames: tuples accumulate locally and ship in
  // batches, amortizing queue synchronization (Hyracks frames). Frames are
  // reserved up front and recycled through the queue's free list, so the
  // steady state allocates no frame vectors.
  std::vector<Frame> pending(queues_.size());
  for (auto& f : pending) f.reserve(kFrameTuples);
  auto flush = [&](size_t c) -> Status {
    if (pending[c].empty()) return Status::OK();
    Frame next;
    Status ps = queues_[c]->PushFrame(std::move(pending[c]), &next);
    pending[c] = std::move(next);  // recycled (or empty) replacement
    if (pending[c].capacity() < kFrameTuples) pending[c].reserve(kFrameTuples);
    return ps;
  };
  Status st = upstream->Open();
  if (!st.ok()) return fail(st);
  // Pull batch-at-a-time and route each batch in one tight pass: the
  // virtual-call + Result overhead and the routing-lambda indirection are
  // paid per batch boundary, not per tuple-by-tuple Next chain.
  Batch batch;
  while (true) {
    if (ctx_ != nullptr) {
      Status alive = ctx_->CheckAlive();
      if (!alive.ok()) return fail(alive);
    }
    auto more = upstream->NextBatch(&batch);
    if (!more.ok()) return fail(more.status());
    if (!more.value()) break;
    for (size_t i = 0; i < batch.size(); i++) {
      Tuple& t = batch[i];
      auto target = route(t);
      if (!target.ok()) return fail(target.status());
      if (target.value() == kBroadcastAll) {
        for (size_t c = 0; c < queues_.size(); c++) {
          pending[c].push_back(t);
          if (pending[c].size() >= kFrameTuples) {
            Status ps = flush(c);
            if (!ps.ok()) return fail(ps);
          }
        }
      } else {
        size_t c = target.value() % queues_.size();
        pending[c].push_back(std::move(t));
        if (pending[c].size() >= kFrameTuples) {
          Status ps = flush(c);
          if (!ps.ok()) return fail(ps);
        }
      }
    }
  }
  st = upstream->Close();
  if (!st.ok()) return fail(st);
  for (size_t c = 0; c < queues_.size(); c++) {
    Status ps = flush(c);
    if (!ps.ok()) return fail(ps);
  }
  for (auto& q : queues_) q->CloseOneProducer();
  return Status::OK();
}

Exchange::RoutingFn Exchange::HashRoute(std::vector<TupleEval> keys,
                                        size_t n_consumers) {
  return [keys = std::move(keys), n_consumers](
             const Tuple& t) -> Result<size_t> {
    uint64_t h = 1469598103934665603ULL;
    for (const auto& k : keys) {
      AX_ASSIGN_OR_RETURN(adm::Value v, k(t));
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h % n_consumers);
  };
}

Exchange::RoutingFn Exchange::SingleRoute() {
  return [](const Tuple&) -> Result<size_t> { return size_t{0}; };
}

Exchange::RoutingFn Exchange::BroadcastRoute() {
  return [](const Tuple&) -> Result<size_t> { return kBroadcastAll; };
}

}  // namespace asterix::hyracks
