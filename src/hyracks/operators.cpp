#include "hyracks/operators.h"

namespace asterix::hyracks {

Result<bool> SelectOp::Next(Tuple* out) {
  while (true) {
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    AX_ASSIGN_OR_RETURN(adm::Value pass, predicate_(*out));
    if (IsTrue(pass)) return true;
  }
}

Result<bool> AssignOp::Next(Tuple* out) {
  AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  for (const auto& eval : evals_) {
    AX_ASSIGN_OR_RETURN(adm::Value v, eval(*out));
    out->fields.push_back(std::move(v));
  }
  return true;
}

Result<bool> ProjectOp::Next(Tuple* out) {
  Tuple in;
  AX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  out->fields.clear();
  out->fields.reserve(keep_.size());
  for (size_t idx : keep_) {
    if (idx >= in.arity()) {
      return Status::Internal("project index out of range");
    }
    out->fields.push_back(std::move(in.fields[idx]));
  }
  return true;
}

Result<bool> LimitOp::Next(Tuple* out) {
  while (emitted_ < limit_) {
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (seen_++ < offset_) continue;
    emitted_++;
    return true;
  }
  return false;
}

Result<bool> UnnestOp::Next(Tuple* out) {
  while (true) {
    if (!pending_.empty()) {
      *out = std::move(pending_.back());
      pending_.pop_back();
      return true;
    }
    Tuple in;
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    AX_ASSIGN_OR_RETURN(adm::Value coll, collection_(in));
    if (coll.is_collection() && !coll.items().empty()) {
      // Queue in reverse so pop_back yields source order.
      const auto& items = coll.items();
      for (size_t i = items.size(); i > 0; i--) {
        Tuple t = in;
        t.fields.push_back(items[i - 1]);
        pending_.push_back(std::move(t));
      }
    } else if (outer_) {
      Tuple t = std::move(in);
      t.fields.push_back(adm::Value::Missing());
      pending_.push_back(std::move(t));
    }
  }
}

Status UnionAllOp::Open() {
  current_ = 0;
  for (auto& c : children_) AX_RETURN_NOT_OK(c->Open());
  return Status::OK();
}

Result<bool> UnionAllOp::Next(Tuple* out) {
  while (current_ < children_.size()) {
    AX_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    current_++;
  }
  return false;
}

Status UnionAllOp::Close() {
  Status first = Status::OK();
  for (auto& c : children_) {
    Status st = c->Close();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Result<bool> StreamDistinctOp::Next(Tuple* out) {
  while (true) {
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (!has_prev_ || CompareTuples(*out, prev_) != 0) {
      prev_ = *out;
      has_prev_ = true;
      return true;
    }
  }
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.arity(), b.arity());
  for (size_t i = 0; i < n; i++) {
    int c = a.fields[i].Compare(b.fields[i]);
    if (c != 0) return c;
  }
  return a.arity() < b.arity() ? -1 : (a.arity() > b.arity() ? 1 : 0);
}

}  // namespace asterix::hyracks
