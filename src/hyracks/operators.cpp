#include "hyracks/operators.h"

namespace asterix::hyracks {

Result<bool> SelectOp::Next(Tuple* out) {
  while (true) {
    AX_RETURN_NOT_OK(PollAlive());
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    AX_ASSIGN_OR_RETURN(adm::Value pass, predicate_(*out));
    if (IsTrue(pass)) return true;
  }
}

Result<bool> SelectOp::NextBatch(Batch* out) {
  // Keep pulling child batches until one survives the filter (a fully
  // rejected batch must not be reported as end-of-stream).
  while (true) {
    AX_RETURN_NOT_OK(PollAlive());
    AX_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    const uint8_t* mask = nullptr;
    if (batch_predicate_) {
      // Vectorized path: one predicate call masks the whole batch.
      if (mask_.size() < out->size()) mask_.resize(kFrameTuples);
      AX_RETURN_NOT_OK(batch_predicate_(*out, mask_.data()));
      mask = mask_.data();
    }
    size_t w = 0;
    for (size_t r = 0; r < out->size(); r++) {
      bool pass;
      if (mask != nullptr) {
        pass = mask[r] != 0;
      } else {
        AX_ASSIGN_OR_RETURN(adm::Value v, predicate_((*out)[r]));
        pass = IsTrue(v);
      }
      if (!pass) continue;
      // Swap, not move-assign: a move would free the rejected tuple's
      // fields buffer per shifted tuple (the dominant cost of this loop);
      // swapping rotates it past the truncation point, where Add() will
      // recycle its capacity on the next fill.
      if (w != r) (*out)[w].fields.swap((*out)[r].fields);
      w++;
    }
    out->Truncate(w);
    if (!out->empty()) {
      NoteBatchEmitted(out->size());
      return true;
    }
  }
}

Result<bool> AssignOp::Next(Tuple* out) {
  AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  for (const auto& eval : evals_) {
    AX_ASSIGN_OR_RETURN(adm::Value v, eval(*out));
    out->fields.push_back(std::move(v));
  }
  return true;
}

Result<bool> AssignOp::NextBatch(Batch* out) {
  AX_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  for (size_t i = 0; i < out->size(); i++) {
    Tuple& t = (*out)[i];
    for (const auto& eval : evals_) {
      AX_ASSIGN_OR_RETURN(adm::Value v, eval(t));
      t.fields.push_back(std::move(v));
    }
  }
  NoteBatchEmitted(out->size());
  return true;
}

Status ProjectOp::ShiftInPlace(Tuple* t) const {
  if (!keep_.empty() && keep_.back() >= t->arity()) {
    return Status::Internal("project index out of range");
  }
  for (size_t k = 0; k < keep_.size(); k++) {
    // keep_[k] >= k (strictly increasing), so the source slot is always at
    // or right of the destination — never a slot this loop already wrote.
    if (keep_[k] != k) t->fields[k] = std::move(t->fields[keep_[k]]);
  }
  t->fields.resize(keep_.size());
  return Status::OK();
}

Result<bool> ProjectOp::Next(Tuple* out) {
  AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  if (monotone_) {
    AX_RETURN_NOT_OK(ShiftInPlace(out));
    return true;
  }
  scratch_.clear();
  scratch_.reserve(keep_.size());
  for (size_t idx : keep_) {
    if (idx >= out->arity()) {
      return Status::Internal("project index out of range");
    }
    scratch_.push_back(out->fields[idx]);
  }
  out->fields.swap(scratch_);
  return true;
}

Result<bool> ProjectOp::NextBatch(Batch* out) {
  AX_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  for (size_t i = 0; i < out->size(); i++) {
    Tuple& t = (*out)[i];
    if (monotone_) {
      AX_RETURN_NOT_OK(ShiftInPlace(&t));
      continue;
    }
    scratch_.clear();
    scratch_.reserve(keep_.size());
    for (size_t idx : keep_) {
      if (idx >= t.arity()) {
        return Status::Internal("project index out of range");
      }
      // Copy, not move: a non-monotone keep list may repeat an index, and a
    // second move would read a moved-from husk.
    scratch_.push_back(t.fields[idx]);
    }
    // Swap: the tuple leaves with the projected fields; its old vector
    // becomes the next iteration's scratch (capacity recycled).
    t.fields.swap(scratch_);
  }
  NoteBatchEmitted(out->size());
  return true;
}

Result<bool> LimitOp::Next(Tuple* out) {
  while (emitted_ < limit_) {
    AX_RETURN_NOT_OK(PollAlive());
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (seen_++ < offset_) continue;
    emitted_++;
    return true;
  }
  return false;
}

Result<bool> UnnestOp::Next(Tuple* out) {
  while (true) {
    AX_RETURN_NOT_OK(PollAlive());
    if (!pending_.empty()) {
      *out = std::move(pending_.back());
      pending_.pop_back();
      return true;
    }
    Tuple in;
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    AX_ASSIGN_OR_RETURN(adm::Value coll, collection_(in));
    if (coll.is_collection() && !coll.items().empty()) {
      // Queue in reverse so pop_back yields source order. The final
      // iteration (i == 1) is the last use of `in`: move instead of copy.
      const auto& items = coll.items();
      for (size_t i = items.size(); i > 0; i--) {
        Tuple t = (i == 1) ? std::move(in) : in;
        t.fields.push_back(items[i - 1]);
        pending_.push_back(std::move(t));
      }
    } else if (outer_) {
      Tuple t = std::move(in);
      t.fields.push_back(adm::Value::Missing());
      pending_.push_back(std::move(t));
    }
  }
}

Status UnionAllOp::Open() {
  current_ = 0;
  for (auto& c : children_) AX_RETURN_NOT_OK(c->Open());
  return Status::OK();
}

Result<bool> UnionAllOp::Next(Tuple* out) {
  while (current_ < children_.size()) {
    AX_RETURN_NOT_OK(PollAlive());
    AX_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    current_++;
  }
  return false;
}

Result<bool> UnionAllOp::NextBatch(Batch* out) {
  while (current_ < children_.size()) {
    AX_RETURN_NOT_OK(PollAlive());
    AX_ASSIGN_OR_RETURN(bool more, children_[current_]->NextBatch(out));
    if (more) return true;
    current_++;
  }
  return false;
}

Status UnionAllOp::Close() {
  Status first = Status::OK();
  for (auto& c : children_) {
    Status st = c->Close();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Result<bool> StreamDistinctOp::Next(Tuple* out) {
  while (true) {
    AX_RETURN_NOT_OK(PollAlive());
    AX_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    if (!has_prev_ || CompareTuples(*out, prev_) != 0) {
      prev_ = *out;
      has_prev_ = true;
      return true;
    }
  }
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.arity(), b.arity());
  for (size_t i = 0; i < n; i++) {
    int c = a.fields[i].Compare(b.fields[i]);
    if (c != 0) return c;
  }
  return a.arity() < b.arity() ? -1 : (a.arity() > b.arity() ? 1 : 0);
}

}  // namespace asterix::hyracks
