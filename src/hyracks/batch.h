// Batch-at-a-time (vectorized) execution: the unit of batched dataflow
// through the Hyracks pipeline. The paper's Hyracks layer moves *frames*
// between partitions, not tuples, so synchronization cost amortizes; Batch
// extends the same amortization to intra-partition operator hand-offs —
// one virtual NextBatch call, one Result<bool>, and one profiling clock
// pair cover up to kFrameTuples tuples instead of one each per tuple.
//
// Ownership model (see DESIGN.md "Batch execution model"):
//  * A Batch owns its tuple slots and recycles them: Clear() resets the
//    logical size but keeps the Tuple objects (and their fields vectors'
//    capacity) alive, so a steady-state pipeline stops allocating.
//  * NextBatch(out) overwrites *out wholesale. The producing stream may
//    not retain references into the batch after returning; the consumer
//    owns the contents until its next NextBatch call on the same stream
//    and is free to move tuples out of the slots.
//  * Batches may be partially filled anywhere in the stream, not only at
//    the end (an exchange consumer hands frames over as they arrive).
#pragma once

#include <cstddef>
#include <vector>

#include "hyracks/tuple.h"

namespace asterix::hyracks {

/// Tuples per exchange frame and per execution batch. One constant on
/// purpose: a popped exchange frame becomes a batch without re-chunking.
constexpr size_t kFrameTuples = 256;

/// A reusable, capacity-kFrameTuples vector of tuples with pooled slots.
class Batch {
 public:
  Batch() { slots_.reserve(kFrameTuples); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= kFrameTuples; }

  Tuple& operator[](size_t i) { return slots_[i]; }
  const Tuple& operator[](size_t i) const { return slots_[i]; }

  /// Reset to empty, keeping tuple slots (and their storage) for reuse.
  void Clear() { size_ = 0; }

  /// Append a slot and return it with fields cleared. The slot's fields
  /// vector keeps its capacity from previous use — recycled storage.
  Tuple* Add() {
    if (size_ == slots_.size()) slots_.emplace_back();
    Tuple* t = &slots_[size_++];
    t->fields.clear();
    return t;
  }

  /// Drop the most recently added slot (used when a Next() probe into a
  /// fresh slot hits end-of-stream).
  void PopLast() {
    if (size_ > 0) size_--;
  }

  /// Append `n` slots whose fields are swapped with `src[0..n)`. Whatever
  /// the recycled slots still held parks in `src`, so the donor (not this
  /// hot loop) destroys it — a materialized source drains itself into the
  /// batch with three pointer swaps per tuple and no destructor traffic.
  void FillBySwap(Tuple* src, size_t n) {
    if (slots_.size() < size_ + n) slots_.resize(size_ + n);
    Tuple* dst = slots_.data() + size_;
    for (size_t i = 0; i < n; i++) dst[i].fields.swap(src[i].fields);
    size_ += n;
  }

  /// Keep only the first n tuples (SelectOp compaction).
  void Truncate(size_t n) {
    if (n < size_) size_ = n;
  }

  /// Swap the backing vector with `frame` and take its full length as the
  /// batch content. This is how an exchange consumer hands a popped frame
  /// out as a batch with zero copies: the batch's previous slot vector
  /// lands in `frame`, where the queue's free list can recycle it.
  void SwapVector(std::vector<Tuple>* frame) {
    slots_.swap(*frame);
    size_ = slots_.size();
  }

 private:
  std::vector<Tuple> slots_;  // slots_[0..size_) are live; the rest pooled
  size_t size_ = 0;
};

/// hyracks.batch.* counters. NoteBatchEmitted is called by every migrated
/// NextBatch override per non-empty batch (one boundary hand-off each);
/// NoteFallbackBatch by the default tuple-at-a-time adapter instead.
/// Average batch fill = hyracks.batch.tuples / hyracks.batch.batches_emitted.
void NoteBatchEmitted(size_t tuples);
void NoteFallbackBatch(size_t tuples);

}  // namespace asterix::hyracks
