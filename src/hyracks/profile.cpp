#include "hyracks/profile.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace asterix::hyracks {

uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

// ---- ProfiledStream ---------------------------------------------------------

Status ProfiledStream::Open() {
  const uint64_t t0 = metrics::NowNs();
  stats_->start_ns = t0;
  stats_->tid = ThisThreadOrdinal();
  Status st = child_->Open();
  stats_->open_ns = metrics::NowNs() - t0;
  return st;
}

Result<bool> ProfiledStream::Next(Tuple* out) {
  // Hot path: forward the child's Result as-is (NRVO — no re-wrapping; a
  // Result carries a Status string, so constructing a fresh one per tuple
  // per wrapped operator is the dominant profiling cost).
  const uint64_t call = stats_->next_calls++;
  if (call % kSampleStride != 0) {
    Result<bool> r = child_->Next(out);
    if (r.ok() && *r) stats_->tuples_out++;
    return r;
  }
  const uint64_t t0 = metrics::NowNs();
  Result<bool> r = child_->Next(out);
  const uint64_t dt = metrics::NowNs() - t0;
  if (call == 0) {
    // Time-to-first-tuple: for blocking operators this contains the whole
    // upstream pipeline, so it is recorded exactly and excluded from the
    // sampled extrapolation (see OpStats::EstimatedNextNs).
    stats_->first_next_ns = dt;
  } else {
    stats_->sampled_next_ns += dt;
    stats_->sampled_next_calls++;
  }
  if (r.ok() && *r) stats_->tuples_out++;
  return r;
}

Result<bool> ProfiledStream::NextBatch(Batch* out) {
  // Exact timing: two clock reads per batch is far below the sampled
  // per-tuple budget, so no sampling is needed on this path.
  const bool first_call =
      stats_->next_calls == 0 && stats_->batch_calls == 0;
  stats_->batch_calls++;
  const uint64_t t0 = metrics::NowNs();
  Result<bool> r = child_->NextBatch(out);
  const uint64_t dt = metrics::NowNs() - t0;
  if (first_call) {
    // Time-to-first-tuple, same contract as the Next() path: a blocking
    // operator pays its whole upstream in the first call.
    stats_->first_next_ns = dt;
  } else {
    stats_->batch_ns += dt;
  }
  if (r.ok() && *r) stats_->tuples_out += out->size();
  return r;
}

Status ProfiledStream::Close() {
  const uint64_t t0 = metrics::NowNs();
  Status st = child_->Close();
  const uint64_t now = metrics::NowNs();
  stats_->close_ns = now - t0;
  stats_->end_ns = now;
  if (harvest_) harvest_(stats_);
  return st;
}

// ---- PlanProfile ------------------------------------------------------------

uint64_t PlanProfile::Node::TuplesOut() const {
  uint64_t n = 0;
  for (const auto& p : partitions) n += p.tuples_out;
  return n;
}

uint64_t PlanProfile::Node::TotalNs() const {
  uint64_t n = 0;
  for (const auto& p : partitions) n += p.TotalNs();
  return n;
}

int PlanProfile::AddNode(std::string label, std::vector<int> children,
                         size_t n_partitions) {
  Node node;
  node.id = static_cast<int>(nodes_.size());
  node.label = std::move(label);
  node.children = std::move(children);
  node.partitions.resize(n_partitions);
  nodes_.push_back(std::move(node));
  root_ = nodes_.back().id;  // last added is the plan root (bottom-up build)
  return nodes_.back().id;
}

void PlanProfile::AddFinalizer(std::function<void()> fn) {
  finalizers_.push_back(std::move(fn));
}

void PlanProfile::Finalize() {
  for (auto& fn : finalizers_) fn();
  finalizers_.clear();
}

namespace {

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  return buf;
}

/// Sum per-partition extras with the node-level extras (finalizer-written).
std::map<std::string, uint64_t> MergedExtras(const PlanProfile::Node& n) {
  std::map<std::string, uint64_t> out = n.extra;
  for (const auto& p : n.partitions) {
    for (const auto& [k, v] : p.extra) out[k] += v;
  }
  return out;
}

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string PlanProfile::Render() const {
  std::string out;
  if (root_ < 0) return out;
  // Recursive pre-order walk with box-drawing connectors.
  std::function<void(int, const std::string&, bool, bool)> walk =
      [&](int id, const std::string& prefix, bool last, bool is_root) {
        const Node& n = node(id);
        if (is_root) {
          out += n.label;
        } else {
          out += prefix + (last ? "└─ " : "├─ ") + n.label;
        }
        char info[96];
        std::snprintf(info, sizeof(info), "  [%zux]  tuples=%llu  time≈%s",
                      n.partitions.size(),
                      static_cast<unsigned long long>(n.TuplesOut()),
                      FormatMs(n.TotalNs()).c_str());
        out += info;
        for (const auto& [k, v] : MergedExtras(n)) {
          out += "  " + k + "=" + std::to_string(v);
        }
        out += "\n";
        std::string child_prefix =
            is_root ? "" : prefix + (last ? "   " : "│  ");
        for (size_t i = 0; i < n.children.size(); i++) {
          walk(n.children[i], child_prefix, i + 1 == n.children.size(), false);
        }
      };
  walk(root_, "", true, true);
  return out;
}

std::string PlanProfile::ToChromeTrace() const {
  // Normalize timestamps so the trace starts at ts=0.
  uint64_t base = UINT64_MAX;
  for (const auto& n : nodes_) {
    for (const auto& p : n.partitions) {
      if (p.start_ns != 0) base = std::min(base, p.start_ns);
    }
  }
  if (base == UINT64_MAX) base = 0;

  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"asterix-lite query\"}}";
  for (const auto& n : nodes_) {
    std::string label;
    JsonEscape(n.label, &label);
    for (size_t p = 0; p < n.partitions.size(); p++) {
      const OpStats& s = n.partitions[p];
      if (s.start_ns == 0) continue;  // never opened (skipped partition)
      const uint64_t end = std::max(s.end_ns, s.start_ns);
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"partition\":%zu,"
                    "\"tuples_out\":%llu,\"next_calls\":%llu,"
                    "\"batch_calls\":%llu,"
                    "\"open_us\":%.3f,\"cpu_est_us\":%.3f",
                    label.c_str(), s.tid,
                    static_cast<double>(s.start_ns - base) / 1e3,
                    static_cast<double>(end - s.start_ns) / 1e3, p,
                    static_cast<unsigned long long>(s.tuples_out),
                    static_cast<unsigned long long>(s.next_calls),
                    static_cast<unsigned long long>(s.batch_calls),
                    static_cast<double>(s.open_ns) / 1e3,
                    static_cast<double>(s.TotalNs()) / 1e3);
      out += buf;
      for (const auto& [k, v] : s.extra) {
        out += ",\"" + k + "\":" + std::to_string(v);
      }
      if (p == 0) {
        // Node-level extras (exchange traffic) ride on partition 0's event.
        for (const auto& [k, v] : n.extra) {
          out += ",\"" + k + "\":" + std::to_string(v);
        }
      }
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace asterix::hyracks
