#include "hyracks/columnar_scan.h"

#include <algorithm>

#include "adm/serde.h"
#include "common/metrics.h"

namespace asterix::hyracks {

namespace {
metrics::Counter* ColumnsSkippedCounter() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "storage.columnar.columns_skipped");
  return c;
}
metrics::Counter* BatchPredicateEvalsCounter() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "storage.columnar.batch_predicate_evals");
  return c;
}

bool PassesCmp(int c, ScanCmp cmp) {
  switch (cmp) {
    case ScanCmp::kEq: return c == 0;
    case ScanCmp::kLt: return c < 0;
    case ScanCmp::kLe: return c <= 0;
    case ScanCmp::kGt: return c > 0;
    case ScanCmp::kGe: return c >= 0;
  }
  return false;
}
}  // namespace

// One merge-input cursor: the memory snapshot, a row (.cmp) component, or a
// columnar (.col) component with its needed columns preloaded.
struct ColumnarScanSource::Source {
  int rank = 0;  // lower = newer

  // Memory snapshot:
  bool is_mem = false;
  const std::vector<storage::LsmBTree::SnapshotEntry>* mem = nullptr;
  size_t idx = 0;

  // Row component:
  const storage::BTree* tree = nullptr;
  std::unique_ptr<storage::BTree::Iterator> iter;

  // Columnar component:
  const storage::ColumnarReader* col = nullptr;
  uint64_t row = 0;
  // Loaded columns, parallel to reader column indexes in `col_idx`. When
  // the projection was not pushed this is every column (in reader order,
  // so MaterializeRow applies); otherwise only the needed subset.
  std::vector<storage::ColumnData> cols;
  std::vector<int> col_idx;

  /// Loaded column for `name`, or nullptr (absent column == MISSING field).
  const storage::ColumnData* Find(const std::string& name) const {
    int want = col->FindColumn(name);
    if (want < 0) return nullptr;
    auto it = std::lower_bound(col_idx.begin(), col_idx.end(), want);
    if (it == col_idx.end() || *it != want) return nullptr;
    return &cols[static_cast<size_t>(it - col_idx.begin())];
  }

  bool valid() const {
    if (is_mem) return idx < mem->size();
    if (col) return row < col->row_count();
    return iter->Valid();
  }
  const std::string& key() const {
    if (is_mem) return (*mem)[idx].key;
    if (col) return col->key(row);
    return iter->key();
  }
  bool antimatter() const {
    if (is_mem) return (*mem)[idx].antimatter;
    if (col) return col->antimatter(row);
    return storage::DiskEntryIsAntimatter(iter->value());
  }
  Status Next() {
    if (is_mem) {
      idx++;
      return Status::OK();
    }
    if (col) {
      row++;
      return Status::OK();
    }
    return iter->Next();
  }
};

// One row that won the newest-version merge for its key. Columnar rows are
// addressed by (source, row) — cells decode straight from columns; other
// rows carry their serialized record, deserialized lazily at most once.
struct ColumnarScanSource::Candidate {
  Source* src = nullptr;
  uint64_t row = 0;       // columnar: row index in src
  std::string raw;        // mem/row: serialized record
  bool keep = true;
  bool decoded = false;
  adm::Value record = adm::Value::Missing();

  Result<const adm::Value*> Record() {
    if (!decoded) {
      AX_ASSIGN_OR_RETURN(record, adm::Deserialize(raw));
      decoded = true;
    }
    return &record;
  }
};

ColumnarScanSource::ColumnarScanSource(const storage::LsmBTree* tree,
                                       std::vector<std::string> fields,
                                       bool fields_pushed,
                                       std::vector<ScanPredicate> predicates)
    : tree_(tree), fields_(std::move(fields)), fields_pushed_(fields_pushed),
      predicates_(std::move(predicates)) {}

ColumnarScanSource::~ColumnarScanSource() = default;

Status ColumnarScanSource::Open() {
  snap_ = tree_->GetScanSnapshot();
  sources_.clear();
  rows_.clear();
  pos_ = 0;
  exhausted_ = false;

  // Columns a columnar component must load: the projected fields plus every
  // predicate field (predicates may reference non-projected fields).
  std::vector<std::string> needed = fields_;
  for (const auto& p : predicates_) needed.push_back(p.field);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  int rank = 0;
  if (!snap_.mem.empty()) {
    auto src = std::make_unique<Source>();
    src->is_mem = true;
    src->mem = &snap_.mem;
    src->rank = rank;
    sources_.push_back(std::move(src));
  }
  rank++;
  for (const auto& comp : snap_.components) {
    auto src = std::make_unique<Source>();
    src->rank = rank++;
    if (comp.columnar != nullptr) {
      src->col = comp.columnar;
      if (fields_pushed_) {
        for (const auto& name : needed) {
          int c = src->col->FindColumn(name);
          if (c < 0) continue;
          AX_ASSIGN_OR_RETURN(auto data,
                              src->col->ReadColumn(static_cast<size_t>(c)));
          src->cols.push_back(std::move(data));
          src->col_idx.push_back(c);
        }
        ColumnsSkippedCounter()->Add(src->col->num_columns() -
                                     src->cols.size());
      } else {
        AX_ASSIGN_OR_RETURN(src->cols, src->col->ReadAllColumns());
        src->col_idx.resize(src->cols.size());
        for (size_t c = 0; c < src->cols.size(); c++) {
          src->col_idx[c] = static_cast<int>(c);
        }
      }
    } else {
      src->tree = comp.tree;
      src->iter = std::make_unique<storage::BTree::Iterator>(
          comp.tree->NewIterator());
      AX_RETURN_NOT_OK(src->iter->SeekToFirst());
    }
    sources_.push_back(std::move(src));
  }
  return Status::OK();
}

Status ColumnarScanSource::Refill() {
  rows_.clear();
  pos_ = 0;
  if (exhausted_) return Status::OK();

  // Phase 1: gather up to kFrameTuples newest-version live candidates.
  std::vector<Candidate> cands;
  cands.reserve(kFrameTuples);
  const bool single_col = sources_.size() == 1 && sources_[0]->col != nullptr;
  while (cands.size() < kFrameTuples) {
    if (single_col) {
      // Fast path: one columnar component, no key comparisons at all.
      Source* s = sources_[0].get();
      if (!s->valid()) {
        exhausted_ = true;
        break;
      }
      if (!s->antimatter()) {
        Candidate c;
        c.src = s;
        c.row = s->row;
        cands.push_back(std::move(c));
      }
      AX_RETURN_NOT_OK(s->Next());
      continue;
    }
    Source* winner = nullptr;
    const std::string* min_key = nullptr;
    for (auto& s : sources_) {
      if (!s->valid()) continue;
      if (min_key == nullptr || s->key() < *min_key) {
        min_key = &s->key();
        winner = s.get();
      } else if (s->key() == *min_key && s->rank < winner->rank) {
        winner = s.get();
      }
    }
    if (winner == nullptr) {
      exhausted_ = true;
      break;
    }
    std::string k = *min_key;
    if (!winner->antimatter()) {
      Candidate c;
      c.src = winner;
      if (winner->col != nullptr) {
        c.row = winner->row;
      } else if (winner->is_mem) {
        c.raw = (*winner->mem)[winner->idx].value;
      } else {
        AX_ASSIGN_OR_RETURN(c.raw, storage::DecodeDiskEntry(
                                       winner->iter->value()));
      }
      cands.push_back(std::move(c));
    }
    for (auto& s : sources_) {
      while (s->valid() && s->key() == k) AX_RETURN_NOT_OK(s->Next());
    }
  }
  if (cands.empty()) return Status::OK();

  // Phase 2: predicates, column-at-a-time over the batch. For candidates
  // from columnar sources the cell decodes straight from the loaded column
  // (raw payload compare for matching fixed-width tags); other candidates
  // deserialize their record lazily, at most once across all predicates.
  for (const auto& pred : predicates_) {
    BatchPredicateEvalsCounter()->Add(1);
    if (pred.constant.is_unknown()) {  // never true in SQL++ 3-valued logic
      for (auto& c : cands) c.keep = false;
      break;
    }
    for (auto& c : cands) {
      if (!c.keep) continue;
      if (c.src->col != nullptr) {
        const storage::ColumnData* col = c.src->Find(pred.field);
        if (col == nullptr || col->IsUnknown(c.row)) {
          c.keep = false;
          continue;
        }
        if (col->kind == storage::ColumnKind::kFixed &&
            col->tag == adm::TypeTag::kInt64 && pred.constant.is_int()) {
          // Vectorized fast path: compare raw packed payloads.
          int64_t v = col->FixedPayload(c.row), w = pred.constant.AsInt();
          c.keep = PassesCmp(v < w ? -1 : (v > w ? 1 : 0), pred.cmp);
          continue;
        }
        AX_ASSIGN_OR_RETURN(adm::Value v, col->ValueAt(c.row));
        c.keep = PassesCmp(v.Compare(pred.constant), pred.cmp);
      } else {
        AX_ASSIGN_OR_RETURN(const adm::Value* rec, c.Record());
        const adm::Value& v = rec->GetField(pred.field);
        c.keep = !v.is_unknown() && PassesCmp(v.Compare(pred.constant),
                                              pred.cmp);
      }
    }
  }

  // Phase 3: materialize survivors into 1-field tuples.
  for (auto& c : cands) {
    if (!c.keep) continue;
    adm::Value out = adm::Value::Missing();
    if (fields_pushed_) {
      adm::FieldVec fv;
      fv.reserve(fields_.size());
      if (c.src->col != nullptr) {
        for (const auto& name : fields_) {
          const storage::ColumnData* col = c.src->Find(name);
          if (col == nullptr || col->IsMissing(c.row)) continue;
          AX_ASSIGN_OR_RETURN(adm::Value v, col->ValueAt(c.row));
          fv.emplace_back(name, std::move(v));
        }
      } else {
        AX_ASSIGN_OR_RETURN(const adm::Value* rec, c.Record());
        for (const auto& name : fields_) {
          const adm::Value& v = rec->GetField(name);
          if (v.is_missing()) continue;
          fv.emplace_back(name, v);
        }
      }
      out = adm::Value::Object(std::move(fv));
    } else if (c.src->col != nullptr) {
      AX_ASSIGN_OR_RETURN(out, c.src->col->MaterializeRow(c.src->cols, c.row));
    } else {
      AX_ASSIGN_OR_RETURN(const adm::Value* rec, c.Record());
      out = *rec;
    }
    Tuple t;
    t.fields.push_back(std::move(out));
    rows_.push_back(std::move(t));
  }
  return Status::OK();
}

Result<bool> ColumnarScanSource::Next(Tuple* out) {
  while (pos_ >= rows_.size()) {
    AX_RETURN_NOT_OK(PollAlive());
    if (exhausted_ && rows_.empty()) return false;
    AX_RETURN_NOT_OK(Refill());
    if (rows_.empty() && exhausted_) return false;
  }
  *out = std::move(rows_[pos_++]);
  return true;
}

Result<bool> ColumnarScanSource::NextBatch(Batch* out) {
  out->Clear();
  while (pos_ >= rows_.size()) {
    AX_RETURN_NOT_OK(PollAlive());
    if (exhausted_ && pos_ >= rows_.size() && rows_.empty()) break;
    AX_RETURN_NOT_OK(Refill());
    if (rows_.empty() && exhausted_) break;
  }
  const size_t take = std::min(kFrameTuples, rows_.size() - pos_);
  if (take == 0) return false;
  out->FillBySwap(rows_.data() + pos_, take);
  pos_ += take;
  NoteBatchEmitted(take);
  return true;
}

Status ColumnarScanSource::Close() {
  sources_.clear();
  rows_.clear();
  return Status::OK();
}

}  // namespace asterix::hyracks
