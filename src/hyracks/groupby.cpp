#include "hyracks/groupby.h"

#include "adm/key_encoder.h"
#include "common/metrics.h"

namespace asterix::hyracks {

namespace {
constexpr size_t kSpillPartitions = 16;

metrics::Counter* GroupBySpillPartitionsCounter() {
  static metrics::Counter* c = metrics::Registry::Global().GetCounter(
      "hyracks.groupby.spill_partitions");
  return c;
}
metrics::Counter* GroupBySpillBytesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.groupby.spill_bytes");
  return c;
}

// Numeric addition preserving int64 when both sides are ints; durations
// sum to durations (temporal aggregation, the §V-D study's need).
adm::Value AddNumbers(const adm::Value& a, const adm::Value& b) {
  if (a.is_unknown()) return b;
  if (b.is_unknown()) return a;
  if (a.tag() == adm::TypeTag::kDuration && b.tag() == adm::TypeTag::kDuration) {
    return adm::Value::Duration(a.TemporalValue() + b.TemporalValue());
  }
  if (a.is_int() && b.is_int()) return adm::Value::Int(a.AsInt() + b.AsInt());
  return adm::Value::Double(a.AsNumber() + b.AsNumber());
}

bool Summable(const adm::Value& v) {
  return v.is_numeric() || v.tag() == adm::TypeTag::kDuration;
}

std::string GroupKeyId(const std::vector<adm::Value>& key) {
  std::string id;
  for (const auto& v : key) adm::SerializeValue(v, &id);
  return id;
}
}  // namespace

HashGroupByOp::HashGroupByOp(StreamPtr child, std::vector<TupleEval> keys,
                             std::vector<AggSpec> aggs, AggPhase phase,
                             size_t memory_budget_bytes, TempFileManager* tmp)
    : child_(std::move(child)), keys_(std::move(keys)), aggs_(std::move(aggs)),
      phase_(phase), budget_(memory_budget_bytes), tmp_(tmp) {}

HashGroupByOp::~HashGroupByOp() { CleanupSpillFiles(); }

void HashGroupByOp::CleanupSpillFiles() {
  // Abort-path safety net: most files are gone already (RunReader deletes
  // on destruction once opened), so failures here are expected and ignored.
  for (const auto& p : owned_spill_paths_) {
    // The file is usually gone already (readers delete on consumption).
    // axlint: allow(must-check): best-effort abort-path cleanup
    (void)fs::RemoveFile(p);
  }
  owned_spill_paths_.clear();
}

size_t HashGroupByOp::PartialArity(AggKind kind) {
  return kind == AggKind::kAvg ? 2 : 1;
}

std::vector<adm::Value> HashGroupByOp::InitPartial(const AggSpec& spec) const {
  switch (spec.kind) {
    case AggKind::kCount: return {adm::Value::Int(0)};
    case AggKind::kSum: return {adm::Value::Null()};
    case AggKind::kMin: return {adm::Value::Null()};
    case AggKind::kMax: return {adm::Value::Null()};
    case AggKind::kAvg: return {adm::Value::Null(), adm::Value::Int(0)};
    case AggKind::kCollect: return {adm::Value::Array({})};
  }
  return {adm::Value::Null()};
}

Status HashGroupByOp::AccumulateRaw(GroupState* g, const Tuple& t) {
  for (size_t i = 0; i < aggs_.size(); i++) {
    const AggSpec& spec = aggs_[i];
    auto& p = g->partials[i];
    adm::Value arg;
    if (spec.arg) {
      AX_ASSIGN_OR_RETURN(arg, spec.arg(t));
    }
    switch (spec.kind) {
      case AggKind::kCount:
        if (!spec.arg || !arg.is_unknown()) {
          p[0] = adm::Value::Int(p[0].AsInt() + 1);
        }
        break;
      case AggKind::kSum:
        if (!arg.is_unknown() && Summable(arg)) p[0] = AddNumbers(p[0], arg);
        break;
      case AggKind::kMin:
        if (!arg.is_unknown() &&
            (p[0].is_unknown() || arg.Compare(p[0]) < 0)) {
          p[0] = arg;
        }
        break;
      case AggKind::kMax:
        if (!arg.is_unknown() &&
            (p[0].is_unknown() || arg.Compare(p[0]) > 0)) {
          p[0] = arg;
        }
        break;
      case AggKind::kAvg:
        if (!arg.is_unknown() && Summable(arg)) {
          p[0] = AddNumbers(p[0], arg);
          p[1] = adm::Value::Int(p[1].AsInt() + 1);
        }
        break;
      case AggKind::kCollect:
        if (!arg.is_missing()) {
          // Collected arrays are the one aggregate whose state grows with
          // input; charge the growth so the spill trigger sees it.
          g->bytes += arg.ByteSize();
          std::vector<adm::Value> items = p[0].items();
          items.push_back(arg);
          p[0] = adm::Value::Array(std::move(items));
        }
        break;
    }
  }
  return Status::OK();
}

Status HashGroupByOp::MergePartial(GroupState* g, const Tuple& t,
                                   size_t key_arity) {
  size_t pos = key_arity;
  for (size_t i = 0; i < aggs_.size(); i++) {
    const AggSpec& spec = aggs_[i];
    auto& p = g->partials[i];
    switch (spec.kind) {
      case AggKind::kCount:
      case AggKind::kSum:
        p[0] = AddNumbers(p[0], t.at(pos));
        break;
      case AggKind::kMin:
        if (!t.at(pos).is_unknown() &&
            (p[0].is_unknown() || t.at(pos).Compare(p[0]) < 0)) {
          p[0] = t.at(pos);
        }
        break;
      case AggKind::kMax:
        if (!t.at(pos).is_unknown() &&
            (p[0].is_unknown() || t.at(pos).Compare(p[0]) > 0)) {
          p[0] = t.at(pos);
        }
        break;
      case AggKind::kAvg:
        p[0] = AddNumbers(p[0], t.at(pos));
        p[1] = AddNumbers(p[1], t.at(pos + 1));
        break;
      case AggKind::kCollect: {
        std::vector<adm::Value> items = p[0].items();
        const auto& incoming = t.at(pos);
        if (incoming.is_collection()) {
          // Merged-in partial arrays grow the state; charge them like
          // AccumulateRaw does.
          for (const auto& v : incoming.items()) g->bytes += v.ByteSize();
          items.insert(items.end(), incoming.items().begin(),
                       incoming.items().end());
        }
        p[0] = adm::Value::Array(std::move(items));
        break;
      }
    }
    pos += PartialArity(spec.kind);
  }
  return Status::OK();
}

Result<Tuple> HashGroupByOp::Emit(GroupState&& g) const {
  Tuple out;
  out.fields = std::move(g.key);
  for (size_t i = 0; i < aggs_.size(); i++) {
    auto& p = g.partials[i];
    if (phase_ == AggPhase::kPartial) {
      out.fields.insert(out.fields.end(), std::make_move_iterator(p.begin()),
                        std::make_move_iterator(p.end()));
      continue;
    }
    switch (aggs_[i].kind) {
      case AggKind::kCount:
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax:
      case AggKind::kCollect:
        out.fields.push_back(std::move(p[0]));
        break;
      case AggKind::kAvg: {
        if (p[0].is_unknown() || p[1].AsInt() == 0) {
          out.fields.push_back(adm::Value::Null());
        } else if (p[0].tag() == adm::TypeTag::kDuration) {
          out.fields.push_back(
              adm::Value::Duration(p[0].TemporalValue() / p[1].AsInt()));
        } else {
          out.fields.push_back(
              adm::Value::Double(p[0].AsNumber() / p[1].AsNumber()));
        }
        break;
      }
    }
  }
  return out;
}

Status HashGroupByOp::ProcessStream(
    TupleStream* input, bool input_is_partial, int level,
    std::vector<std::unique_ptr<RunWriter>>* spills) {
  // Batched input drain: one virtual call per frame of input, both for the
  // live child stream and for spill-partition re-reads.
  Batch batch;
  while (true) {
    if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
    AX_ASSIGN_OR_RETURN(bool more, input->NextBatch(&batch));
    if (!more) break;
    for (size_t bi = 0; bi < batch.size(); bi++) {
      AX_RETURN_NOT_OK(ProcessTuple(batch[bi], input_is_partial, level,
                                    spills));
    }
  }
  return Status::OK();
}

Status HashGroupByOp::ProcessTuple(
    const Tuple& t, bool input_is_partial, int level,
    std::vector<std::unique_ptr<RunWriter>>* spills) {
  size_t key_arity = keys_.size();
  std::vector<adm::Value> key;
  key.reserve(key_arity);
  if (input_is_partial) {
    for (size_t i = 0; i < key_arity; i++) key.push_back(t.at(i));
  } else {
    for (const auto& kv : keys_) {
      AX_ASSIGN_OR_RETURN(adm::Value v, kv(t));
      key.push_back(std::move(v));
    }
  }
  std::string id = GroupKeyId(key);
  auto it = table_.find(id);
  if (it == table_.end()) {
    if (table_bytes_ > budget_) {
      // Overflow: spill this tuple as a partial row to its partition.
      GroupState tmp_state;
      tmp_state.key = std::move(key);
      for (const auto& spec : aggs_) {
        tmp_state.partials.push_back(InitPartial(spec));
      }
      if (input_is_partial) {
        AX_RETURN_NOT_OK(MergePartial(&tmp_state, t, key_arity));
      } else {
        AX_RETURN_NOT_OK(AccumulateRaw(&tmp_state, t));
      }
      Tuple row;
      row.fields = std::move(tmp_state.key);
      for (auto& p : tmp_state.partials) {
        row.fields.insert(row.fields.end(),
                          std::make_move_iterator(p.begin()),
                          std::make_move_iterator(p.end()));
      }
      // Salt + fully remix (splitmix64) the partition hash with the
      // recursion level so an oversized partition splits differently at
      // the next level. XOR-only salting would preserve equivalence
      // classes mod kSpillPartitions and never make progress.
      uint64_t x = std::hash<std::string>{}(id) +
                   0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(level + 1);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBULL;
      x ^= x >> 31;
      size_t part = static_cast<size_t>(x % kSpillPartitions);
      if (spills->empty()) spills->resize(kSpillPartitions);
      if (!(*spills)[part]) {
        AX_ASSIGN_OR_RETURN((*spills)[part],
                            RunWriter::Create(tmp_->NextPath("gbyspill")));
        owned_spill_paths_.push_back((*spills)[part]->path());
        spills_used_++;
        GroupBySpillPartitionsCounter()->Add(1);
      }
      return (*spills)[part]->Write(row);
    }
    GroupState g;
    g.key = std::move(key);
    for (const auto& spec : aggs_) g.partials.push_back(InitPartial(spec));
    // Uniform grant accounting: hash-entry bookkeeping + the encoded key
    // the table stores + the key values held in the state.
    g.bytes = kHashEntryOverheadBytes + id.size();
    for (const auto& v : g.key) g.bytes += v.ByteSize();
    table_bytes_ += g.bytes;
    it = table_.emplace(std::move(id), std::move(g)).first;
  }
  // Aggregation may grow the state (kCollect); mirror that growth into the
  // table-wide total the spill trigger tests.
  GroupState& g = it->second;
  size_t before = g.bytes;
  if (input_is_partial) {
    AX_RETURN_NOT_OK(MergePartial(&g, t, key_arity));
  } else {
    AX_RETURN_NOT_OK(AccumulateRaw(&g, t));
  }
  table_bytes_ += g.bytes - before;
  return Status::OK();
}

Status HashGroupByOp::DrainTableToOutput() {
  for (auto& [id, g] : table_) {
    (void)id;
    AX_ASSIGN_OR_RETURN(Tuple out, Emit(std::move(g)));
    output_.push_back(std::move(out));
  }
  table_.clear();
  table_bytes_ = 0;
  return Status::OK();
}

Status HashGroupByOp::Open() {
  AX_RETURN_NOT_OK(child_->Open());
  std::vector<std::unique_ptr<RunWriter>> spills;
  AX_RETURN_NOT_OK(ProcessStream(child_.get(), phase_ == AggPhase::kFinal,
                                 /*level=*/0, &spills));
  AX_RETURN_NOT_OK(child_->Close());
  AX_RETURN_NOT_OK(DrainTableToOutput());
  for (auto& w : spills) {
    if (w) {
      AX_RETURN_NOT_OK(w->Finish());
      bytes_spilled_ += w->bytes_written();
      GroupBySpillBytesCounter()->Add(w->bytes_written());
      pending_partitions_.emplace_back(w->path(), 1);
    }
  }
  // Process spill partitions (they may recursively re-spill).
  while (!pending_partitions_.empty()) {
    if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
    auto [path, level] = pending_partitions_.back();
    pending_partitions_.pop_back();
    AX_ASSIGN_OR_RETURN(auto reader, RunReader::Open(path));
    std::vector<std::unique_ptr<RunWriter>> more_spills;
    AX_RETURN_NOT_OK(ProcessStream(reader.get(), /*input_is_partial=*/true,
                                   level, &more_spills));
    AX_RETURN_NOT_OK(DrainTableToOutput());
    for (auto& w : more_spills) {
      if (w) {
        AX_RETURN_NOT_OK(w->Finish());
        bytes_spilled_ += w->bytes_written();
        GroupBySpillBytesCounter()->Add(w->bytes_written());
        pending_partitions_.emplace_back(w->path(), level + 1);
      }
    }
  }
  // A keyless (global) aggregate must produce exactly one row even over
  // empty input: SELECT COUNT(*) on an empty dataset is 0, not zero rows.
  // Only the single complete/final instance seeds it — partial instances
  // stay silent so the final phase does not double-count empty partitions.
  if (keys_.empty() && output_.empty() && phase_ != AggPhase::kPartial) {
    GroupState g;
    for (const auto& spec : aggs_) g.partials.push_back(InitPartial(spec));
    AX_ASSIGN_OR_RETURN(Tuple out, Emit(std::move(g)));
    output_.push_back(std::move(out));
  }
  out_pos_ = 0;
  return Status::OK();
}

Result<bool> HashGroupByOp::Next(Tuple* out) {
  if (out_pos_ >= output_.size()) return false;
  *out = std::move(output_[out_pos_++]);
  return true;
}

Result<bool> HashGroupByOp::NextBatch(Batch* out) {
  if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
  out->Clear();
  while (out_pos_ < output_.size() && !out->full()) {
    *out->Add() = std::move(output_[out_pos_++]);
  }
  if (out->empty()) return false;
  NoteBatchEmitted(out->size());
  return true;
}

Status HashGroupByOp::Close() {
  output_.clear();
  CleanupSpillFiles();
  grant_.Release();
  return Status::OK();
}

}  // namespace asterix::hyracks
