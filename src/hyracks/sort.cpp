#include "hyracks/sort.h"

#include <algorithm>
#include <queue>

#include "common/metrics.h"

namespace asterix::hyracks {

namespace {
metrics::Counter* SortRunsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.sort.runs_spilled");
  return c;
}
metrics::Counter* SortSpillBytesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("hyracks.sort.spill_bytes");
  return c;
}
}  // namespace

ExternalSortOp::~ExternalSortOp() {
  merged_.reset();  // lets the final reader delete its file first
  CleanupSpillFiles();
}

void ExternalSortOp::CleanupSpillFiles() {
  // Abort-path safety net: most files are gone already (RunReader deletes
  // on destruction once opened), so failures here are expected and ignored.
  for (const auto& p : owned_spill_paths_) {
    // The file is usually gone already (readers delete on consumption).
    // axlint: allow(must-check): best-effort abort-path cleanup
    (void)fs::RemoveFile(p);
  }
  owned_spill_paths_.clear();
}

Result<Tuple> ExternalSortOp::Augment(Tuple t) const {
  Tuple out;
  out.fields.reserve(keys_.size() + t.arity());
  for (const auto& k : keys_) {
    AX_ASSIGN_OR_RETURN(adm::Value v, k.eval(t));
    out.fields.push_back(std::move(v));
  }
  out.fields.insert(out.fields.end(),
                    std::make_move_iterator(t.fields.begin()),
                    std::make_move_iterator(t.fields.end()));
  return out;
}

void ExternalSortOp::StripPrefix(Tuple* aug, Tuple* out) const {
  out->fields.assign(
      std::make_move_iterator(aug->fields.begin() +
                              static_cast<ptrdiff_t>(keys_.size())),
      std::make_move_iterator(aug->fields.end()));
}

int ExternalSortOp::CompareAugmented(const Tuple& a, const Tuple& b) const {
  for (size_t i = 0; i < keys_.size(); i++) {
    int c = a.fields[i].Compare(b.fields[i]);
    if (c != 0) return keys_[i].ascending ? c : -c;
  }
  return 0;
}

Status ExternalSortOp::SpillRun(std::vector<Tuple>* run) {
  std::sort(run->begin(), run->end(), [this](const Tuple& a, const Tuple& b) {
    return CompareAugmented(a, b) < 0;
  });
  AX_ASSIGN_OR_RETURN(auto writer, RunWriter::Create(tmp_->NextPath("sortrun")));
  for (const auto& t : *run) AX_RETURN_NOT_OK(writer->Write(t));
  AX_RETURN_NOT_OK(writer->Finish());
  run_paths_back_.push_back(writer->path());
  owned_spill_paths_.push_back(writer->path());
  run->clear();
  stats_.runs_spilled++;
  stats_.bytes_spilled += writer->bytes_written();
  SortRunsCounter()->Add(1);
  SortSpillBytesCounter()->Add(writer->bytes_written());
  return Status::OK();
}

Status ExternalSortOp::Open() {
  AX_RETURN_NOT_OK(child_->Open());
  std::vector<Tuple> run;
  size_t run_bytes = 0;
  // Drain the input batch-at-a-time: one virtual call per kFrameTuples
  // tuples instead of one per tuple.
  Batch batch;
  while (true) {
    if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
    AX_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.size(); i++) {
      AX_ASSIGN_OR_RETURN(Tuple aug, Augment(std::move(batch[i])));
      run_bytes += aug.ApproxBytes();
      run.push_back(std::move(aug));
      stats_.tuples++;
      if (run_bytes > budget_) {
        AX_RETURN_NOT_OK(SpillRun(&run));
        run_bytes = 0;
      }
    }
  }
  AX_RETURN_NOT_OK(child_->Close());

  if (run_paths_back_.empty()) {
    // Fully in-memory sort.
    std::sort(run.begin(), run.end(), [this](const Tuple& a, const Tuple& b) {
      return CompareAugmented(a, b) < 0;
    });
    memory_ = std::move(run);
    mem_pos_ = 0;
    return Status::OK();
  }
  // Spill the final run too, then merge with bounded fan-in.
  if (!run.empty()) AX_RETURN_NOT_OK(SpillRun(&run));
  std::vector<std::string> runs = std::move(run_paths_back_);
  while (runs.size() > 1) {
    stats_.merge_passes++;
    std::vector<std::string> next;
    for (size_t i = 0; i < runs.size(); i += fanin_) {
      size_t end = std::min(runs.size(), i + fanin_);
      std::vector<std::string> group(runs.begin() + static_cast<ptrdiff_t>(i),
                                     runs.begin() + static_cast<ptrdiff_t>(end));
      if (group.size() == 1) {
        next.push_back(group[0]);
        continue;
      }
      AX_ASSIGN_OR_RETURN(std::string merged, MergeRuns(group));
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
  }
  AX_ASSIGN_OR_RETURN(merged_, RunReader::Open(runs[0]));
  merged_->SetQueryContext(query_context());
  return Status::OK();
}

Result<std::string> ExternalSortOp::MergeRuns(
    const std::vector<std::string>& paths) {
  struct Head {
    Tuple tuple;
    size_t src;
  };
  std::vector<std::unique_ptr<RunReader>> readers;
  for (const auto& p : paths) {
    AX_ASSIGN_OR_RETURN(auto r, RunReader::Open(p));
    readers.push_back(std::move(r));
  }
  auto cmp = [this](const Head& a, const Head& b) {
    int c = CompareAugmented(a.tuple, b.tuple);
    if (c != 0) return c > 0;  // min-heap
    return a.src > b.src;      // stable tiebreak
  };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < readers.size(); i++) {
    Tuple t;
    AX_ASSIGN_OR_RETURN(bool more, readers[i]->Next(&t));
    if (more) heap.push(Head{std::move(t), i});
  }
  AX_ASSIGN_OR_RETURN(auto writer, RunWriter::Create(tmp_->NextPath("sortmerge")));
  owned_spill_paths_.push_back(writer->path());
  size_t merged_tuples = 0;
  while (!heap.empty()) {
    AX_RETURN_NOT_OK(PollAlive());
    // Merge passes can run for a long time with no batch boundary above
    // them; check cancellation every frame's worth of tuples.
    if (ctx_ != nullptr && merged_tuples++ % kFrameTuples == 0) {
      AX_RETURN_NOT_OK(ctx_->CheckAlive());
    }
    Head h = heap.top();
    heap.pop();
    AX_RETURN_NOT_OK(writer->Write(h.tuple));
    Tuple t;
    AX_ASSIGN_OR_RETURN(bool more, readers[h.src]->Next(&t));
    if (more) heap.push(Head{std::move(t), h.src});
  }
  AX_RETURN_NOT_OK(writer->Finish());
  stats_.bytes_spilled += writer->bytes_written();
  SortSpillBytesCounter()->Add(writer->bytes_written());
  return writer->path();
}

Result<bool> ExternalSortOp::Next(Tuple* out) {
  Tuple aug;
  if (merged_) {
    AX_ASSIGN_OR_RETURN(bool more, merged_->Next(&aug));
    if (!more) return false;
  } else {
    if (mem_pos_ >= memory_.size()) return false;
    aug = std::move(memory_[mem_pos_++]);
  }
  StripPrefix(&aug, out);
  return true;
}

Result<bool> ExternalSortOp::NextBatch(Batch* out) {
  if (ctx_ != nullptr) AX_RETURN_NOT_OK(ctx_->CheckAlive());
  out->Clear();
  if (merged_) {
    Tuple aug;
    while (!out->full()) {
      AX_RETURN_NOT_OK(PollAlive());
      AX_ASSIGN_OR_RETURN(bool more, merged_->Next(&aug));
      if (!more) break;
      StripPrefix(&aug, out->Add());
    }
  } else {
    while (mem_pos_ < memory_.size() && !out->full()) {
      StripPrefix(&memory_[mem_pos_++], out->Add());
    }
  }
  if (out->empty()) return false;
  NoteBatchEmitted(out->size());
  return true;
}

Status ExternalSortOp::Close() {
  memory_.clear();
  merged_.reset();
  CleanupSpillFiles();
  grant_.Release();
  return Status::OK();
}

}  // namespace asterix::hyracks
