// TupleStream: the pull (Volcano-style) operator interface of the Hyracks
// runtime, plus basic sources/sinks. Physical operators compose into a
// per-partition pipeline tree; exchange operators (exchange.h) bridge
// pipelines across partitions. Streams support two pull granularities:
// tuple-at-a-time Next() (always correct) and batch-at-a-time NextBatch()
// (the vectorized hot path — see batch.h for the execution model).
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "hyracks/batch.h"
#include "hyracks/tuple.h"
#include "resource/query_context.h"

namespace asterix::hyracks {

/// Pull interface. Usage: Open(); while (Next(&t) == true) ...; Close()
/// — or the batched equivalent with NextBatch. Streams are single-use and
/// not thread-safe (each lives on one partition).
class TupleStream {
 public:
  virtual ~TupleStream() = default;
  virtual Status Open() = 0;
  /// Produce the next tuple into `*out`; returns false at end of stream.
  virtual Result<bool> Next(Tuple* out) = 0;
  /// Produce the next batch into `*out` (cleared first): up to kFrameTuples
  /// tuples, possibly fewer mid-stream. Returns true iff at least one tuple
  /// was produced; false only at end of stream (with *out empty). The base
  /// implementation adapts Next() tuple-at-a-time, so every operator works
  /// on a batch-driven pipeline; hot operators override it. Interleaving
  /// Next and NextBatch on one stream is allowed (no tuple is dropped or
  /// duplicated) but defeats the amortization.
  virtual Result<bool> NextBatch(Batch* out);
  virtual Status Close() = 0;

  /// Attach the owning query's cancellation/deadline token. The executor
  /// wires every stream it builds; streams that spawn internal sub-streams
  /// (spill run readers, merge fan-ins) forward it themselves. Standalone
  /// streams (tests, DDL plumbing) may leave it unset: PollAlive is then a
  /// no-op and the stream runs uncancellable, as before.
  void SetQueryContext(const resource::QueryContext* ctx) { query_ctx_ = ctx; }
  const resource::QueryContext* query_context() const { return query_ctx_; }

 protected:
  /// Shared adapter body: fill `*out` by repeated (virtual) Next() calls.
  /// Returns whether anything was produced; records no batch metrics —
  /// callers attribute the batch (fallback vs migrated) themselves.
  Result<bool> FillBatchFromNext(Batch* out);

  /// Cancellation probe for operator pump loops. Cheap enough to sit in a
  /// per-tuple loop: only every kFrameTuples-th call consults the context,
  /// so the observed granularity stays batch-sized on both pull paths (the
  /// convention — see resource/query_context.h).
  Status PollAlive() {
    if (query_ctx_ == nullptr || poll_calls_++ % kFrameTuples != 0) {
      return Status::OK();
    }
    return query_ctx_->CheckAlive();
  }

 private:
  const resource::QueryContext* query_ctx_ = nullptr;
  size_t poll_calls_ = 0;
};

using StreamPtr = std::unique_ptr<TupleStream>;

/// Evaluates an expression over a tuple (compiled by Algebricks).
using TupleEval = std::function<Result<adm::Value>(const Tuple&)>;

/// A source over a materialized vector of tuples. Single-use: tuples are
/// *moved* out (re-opening after a drain yields moved-from husks — no
/// caller re-reads a drained source; see stream single-use contract).
class VectorSource : public TupleStream {
 public:
  explicit VectorSource(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = std::move(tuples_[pos_++]);
    return true;
  }
  Result<bool> NextBatch(Batch* out) override {
    out->Clear();
    // Swap-fill, not move-assign: each slot's recycled fields buffer (and
    // any leftover values in it) parks in the drained source tuple instead
    // of being freed per tuple, so the steady-state hot loop does no
    // allocator or destructor traffic at all.
    const size_t take = std::min(kFrameTuples, tuples_.size() - pos_);
    if (take == 0) return false;
    out->FillBySwap(tuples_.data() + pos_, take);
    pos_ += take;
    NoteBatchEmitted(take);
    return true;
  }
  Status Close() override { return Status::OK(); }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// A source driven by callbacks (dataset scans wrap LSM iterators in one).
/// The batch callback is optional; without it NextBatch falls back to the
/// tuple-at-a-time adapter over `next`.
class CallbackSource : public TupleStream {
 public:
  using OpenFn = std::function<Status()>;
  using NextFn = std::function<Result<bool>(Tuple*)>;
  using NextBatchFn = std::function<Result<bool>(Batch*)>;
  using CloseFn = std::function<Status()>;
  CallbackSource(OpenFn open, NextFn next, CloseFn close,
                 NextBatchFn next_batch = nullptr)
      : open_(std::move(open)), next_(std::move(next)),
        close_(std::move(close)), next_batch_(std::move(next_batch)) {}
  Status Open() override { return open_ ? open_() : Status::OK(); }
  Result<bool> Next(Tuple* out) override { return next_(out); }
  Result<bool> NextBatch(Batch* out) override {
    if (!next_batch_) return TupleStream::NextBatch(out);
    AX_ASSIGN_OR_RETURN(bool more, next_batch_(out));
    if (more) NoteBatchEmitted(out->size());
    return more;
  }
  Status Close() override { return close_ ? close_() : Status::OK(); }

 private:
  OpenFn open_;
  NextFn next_;
  CloseFn close_;
  NextBatchFn next_batch_;
};

/// Drain a stream into a vector (root collector / test helper). Pulls
/// batch-at-a-time so a fully migrated pipeline runs vectorized end to end.
/// With a QueryContext the drain observes cancellation/deadline at batch
/// granularity, like every operator hot loop.
inline Result<std::vector<Tuple>> CollectAll(
    TupleStream* stream, const resource::QueryContext* ctx = nullptr) {
  AX_RETURN_NOT_OK(stream->Open());
  std::vector<Tuple> out;
  Batch batch;
  while (true) {
    if (ctx != nullptr) AX_RETURN_NOT_OK(ctx->CheckAlive());
    AX_ASSIGN_OR_RETURN(bool more, stream->NextBatch(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.size(); i++) {
      out.push_back(std::move(batch[i]));
    }
  }
  AX_RETURN_NOT_OK(stream->Close());
  return out;
}

/// ADM truthiness for predicates: only boolean true passes (SQL++ 3-valued
/// logic collapses null/missing to "not true").
inline bool IsTrue(const adm::Value& v) {
  return v.is_boolean() && v.AsBool();
}

}  // namespace asterix::hyracks
