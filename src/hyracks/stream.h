// TupleStream: the pull (Volcano-style) operator interface of the Hyracks
// runtime, plus basic sources/sinks. Physical operators compose into a
// per-partition pipeline tree; exchange operators (exchange.h) bridge
// pipelines across partitions.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "hyracks/tuple.h"

namespace asterix::hyracks {

/// Pull interface. Usage: Open(); while (Next(&t) == true) ...; Close().
/// Streams are single-use and not thread-safe (each lives on one partition).
class TupleStream {
 public:
  virtual ~TupleStream() = default;
  virtual Status Open() = 0;
  /// Produce the next tuple into `*out`; returns false at end of stream.
  virtual Result<bool> Next(Tuple* out) = 0;
  virtual Status Close() = 0;
};

using StreamPtr = std::unique_ptr<TupleStream>;

/// Evaluates an expression over a tuple (compiled by Algebricks).
using TupleEval = std::function<Result<adm::Value>(const Tuple&)>;

/// A source over a materialized vector of tuples.
class VectorSource : public TupleStream {
 public:
  explicit VectorSource(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }
  Status Close() override { return Status::OK(); }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// A source driven by callbacks (dataset scans wrap LSM iterators in one).
class CallbackSource : public TupleStream {
 public:
  using OpenFn = std::function<Status()>;
  using NextFn = std::function<Result<bool>(Tuple*)>;
  using CloseFn = std::function<Status()>;
  CallbackSource(OpenFn open, NextFn next, CloseFn close)
      : open_(std::move(open)), next_(std::move(next)), close_(std::move(close)) {}
  Status Open() override { return open_ ? open_() : Status::OK(); }
  Result<bool> Next(Tuple* out) override { return next_(out); }
  Status Close() override { return close_ ? close_() : Status::OK(); }

 private:
  OpenFn open_;
  NextFn next_;
  CloseFn close_;
};

/// Drain a stream into a vector (root collector / test helper).
inline Result<std::vector<Tuple>> CollectAll(TupleStream* stream) {
  AX_RETURN_NOT_OK(stream->Open());
  std::vector<Tuple> out;
  Tuple t;
  while (true) {
    AX_ASSIGN_OR_RETURN(bool more, stream->Next(&t));
    if (!more) break;
    out.push_back(std::move(t));
    t = Tuple();
  }
  AX_RETURN_NOT_OK(stream->Close());
  return out;
}

/// ADM truthiness for predicates: only boolean true passes (SQL++ 3-valued
/// logic collapses null/missing to "not true").
inline bool IsTrue(const adm::Value& v) {
  return v.is_boolean() && v.AsBool();
}

}  // namespace asterix::hyracks
