// Tuples: the unit of data flowing through Hyracks operators. A tuple is a
// fixed-arity vector of ADM values; operators append/project fields by
// position (the Algebricks compiler maps its variables to positions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adm/serde.h"
#include "adm/value.h"
#include "common/result.h"

namespace asterix::hyracks {

/// One dataflow tuple.
struct Tuple {
  std::vector<adm::Value> fields;

  Tuple() = default;
  explicit Tuple(std::vector<adm::Value> f) : fields(std::move(f)) {}

  size_t arity() const { return fields.size(); }
  const adm::Value& at(size_t i) const { return fields[i]; }

  /// Approximate memory footprint, used by operator budgets.
  size_t ByteSize() const {
    size_t s = sizeof(Tuple);
    for (const auto& v : fields) s += v.ByteSize();
    return s;
  }

  /// In-memory footprint for grant accounting: ByteSize plus the fields
  /// vector's unused capacity slots. Reserve slack is real allocated
  /// memory, so budget arithmetic that ignores it undercounts exactly when
  /// tuples are widest — this is the uniform estimator every blocking
  /// operator's spill trigger uses.
  size_t ApproxBytes() const {
    size_t s = sizeof(Tuple) +
               (fields.capacity() - fields.size()) * sizeof(adm::Value);
    for (const auto& v : fields) s += v.ByteSize();
    return s;
  }

  /// Concatenate two tuples (join output).
  static Tuple Concat(const Tuple& a, const Tuple& b) {
    Tuple out;
    out.fields.reserve(a.arity() + b.arity());
    out.fields.insert(out.fields.end(), a.fields.begin(), a.fields.end());
    out.fields.insert(out.fields.end(), b.fields.begin(), b.fields.end());
    return out;
  }

  std::string ToString() const {
    std::string s = "(";
    for (size_t i = 0; i < fields.size(); i++) {
      if (i) s += ", ";
      s += fields[i].ToString();
    }
    s += ")";
    return s;
  }
};

/// Per-entry bookkeeping estimate (bucket node, key-string header, chain
/// pointer) added by hash-table operators (join build, group-by) on top of
/// Tuple::ApproxBytes, so their spill triggers count memory the same way.
constexpr size_t kHashEntryOverheadBytes = 64;

/// Serialize a tuple for spill files and exchange framing.
inline void SerializeTuple(const Tuple& t, std::string* out) {
  adm::PutVarint(t.fields.size(), out);
  for (const auto& v : t.fields) adm::SerializeValue(v, out);
}

inline Result<Tuple> DeserializeTuple(const std::string& data, size_t* pos) {
  AX_ASSIGN_OR_RETURN(uint64_t n, adm::GetVarint(data, pos));
  Tuple t;
  t.fields.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    AX_ASSIGN_OR_RETURN(adm::Value v, adm::DeserializeValue(data, pos));
    t.fields.push_back(std::move(v));
  }
  return t;
}

}  // namespace asterix::hyracks
