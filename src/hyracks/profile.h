// Query profiling: a per-query tree of operator statistics mirroring the
// lowered plan (one node per logical operator / exchange, one OpStats per
// partition instance). The Executor builds the tree while lowering,
// ProfiledStream wrappers fill it while the job runs, and the result is
// surfaced through ExecStats/QueryResult as an ASCII plan tree plus a
// Chrome trace_event JSON export (chrome://tracing, Perfetto).
//
// Overhead contract (<5% on the Fig. 1 benches): tuple/call counts are
// plain increments (each stream instance runs on exactly one partition
// thread), Open/Close are timed exactly (two clock reads per operator per
// partition), and Next() latency is *sampled* — every 61st call (see
// kSampleStride for why a prime) — then extrapolated, so a million-tuple
// pipeline pays ~33k clock reads instead of ~2M. NextBatch() is timed
// *exactly* on every call: two clock reads per ~kFrameTuples tuples is
// already cheaper than the sampled tuple path, so batch pipelines get
// precise timing for free. When profiling is off the Executor never wraps
// streams, so the cost is exactly zero.
//
// Concurrency: each OpStats is written by the single thread driving its
// partition's pipeline; Node-level `extra` (exchange traffic) is written
// only by finalizers after the job has joined all threads. No locks (fits
// the PR-1 lock hierarchy: the profiler takes none).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "hyracks/stream.h"

namespace asterix::hyracks {

/// Statistics for one operator instance (one partition of one plan node).
struct OpStats {
  uint64_t tuples_out = 0;          // Next() calls that produced a tuple
  uint64_t next_calls = 0;          // total Next() calls
  uint64_t open_ns = 0;             // exact Open() latency
  uint64_t close_ns = 0;            // exact Close() latency
  uint64_t first_next_ns = 0;       // exact first Next() (time to first
                                    // tuple: blocking ops pay their whole
                                    // upstream here — kept out of sampling
                                    // so extrapolation stays unbiased)
  uint64_t sampled_next_ns = 0;     // sum over sampled Next() calls
  uint64_t sampled_next_calls = 0;  // how many were sampled (call >= 1)
  uint64_t batch_calls = 0;         // total NextBatch() calls
  uint64_t batch_ns = 0;            // exact time in NextBatch() (the first
                                    // call lands in first_next_ns instead)
  uint64_t start_ns = 0;            // wall clock at Open() entry
  uint64_t end_ns = 0;              // wall clock at Close() exit
  uint32_t tid = 0;                 // small thread ordinal (trace lanes)
  // Operator-specific stats harvested at Close (spill bytes, runs, ...).
  std::map<std::string, uint64_t> extra;

  /// Exact first call plus exact batch time plus sampled tuple time
  /// extrapolated to the remaining Next() calls.
  uint64_t EstimatedNextNs() const {
    uint64_t est = first_next_ns + batch_ns;
    if (sampled_next_calls > 0 && next_calls > 1) {
      est += sampled_next_ns * (next_calls - 1) / sampled_next_calls;
    }
    return est;
  }
  /// Estimated CPU time this instance spent inside the operator chain
  /// below it (inclusive — children are nested within Next()).
  uint64_t TotalNs() const { return open_ns + EstimatedNextNs() + close_ns; }
};

/// The profiled-plan tree for one query execution.
class PlanProfile {
 public:
  struct Node {
    int id = -1;
    std::string label;           // e.g. "JOIN(hash)", "SCAN Gleambook"
    std::vector<int> children;   // node ids (plan order: first = left)
    std::vector<OpStats> partitions;  // one per partition instance
    // Node-level stats written by finalizers only (exchange traffic).
    std::map<std::string, uint64_t> extra;

    uint64_t TuplesOut() const;
    uint64_t TotalNs() const;  // summed over partitions (inclusive)
  };

  /// Append a node; `n_partitions` OpStats slots are allocated up front and
  /// never reallocated, so StatsFor pointers stay valid while the job runs.
  int AddNode(std::string label, std::vector<int> children,
              size_t n_partitions);
  OpStats* StatsFor(int node, size_t partition) {
    return &nodes_[static_cast<size_t>(node)].partitions[partition];
  }
  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  Node* mutable_node(int id) { return &nodes_[static_cast<size_t>(id)]; }
  size_t size() const { return nodes_.size(); }

  void set_root(int id) { root_ = id; }
  int root() const { return root_; }
  void set_elapsed_ms(double ms) { elapsed_ms_ = ms; }
  double elapsed_ms() const { return elapsed_ms_; }

  /// Deferred harvesting (e.g. copying ExchangeStats into an EXCHANGE node
  /// after all producer/consumer threads joined). Run via Finalize().
  void AddFinalizer(std::function<void()> fn);
  void Finalize();

  /// ASCII plan tree with per-operator tuple counts, estimated time, and
  /// operator-specific extras. One line per node; partitions aggregated.
  std::string Render() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): one complete ("X")
  /// event per (node, partition) spanning Open()..Close(), laid out on the
  /// executing thread's lane. Load in chrome://tracing or Perfetto.
  std::string ToChromeTrace() const;

 private:
  std::deque<Node> nodes_;  // deque: stable element addresses
  std::vector<std::function<void()>> finalizers_;
  int root_ = -1;
  double elapsed_ms_ = 0;
};

/// Transparent TupleStream wrapper filling one OpStats. The harvest hook
/// (optional) runs at Close on the partition's own thread — it pulls
/// operator-specific stats (SortStats, JoinStats, ...) into stats->extra.
class ProfiledStream : public TupleStream {
 public:
  using Harvest = std::function<void(OpStats*)>;
  /// Sample every 61st Next() call for latency. The stride is prime —
  /// coprime with kFrameTuples (256) — so sampling neither catches every
  /// frame-boundary queue pop (which would extrapolate the occasional
  /// blocking pop across all calls) nor misses them all; costly calls are
  /// hit at their true frequency and the extrapolation stays unbiased.
  static constexpr uint64_t kSampleStride = 61;

  ProfiledStream(StreamPtr child, OpStats* stats, Harvest harvest = nullptr)
      : child_(std::move(child)), stats_(stats),
        harvest_(std::move(harvest)) {}

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  /// Timed exactly on every call (the clock cost amortizes over the whole
  /// batch); counts every tuple the batch carries.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

 private:
  StreamPtr child_;
  OpStats* stats_;
  Harvest harvest_;
};

/// Small dense ordinal for the calling thread (stable within a process;
/// used as the `tid` lane in trace exports).
uint32_t ThisThreadOrdinal();

}  // namespace asterix::hyracks
