// Hash group-by with spilling, plus two-phase (partial/final) modes used
// by the parallel aggregation plans Algebricks produces: local group-by on
// each partition emits partial states, a hash exchange repartitions on the
// grouping key, and a final group-by merges partials (paper Fig. 2 lists
// grouped aggregation among the working-memory consumers).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "hyracks/spill.h"
#include "hyracks/stream.h"
#include "resource/governor.h"

namespace asterix::hyracks {

enum class AggKind { kCount, kSum, kMin, kMax, kAvg, kCollect };

/// One aggregate: a kind plus its argument expression. For kCount the
/// argument may be null (COUNT(*)); non-null COUNT(arg) skips unknowns.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  TupleEval arg;  // may be nullptr for COUNT(*)
};

/// Which phase of a (possibly two-phase) aggregation this operator runs.
enum class AggPhase {
  kComplete,  // raw input -> final values
  kPartial,   // raw input -> partial state fields
  kFinal,     // partial state fields -> final values
};

/// Hash group-by. Output tuple: group key fields ++ one field per aggregate
/// (kComplete/kFinal) or ++ partial-state fields (kPartial; kAvg emits two:
/// sum and count, kCollect emits an array).
class HashGroupByOp : public TupleStream {
 public:
  HashGroupByOp(StreamPtr child, std::vector<TupleEval> keys,
                std::vector<AggSpec> aggs, AggPhase phase,
                size_t memory_budget_bytes, TempFileManager* tmp);
  ~HashGroupByOp() override;

  /// Adopt a governor grant (overriding the constructor budget when the
  /// grant carries bytes) and a cancellation context checked at batch
  /// granularity. The grant is RAII-released at Close/destruction.
  void AttachResources(const resource::QueryContext* ctx,
                       resource::MemoryGrant grant) {
    ctx_ = ctx;
    grant_ = std::move(grant);
    if (grant_.bytes() > 0) budget_ = grant_.bytes();
  }

  Status Open() override;
  Result<bool> Next(Tuple* out) override;
  /// Emits buffered group results batch-at-a-time.
  Result<bool> NextBatch(Batch* out) override;
  Status Close() override;

  size_t spill_partitions_used() const { return spills_used_; }
  uint64_t bytes_spilled() const { return bytes_spilled_; }

 private:
  struct GroupState {
    std::vector<adm::Value> key;
    // Per aggregate: running values. kAvg keeps {sum, count}; others one.
    std::vector<std::vector<adm::Value>> partials;
    size_t bytes = 0;
  };

  /// Raw-input accumulation (kComplete/kPartial).
  Status AccumulateRaw(GroupState* g, const Tuple& t);
  /// Partial-state merge (kFinal): `t` is key fields ++ partial fields.
  Status MergePartial(GroupState* g, const Tuple& t, size_t key_arity);
  /// Number of state fields each aggregate contributes in partial form.
  static size_t PartialArity(AggKind kind);
  /// Consumes the group state: key and aggregate values move into the
  /// output tuple (the table is cleared right after draining anyway).
  Result<Tuple> Emit(GroupState&& g) const;
  std::vector<adm::Value> InitPartial(const AggSpec& spec) const;

  Status ProcessStream(TupleStream* input, bool input_is_partial, int level,
                       std::vector<std::unique_ptr<RunWriter>>* spills);
  /// Fold one input tuple into the hash table (or spill it on overflow).
  Status ProcessTuple(const Tuple& t, bool input_is_partial, int level,
                      std::vector<std::unique_ptr<RunWriter>>* spills);
  Status DrainTableToOutput();
  /// Remove every spill file this operator created and nobody consumed
  /// (abort/cancel paths; consumed files self-delete via RunReader).
  void CleanupSpillFiles();

  StreamPtr child_;
  std::vector<TupleEval> keys_;
  std::vector<AggSpec> aggs_;
  AggPhase phase_;
  size_t budget_;
  TempFileManager* tmp_;
  const resource::QueryContext* ctx_ = nullptr;
  resource::MemoryGrant grant_;
  /// Every temp path ever created (spill partitions at every level), kept
  /// for cleanup on abort. Removing already-deleted paths is a no-op.
  std::vector<std::string> owned_spill_paths_;

  std::unordered_map<std::string, GroupState> table_;
  size_t table_bytes_ = 0;
  std::vector<Tuple> output_;
  size_t out_pos_ = 0;
  std::vector<std::pair<std::string, int>> pending_partitions_;  // (file, level)
  size_t spills_used_ = 0;
  uint64_t bytes_spilled_ = 0;
};

}  // namespace asterix::hyracks
