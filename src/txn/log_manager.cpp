#include "txn/log_manager.h"

#include <cstring>

#include "adm/serde.h"
#include "common/metrics.h"

namespace asterix::txn {

namespace {
metrics::Counter* WalAppendsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("txn.wal.appends");
  return c;
}
metrics::Counter* WalBytesCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("txn.wal.bytes");
  return c;
}
metrics::Counter* WalFsyncsCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("txn.wal.fsyncs");
  return c;
}
metrics::Counter* WalTornTailCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("txn.wal.torn_tail_records");
  return c;
}
// Simple additive checksum — catches torn tail writes on recovery.
uint32_t Checksum(const std::string& data) {
  uint32_t sum = 2166136261u;
  for (unsigned char c : data) {
    sum ^= c;
    sum *= 16777619u;
  }
  return sum;
}
}  // namespace

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& path,
                                                     SyncMode sync_mode) {
  std::unique_ptr<File> file;
  if (fs::Exists(path)) {
    AX_ASSIGN_OR_RETURN(file, File::Open(path, /*writable=*/true));
  } else {
    AX_ASSIGN_OR_RETURN(file, File::Create(path));
  }
  return std::unique_ptr<LogManager>(
      new LogManager(path, std::move(file), sync_mode));
}

Result<uint64_t> LogManager::Append(const LogRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.type));
  adm::PutVarint(record.dataset.size(), &body);
  body += record.dataset;
  adm::PutVarint(record.partition, &body);
  adm::PutVarint(record.key.size(), &body);
  body += record.key;
  adm::PutVarint(record.value.size(), &body);
  body += record.value;

  std::string framed;
  uint32_t len = static_cast<uint32_t>(body.size());
  uint32_t crc = Checksum(body);
  framed.append(reinterpret_cast<const char*>(&len), 4);
  framed.append(reinterpret_cast<const char*>(&crc), 4);
  framed += body;

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t lsn = tail_;
  AX_RETURN_NOT_OK(file_->WriteAt(tail_, framed.size(), framed.data()));
  tail_ += framed.size();
  WalAppendsCounter()->Add(1);
  WalBytesCounter()->Add(framed.size());
  if (sync_mode_ == SyncMode::kSync) {
    // axlint: allow(blocking-under-lock): WAL group commit orders the fsync
    // under mu_ by design — releasing first would let a later append reorder
    // ahead of this record's durability point.
    AX_RETURN_NOT_OK(file_->Sync());
    WalFsyncsCounter()->Add(1);
  }
  return lsn;
}

Status LogManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  // axlint: allow(blocking-under-lock): same WAL ordering contract as
  // Append — the sync must cover every append framed before it.
  AX_RETURN_NOT_OK(file_->Sync());
  WalFsyncsCounter()->Add(1);
  return Status::OK();
}

Status LogManager::Replay(const std::function<Status(const LogRecord&)>& fn,
                          ReplayStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pos = 0;
  uint64_t torn = 0;
  while (pos + 8 <= tail_) {
    char header[8];
    AX_RETURN_NOT_OK(file_->ReadAt(pos, 8, header));
    uint32_t len, crc;
    std::memcpy(&len, header, 4);
    std::memcpy(&crc, header + 4, 4);
    if (pos + 8 + len > tail_) {  // torn tail — stop replay here
      torn++;
      break;
    }
    std::string body(len, '\0');
    AX_RETURN_NOT_OK(file_->ReadAt(pos + 8, len, body.data()));
    if (Checksum(body) != crc) {  // torn/corrupt tail
      torn++;
      break;
    }
    LogRecord rec;
    size_t p = 0;
    rec.type = static_cast<LogRecordType>(body[p]);
    p++;
    AX_ASSIGN_OR_RETURN(uint64_t dslen, adm::GetVarint(body, &p));
    rec.dataset = body.substr(p, dslen);
    p += dslen;
    AX_ASSIGN_OR_RETURN(uint64_t part, adm::GetVarint(body, &p));
    rec.partition = static_cast<uint32_t>(part);
    AX_ASSIGN_OR_RETURN(uint64_t klen, adm::GetVarint(body, &p));
    rec.key = body.substr(p, klen);
    p += klen;
    AX_ASSIGN_OR_RETURN(uint64_t vlen, adm::GetVarint(body, &p));
    rec.value = body.substr(p, vlen);
    AX_RETURN_NOT_OK(fn(rec));
    if (stats != nullptr) stats->records_replayed++;
    pos += 8 + len;
  }
  // Fewer than 8 trailing bytes is a partial header from a torn append.
  if (torn == 0 && pos < tail_) torn++;
  if (torn > 0) {
    WalTornTailCounter()->Add(torn);
    if (stats != nullptr) {
      stats->torn_tail_records += torn;
      stats->torn_tail_bytes += tail_ - pos;
    }
  }
  return Status::OK();
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.reset();
  AX_ASSIGN_OR_RETURN(file_, File::Create(path_));
  tail_ = 0;
  return Status::OK();
}

}  // namespace asterix::txn
