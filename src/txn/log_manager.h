// Write-ahead log for NoSQL-style record-level transactions (paper §III
// item 9). Redo-only: every committed mutation of a dataset partition is
// appended before it is applied to the LSM memory component. Recovery
// replays the log in LSN order into the LSM trees (replay is idempotent:
// re-applying an upsert that already reached a disk component just shadows
// it with an identical newer version). A checkpoint — taken after flushing
// every dataset on the node — truncates the log.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/io.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace asterix::txn {

enum class LogRecordType : uint8_t {
  kUpsert = 1,
  kDelete = 2,
};

/// One redo record.
struct LogRecord {
  LogRecordType type = LogRecordType::kUpsert;
  std::string dataset;   // dataset name
  uint32_t partition = 0;
  std::string key;       // encoded primary key
  std::string value;     // serialized record (empty for deletes)
};

/// Durability knob: whether Append fsyncs (group commit is out of scope;
/// tests use kNoSync for speed, recovery tests use kSync).
enum class SyncMode { kNoSync, kSync };

/// What Replay saw. A torn tail (partial header, body past end-of-file, or
/// checksum mismatch on the last record) is expected after a crash mid-append
/// and is silently dropped, but callers may want to surface it as a warning.
struct ReplayStats {
  uint64_t records_replayed = 0;
  uint64_t torn_tail_records = 0;  // incomplete trailing records dropped
  uint64_t torn_tail_bytes = 0;    // bytes past the last intact record
};

/// Append-only log over a single file. Thread-safe.
class LogManager {
 public:
  /// Open (creating if absent) the log at `path`.
  static Result<std::unique_ptr<LogManager>> Open(const std::string& path,
                                                  SyncMode sync_mode);

  /// Append a record; returns its LSN (byte offset).
  Result<uint64_t> Append(const LogRecord& record) AX_EXCLUDES(mu_);

  /// Force buffered records to disk.
  Status Sync() AX_EXCLUDES(mu_);

  /// Replay every record in LSN order. Stops (without error) at the first
  /// torn record; pass `stats` to observe how much, if anything, was dropped.
  /// Torn records also bump the `txn.wal.torn_tail_records` counter.
  Status Replay(const std::function<Status(const LogRecord&)>& fn,
                ReplayStats* stats = nullptr) AX_EXCLUDES(mu_);

  /// Truncate the log (after a full checkpoint: all datasets flushed).
  Status Truncate() AX_EXCLUDES(mu_);

  uint64_t tail_lsn() const AX_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    return tail_;
  }
  const std::string& path() const { return path_; }

 private:
  LogManager(std::string path, std::unique_ptr<File> file, SyncMode mode)
      : path_(std::move(path)), file_(std::move(file)), sync_mode_(mode),
        tail_(file_->size()) {}

  std::string path_;
  std::unique_ptr<File> file_ AX_GUARDED_BY(mu_);
  SyncMode sync_mode_;
  mutable std::mutex mu_;
  uint64_t tail_ AX_GUARDED_BY(mu_);
};

}  // namespace asterix::txn
