#include "txn/lock_manager.h"

#include <algorithm>

namespace asterix::txn {

TxnId LockManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_txn_++;
}

bool LockManager::CanGrantLocked(const LockEntry& e, TxnId txn,
                                 LockMode mode) const {
  if (mode == LockMode::kShared) {
    return e.exclusive == 0 || e.exclusive == txn;
  }
  // Exclusive: no other sharer and no other exclusive holder.
  if (e.exclusive != 0 && e.exclusive != txn) return false;
  for (TxnId s : e.sharers) {
    if (s != txn) return false;
  }
  return true;
}

void LockManager::MaybeEraseLocked(Table::iterator it) {
  const LockEntry& e = it->second;
  if (e.sharers.empty() && e.exclusive == 0 && e.upgrader == 0 &&
      e.waiters == 0) {
    table_.erase(it);
  }
}

Status LockManager::Lock(TxnId txn, const std::string& key, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  auto it = table_.try_emplace(key).first;
  // NOTE: `it` (and the entry it points to) stays valid across cv_ waits:
  // while this call is blocked its `waiters` registration pins the map node
  // (ReleaseAll/MaybeEraseLocked never erase an entry with waiters).
  LockEntry& entry = it->second;

  if (mode == LockMode::kExclusive && !CanGrantLocked(entry, txn, mode) &&
      entry.sharers.count(txn) != 0) {
    // Shared->exclusive upgrade that must wait for other sharers. Two
    // concurrent upgraders deadlock (each waits for the other's shared
    // lock), so admit one and refuse the rest eagerly.
    if (entry.upgrader != 0 && entry.upgrader != txn) {
      MaybeEraseLocked(it);
      return Status::TxnConflict(
          "upgrade conflict on key (another upgrade in progress)");
    }
    entry.upgrader = txn;
  }

  while (!CanGrantLocked(entry, txn, mode)) {
    entry.waiters++;
    std::cv_status waited = cv_.wait_until(lock, deadline);
    entry.waiters--;
    if (waited == std::cv_status::timeout &&
        !CanGrantLocked(entry, txn, mode)) {
      if (entry.upgrader == txn) entry.upgrader = 0;
      MaybeEraseLocked(it);
      return Status::TxnConflict("lock timeout on key (possible deadlock)");
    }
  }
  if (mode == LockMode::kShared) {
    if (entry.exclusive != txn) entry.sharers.insert(txn);
  } else {
    entry.sharers.erase(txn);  // shared -> exclusive upgrade
    entry.exclusive = txn;
    if (entry.upgrader == txn) entry.upgrader = 0;
  }
  held_[txn].insert(key);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const auto& key : it->second) {
    auto te = table_.find(key);
    if (te == table_.end()) continue;
    te->second.sharers.erase(txn);
    if (te->second.exclusive == txn) te->second.exclusive = 0;
    if (te->second.upgrader == txn) te->second.upgrader = 0;
    MaybeEraseLocked(te);
  }
  held_.erase(it);
  cv_.notify_all();
}

size_t LockManager::locked_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

}  // namespace asterix::txn
