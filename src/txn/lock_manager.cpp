#include "txn/lock_manager.h"

#include <algorithm>

namespace asterix::txn {

TxnId LockManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_txn_++;
}

bool LockManager::CanGrantLocked(const LockEntry& e, TxnId txn,
                                 LockMode mode) const {
  if (mode == LockMode::kShared) {
    return e.exclusive == 0 || e.exclusive == txn;
  }
  // Exclusive: no other sharer and no other exclusive holder.
  if (e.exclusive != 0 && e.exclusive != txn) return false;
  for (TxnId s : e.sharers) {
    if (s != txn) return false;
  }
  return true;
}

Status LockManager::Lock(TxnId txn, const std::string& key, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  auto& entry = table_[key];
  while (!CanGrantLocked(entry, txn, mode)) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::TxnConflict("lock timeout on key (possible deadlock)");
    }
  }
  if (mode == LockMode::kShared) {
    if (entry.exclusive != txn) entry.sharers.insert(txn);
  } else {
    entry.sharers.erase(txn);  // shared -> exclusive upgrade
    entry.exclusive = txn;
  }
  held_[txn].insert(key);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const auto& key : it->second) {
    auto te = table_.find(key);
    if (te == table_.end()) continue;
    te->second.sharers.erase(txn);
    if (te->second.exclusive == txn) te->second.exclusive = 0;
    if (te->second.sharers.empty() && te->second.exclusive == 0) {
      table_.erase(te);
    }
  }
  held_.erase(it);
  cv_.notify_all();
}

size_t LockManager::locked_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

}  // namespace asterix::txn
