// Record-level lock manager for NoSQL-style transactional semantics
// (paper §III item 9: "basic NoSQL-like transactional capabilities").
// Locks are on encoded primary keys; a statement takes an exclusive lock
// per record it mutates and a shared lock per record it reads under
// read-committed semantics. Deadlocks resolve by timeout (TxnConflict),
// except shared->exclusive upgrade deadlocks, which are detected eagerly:
// only one transaction may wait to upgrade a given key, a second upgrader
// fails immediately with TxnConflict (it would deadlock against the first).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace asterix::txn {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

/// Hash-partition-free single-node lock table. Thread-safe.
class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(500))
      : timeout_(timeout) {}

  /// Acquire (or upgrade to) `mode` on `key` for `txn`. Blocks until
  /// granted or the timeout elapses (TxnConflict). A shared->exclusive
  /// upgrade that would deadlock against another pending upgrade fails
  /// immediately with TxnConflict instead of timing out.
  Status Lock(TxnId txn, const std::string& key, LockMode mode)
      AX_EXCLUDES(mu_);

  /// Release every lock held by `txn` and wake blocked waiters.
  void ReleaseAll(TxnId txn) AX_EXCLUDES(mu_);

  /// Fresh transaction id.
  TxnId Begin() AX_EXCLUDES(mu_);

  /// Number of keys currently locked (tests/metrics).
  size_t locked_keys() const AX_EXCLUDES(mu_);

 private:
  struct LockEntry {
    std::set<TxnId> sharers;
    TxnId exclusive = 0;  // 0 = none
    // The one transaction allowed to wait for a shared->exclusive upgrade
    // on this key (0 = none). A second concurrent upgrader would deadlock
    // against the first, so it is refused eagerly.
    TxnId upgrader = 0;
    // Number of Lock() calls blocked on this entry. ReleaseAll must not
    // erase an entry with registered waiters: a blocked Lock() holds a
    // reference to it across cv_.wait_until (erasing it was the seed's
    // use-after-free under contention).
    int waiters = 0;
  };
  using Table = std::map<std::string, LockEntry>;

  bool CanGrantLocked(const LockEntry& e, TxnId txn, LockMode mode) const
      AX_REQUIRES(mu_);
  /// Erase `it` if nothing holds, waits for, or upgrades on the entry.
  void MaybeEraseLocked(Table::iterator it) AX_REQUIRES(mu_);

  std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Table table_ AX_GUARDED_BY(mu_);
  std::map<TxnId, std::set<std::string>> held_ AX_GUARDED_BY(mu_);
  TxnId next_txn_ AX_GUARDED_BY(mu_) = 1;
};

/// RAII scope: a statement-level transaction that releases its locks on
/// destruction. [[nodiscard]] because a discarded scope releases its
/// locks immediately — the statement would run unprotected.
class [[nodiscard]] TxnScope {
 public:
  TxnScope(LockManager* mgr) : mgr_(mgr), id_(mgr->Begin()) {}
  ~TxnScope() { mgr_->ReleaseAll(id_); }
  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;
  TxnId id() const { return id_; }
  Status Lock(const std::string& key, LockMode mode) {
    return mgr_->Lock(id_, key, mode);
  }

 private:
  LockManager* mgr_;
  TxnId id_;
};

}  // namespace asterix::txn
