// Record-level lock manager for NoSQL-style transactional semantics
// (paper §III item 9: "basic NoSQL-like transactional capabilities").
// Locks are on encoded primary keys; a statement takes an exclusive lock
// per record it mutates and a shared lock per record it reads under
// read-committed semantics. Deadlocks resolve by timeout (TxnConflict).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace asterix::txn {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

/// Hash-partition-free single-node lock table. Thread-safe.
class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(500))
      : timeout_(timeout) {}

  /// Acquire (or upgrade to) `mode` on `key` for `txn`. Blocks until
  /// granted or the timeout elapses (TxnConflict).
  Status Lock(TxnId txn, const std::string& key, LockMode mode);

  /// Release every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// Fresh transaction id.
  TxnId Begin();

  /// Number of keys currently locked (tests/metrics).
  size_t locked_keys() const;

 private:
  struct LockEntry {
    std::set<TxnId> sharers;
    TxnId exclusive = 0;  // 0 = none
  };

  bool CanGrantLocked(const LockEntry& e, TxnId txn, LockMode mode) const;

  std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, LockEntry> table_;
  std::map<TxnId, std::set<std::string>> held_;
  TxnId next_txn_ = 1;
};

/// RAII scope: a statement-level transaction that releases its locks on
/// destruction.
class TxnScope {
 public:
  TxnScope(LockManager* mgr) : mgr_(mgr), id_(mgr->Begin()) {}
  ~TxnScope() { mgr_->ReleaseAll(id_); }
  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;
  TxnId id() const { return id_; }
  Status Lock(const std::string& key, LockMode mode) {
    return mgr_->Lock(id_, key, mode);
  }

 private:
  LockManager* mgr_;
  TxnId id_;
};

}  // namespace asterix::txn
