// LSM inverted keyword index (paper §III item 8: "several variants of
// inverted keyword indexes"). Maps terms to primary keys; backed by an LSM
// B+tree over composite (term, pk) keys so postings inherit LSM flush,
// antimatter-delete and merge behaviour.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/lsm_btree.h"

namespace asterix::storage {

/// Split text into lowercase alphanumeric word tokens (the keyword
/// tokenizer behind CREATE INDEX ... TYPE KEYWORD).
std::vector<std::string> TokenizeKeywords(const std::string& text);

struct InvertedIndexOptions {
  std::string dir;
  std::string name;
  BufferCache* cache = nullptr;
  size_t mem_budget_bytes = 1u << 20;
  /// Background maintenance pool for the backing LSM B+tree (null =
  /// inline maintenance). Must outlive the index.
  MaintenanceScheduler* scheduler = nullptr;
};

/// Inverted index from terms to opaque payloads (encoded primary keys).
class LsmInvertedIndex {
 public:
  static Result<std::unique_ptr<LsmInvertedIndex>> Open(
      const InvertedIndexOptions& options);

  /// Add one (term, payload) posting.
  Status Insert(const std::string& term, const std::string& payload);
  /// Remove one posting.
  Status Remove(const std::string& term, const std::string& payload);
  /// Index every keyword token of `text` for `payload`.
  Status InsertText(const std::string& text, const std::string& payload);
  Status RemoveText(const std::string& text, const std::string& payload);

  /// Payloads of all postings for `term` (exact match, lowercase).
  Result<std::vector<std::string>> Search(const std::string& term) const;
  /// Payloads containing every term (conjunctive search).
  Result<std::vector<std::string>> SearchAll(
      const std::vector<std::string>& terms) const;

  Status Flush() { return tree_->Flush(); }
  Status ForceFullMerge() { return tree_->ForceFullMerge(); }
  LsmStats stats() const { return tree_->stats(); }

 private:
  explicit LsmInvertedIndex(std::unique_ptr<LsmBTree> tree)
      : tree_(std::move(tree)) {}
  std::unique_ptr<LsmBTree> tree_;
};

}  // namespace asterix::storage
