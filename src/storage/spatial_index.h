// The cast of the paper's §V-B LSM spatial-index study behind one interface:
//   * LSM R-tree                         (what AsterixDB shipped)
//   * LSM B+tree on Hilbert-ordered keys (one senior researcher's pick)
//   * LSM B+tree on Z-ordered keys       (a variant of the same idea)
//   * LSM B+tree on grid cells           (the third researcher's pick)
// All index points to opaque payloads (encoded primary keys). The benchmark
// bench_spatial_index_study sweeps these against each other.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_cache.h"
#include "storage/spatial_curve.h"

namespace asterix::storage {

class MaintenanceScheduler;

enum class SpatialIndexKind {
  kRTree,
  kHilbertBTree,
  kZOrderBTree,
  kGrid,
};

const char* SpatialIndexKindName(SpatialIndexKind kind);

struct SpatialIndexOptions {
  SpatialIndexKind kind = SpatialIndexKind::kRTree;
  std::string dir;
  std::string name;
  BufferCache* cache = nullptr;
  size_t mem_budget_bytes = 1u << 20;
  /// World bounding box for curve quantization / grid cells.
  adm::Rectangle world{{-180, -90}, {180, 90}};
  /// Grid resolution per dimension (kGrid only).
  uint32_t grid_cells = 64;
  /// Point-storage optimization in R-tree leaves (kRTree only).
  bool rtree_point_mode = true;
  /// Background maintenance pool for the backing LSM structure (null =
  /// inline maintenance). Must outlive the index.
  MaintenanceScheduler* scheduler = nullptr;
};

struct SpatialIndexStats {
  uint64_t disk_pages = 0;
  uint64_t disk_entries = 0;
  size_t disk_components = 0;
};

/// A secondary index over points. Thread-safety follows the backing LSM
/// structures (safe for concurrent use).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual Status Insert(const adm::Point& pt, const std::string& payload) = 0;
  virtual Status Remove(const adm::Point& pt, const std::string& payload) = 0;
  /// Payloads of all points inside `query` (inclusive bounds).
  virtual Result<std::vector<std::string>> Query(
      const adm::Rectangle& query) const = 0;
  virtual Status Flush() = 0;
  virtual Status ForceFullMerge() = 0;
  virtual SpatialIndexStats stats() const = 0;
  virtual SpatialIndexKind kind() const = 0;

  static Result<std::unique_ptr<SpatialIndex>> Create(
      const SpatialIndexOptions& options);
};

}  // namespace asterix::storage
