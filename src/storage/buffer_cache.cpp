#include "storage/buffer_cache.h"

#include <cstring>

namespace asterix::storage {

namespace {
uint64_t Key(FileId f, PageNo p) {
  return (static_cast<uint64_t>(f) << 32) | p;
}
}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    if (cache_) cache_->Unpin(shard_, slot_);
    cache_ = o.cache_;
    shard_ = o.shard_;
    slot_ = o.slot_;
    data_ = o.data_;
    o.cache_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() {
  if (cache_) cache_->Unpin(shard_, slot_);
}

void PageHandle::MarkDirty() {
  if (cache_) cache_->MarkDirtySlot(shard_, slot_);
}

BufferCache::BufferCache(size_t num_frames, size_t num_shards)
    : capacity_(num_frames) {
  if (num_shards == 0) num_shards = num_frames < 256 ? 1 : 8;
  if (num_shards > num_frames) num_shards = 1;
  size_t per_shard = num_frames / num_shards;
  auto& registry = metrics::Registry::Global();
  for (size_t s = 0; s < num_shards; s++) {
    auto shard = std::make_unique<Shard>();
    const std::string scope = "shard" + std::to_string(s);
    shard->m_hits = registry.GetCounter("storage.buffer_cache.hits", scope);
    shard->m_misses = registry.GetCounter("storage.buffer_cache.misses", scope);
    shard->m_evictions =
        registry.GetCounter("storage.buffer_cache.evictions", scope);
    shard->m_writebacks =
        registry.GetCounter("storage.buffer_cache.writebacks", scope);
    size_t count = per_shard + (s < num_frames % num_shards ? 1 : 0);
    std::lock_guard<std::mutex> lock(shard->mu);  // satisfies GUARDED_BY
    shard->frames.resize(count);
    for (size_t i = 0; i < count; i++) {
      shard->frames[i].data = std::make_unique<char[]>(kPageSize);
      shard->lru.push_back(i);
      shard->frames[i].lru_it = std::prev(shard->lru.end());
      shard->frames[i].in_lru = true;
    }
    shards_.push_back(std::move(shard));
  }
}

BufferCache::~BufferCache() {
  // Flush all dirty frames on teardown (best effort).
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& f : shard->frames) {
      if (f.used && f.dirty && f.file_entry) {
        // axlint: allow(must-check): teardown flush is best-effort by design
        (void)f.file_entry->file->WriteAt(
            static_cast<uint64_t>(f.page) * kPageSize, kPageSize, f.data.get());
      }
    }
  }
}

size_t BufferCache::ShardOf(FileId file, PageNo page) const {
  uint64_t h = Key(file, page) * 0x9E3779B97F4A7C15ULL;
  return static_cast<size_t>((h >> 32) % shards_.size());
}

Result<BufferCache::FileEntryPtr> BufferCache::LookupFile(FileId id) const {
  std::lock_guard<std::mutex> lock(files_mu_);
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file id");
  return it->second;
}

Result<FileId> BufferCache::RegisterFile(const std::string& path,
                                         bool writable) {
  std::unique_ptr<File> file;
  if (fs::Exists(path)) {
    AX_ASSIGN_OR_RETURN(file, File::Open(path, writable));
  } else if (writable) {
    AX_ASSIGN_OR_RETURN(file, File::Create(path));
  } else {
    return Status::NotFound("no such file '" + path + "'");
  }
  auto entry = std::make_shared<FileEntry>();
  entry->page_count = static_cast<PageNo>(file->size() / kPageSize);
  entry->file = std::move(file);
  entry->writable = writable;
  std::lock_guard<std::mutex> lock(files_mu_);
  FileId id = next_file_id_++;
  files_.emplace(id, std::move(entry));
  return id;
}

Status BufferCache::UnregisterFile(FileId id) {
  FileEntryPtr entry;
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    auto it = files_.find(id);
    if (it == files_.end()) return Status::NotFound("unknown file id");
    entry = it->second;
    files_.erase(it);
  }
  // Flush + invalidate this file's frames in every shard.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (size_t slot = 0; slot < shard->frames.size(); slot++) {
      Frame& f = shard->frames[slot];
      if (f.used && f.file == id) {
        if (f.pins > 0) {
          return Status::Internal("unregistering file with pinned pages");
        }
        if (f.dirty) {
          AX_RETURN_NOT_OK(WriteBackLocked(f));
          shard->writebacks++;
          shard->m_writebacks->Add(1);
        }
        shard->page_map.erase(Key(f.file, f.page));
        f.used = false;
        f.dirty = false;
        f.file_entry.reset();
      }
    }
  }
  return Status::OK();
}

Result<PageHandle> BufferCache::PinInternal(const FileEntryPtr& entry,
                                            FileId file, PageNo page_no,
                                            bool fresh_zeroed) {
  size_t shard_idx = ShardOf(file, page_no);
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto key = Key(file, page_no);
  auto it = shard.page_map.find(key);
  if (it != shard.page_map.end()) {
    shard.hits++;
    shard.m_hits->Add(1);
    size_t slot = it->second;
    Frame& f = shard.frames[slot];
    if (f.pins == 0 && f.in_lru) {
      shard.lru.erase(f.lru_it);
      f.in_lru = false;
    }
    f.pins++;
    return PageHandle(this, shard_idx, slot, f.data.get());
  }
  shard.misses++;
  shard.m_misses->Add(1);
  AX_ASSIGN_OR_RETURN(size_t slot, GrabFrameLocked(shard));
  Frame& f = shard.frames[slot];
  if (fresh_zeroed) {
    std::memset(f.data.get(), 0, kPageSize);
  } else {
    AX_RETURN_NOT_OK(entry->file->ReadAt(
        static_cast<uint64_t>(page_no) * kPageSize, kPageSize, f.data.get()));
  }
  f.file = file;
  f.page = page_no;
  f.file_entry = entry;
  f.used = true;
  f.dirty = fresh_zeroed;
  f.pins = 1;
  shard.page_map[key] = slot;
  return PageHandle(this, shard_idx, slot, f.data.get());
}

Result<FileRef> BufferCache::GetFileRef(FileId file) const {
  AX_ASSIGN_OR_RETURN(FileEntryPtr entry, LookupFile(file));
  FileRef ref;
  ref.entry_ = std::move(entry);
  ref.id_ = file;
  return ref;
}

Result<PageHandle> BufferCache::Pin(FileId file, PageNo page_no) {
  AX_ASSIGN_OR_RETURN(FileEntryPtr entry, LookupFile(file));
  if (page_no >= entry->page_count.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "page " + std::to_string(page_no) + " out of range (file has " +
        std::to_string(entry->page_count.load()) + " pages)");
  }
  return PinInternal(entry, file, page_no, /*fresh_zeroed=*/false);
}

Result<PageHandle> BufferCache::Pin(const FileRef& file, PageNo page_no) {
  if (!file.valid()) return Status::InvalidArgument("invalid file reference");
  if (page_no >= file.entry_->page_count.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("page " + std::to_string(page_no) +
                                   " out of range");
  }
  return PinInternal(file.entry_, file.id_, page_no, /*fresh_zeroed=*/false);
}

PageNo BufferCache::PageCount(const FileRef& file) const {
  return file.valid() ? file.entry_->page_count.load(std::memory_order_acquire)
                      : 0;
}

Result<std::pair<PageNo, PageHandle>> BufferCache::NewPage(
    const FileRef& file) {
  if (!file.valid()) return Status::InvalidArgument("invalid file reference");
  return NewPageInternal(file.entry_, file.id_);
}

Result<std::pair<PageNo, PageHandle>> BufferCache::NewPage(FileId file) {
  AX_ASSIGN_OR_RETURN(FileEntryPtr entry, LookupFile(file));
  return NewPageInternal(entry, file);
}

Result<std::pair<PageNo, PageHandle>> BufferCache::NewPageInternal(
    const FileEntryPtr& entry, FileId file) {
  if (!entry->writable) return Status::InvalidArgument("file not writable");
  PageNo page_no;
  {
    std::lock_guard<std::mutex> grow(entry->grow_mu);
    page_no = entry->page_count.load(std::memory_order_relaxed);
    // Extend the file with a zero page immediately so PageCount stays honest.
    static const char zeros[kPageSize] = {0};
    AX_RETURN_NOT_OK(entry->file->WriteAt(
        static_cast<uint64_t>(page_no) * kPageSize, kPageSize, zeros));
    entry->page_count.store(page_no + 1, std::memory_order_release);
  }
  AX_ASSIGN_OR_RETURN(PageHandle handle,
                      PinInternal(entry, file, page_no, /*fresh_zeroed=*/true));
  return std::make_pair(page_no, std::move(handle));
}

Status BufferCache::FlushFile(FileId file) {
  AX_ASSIGN_OR_RETURN(FileEntryPtr entry, LookupFile(file));
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& f : shard->frames) {
      if (f.used && f.file == file && f.dirty) {
        AX_RETURN_NOT_OK(WriteBackLocked(f));
        shard->writebacks++;
        shard->m_writebacks->Add(1);
        f.dirty = false;
      }
    }
  }
  return entry->file->Sync();
}

Result<PageNo> BufferCache::PageCount(FileId file) const {
  AX_ASSIGN_OR_RETURN(FileEntryPtr entry, LookupFile(file));
  return entry->page_count.load(std::memory_order_acquire);
}

BufferCacheStats BufferCache::stats() const {
  BufferCacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.dirty_writebacks += shard->writebacks;
  }
  return s;
}

void BufferCache::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->hits = shard->misses = shard->evictions = shard->writebacks = 0;
  }
}

void BufferCache::Unpin(size_t shard_idx, size_t slot) {
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  Frame& f = shard.frames[slot];
  f.pins--;
  if (f.pins == 0 && !f.in_lru) {
    shard.lru.push_back(slot);  // most-recently used at the back
    f.lru_it = std::prev(shard.lru.end());
    f.in_lru = true;
  }
}

void BufferCache::MarkDirtySlot(size_t shard_idx, size_t slot) {
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.frames[slot].dirty = true;
}

Result<size_t> BufferCache::GrabFrameLocked(Shard& shard) {
  if (shard.lru.empty()) {
    return Status::ResourceExhausted("buffer cache: all frames pinned");
  }
  size_t slot = shard.lru.front();
  shard.lru.pop_front();
  Frame& f = shard.frames[slot];
  f.in_lru = false;
  if (f.used) {
    shard.evictions++;
    shard.m_evictions->Add(1);
    if (f.dirty) {
      AX_RETURN_NOT_OK(WriteBackLocked(f));
      shard.writebacks++;
      shard.m_writebacks->Add(1);
      f.dirty = false;
    }
    shard.page_map.erase(Key(f.file, f.page));
    f.used = false;
    f.file_entry.reset();
  }
  return slot;
}

Status BufferCache::WriteBackLocked(Frame& f) {
  if (!f.file_entry) {
    return Status::Internal("dirty frame for unregistered file");
  }
  return f.file_entry->file->WriteAt(static_cast<uint64_t>(f.page) * kPageSize,
                                     kPageSize, f.data.get());
}

}  // namespace asterix::storage
