// Immutable on-disk R-tree built by STR (Sort-Tile-Recursive) bulk load;
// the disk-component structure of the LSM R-tree (paper §III item 8 and the
// §V-B spatial index study). Supports the paper's point-data optimization:
// in point mode, leaf entries store a 16-byte point instead of a 32-byte
// degenerate rectangle ("not storing them as infinitely small bounding
// boxes in the index leaves").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"
#include "storage/buffer_cache.h"

namespace asterix::storage {

/// One spatial entry: an MBR (degenerate for points) plus an opaque payload
/// (typically the encoded primary key).
struct SpatialEntry {
  adm::Rectangle mbr;
  std::string payload;
};

/// Metadata stored in the R-tree footer page.
struct RTreeMeta {
  PageNo root = 0;
  uint32_t height = 0;
  uint64_t entry_count = 0;
  PageNo page_count = 0;
  bool point_mode = false;
};

/// Bulk loader. Collects entries in memory, then STR-packs them on Finish.
/// (LSM flushes and merges bound the in-memory set by the component size.)
class RTreeBuilder {
 public:
  /// `point_mode` enables the compact point leaf format; adding a non-point
  /// entry (mbr.lo != mbr.hi) in point mode is an error.
  static Result<std::unique_ptr<RTreeBuilder>> Create(const std::string& path,
                                                      bool point_mode);
  ~RTreeBuilder();

  Status Add(const adm::Rectangle& mbr, const std::string& payload);
  Result<RTreeMeta> Finish();

 private:
  RTreeBuilder(std::unique_ptr<File> file, bool point_mode);
  Result<PageNo> WritePage(const std::string& payload);

  std::unique_ptr<File> file_;
  bool point_mode_;
  std::vector<SpatialEntry> entries_;
  PageNo next_page_ = 0;
  bool finished_ = false;
};

/// Read-only R-tree served through the buffer cache.
class RTree {
 public:
  static Result<std::unique_ptr<RTree>> Open(const std::string& path,
                                             BufferCache* cache);
  ~RTree();

  /// Invoke `fn` for every entry whose MBR intersects `query`.
  /// Stops early (returning OK) if `fn` returns false.
  Status Search(const adm::Rectangle& query,
                const std::function<bool(const adm::Rectangle&,
                                         const std::string&)>& fn) const;

  /// Collect matching payloads (convenience over Search).
  Result<std::vector<SpatialEntry>> SearchCollect(
      const adm::Rectangle& query) const;

  const RTreeMeta& meta() const { return meta_; }
  uint64_t entry_count() const { return meta_.entry_count; }

 private:
  RTree(std::string path, BufferCache* cache, FileId file, RTreeMeta meta)
      : path_(std::move(path)), cache_(cache), file_(file), meta_(meta) {}
  Status SearchPage(PageNo page_no, uint32_t level, const adm::Rectangle& query,
                    const std::function<bool(const adm::Rectangle&,
                                             const std::string&)>& fn,
                    bool* keep_going) const;

  std::string path_;
  BufferCache* cache_;
  FileId file_;
  FileRef fref_;  // registry-free pin path
  RTreeMeta meta_;
};

}  // namespace asterix::storage
