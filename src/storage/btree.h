// Immutable on-disk B+tree, the disk-component building block of every
// LSM index in asterix-lite (paper §III: "partitions of LSM-based B+ trees").
// Built once by sorted bulk load (BTreeBuilder), then read through the
// shared buffer cache. Keys and values are byte strings; key order is
// memcmp order (callers encode keys with adm::EncodeKey).
//
// File layout: leaf pages (chained), overflow pages for large values,
// interior pages, then a footer page with the tree metadata.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/buffer_cache.h"

namespace asterix::storage {

/// Metadata stored in the footer page.
struct BTreeMeta {
  PageNo root = 0;
  uint32_t height = 0;       // 1 = root is a leaf
  uint64_t entry_count = 0;
  PageNo first_leaf = 0;
  PageNo page_count = 0;
  std::string min_key;
  std::string max_key;
};

/// Streaming bulk loader. Keys must be added in non-decreasing order.
class BTreeBuilder {
 public:
  /// Start building at `path` (truncates any existing file).
  static Result<std::unique_ptr<BTreeBuilder>> Create(const std::string& path);
  ~BTreeBuilder();

  /// Append an entry; `key` must be >= all previously added keys.
  Status Add(const std::string& key, const std::string& value);
  /// Write interior levels + footer; returns the final metadata.
  Result<BTreeMeta> Finish();

  uint64_t entry_count() const { return count_; }

 private:
  explicit BTreeBuilder(std::unique_ptr<File> file);
  Status FlushLeaf();
  Result<PageNo> WritePage(const std::string& payload);

  std::unique_ptr<File> file_;
  std::string leaf_buf_;                // packed entries of the current leaf
  std::vector<uint16_t> leaf_slots_;    // entry offsets within leaf_buf_
  std::string leaf_first_key_;
  std::vector<std::pair<std::string, PageNo>> level0_;  // (first key, leaf)
  PageNo next_page_ = 0;
  PageNo first_leaf_ = 0;
  uint64_t count_ = 0;
  std::string last_key_;
  std::string min_key_, max_key_;
  bool finished_ = false;
};

/// Read-only view of a built B+tree, served through a BufferCache.
class BTree {
 public:
  /// Open the tree at `path`, registering it with `cache`.
  static Result<std::unique_ptr<BTree>> Open(const std::string& path,
                                             BufferCache* cache);
  ~BTree();

  /// Point lookup. Returns true and fills `*value` if found.
  Result<bool> Get(const std::string& key, std::string* value) const;

  /// Forward iterator over entries in key order. Holds a pin on the
  /// current leaf page so sequential scans touch the buffer cache once per
  /// page, not once per entry.
  class Iterator {
   public:
    /// Position at the first entry with key >= `key`.
    Status Seek(const std::string& key);
    Status SeekToFirst();
    bool Valid() const { return valid_; }
    Status Next();
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }

   private:
    friend class BTree;
    explicit Iterator(const BTree* tree) : tree_(tree) {}
    Status PinLeaf(PageNo leaf);
    Status LoadEntry();
    const BTree* tree_;
    PageNo leaf_ = 0;
    uint16_t slot_ = 0;
    bool valid_ = false;
    PageHandle page_;  // pinned current leaf
    std::string key_, value_;
  };

  Iterator NewIterator() const { return Iterator(this); }

  const BTreeMeta& meta() const { return meta_; }
  uint64_t entry_count() const { return meta_.entry_count; }
  const std::string& path() const { return path_; }

 private:
  BTree(std::string path, BufferCache* cache, FileId file, BTreeMeta meta)
      : path_(std::move(path)), cache_(cache), file_(file), meta_(meta) {}

  /// Descend from the root to the leaf that may contain `key`.
  Result<PageNo> FindLeaf(const std::string& key) const;
  /// Read the full value of entry `slot` on leaf `leaf` (follows overflow).
  Status ReadEntry(PageNo leaf, uint16_t slot, std::string* key,
                   std::string* value) const;

  std::string path_;
  BufferCache* cache_;
  FileId file_;
  FileRef fref_;  // registry-free pin path
  BTreeMeta meta_;
};

}  // namespace asterix::storage
