#include "storage/spatial_index.h"

#include <cstring>

#include "adm/key_encoder.h"
#include "storage/lsm_btree.h"
#include "storage/lsm_rtree.h"

namespace asterix::storage {

const char* SpatialIndexKindName(SpatialIndexKind kind) {
  switch (kind) {
    case SpatialIndexKind::kRTree: return "rtree";
    case SpatialIndexKind::kHilbertBTree: return "hilbert-btree";
    case SpatialIndexKind::kZOrderBTree: return "zorder-btree";
    case SpatialIndexKind::kGrid: return "grid";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// LSM R-tree adapter
// ---------------------------------------------------------------------------
class RTreeSpatialIndex : public SpatialIndex {
 public:
  static Result<std::unique_ptr<RTreeSpatialIndex>> Make(
      const SpatialIndexOptions& options) {
    LsmRTreeOptions o;
    o.dir = options.dir;
    o.name = options.name;
    o.cache = options.cache;
    o.mem_budget_bytes = options.mem_budget_bytes;
    o.point_mode = options.rtree_point_mode;
    o.scheduler = options.scheduler;
    AX_ASSIGN_OR_RETURN(auto tree, LsmRTree::Open(o));
    auto idx = std::make_unique<RTreeSpatialIndex>();
    idx->tree_ = std::move(tree);
    return idx;
  }

  Status Insert(const adm::Point& pt, const std::string& payload) override {
    return tree_->Insert(adm::Rectangle{pt, pt}, payload);
  }
  Status Remove(const adm::Point& pt, const std::string& payload) override {
    return tree_->Remove(adm::Rectangle{pt, pt}, payload);
  }
  Result<std::vector<std::string>> Query(
      const adm::Rectangle& query) const override {
    AX_ASSIGN_OR_RETURN(auto entries, tree_->Query(query));
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (auto& e : entries) out.push_back(std::move(e.payload));
    return out;
  }
  Status Flush() override { return tree_->Flush(); }
  Status ForceFullMerge() override { return tree_->ForceFullMerge(); }
  SpatialIndexStats stats() const override {
    auto s = tree_->stats();
    return SpatialIndexStats{s.disk_pages, s.disk_entries, s.disk_components};
  }
  SpatialIndexKind kind() const override { return SpatialIndexKind::kRTree; }

 private:
  std::unique_ptr<LsmRTree> tree_;
};

// ---------------------------------------------------------------------------
// Shared base for B+tree-backed spatial indexes (curve & grid): composite
// key = (int64 linear key, payload), value = raw 16-byte point for
// post-filtering.
// ---------------------------------------------------------------------------
class BTreeBackedSpatialIndex : public SpatialIndex {
 public:
  Status Insert(const adm::Point& pt, const std::string& payload) override {
    AX_ASSIGN_OR_RETURN(std::string key, MakeKey(pt, payload));
    std::string value(16, '\0');
    std::memcpy(value.data(), &pt.x, 8);
    std::memcpy(value.data() + 8, &pt.y, 8);
    return tree_->Put(key, value);
  }
  Status Remove(const adm::Point& pt, const std::string& payload) override {
    AX_ASSIGN_OR_RETURN(std::string key, MakeKey(pt, payload));
    return tree_->Delete(key);
  }
  Result<std::vector<std::string>> Query(
      const adm::Rectangle& query) const override {
    std::vector<std::string> out;
    for (const auto& [lo, hi] : LinearRanges(query)) {
      AX_ASSIGN_OR_RETURN(
          std::string lo_key,
          adm::EncodeKey(adm::Value::Int(static_cast<int64_t>(lo))));
      AX_ASSIGN_OR_RETURN(
          std::string hi_key,
          adm::EncodeKey(adm::Value::Int(static_cast<int64_t>(hi))));
      // hi bound: first key strictly greater than every (hi, *) composite.
      std::string hi_bound = hi_key + std::string(1, '\xff');
      AX_ASSIGN_OR_RETURN(auto it, tree_->NewIterator());
      AX_RETURN_NOT_OK(it.Seek(lo_key));
      while (it.Valid() && it.key() <= hi_bound) {
        const std::string& v = it.value();
        if (v.size() == 16) {
          adm::Point pt;
          std::memcpy(&pt.x, v.data(), 8);
          std::memcpy(&pt.y, v.data() + 8, 8);
          if (query.Contains(pt)) {
            AX_ASSIGN_OR_RETURN(auto parts, adm::DecodeKey(it.key()));
            if (parts.size() == 2 && parts[1].is_string()) {
              out.push_back(parts[1].AsString());
            }
          }
        }
        AX_RETURN_NOT_OK(it.Next());
      }
    }
    return out;
  }
  Status Flush() override { return tree_->Flush(); }
  Status ForceFullMerge() override { return tree_->ForceFullMerge(); }
  SpatialIndexStats stats() const override {
    auto s = tree_->stats();
    return SpatialIndexStats{s.disk_bytes / kPageSize, s.disk_entries,
                             s.disk_components};
  }

 protected:
  virtual uint64_t LinearKey(const adm::Point& pt) const = 0;
  virtual std::vector<std::pair<uint64_t, uint64_t>> LinearRanges(
      const adm::Rectangle& query) const = 0;

  Result<std::string> MakeKey(const adm::Point& pt,
                              const std::string& payload) const {
    return adm::EncodeKey(
        {adm::Value::Int(static_cast<int64_t>(LinearKey(pt))),
         adm::Value::String(payload)});
  }

  Status InitTree(const SpatialIndexOptions& options) {
    LsmOptions o;
    o.dir = options.dir;
    o.name = options.name;
    o.cache = options.cache;
    o.mem_budget_bytes = options.mem_budget_bytes;
    o.scheduler = options.scheduler;
    AX_ASSIGN_OR_RETURN(tree_, LsmBTree::Open(o));
    return Status::OK();
  }

  std::unique_ptr<LsmBTree> tree_;
};

class CurveSpatialIndex : public BTreeBackedSpatialIndex {
 public:
  static Result<std::unique_ptr<CurveSpatialIndex>> Make(
      const SpatialIndexOptions& options, CurveKind curve_kind) {
    auto idx = std::make_unique<CurveSpatialIndex>(curve_kind, options.world);
    AX_RETURN_NOT_OK(idx->InitTree(options));
    return idx;
  }
  CurveSpatialIndex(CurveKind curve_kind, const adm::Rectangle& world)
      : curve_(curve_kind, world) {}

  SpatialIndexKind kind() const override {
    return curve_.kind() == CurveKind::kHilbert
               ? SpatialIndexKind::kHilbertBTree
               : SpatialIndexKind::kZOrderBTree;
  }

 protected:
  uint64_t LinearKey(const adm::Point& pt) const override {
    return curve_.Encode(pt);
  }
  std::vector<std::pair<uint64_t, uint64_t>> LinearRanges(
      const adm::Rectangle& query) const override {
    return curve_.CoverRanges(query);
  }

 private:
  SpaceFillingCurve curve_;
};

class GridSpatialIndex : public BTreeBackedSpatialIndex {
 public:
  static Result<std::unique_ptr<GridSpatialIndex>> Make(
      const SpatialIndexOptions& options) {
    auto idx =
        std::make_unique<GridSpatialIndex>(options.world, options.grid_cells);
    AX_RETURN_NOT_OK(idx->InitTree(options));
    return idx;
  }
  GridSpatialIndex(const adm::Rectangle& world, uint32_t cells)
      : world_(world), cells_(cells == 0 ? 1 : cells) {}

  SpatialIndexKind kind() const override { return SpatialIndexKind::kGrid; }

 protected:
  uint64_t LinearKey(const adm::Point& pt) const override {
    auto [gx, gy] = CellOf(pt);
    return static_cast<uint64_t>(gy) * cells_ + gx;
  }
  std::vector<std::pair<uint64_t, uint64_t>> LinearRanges(
      const adm::Rectangle& query) const override {
    auto [gx_lo, gy_lo] = CellOf(query.lo);
    auto [gx_hi, gy_hi] = CellOf(query.hi);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (uint32_t gy = gy_lo; gy <= gy_hi; gy++) {
      // Each grid row touched by the query is one contiguous key range.
      out.emplace_back(static_cast<uint64_t>(gy) * cells_ + gx_lo,
                       static_cast<uint64_t>(gy) * cells_ + gx_hi);
    }
    return out;
  }

 private:
  std::pair<uint32_t, uint32_t> CellOf(const adm::Point& pt) const {
    double w = world_.hi.x - world_.lo.x;
    double h = world_.hi.y - world_.lo.y;
    double fx = w > 0 ? (pt.x - world_.lo.x) / w : 0;
    double fy = h > 0 ? (pt.y - world_.lo.y) / h : 0;
    fx = fx < 0 ? 0 : (fx > 1 ? 1 : fx);
    fy = fy < 0 ? 0 : (fy > 1 ? 1 : fy);
    uint32_t gx = std::min(static_cast<uint32_t>(fx * cells_), cells_ - 1);
    uint32_t gy = std::min(static_cast<uint32_t>(fy * cells_), cells_ - 1);
    return {gx, gy};
  }

  adm::Rectangle world_;
  uint32_t cells_;
};

}  // namespace

Result<std::unique_ptr<SpatialIndex>> SpatialIndex::Create(
    const SpatialIndexOptions& options) {
  if (options.cache == nullptr) {
    return Status::InvalidArgument("SpatialIndexOptions.cache is required");
  }
  switch (options.kind) {
    case SpatialIndexKind::kRTree: {
      AX_ASSIGN_OR_RETURN(auto idx, RTreeSpatialIndex::Make(options));
      return std::unique_ptr<SpatialIndex>(std::move(idx));
    }
    case SpatialIndexKind::kHilbertBTree: {
      AX_ASSIGN_OR_RETURN(auto idx,
                          CurveSpatialIndex::Make(options, CurveKind::kHilbert));
      return std::unique_ptr<SpatialIndex>(std::move(idx));
    }
    case SpatialIndexKind::kZOrderBTree: {
      AX_ASSIGN_OR_RETURN(auto idx,
                          CurveSpatialIndex::Make(options, CurveKind::kZOrder));
      return std::unique_ptr<SpatialIndex>(std::move(idx));
    }
    case SpatialIndexKind::kGrid: {
      AX_ASSIGN_OR_RETURN(auto idx, GridSpatialIndex::Make(options));
      return std::unique_ptr<SpatialIndex>(std::move(idx));
    }
  }
  return Status::InvalidArgument("unknown spatial index kind");
}

}  // namespace asterix::storage
