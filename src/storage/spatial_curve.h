// Space-filling curves for linearized spatial indexing (paper §V-B: the
// "LSM-based B-trees on transformed spatial keys" alternative that senior
// researchers urged over R-trees). Points are quantized to a 2^16 x 2^16
// grid over a configured world box, then mapped to a 32-bit curve value by
// Z-order (bit interleaving) or Hilbert order. Rectangle queries decompose
// into a bounded set of contiguous curve ranges via quadtree descent.
#pragma once

#include <cstdint>
#include <vector>

#include "adm/value.h"

namespace asterix::storage {

enum class CurveKind { kZOrder, kHilbert };

/// Curve resolution: 16 bits per dimension.
constexpr int kCurveOrder = 16;

/// Maps points in a fixed world rectangle onto curve values.
class SpaceFillingCurve {
 public:
  SpaceFillingCurve(CurveKind kind, const adm::Rectangle& world)
      : kind_(kind), world_(world) {}

  /// Curve value of a point (points outside the world box are clamped).
  uint64_t Encode(const adm::Point& p) const;

  /// Contiguous curve ranges [lo, hi] that together cover `query`.
  /// At most `max_ranges` ranges are returned; coarser cells are used when
  /// the budget is hit, so ranges may cover extra area (callers re-filter
  /// candidate points against the query rectangle).
  std::vector<std::pair<uint64_t, uint64_t>> CoverRanges(
      const adm::Rectangle& query, size_t max_ranges = 256) const;

  CurveKind kind() const { return kind_; }

  /// Curve index of the quadtree cell (cx, cy) at `depth` (cell coordinates
  /// range over [0, 2^depth)). Exposed for tests.
  static uint64_t CellIndex(CurveKind kind, uint32_t cx, uint32_t cy,
                            int depth);

 private:
  void Quantize(const adm::Point& p, uint32_t* qx, uint32_t* qy) const;
  CurveKind kind_;
  adm::Rectangle world_;
};

}  // namespace asterix::storage
