// Bloom filters attached to LSM disk components so point lookups can skip
// components that cannot contain a key (paper §III: LSM-based storage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace asterix::storage {

/// Standard Bloom filter over byte-string keys. Built once (bulk) per LSM
/// disk component; serialized into the component's files.
class BloomFilter {
 public:
  /// Build an empty filter sized for `expected_keys` at ~`bits_per_key`.
  BloomFilter(size_t expected_keys, int bits_per_key = 10);
  BloomFilter() : BloomFilter(1) {}

  void Add(const std::string& key);
  /// False means definitely absent; true means possibly present.
  bool MayContain(const std::string& key) const;

  /// Serialize to a byte buffer / restore from one.
  std::string Serialize() const;
  static Result<BloomFilter> Deserialize(const std::string& data);

  size_t bit_count() const { return bit_count_; }
  int num_hashes() const { return num_hashes_; }

 private:
  uint64_t NthHash(uint64_t h1, uint64_t h2, int i) const;
  size_t bit_count_;
  int num_hashes_;
  std::vector<uint8_t> bits_;
};

}  // namespace asterix::storage
