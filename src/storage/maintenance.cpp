#include "storage/maintenance.h"

#include <memory>
#include <utility>

#include "common/metrics.h"

namespace asterix::storage {

namespace {
metrics::Counter* MaintenanceTasksCounter() {
  static metrics::Counter* c =
      metrics::Registry::Global().GetCounter("storage.maintenance.tasks_run");
  return c;
}
}  // namespace

MaintenanceScheduler::MaintenanceScheduler(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MaintenanceScheduler::~MaintenanceScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;  // workers drain the remaining queue before exiting
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void MaintenanceScheduler::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void MaintenanceScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Explicit wait loop (not a predicate lambda) so thread-safety analysis
  // sees the guarded accesses under the lock.
  while (!queue_.empty() || running_ > 0) idle_cv_.wait(lock);
}

Status MaintenanceScheduler::RunBatch(
    std::vector<std::function<Status()>> jobs) {
  if (jobs.empty()) return Status::OK();
  // Jobs may outlive an early-erroring caller only in theory — we always
  // wait for all of them, so the shared state cannot dangle.
  struct BatchState {
    std::mutex m;
    std::condition_variable cv;
    size_t done = 0;
    Status first_error;
  };
  auto state = std::make_shared<BatchState>();
  const size_t total = jobs.size();
  for (auto& job : jobs) {
    Submit([state, job = std::move(job)] {
      Status s = job();
      std::lock_guard<std::mutex> lock(state->m);
      if (!s.ok() && state->first_error.ok()) state->first_error = std::move(s);
      state->done++;
      state->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->m);
  while (state->done < total) state->cv.wait(lock);
  return state->first_error;
}

void MaintenanceScheduler::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      running_++;
    }
    task();
    MaintenanceTasksCounter()->Add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_--;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace asterix::storage
