#include "storage/columnar.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "adm/serde.h"

namespace asterix::storage {

namespace {

constexpr char kMagic[8] = {'A', 'X', 'C', 'O', 'L', '0', '0', '1'};

bool FixedEligible(adm::TypeTag tag) {
  switch (tag) {
    case adm::TypeTag::kBoolean:
    case adm::TypeTag::kInt64:
    case adm::TypeTag::kDouble:
    case adm::TypeTag::kDate:
    case adm::TypeTag::kTime:
    case adm::TypeTag::kDatetime:
    case adm::TypeTag::kDuration:
      return true;
    default:
      return false;
  }
}

int64_t FixedPayloadOf(const adm::Value& v) {
  switch (v.tag()) {
    case adm::TypeTag::kBoolean:
      return v.AsBool() ? 1 : 0;
    case adm::TypeTag::kDouble: {
      int64_t out;
      double d = v.AsDoubleExact();
      std::memcpy(&out, &d, sizeof(out));
      return out;
    }
    default:
      return v.AsInt();  // kInt64 and temporals share the i64 payload
  }
}

Result<adm::Value> FixedToValue(adm::TypeTag tag, int64_t payload) {
  switch (tag) {
    case adm::TypeTag::kBoolean:
      return adm::Value::Boolean(payload != 0);
    case adm::TypeTag::kInt64:
      return adm::Value::Int(payload);
    case adm::TypeTag::kDouble: {
      double d;
      std::memcpy(&d, &payload, sizeof(d));
      return adm::Value::Double(d);
    }
    case adm::TypeTag::kDate:
      return adm::Value::Date(payload);
    case adm::TypeTag::kTime:
      return adm::Value::Time(payload);
    case adm::TypeTag::kDatetime:
      return adm::Value::Datetime(payload);
    case adm::TypeTag::kDuration:
      return adm::Value::Duration(payload);
    default:
      return Status::Corruption("columnar fixed column with non-scalar tag");
  }
}

void SetBit(std::vector<uint8_t>* bm, uint64_t row) {
  (*bm)[row >> 3] |= static_cast<uint8_t>(1u << (row & 7));
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(buf));
  out->append(buf, sizeof(buf));
}

}  // namespace

int64_t ColumnData::FixedPayload(uint64_t row) const {
  int64_t out;
  std::memcpy(&out, fixed.data() + row * 8, sizeof(out));
  return out;
}

Result<adm::Value> ColumnData::ValueAt(uint64_t row) const {
  if (IsMissing(row)) return adm::Value::Missing();
  if (IsNull(row)) return adm::Value::Null();
  switch (kind) {
    case ColumnKind::kFixed:
      return FixedToValue(tag, FixedPayload(row));
    case ColumnKind::kString:
      return adm::Value::String(std::string(Slice(row)));
    case ColumnKind::kVariant:
      return adm::Deserialize(std::string(Slice(row)));
  }
  return Status::Corruption("columnar column with unknown kind");
}

bool RecordIsColumnar(const adm::Value& record) {
  if (!record.is_object()) return false;
  for (const auto& [name, v] : record.fields()) {
    if (v.is_missing()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ColumnarComponentWriter::ColumnarComponentWriter(std::string path)
    : path_(std::move(path)) {}

void ColumnarComponentWriter::Add(std::string key, bool antimatter,
                                  adm::Value record) {
  rows_.push_back(Row{std::move(key), antimatter, std::move(record)});
}

Result<ColumnarComponentWriter::WriteResult> ColumnarComponentWriter::Finish() {
  const uint64_t rows = rows_.size();
  const uint64_t bm_len = (rows + 7) / 8;

  // Schema inference (tuple-compaction style): one column per top-level
  // field name seen in any live record; the physical kind is the narrowest
  // layout every non-null value of the column fits.
  struct Inferred {
    bool saw_value = false;  // any non-null occurrence
    bool mixed = false;
    adm::TypeTag tag = adm::TypeTag::kMissing;
  };
  std::map<std::string, Inferred> inferred;
  for (const Row& r : rows_) {
    if (r.antimatter) continue;
    for (const auto& [name, v] : r.record.fields()) {
      Inferred& inf = inferred[name];
      if (v.is_null()) continue;
      if (!inf.saw_value) {
        inf.saw_value = true;
        inf.tag = v.tag();
      } else if (inf.tag != v.tag()) {
        inf.mixed = true;
      }
    }
  }

  AX_ASSIGN_OR_RETURN(auto file, File::Create(path_));

  // Keys section + antimatter bitmap.
  std::string keys_sec;
  std::vector<uint8_t> anti(bm_len, 0);
  for (uint64_t i = 0; i < rows; i++) {
    adm::PutVarint(rows_[i].key.size(), &keys_sec);
    keys_sec += rows_[i].key;
    if (rows_[i].antimatter) SetBit(&anti, i);
  }
  AX_ASSIGN_OR_RETURN(uint64_t keys_off,
                      file->Append(keys_sec.size(), keys_sec.data()));
  uint64_t anti_off = file->size();
  if (bm_len > 0) {
    AX_ASSIGN_OR_RETURN(anti_off, file->Append(anti.size(), anti.data()));
  }

  // Column sections.
  std::vector<ColumnInfo> dir;
  for (const auto& [name, inf] : inferred) {
    ColumnInfo info;
    info.name = name;
    if (inf.saw_value && !inf.mixed && FixedEligible(inf.tag)) {
      info.kind = ColumnKind::kFixed;
      info.tag = inf.tag;
    } else if (inf.saw_value && !inf.mixed &&
               inf.tag == adm::TypeTag::kString) {
      info.kind = ColumnKind::kString;
      info.tag = adm::TypeTag::kString;
    } else {
      info.kind = ColumnKind::kVariant;
    }

    std::vector<uint8_t> null_bm(bm_len, 0), missing_bm(bm_len, 0);
    std::string data, heap;
    uint32_t heap_used = 0;
    for (uint64_t i = 0; i < rows; i++) {
      const Row& r = rows_[i];
      const adm::Value* v = nullptr;
      if (!r.antimatter) {
        const adm::Value& f = r.record.GetField(name);
        if (!f.is_missing()) v = &f;
      }
      if (v == nullptr) {
        SetBit(&missing_bm, i);
      } else if (v->is_null()) {
        SetBit(&null_bm, i);
      }
      bool present = v != nullptr && !v->is_null();
      switch (info.kind) {
        case ColumnKind::kFixed: {
          int64_t payload = present ? FixedPayloadOf(*v) : 0;
          char buf[8];
          std::memcpy(buf, &payload, sizeof(buf));
          data.append(buf, sizeof(buf));
          break;
        }
        case ColumnKind::kString:
          PutU32(heap_used, &data);
          if (present) {
            heap += v->AsString();
            heap_used += static_cast<uint32_t>(v->AsString().size());
          }
          break;
        case ColumnKind::kVariant:
          PutU32(heap_used, &data);
          if (present) {
            size_t before = heap.size();
            adm::SerializeValue(*v, &heap);
            heap_used += static_cast<uint32_t>(heap.size() - before);
          }
          break;
      }
    }
    if (info.kind != ColumnKind::kFixed) PutU32(heap_used, &data);

    info.null_len = null_bm.size();
    info.missing_len = missing_bm.size();
    info.null_off = file->size();
    if (!null_bm.empty()) {
      AX_ASSIGN_OR_RETURN(info.null_off,
                          file->Append(null_bm.size(), null_bm.data()));
    }
    info.missing_off = file->size();
    if (!missing_bm.empty()) {
      AX_ASSIGN_OR_RETURN(info.missing_off,
                          file->Append(missing_bm.size(), missing_bm.data()));
    }
    info.data_len = data.size();
    info.data_off = file->size();
    if (!data.empty()) {
      AX_ASSIGN_OR_RETURN(info.data_off, file->Append(data.size(), data.data()));
    }
    info.heap_len = heap.size();
    info.heap_off = file->size();
    if (!heap.empty()) {
      AX_ASSIGN_OR_RETURN(info.heap_off, file->Append(heap.size(), heap.data()));
    }
    dir.push_back(std::move(info));
  }

  // Footer: row count, key/antimatter extents, then the column directory.
  std::string footer;
  adm::PutVarint(rows, &footer);
  adm::PutVarint(keys_off, &footer);
  adm::PutVarint(keys_sec.size(), &footer);
  adm::PutVarint(anti_off, &footer);
  adm::PutVarint(bm_len, &footer);
  adm::PutVarint(dir.size(), &footer);
  for (const ColumnInfo& c : dir) {
    adm::PutVarint(c.name.size(), &footer);
    footer += c.name;
    footer.push_back(static_cast<char>(c.kind));
    footer.push_back(static_cast<char>(c.tag));
    adm::PutVarint(c.null_off, &footer);
    adm::PutVarint(c.null_len, &footer);
    adm::PutVarint(c.missing_off, &footer);
    adm::PutVarint(c.missing_len, &footer);
    adm::PutVarint(c.data_off, &footer);
    adm::PutVarint(c.data_len, &footer);
    adm::PutVarint(c.heap_off, &footer);
    adm::PutVarint(c.heap_len, &footer);
  }
  AX_ASSIGN_OR_RETURN(uint64_t footer_off,
                      file->Append(footer.size(), footer.data()));
  (void)footer_off;
  std::string tail;
  PutU32(static_cast<uint32_t>(footer.size()), &tail);
  tail.append(kMagic, sizeof(kMagic));
  AX_ASSIGN_OR_RETURN(uint64_t tail_off, file->Append(tail.size(), tail.data()));
  (void)tail_off;
  AX_RETURN_NOT_OK(file->Sync());

  WriteResult out;
  out.rows = rows;
  out.columns = dir.size();
  out.file_bytes = file->size();
  return out;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ColumnarReader>> ColumnarReader::Open(
    const std::string& path) {
  auto reader = std::unique_ptr<ColumnarReader>(new ColumnarReader());
  AX_ASSIGN_OR_RETURN(reader->file_, File::Open(path));
  const File& f = *reader->file_;
  if (f.size() < sizeof(kMagic) + 4) {
    return Status::Corruption("columnar component too small: " + path);
  }
  char magic[sizeof(kMagic)];
  AX_RETURN_NOT_OK(f.ReadAt(f.size() - sizeof(kMagic), sizeof(magic), magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad columnar magic in " + path);
  }
  uint32_t footer_len = 0;
  AX_RETURN_NOT_OK(
      f.ReadAt(f.size() - sizeof(kMagic) - 4, sizeof(footer_len), &footer_len));
  if (footer_len + sizeof(kMagic) + 4 > f.size()) {
    return Status::Corruption("bad columnar footer length in " + path);
  }
  std::string footer(footer_len, '\0');
  AX_RETURN_NOT_OK(f.ReadAt(f.size() - sizeof(kMagic) - 4 - footer_len,
                            footer_len, footer.data()));

  size_t pos = 0;
  AX_ASSIGN_OR_RETURN(uint64_t rows, adm::GetVarint(footer, &pos));
  AX_ASSIGN_OR_RETURN(uint64_t keys_off, adm::GetVarint(footer, &pos));
  AX_ASSIGN_OR_RETURN(uint64_t keys_len, adm::GetVarint(footer, &pos));
  AX_ASSIGN_OR_RETURN(uint64_t anti_off, adm::GetVarint(footer, &pos));
  AX_ASSIGN_OR_RETURN(uint64_t anti_len, adm::GetVarint(footer, &pos));
  AX_ASSIGN_OR_RETURN(uint64_t ncols, adm::GetVarint(footer, &pos));
  for (uint64_t c = 0; c < ncols; c++) {
    ColumnInfo info;
    AX_ASSIGN_OR_RETURN(uint64_t name_len, adm::GetVarint(footer, &pos));
    if (pos + name_len + 2 > footer.size()) {
      return Status::Corruption("truncated columnar directory in " + path);
    }
    info.name = footer.substr(pos, name_len);
    pos += name_len;
    info.kind = static_cast<ColumnKind>(footer[pos++]);
    info.tag = static_cast<adm::TypeTag>(footer[pos++]);
    AX_ASSIGN_OR_RETURN(info.null_off, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.null_len, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.missing_off, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.missing_len, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.data_off, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.data_len, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.heap_off, adm::GetVarint(footer, &pos));
    AX_ASSIGN_OR_RETURN(info.heap_len, adm::GetVarint(footer, &pos));
    reader->columns_.push_back(std::move(info));
  }

  // Keys (eager: point lookups and merges binary-search / iterate them).
  std::string keys_sec(keys_len, '\0');
  if (keys_len > 0) {
    AX_RETURN_NOT_OK(f.ReadAt(keys_off, keys_len, keys_sec.data()));
  }
  reader->keys_.reserve(rows);
  size_t kpos = 0;
  for (uint64_t i = 0; i < rows; i++) {
    AX_ASSIGN_OR_RETURN(uint64_t klen, adm::GetVarint(keys_sec, &kpos));
    if (kpos + klen > keys_sec.size()) {
      return Status::Corruption("truncated columnar key section in " + path);
    }
    reader->keys_.push_back(keys_sec.substr(kpos, klen));
    kpos += klen;
  }
  reader->anti_bm_.resize(anti_len, 0);
  if (anti_len > 0) {
    AX_RETURN_NOT_OK(f.ReadAt(anti_off, anti_len, reader->anti_bm_.data()));
  }
  return reader;
}

uint64_t ColumnarReader::LowerBound(const std::string& key) const {
  return static_cast<uint64_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
}

int ColumnarReader::FindColumn(const std::string& name) const {
  auto it = std::lower_bound(
      columns_.begin(), columns_.end(), name,
      [](const ColumnInfo& c, const std::string& n) { return c.name < n; });
  if (it == columns_.end() || it->name != name) return -1;
  return static_cast<int>(it - columns_.begin());
}

Result<ColumnData> ColumnarReader::ReadColumn(size_t c) const {
  const ColumnInfo& info = columns_[c];
  ColumnData out;
  out.kind = info.kind;
  out.tag = info.tag;
  out.rows = row_count();
  out.null_bm.resize(info.null_len, 0);
  if (info.null_len > 0) {
    AX_RETURN_NOT_OK(
        file_->ReadAt(info.null_off, info.null_len, out.null_bm.data()));
  }
  out.missing_bm.resize(info.missing_len, 0);
  if (info.missing_len > 0) {
    AX_RETURN_NOT_OK(file_->ReadAt(info.missing_off, info.missing_len,
                                   out.missing_bm.data()));
  }
  if (info.kind == ColumnKind::kFixed) {
    if (info.data_len != out.rows * 8) {
      return Status::Corruption("bad fixed column extent in " + path());
    }
    out.fixed.resize(info.data_len, '\0');
    if (info.data_len > 0) {
      AX_RETURN_NOT_OK(
          file_->ReadAt(info.data_off, info.data_len, out.fixed.data()));
    }
    return out;
  }
  if (info.data_len != (out.rows + 1) * 4) {
    return Status::Corruption("bad column offset extent in " + path());
  }
  out.offsets.resize(out.rows + 1, 0);
  AX_RETURN_NOT_OK(
      file_->ReadAt(info.data_off, info.data_len, out.offsets.data()));
  out.heap.resize(info.heap_len, '\0');
  if (info.heap_len > 0) {
    AX_RETURN_NOT_OK(file_->ReadAt(info.heap_off, info.heap_len,
                                   out.heap.data()));
  }
  return out;
}

Result<std::vector<ColumnData>> ColumnarReader::ReadAllColumns() const {
  std::vector<ColumnData> out;
  out.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); c++) {
    AX_ASSIGN_OR_RETURN(ColumnData data, ReadColumn(c));
    out.push_back(std::move(data));
  }
  return out;
}

Result<adm::Value> ColumnarReader::MaterializeRow(
    const std::vector<ColumnData>& cols, uint64_t row) const {
  adm::FieldVec fields;
  for (size_t c = 0; c < cols.size(); c++) {
    if (cols[c].IsMissing(row)) continue;
    AX_ASSIGN_OR_RETURN(adm::Value v, cols[c].ValueAt(row));
    fields.emplace_back(columns_[c].name, std::move(v));
  }
  return adm::Value::Object(std::move(fields));
}

Result<adm::Value> ColumnarReader::ReadRecord(uint64_t row) const {
  adm::FieldVec fields;
  for (const ColumnInfo& info : columns_) {
    uint8_t byte = 0;
    AX_RETURN_NOT_OK(file_->ReadAt(info.missing_off + (row >> 3), 1, &byte));
    if ((byte >> (row & 7)) & 1) continue;  // absent from this row
    AX_RETURN_NOT_OK(file_->ReadAt(info.null_off + (row >> 3), 1, &byte));
    if ((byte >> (row & 7)) & 1) {
      fields.emplace_back(info.name, adm::Value::Null());
      continue;
    }
    if (info.kind == ColumnKind::kFixed) {
      int64_t payload = 0;
      AX_RETURN_NOT_OK(file_->ReadAt(info.data_off + row * 8, 8, &payload));
      AX_ASSIGN_OR_RETURN(adm::Value v, FixedToValue(info.tag, payload));
      fields.emplace_back(info.name, std::move(v));
      continue;
    }
    uint32_t bounds[2] = {0, 0};
    AX_RETURN_NOT_OK(file_->ReadAt(info.data_off + row * 4, 8, bounds));
    std::string payload(bounds[1] - bounds[0], '\0');
    if (!payload.empty()) {
      AX_RETURN_NOT_OK(
          file_->ReadAt(info.heap_off + bounds[0], payload.size(),
                        payload.data()));
    }
    if (info.kind == ColumnKind::kString) {
      fields.emplace_back(info.name, adm::Value::String(std::move(payload)));
    } else {
      AX_ASSIGN_OR_RETURN(adm::Value v, adm::Deserialize(payload));
      fields.emplace_back(info.name, std::move(v));
    }
  }
  return adm::Value::Object(std::move(fields));
}

}  // namespace asterix::storage
