// Buffer cache: fixed-size pool of page frames shared by every index on a
// node (paper Fig. 2 — "disk buffer cache"). LRU replacement, pin/unpin,
// write-back of dirty frames, and hit/miss statistics used by the
// benchmarks (bench_fig2_memory_management, bench_btree_vs_hash).
//
// The pool is latch-sharded: frames are divided across independent shards
// selected by (file, page) hash, so partition-parallel scans do not
// serialize on one mutex (small pools use a single shard to keep exact
// LRU semantics for tests and tiny configurations).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/io.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace asterix::storage {

/// All on-disk structures use fixed-size pages.
constexpr size_t kPageSize = 4096;

using FileId = uint32_t;
using PageNo = uint32_t;

class BufferCache;

/// Registry bookkeeping for one cached file (internal; exposed at
/// namespace scope only so FileRef can forward-declare it).
struct BufferCacheFileEntry {
  std::unique_ptr<File> file;
  std::atomic<PageNo> page_count{0};
  bool writable = false;
  // axlint: allow(lock-order): serializes an action (file growth), guards no data
  std::mutex grow_mu;  // serializes NewPage extensions
};

/// RAII pin on a cached page. Data is valid while the handle lives.
/// Call MarkDirty() after mutating the page contents. [[nodiscard]]
/// because dropping the handle unpins the page at once.
class [[nodiscard]] PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return cache_ != nullptr; }
  char* data() const { return data_; }
  void MarkDirty();

 private:
  friend class BufferCache;
  PageHandle(BufferCache* cache, size_t shard, size_t slot, char* data)
      : cache_(cache), shard_(shard), slot_(slot), data_(data) {}
  BufferCache* cache_ = nullptr;
  size_t shard_ = 0;
  size_t slot_ = 0;
  char* data_ = nullptr;
};

/// Cumulative cache statistics (aggregated over shards).
struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;      // page faults (disk reads through the cache)
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A stable reference to a registered file. Holding one lets readers pin
/// pages without touching the global file registry (one mutex acquisition
/// per pin would serialize partition-parallel scans). Obtain via
/// BufferCache::GetFileRef after RegisterFile; cheap to copy.
class FileRef {
 public:
  FileRef() = default;
  bool valid() const { return entry_ != nullptr; }
  FileId id() const { return id_; }

 private:
  friend class BufferCache;
  std::shared_ptr<struct BufferCacheFileEntry> entry_;
  FileId id_ = 0;
};

/// A pool of `num_frames` page buffers fronting a set of registered files.
/// Thread-safe. Pinned pages are never evicted; pinning more pages than a
/// shard's frames is a ResourceExhausted error (callers hold O(1) pins).
class BufferCache {
 public:
  /// `num_shards` = 0 picks automatically (1 for small pools, else 8).
  explicit BufferCache(size_t num_frames, size_t num_shards = 0);
  ~BufferCache();

  /// Register an on-disk file; its pages become readable via Pin().
  Result<FileId> RegisterFile(const std::string& path, bool writable = false);
  /// Drop a file from the cache (flushes dirty pages; invalidates frames).
  Status UnregisterFile(FileId id);

  /// Resolve a registry-free reference for hot-path pinning.
  Result<FileRef> GetFileRef(FileId file) const;

  /// Pin page `page_no` of `file`, faulting it in if needed.
  Result<PageHandle> Pin(FileId file, PageNo page_no);
  /// Registry-free pin (the hot path for scans and probes).
  Result<PageHandle> Pin(const FileRef& file, PageNo page_no);
  /// Allocate + pin a fresh zeroed page at the end of a writable file.
  Result<std::pair<PageNo, PageHandle>> NewPage(FileId file);
  Result<std::pair<PageNo, PageHandle>> NewPage(const FileRef& file);
  /// Write back all dirty pages of `file` and fsync it.
  Status FlushFile(FileId file);

  /// Number of pages currently in `file`.
  Result<PageNo> PageCount(FileId file) const;
  PageNo PageCount(const FileRef& file) const;

  BufferCacheStats stats() const;
  void ResetStats();
  size_t capacity() const { return capacity_; }

 private:
  friend class PageHandle;
  using FileEntry = BufferCacheFileEntry;
  using FileEntryPtr = std::shared_ptr<FileEntry>;

  struct Frame {
    FileId file = 0;
    PageNo page = 0;
    FileEntryPtr file_entry;  // keeps the fd alive for write-back
    bool used = false;
    bool dirty = false;
    int pins = 0;
    std::unique_ptr<char[]> data;
    std::list<size_t>::iterator lru_it;
    bool in_lru = false;
  };

  struct Shard {
    std::mutex mu;
    std::vector<Frame> frames AX_GUARDED_BY(mu);
    // Unpinned frames, least-recent first.
    std::list<size_t> lru AX_GUARDED_BY(mu);
    // (file,page) -> slot.
    std::unordered_map<uint64_t, size_t> page_map AX_GUARDED_BY(mu);
    uint64_t hits AX_GUARDED_BY(mu) = 0, misses AX_GUARDED_BY(mu) = 0,
             evictions AX_GUARDED_BY(mu) = 0, writebacks AX_GUARDED_BY(mu) = 0;
    // Registry mirrors (scope = "shard<i>"): lock-free, shared by every
    // BufferCache instance, feed the global metrics snapshot.
    metrics::Counter* m_hits = nullptr;
    metrics::Counter* m_misses = nullptr;
    metrics::Counter* m_evictions = nullptr;
    metrics::Counter* m_writebacks = nullptr;
  };

  size_t ShardOf(FileId file, PageNo page) const;
  Result<FileEntryPtr> LookupFile(FileId id) const AX_EXCLUDES(files_mu_);
  Result<PageHandle> PinInternal(const FileEntryPtr& entry, FileId file,
                                 PageNo page_no, bool fresh_zeroed);
  Result<std::pair<PageNo, PageHandle>> NewPageInternal(
      const FileEntryPtr& entry, FileId file);
  void Unpin(size_t shard, size_t slot);
  void MarkDirtySlot(size_t shard, size_t slot);
  // Finds a victim frame (evicting — and writing back — if necessary).
  Result<size_t> GrabFrameLocked(Shard& shard) AX_REQUIRES(shard.mu);
  // Caller holds the mutex of the shard owning `f` (inexpressible to the
  // analysis because Frame does not point back to its shard).
  Status WriteBackLocked(Frame& f);

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex files_mu_;
  std::unordered_map<FileId, FileEntryPtr> files_ AX_GUARDED_BY(files_mu_);
  FileId next_file_id_ AX_GUARDED_BY(files_mu_) = 1;
};

}  // namespace asterix::storage
