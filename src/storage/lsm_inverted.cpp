#include "storage/lsm_inverted.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "adm/key_encoder.h"

namespace asterix::storage {

std::vector<std::string> TokenizeKeywords(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

namespace {
Result<std::string> PostingKey(const std::string& term,
                               const std::string& payload) {
  return adm::EncodeKey(
      {adm::Value::String(term), adm::Value::String(payload)});
}
}  // namespace

Result<std::unique_ptr<LsmInvertedIndex>> LsmInvertedIndex::Open(
    const InvertedIndexOptions& options) {
  LsmOptions o;
  o.dir = options.dir;
  o.name = options.name;
  o.cache = options.cache;
  o.mem_budget_bytes = options.mem_budget_bytes;
  o.scheduler = options.scheduler;
  AX_ASSIGN_OR_RETURN(auto tree, LsmBTree::Open(o));
  return std::unique_ptr<LsmInvertedIndex>(
      new LsmInvertedIndex(std::move(tree)));
}

Status LsmInvertedIndex::Insert(const std::string& term,
                                const std::string& payload) {
  AX_ASSIGN_OR_RETURN(std::string key, PostingKey(term, payload));
  return tree_->Put(key, "");
}

Status LsmInvertedIndex::Remove(const std::string& term,
                                const std::string& payload) {
  AX_ASSIGN_OR_RETURN(std::string key, PostingKey(term, payload));
  return tree_->Delete(key);
}

Status LsmInvertedIndex::InsertText(const std::string& text,
                                    const std::string& payload) {
  std::set<std::string> unique_terms;
  for (auto& t : TokenizeKeywords(text)) unique_terms.insert(std::move(t));
  for (const auto& t : unique_terms) AX_RETURN_NOT_OK(Insert(t, payload));
  return Status::OK();
}

Status LsmInvertedIndex::RemoveText(const std::string& text,
                                    const std::string& payload) {
  std::set<std::string> unique_terms;
  for (auto& t : TokenizeKeywords(text)) unique_terms.insert(std::move(t));
  for (const auto& t : unique_terms) AX_RETURN_NOT_OK(Remove(t, payload));
  return Status::OK();
}

Result<std::vector<std::string>> LsmInvertedIndex::Search(
    const std::string& term) const {
  AX_ASSIGN_OR_RETURN(std::string lo, adm::EncodeKey(adm::Value::String(term)));
  std::vector<std::string> out;
  AX_ASSIGN_OR_RETURN(auto it, tree_->NewIterator());
  AX_RETURN_NOT_OK(it.Seek(lo));
  while (it.Valid()) {
    if (it.key().compare(0, lo.size(), lo) != 0) break;
    AX_ASSIGN_OR_RETURN(auto parts, adm::DecodeKey(it.key()));
    if (parts.size() == 2 && parts[0].is_string() &&
        parts[0].AsString() == term && parts[1].is_string()) {
      out.push_back(parts[1].AsString());
    }
    AX_RETURN_NOT_OK(it.Next());
  }
  return out;
}

Result<std::vector<std::string>> LsmInvertedIndex::SearchAll(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) return std::vector<std::string>{};
  AX_ASSIGN_OR_RETURN(auto acc, Search(terms[0]));
  std::set<std::string> current(acc.begin(), acc.end());
  for (size_t i = 1; i < terms.size() && !current.empty(); i++) {
    AX_ASSIGN_OR_RETURN(auto next, Search(terms[i]));
    std::set<std::string> next_set(next.begin(), next.end());
    std::set<std::string> inter;
    std::set_intersection(current.begin(), current.end(), next_set.begin(),
                          next_set.end(), std::inserter(inter, inter.begin()));
    current = std::move(inter);
  }
  return std::vector<std::string>(current.begin(), current.end());
}

}  // namespace asterix::storage
