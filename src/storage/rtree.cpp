#include "storage/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace asterix::storage {

namespace {

constexpr char kMagic[8] = {'A', 'X', 'R', 'T', '0', '0', '0', '1'};
constexpr uint8_t kLeafBit = 0x1;
constexpr uint8_t kPointBit = 0x2;
constexpr size_t kPageHeader = 4;  // flags(1) pad(1) count(2)

void PutU16(std::string* buf, uint16_t v) {
  buf->append(reinterpret_cast<const char*>(&v), 2);
}
void PutU32(std::string* buf, uint32_t v) {
  buf->append(reinterpret_cast<const char*>(&v), 4);
}
uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void PutDouble(std::string* buf, double d) {
  buf->append(reinterpret_cast<const char*>(&d), 8);
}
double GetDouble(const char* p) {
  double d;
  std::memcpy(&d, p, 8);
  return d;
}
void PutVar(std::string* buf, uint64_t v) {
  while (v >= 0x80) {
    buf->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf->push_back(static_cast<char>(v));
}
uint64_t GetVar(const char* p, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t b = static_cast<uint8_t>(p[*pos]);
    (*pos)++;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

adm::Rectangle Union(const adm::Rectangle& a, const adm::Rectangle& b) {
  return adm::Rectangle{{std::min(a.lo.x, b.lo.x), std::min(a.lo.y, b.lo.y)},
                        {std::max(a.hi.x, b.hi.x), std::max(a.hi.y, b.hi.y)}};
}

std::string AssemblePage(uint8_t flags, const std::vector<uint16_t>& slots,
                         const std::string& payload) {
  std::string page;
  page.reserve(kPageSize);
  page.push_back(static_cast<char>(flags));
  page.push_back(0);
  PutU16(&page, static_cast<uint16_t>(slots.size()));
  uint16_t base = static_cast<uint16_t>(kPageHeader + 2 * slots.size());
  for (uint16_t s : slots) PutU16(&page, static_cast<uint16_t>(s + base));
  page += payload;
  page.resize(kPageSize, '\0');
  return page;
}

}  // namespace

RTreeBuilder::RTreeBuilder(std::unique_ptr<File> file, bool point_mode)
    : file_(std::move(file)), point_mode_(point_mode) {}

RTreeBuilder::~RTreeBuilder() = default;

Result<std::unique_ptr<RTreeBuilder>> RTreeBuilder::Create(
    const std::string& path, bool point_mode) {
  AX_ASSIGN_OR_RETURN(auto file, File::Create(path));
  return std::unique_ptr<RTreeBuilder>(
      new RTreeBuilder(std::move(file), point_mode));
}

Status RTreeBuilder::Add(const adm::Rectangle& mbr, const std::string& payload) {
  if (finished_) return Status::Internal("builder already finished");
  if (point_mode_ && (mbr.lo.x != mbr.hi.x || mbr.lo.y != mbr.hi.y)) {
    return Status::InvalidArgument(
        "point-mode R-tree cannot store non-point entries");
  }
  entries_.push_back(SpatialEntry{mbr, payload});
  return Status::OK();
}

Result<PageNo> RTreeBuilder::WritePage(const std::string& payload) {
  PageNo no = next_page_++;
  AX_RETURN_NOT_OK(file_->WriteAt(static_cast<uint64_t>(no) * kPageSize,
                                  kPageSize, payload.data()));
  return no;
}

Result<RTreeMeta> RTreeBuilder::Finish() {
  if (finished_) return Status::Internal("builder already finished");
  finished_ = true;

  // --- STR: sort by x-center, slice, sort slices by y-center ---------------
  auto cx = [](const SpatialEntry& e) { return (e.mbr.lo.x + e.mbr.hi.x) / 2; };
  auto cy = [](const SpatialEntry& e) { return (e.mbr.lo.y + e.mbr.hi.y) / 2; };
  size_t n = entries_.size();
  // Estimate leaf capacity from average entry size to pick slice counts.
  size_t avg_entry = 24;
  if (n > 0) {
    size_t total = 0;
    for (const auto& e : entries_) {
      total += (point_mode_ ? 16 : 32) + 2 + e.payload.size() + 2;
    }
    avg_entry = std::max<size_t>(total / n, 8);
  }
  size_t per_leaf = std::max<size_t>((kPageSize - kPageHeader) / avg_entry, 2);
  size_t num_leaves = (n + per_leaf - 1) / std::max<size_t>(per_leaf, 1);
  size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<size_t>(num_leaves, 1)))));
  if (n > 1) {
    std::sort(entries_.begin(), entries_.end(),
              [&](const SpatialEntry& a, const SpatialEntry& b) {
                return cx(a) < cx(b);
              });
    size_t slice_size = (n + slices - 1) / slices;
    for (size_t s = 0; s < n; s += slice_size) {
      size_t e = std::min(n, s + slice_size);
      std::sort(entries_.begin() + static_cast<ptrdiff_t>(s),
                entries_.begin() + static_cast<ptrdiff_t>(e),
                [&](const SpatialEntry& a, const SpatialEntry& b) {
                  return cy(a) < cy(b);
                });
    }
  }

  // --- pack leaves ----------------------------------------------------------
  struct Pending {
    adm::Rectangle mbr;
    PageNo page;
  };
  std::vector<Pending> level;
  {
    std::string payload;
    std::vector<uint16_t> slots;
    adm::Rectangle page_mbr{};
    auto flush = [&]() -> Status {
      if (slots.empty()) return Status::OK();
      uint8_t flags = kLeafBit | (point_mode_ ? kPointBit : 0);
      AX_ASSIGN_OR_RETURN(PageNo no, WritePage(AssemblePage(flags, slots, payload)));
      level.push_back(Pending{page_mbr, no});
      payload.clear();
      slots.clear();
      return Status::OK();
    };
    for (const auto& e : entries_) {
      std::string entry;
      if (point_mode_) {
        PutDouble(&entry, e.mbr.lo.x);
        PutDouble(&entry, e.mbr.lo.y);
      } else {
        PutDouble(&entry, e.mbr.lo.x);
        PutDouble(&entry, e.mbr.lo.y);
        PutDouble(&entry, e.mbr.hi.x);
        PutDouble(&entry, e.mbr.hi.y);
      }
      PutVar(&entry, e.payload.size());
      entry += e.payload;
      size_t needed = kPageHeader + 2 * (slots.size() + 1) + payload.size() +
                      entry.size();
      if (!slots.empty() && needed > kPageSize) AX_RETURN_NOT_OK(flush());
      if (kPageHeader + 2 + entry.size() > kPageSize) {
        return Status::InvalidArgument("R-tree payload too large for a page");
      }
      if (slots.empty()) {
        page_mbr = e.mbr;
      } else {
        page_mbr = Union(page_mbr, e.mbr);
      }
      slots.push_back(static_cast<uint16_t>(payload.size()));
      payload += entry;
    }
    AX_RETURN_NOT_OK(flush());
  }
  if (level.empty()) {
    // Empty tree: single empty leaf.
    uint8_t flags = kLeafBit | (point_mode_ ? kPointBit : 0);
    AX_ASSIGN_OR_RETURN(PageNo no, WritePage(AssemblePage(flags, {}, "")));
    level.push_back(Pending{adm::Rectangle{}, no});
  }

  // --- build interior levels (sequential packing preserves STR order) ------
  uint32_t height = 1;
  while (level.size() > 1) {
    std::vector<Pending> parent;
    std::string payload;
    std::vector<uint16_t> slots;
    adm::Rectangle page_mbr{};
    auto flush = [&]() -> Status {
      if (slots.empty()) return Status::OK();
      AX_ASSIGN_OR_RETURN(PageNo no, WritePage(AssemblePage(0, slots, payload)));
      parent.push_back(Pending{page_mbr, no});
      payload.clear();
      slots.clear();
      return Status::OK();
    };
    for (const auto& child : level) {
      // interior entry: 32-byte mbr + u32 child
      size_t entry_size = 36;
      size_t needed =
          kPageHeader + 2 * (slots.size() + 1) + payload.size() + entry_size;
      if (!slots.empty() && needed > kPageSize) AX_RETURN_NOT_OK(flush());
      if (slots.empty()) {
        page_mbr = child.mbr;
      } else {
        page_mbr = Union(page_mbr, child.mbr);
      }
      slots.push_back(static_cast<uint16_t>(payload.size()));
      PutDouble(&payload, child.mbr.lo.x);
      PutDouble(&payload, child.mbr.lo.y);
      PutDouble(&payload, child.mbr.hi.x);
      PutDouble(&payload, child.mbr.hi.y);
      PutU32(&payload, child.page);
    }
    AX_RETURN_NOT_OK(flush());
    level = std::move(parent);
    height++;
  }

  RTreeMeta meta;
  meta.root = level[0].page;
  meta.height = height;
  meta.entry_count = n;
  meta.point_mode = point_mode_;
  std::string footer(kMagic, 8);
  PutU32(&footer, meta.root);
  PutU32(&footer, meta.height);
  footer.append(reinterpret_cast<const char*>(&meta.entry_count), 8);
  footer.push_back(point_mode_ ? 1 : 0);
  footer.resize(kPageSize, '\0');
  AX_ASSIGN_OR_RETURN(PageNo footer_no, WritePage(footer));
  meta.page_count = footer_no + 1;
  AX_RETURN_NOT_OK(file_->Sync());
  file_.reset();
  entries_.clear();
  return meta;
}

// ---------------------------------------------------------------------------
// RTree (reader)
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RTree>> RTree::Open(const std::string& path,
                                           BufferCache* cache) {
  AX_ASSIGN_OR_RETURN(FileId fid, cache->RegisterFile(path, false));
  AX_ASSIGN_OR_RETURN(PageNo pages, cache->PageCount(fid));
  if (pages == 0) {
    // axlint: allow(must-check): cleanup on the corruption error path
    (void)cache->UnregisterFile(fid);
    return Status::Corruption("empty R-tree file '" + path + "'");
  }
  RTreeMeta meta;
  {
    AX_ASSIGN_OR_RETURN(PageHandle footer, cache->Pin(fid, pages - 1));
    const char* p = footer.data();
    if (std::memcmp(p, kMagic, 8) != 0) {
      // axlint: allow(must-check): cleanup on the corruption error path
      (void)cache->UnregisterFile(fid);
      return Status::Corruption("bad R-tree magic in '" + path + "'");
    }
    meta.root = GetU32(p + 8);
    meta.height = GetU32(p + 12);
    std::memcpy(&meta.entry_count, p + 16, 8);
    meta.point_mode = p[24] != 0;
    meta.page_count = pages;
  }
  auto tree = std::unique_ptr<RTree>(new RTree(path, cache, fid, meta));
  AX_ASSIGN_OR_RETURN(tree->fref_, cache->GetFileRef(fid));
  return tree;
}

RTree::~RTree() {
  // axlint: allow(must-check): destructor; unregister is best-effort
  if (cache_) (void)cache_->UnregisterFile(file_);
}

Status RTree::SearchPage(PageNo page_no, uint32_t level,
                         const adm::Rectangle& query,
                         const std::function<bool(const adm::Rectangle&,
                                                  const std::string&)>& fn,
                         bool* keep_going) const {
  AX_ASSIGN_OR_RETURN(PageHandle page, cache_->Pin(fref_, page_no));
  const char* p = page.data();
  uint8_t flags = static_cast<uint8_t>(p[0]);
  uint16_t count = GetU16(p + 2);
  bool leaf = flags & kLeafBit;
  bool point_leaf = leaf && (flags & kPointBit);
  for (uint16_t i = 0; i < count && *keep_going; i++) {
    uint16_t off = GetU16(p + kPageHeader + 2 * i);
    size_t pos = off;
    adm::Rectangle mbr;
    if (point_leaf) {
      double x = GetDouble(p + pos);
      double y = GetDouble(p + pos + 8);
      mbr = adm::Rectangle{{x, y}, {x, y}};
      pos += 16;
    } else {
      mbr.lo.x = GetDouble(p + pos);
      mbr.lo.y = GetDouble(p + pos + 8);
      mbr.hi.x = GetDouble(p + pos + 16);
      mbr.hi.y = GetDouble(p + pos + 24);
      pos += 32;
    }
    if (!mbr.Intersects(query)) continue;
    if (leaf) {
      uint64_t plen = GetVar(p, &pos);
      std::string payload(p + pos, plen);
      if (!fn(mbr, payload)) {
        *keep_going = false;
        return Status::OK();
      }
    } else {
      PageNo child = GetU32(p + pos);
      AX_RETURN_NOT_OK(SearchPage(child, level - 1, query, fn, keep_going));
    }
  }
  return Status::OK();
}

Status RTree::Search(const adm::Rectangle& query,
                     const std::function<bool(const adm::Rectangle&,
                                              const std::string&)>& fn) const {
  if (meta_.entry_count == 0) return Status::OK();
  bool keep_going = true;
  return SearchPage(meta_.root, meta_.height, query, fn, &keep_going);
}

Result<std::vector<SpatialEntry>> RTree::SearchCollect(
    const adm::Rectangle& query) const {
  std::vector<SpatialEntry> out;
  AX_RETURN_NOT_OK(Search(query, [&](const adm::Rectangle& mbr,
                                     const std::string& payload) {
    out.push_back(SpatialEntry{mbr, payload});
    return true;
  }));
  return out;
}

}  // namespace asterix::storage
